//! Offline drop-in subset of the `criterion` benchmarking API.
//!
//! The build environment has no network access, so the workspace vendors the
//! slice of criterion its benches use: `Criterion`, `benchmark_group` with
//! `sample_size`/`warm_up_time`/`measurement_time`/`throughput`,
//! `bench_function`/`bench_with_input`, `BenchmarkId`, `Throughput`,
//! `black_box` and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model: each benchmark warms up for (a fraction of) the warm-up
//! time, then runs timed iterations until the measurement time or the sample
//! count is exhausted, and reports min / median / mean per-iteration wall
//! time on stdout.  There are no plots, baselines or significance tests —
//! the numbers are for quick comparisons, not archival statistics.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id consisting of a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Values accepted as benchmark identifiers.
pub trait IntoBenchmarkId {
    /// Converts into the rendered id string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Throughput annotation for a group (recorded, reported alongside times).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-iteration timing loop handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Bencher {
    /// Times `routine`, first warming up, then sampling.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent at least once.
        let warm_up_end = Instant::now() + self.warm_up_time;
        loop {
            black_box(routine());
            if Instant::now() >= warm_up_end {
                break;
            }
        }
        let measure_end = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if Instant::now() >= measure_end {
                break;
            }
        }
    }

    fn report(&mut self, id: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        self.samples.sort_unstable();
        let min = self.samples[0];
        let median = self.samples[self.samples.len() / 2];
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        let rate = match throughput {
            Some(Throughput::Elements(n)) => {
                format!("  ({:.3} Melem/s)", n as f64 / median.as_secs_f64() / 1e6)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  ({:.3} MiB/s)", n as f64 / median.as_secs_f64() / (1024.0 * 1024.0))
            }
            None => String::new(),
        };
        println!(
            "{id:<40} min {min:>12?}  median {median:>12?}  mean {mean:>12?}  ({} samples){rate}",
            self.samples.len()
        );
    }
}

/// Shared tuning for a group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Annotates the group with a throughput figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{}", self.name, id.into_id());
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
        };
        f(&mut bencher);
        bencher.report(&full_id, self.throughput);
        self
    }

    /// Runs one benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (marker for source compatibility).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    default_sample_size: usize,
    default_warm_up: Duration,
    default_measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            default_warm_up: Duration::from_millis(200),
            default_measurement: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            warm_up_time: self.default_warm_up,
            measurement_time: self.default_measurement,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.default_sample_size,
            measurement_time: self.default_measurement,
            warm_up_time: self.default_warm_up,
        };
        f(&mut bencher);
        bencher.report(id, None);
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_report() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        group.throughput(Throughput::Elements(100));
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| {
                runs += 1;
                (0..n).sum::<u64>()
            });
        });
        group.finish();
        assert!(runs >= 3);
    }

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("walk", 42).into_id(), "walk/42");
        assert_eq!(BenchmarkId::from_parameter("subspace").into_id(), "subspace");
    }
}
