//! Offline drop-in subset of the `parking_lot` API, backed by `std::sync`.
//!
//! The build environment has no network access, so the workspace vendors the
//! small slice of `parking_lot` it actually uses: `Mutex`/`MutexGuard`,
//! `RwLock` and `Condvar`, all with parking_lot's non-poisoning signatures
//! (`lock()`/`read()`/`write()` return guards directly).  Poisoned std locks
//! are recovered with `into_inner`, matching parking_lot's behaviour of not
//! propagating panics through locks.

use std::sync;

/// A mutual exclusion primitive (non-poisoning `lock()` signature).
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// A reader-writer lock (non-poisoning `read()`/`write()` signatures).
#[derive(Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

/// A condition variable usable with [`Mutex`] (parking_lot signature:
/// `wait` takes the guard by `&mut` instead of by value).
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Wakes one thread blocked on this condition variable.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all threads blocked on this condition variable.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Atomically releases the guard's mutex, blocks until notified and
    /// re-acquires the mutex, updating the guard in place.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // std's wait consumes the guard and returns a new one; parking_lot's
        // takes `&mut`.  Move the guard out and back with raw reads: no panic
        // can occur in between because lock poisoning is swallowed.
        unsafe {
            let owned = std::ptr::read(guard);
            let reacquired = self.0.wait(owned).unwrap_or_else(|e| e.into_inner());
            std::ptr::write(guard, reacquired);
        }
    }
}
