//! Offline drop-in subset of `serde_derive`.
//!
//! The build environment has no network access, so this proc-macro crate is
//! hand-rolled without `syn`/`quote`: it walks the raw [`TokenStream`] of the
//! deriving item, extracts the type shape (named-field struct, tuple struct,
//! or enum with unit/newtype/tuple/struct variants) and emits a
//! `serde::Serialize` impl building the [`serde::Value`] tree, or an empty
//! `serde::Deserialize` marker impl.
//!
//! Limitations (checked with clear panics): no generic type parameters and
//! no serde field attributes — nothing in this workspace uses either.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for non-generic structs and enums.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let entries = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Object(vec![{entries}])")
        }
        Shape::TupleStruct(arity) => {
            let entries = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Array(vec![{entries}])")
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let name = &item.name;
            let arms = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "{name}::{vname} => ::serde::Value::String(\"{vname}\".to_string()),"
                        ),
                        VariantFields::Tuple(1) => format!(
                            "{name}::{vname}(f0) => ::serde::Value::Object(vec![(\
                             \"{vname}\".to_string(), ::serde::Serialize::to_value(f0))]),"
                        ),
                        VariantFields::Tuple(arity) => {
                            let binders =
                                (0..*arity).map(|i| format!("f{i}")).collect::<Vec<_>>().join(", ");
                            let values = (0..*arity)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "{name}::{vname}({binders}) => ::serde::Value::Object(vec![(\
                                 \"{vname}\".to_string(), ::serde::Value::Array(vec![{values}]))]),"
                            )
                        }
                        VariantFields::Named(fields) => {
                            let binders = fields.join(", ");
                            let entries = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "{name}::{vname} {{ {binders} }} => ::serde::Value::Object(vec![(\
                                 \"{vname}\".to_string(), ::serde::Value::Object(vec![{entries}]))]),"
                            )
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join("\n            ");
            format!("match self {{\n            {arms}\n        }}")
        }
    };
    let name = &item.name;
    format!(
        "impl ::serde::Serialize for {name} {{\n    \
             fn to_value(&self) -> ::serde::Value {{\n        {body}\n    }}\n}}\n"
    )
    .parse()
    .expect("serde_derive: generated Serialize impl must parse")
}

/// Derives the empty `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}\n")
        .parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    skip_attrs_and_vis(&mut tokens);
    let keyword = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic type `{name}` is not supported by the vendored derive");
    }
    match keyword.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item { name, shape: Shape::NamedStruct(parse_named_fields(g.stream())) }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item { name, shape: Shape::TupleStruct(count_tuple_fields(g.stream())) }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                Item { name, shape: Shape::UnitStruct }
            }
            other => panic!("serde_derive: unexpected struct body {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item { name, shape: Shape::Enum(parse_variants(g.stream())) }
            }
            other => panic!("serde_derive: unexpected enum body {other:?}"),
        },
        kw => panic!("serde_derive: cannot derive for `{kw}` items"),
    }
}

/// Skips outer attributes (`#[...]`) and a visibility qualifier
/// (`pub`, `pub(crate)`, `pub(in ...)`).
fn skip_attrs_and_vis(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if matches!(
                    tokens.peek(),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    tokens.next();
                }
            }
            _ => return,
        }
    }
}

/// Extracts the field names of a named-field body, skipping types (which may
/// contain commas inside angle brackets, e.g. `HashMap<K, V>`).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, found {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field `{name}`, found {other:?}"),
        }
        fields.push(name);
        skip_type(&mut tokens);
    }
    fields
}

/// Consumes a type up to (and including) the next top-level comma.
fn skip_type(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut angle_depth = 0usize;
    for token in tokens.by_ref() {
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

/// Counts the fields of a tuple body by top-level commas.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut tokens = stream.into_iter().peekable();
    if tokens.peek().is_none() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0usize;
    let mut trailing_comma = false;
    for token in tokens {
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    count += 1;
                    trailing_comma = true;
                    continue;
                }
                _ => {}
            }
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, found {other:?}"),
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                tokens.next();
                VariantFields::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let named = parse_named_fields(g.stream());
                tokens.next();
                VariantFields::Named(named)
            }
            _ => VariantFields::Unit,
        };
        // Consume a trailing comma (and reject explicit discriminants, which
        // the vendored derive does not support).
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                panic!("serde_derive: explicit discriminants are not supported (variant `{name}`)")
            }
            None => {
                variants.push(Variant { name, fields });
                break;
            }
            other => panic!("serde_derive: unexpected token after variant `{name}`: {other:?}"),
        }
        variants.push(Variant { name, fields });
    }
    variants
}
