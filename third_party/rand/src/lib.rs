//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no network access, so the workspace vendors the
//! slice of `rand` it uses: the [`Rng`]/[`RngCore`] traits with `gen_range`
//! and `gen_bool`, [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`].
//!
//! `StdRng` here is **xoshiro256++** seeded through SplitMix64 — a different
//! stream than upstream rand's ChaCha12-based `StdRng`.  Everything in this
//! workspace treats seeds as opaque determinism handles (same seed → same
//! bodies), never as a cross-library compatibility contract, so the stream
//! change is observable only as different (but still valid) samples.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform word source.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A range that can be sampled uniformly (the subset of rand's
/// `SampleRange`/`SampleUniform` machinery this workspace needs).
pub trait SampleRange {
    /// The element type produced by sampling.
    type Output;
    /// Draws one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        // 53-bit mantissa over the closed interval.
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + u * (hi - lo)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling interface, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one uniform sample from `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// RNGs constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministically).
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step, used to expand a 64-bit seed into xoshiro state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but keep the guard explicit.
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&x));
            let y = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&y));
        }
    }

    #[test]
    fn int_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_samples_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let mean: f64 = (0..10_000).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }
}
