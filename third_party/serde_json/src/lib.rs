//! Offline drop-in subset of `serde_json`: renders the [`serde::Value`]
//! trees produced by the vendored `serde` into JSON text, and parses JSON
//! text back into [`serde::Value`] trees ([`from_str`]) for the consumers
//! that read committed records (the bench harness diffing a run against a
//! `BENCH_*.json` baseline).

use serde::{Serialize, Value};
use std::fmt;

/// Serialization error.
///
/// The vendored emitter is infallible in practice (non-finite floats are
/// rendered as `null`, like serde_json does for `f64::NAN` under its
/// arbitrary-precision feature off); the type exists for signature
/// compatibility.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Renders `value` as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Renders `value` as pretty-printed JSON (two-space indentation).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a [`Value`] tree.
///
/// Supports the full JSON grammar this workspace emits: objects (field order
/// preserved), arrays, strings with the standard escapes (including
/// `\uXXXX`), numbers, booleans and `null`.  Numbers without a fraction or
/// exponent that fit an integer parse as [`Value::Int`]/[`Value::UInt`];
/// everything else parses as [`Value::Float`].
pub fn from_str(text: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

/// Maximum container nesting accepted by [`from_str`] (matches serde_json's
/// default recursion limit); deeper input is rejected as an error instead of
/// recursing the parser off the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{' | b'[') => {
                if self.depth >= MAX_DEPTH {
                    return Err(self.err("recursion limit exceeded"));
                }
                self.depth += 1;
                let value = if self.peek() == Some(b'{') {
                    self.parse_object()
                } else {
                    self.parse_array()
                };
                self.depth -= 1;
                value
            }
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if !self.eat_literal("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at this byte.
                    let start = self.pos - 1;
                    while self.peek().is_some_and(|n| n & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if integral {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>().map(Value::Float).map_err(|_| self.err("invalid number"))
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Keep integral floats distinguishable from integers.
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&format!("{f}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_json_string(out, s),
        Value::Array(items) => write_seq(out, indent, level, items.len(), '[', ']', |out, i| {
            write_value(out, &items[i], indent, level + 1)
        }),
        Value::Object(entries) => {
            write_seq(out, indent, level, entries.len(), '{', '}', |out, i| {
                let (key, val) = &entries[i];
                write_json_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            })
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    len: usize,
    open: char,
    close: char,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (level + 1)));
        }
        write_item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * level));
    }
    out.push(close);
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_objects() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::String("bh".to_string())),
            ("sizes".to_string(), Value::Array(vec![Value::UInt(1), Value::UInt(2)])),
            ("ratio".to_string(), Value::Float(0.5)),
        ]);
        assert_eq!(
            to_string(&Wrap(v.clone())).unwrap(),
            r#"{"name":"bh","sizes":[1,2],"ratio":0.5}"#
        );
        let pretty = to_string_pretty(&Wrap(v)).unwrap();
        assert!(pretty.contains("\n  \"name\": \"bh\""));
    }

    #[test]
    fn escapes_strings_and_handles_non_finite() {
        let v = Value::Object(vec![
            ("s".to_string(), Value::String("a\"b\\c\n".to_string())),
            ("f".to_string(), Value::Float(f64::NAN)),
            ("i".to_string(), Value::Float(3.0)),
        ]);
        assert_eq!(to_string(&Wrap(v)).unwrap(), r#"{"s":"a\"b\\c\n","f":null,"i":3.0}"#);
    }

    struct Wrap(Value);
    impl Serialize for Wrap {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    #[test]
    fn parses_what_it_emits() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::String("bh \"quoted\"\n".to_string())),
            ("sizes".to_string(), Value::Array(vec![Value::UInt(1), Value::Int(-2)])),
            ("ratio".to_string(), Value::Float(0.5)),
            ("big".to_string(), Value::Float(3.0)),
            ("ok".to_string(), Value::Bool(true)),
            ("none".to_string(), Value::Null),
            ("empty_obj".to_string(), Value::Object(vec![])),
            ("empty_arr".to_string(), Value::Array(vec![])),
        ]);
        for text in
            [to_string(&Wrap(v.clone())).unwrap(), to_string_pretty(&Wrap(v.clone())).unwrap()]
        {
            let parsed = from_str(&text).unwrap();
            // Integral floats render as "3.0" and round-trip as floats;
            // everything else round-trips exactly.
            assert_eq!(parsed, v, "round trip failed for {text}");
        }
    }

    #[test]
    fn parses_escapes_numbers_and_nesting() {
        let v = from_str(
            r#"{"a": [1e3, -2.5, 18446744073709551615, "\u0041\ud83d\ude00"], "b": {"c": null}}"#,
        )
        .unwrap();
        let Value::Object(entries) = &v else { panic!("expected object") };
        let Value::Array(items) = &entries[0].1 else { panic!("expected array") };
        assert_eq!(items[0], Value::Float(1000.0));
        assert_eq!(items[1], Value::Float(-2.5));
        assert_eq!(items[2], Value::UInt(u64::MAX));
        assert_eq!(items[3], Value::String("A😀".to_string()));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\"}", "tru", "\"\\q\"", "1 2", "{\"a\":1,}"] {
            assert!(from_str(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        let deep = "[".repeat(100_000);
        let err = from_str(&deep).unwrap_err();
        assert!(err.to_string().contains("recursion limit"), "{err}");
        // Nesting at the limit still parses.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(from_str(&ok).is_ok());
    }
}
