//! Offline drop-in subset of `serde_json`: renders the [`serde::Value`]
//! trees produced by the vendored `serde` into JSON text.  Only the output
//! half of serde_json is provided — nothing in this workspace parses JSON.

use serde::{Serialize, Value};
use std::fmt;

/// Serialization error.
///
/// The vendored emitter is infallible in practice (non-finite floats are
/// rendered as `null`, like serde_json does for `f64::NAN` under its
/// arbitrary-precision feature off); the type exists for signature
/// compatibility.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Renders `value` as compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Renders `value` as pretty-printed JSON (two-space indentation).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Keep integral floats distinguishable from integers.
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&format!("{f}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_json_string(out, s),
        Value::Array(items) => write_seq(out, indent, level, items.len(), '[', ']', |out, i| {
            write_value(out, &items[i], indent, level + 1)
        }),
        Value::Object(entries) => {
            write_seq(out, indent, level, entries.len(), '{', '}', |out, i| {
                let (key, val) = &entries[i];
                write_json_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            })
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    len: usize,
    open: char,
    close: char,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (level + 1)));
        }
        write_item(out, i);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * level));
    }
    out.push(close);
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_objects() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::String("bh".to_string())),
            ("sizes".to_string(), Value::Array(vec![Value::UInt(1), Value::UInt(2)])),
            ("ratio".to_string(), Value::Float(0.5)),
        ]);
        assert_eq!(
            to_string(&Wrap(v.clone())).unwrap(),
            r#"{"name":"bh","sizes":[1,2],"ratio":0.5}"#
        );
        let pretty = to_string_pretty(&Wrap(v)).unwrap();
        assert!(pretty.contains("\n  \"name\": \"bh\""));
    }

    #[test]
    fn escapes_strings_and_handles_non_finite() {
        let v = Value::Object(vec![
            ("s".to_string(), Value::String("a\"b\\c\n".to_string())),
            ("f".to_string(), Value::Float(f64::NAN)),
            ("i".to_string(), Value::Float(3.0)),
        ]);
        assert_eq!(to_string(&Wrap(v)).unwrap(), r#"{"s":"a\"b\\c\n","f":null,"i":3.0}"#);
    }

    struct Wrap(Value);
    impl Serialize for Wrap {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
}
