//! Offline drop-in subset of the `serde` API.
//!
//! The build environment has no network access, so the workspace vendors the
//! slice of serde it uses: `#[derive(Serialize, Deserialize)]` plus a JSON
//! emitter (`serde_json::to_string_pretty`).  Instead of serde's generic
//! serializer architecture, [`Serialize`] converts directly into a [`Value`]
//! tree that `serde_json` renders; this supports every externally-tagged
//! shape the workspace derives (named structs, unit and newtype/tuple enum
//! variants) with serde-compatible JSON output.

pub use serde_derive::{Deserialize, Serialize};

/// A serialized value tree (the subset of the JSON data model we emit).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// String.
    String(String),
    /// Ordered list.
    Array(Vec<Value>),
    /// Ordered key-value map (field order is preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an [`Value::Object`]; `None` for other variants
    /// or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value as `f64` (integers widen), if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The numeric value as `u64`, if it is a non-negative integer (or an
    /// integral float, which the JSON emitter renders indistinguishably).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            // Exclusive bound: `u64::MAX as f64` rounds up to 2^64, which
            // would let out-of-range floats saturate to u64::MAX in the
            // cast instead of being rejected.
            Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f < u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The string content, if this is a [`Value::String`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if this is a [`Value::Array`].
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The entries, if this is a [`Value::Object`].
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }
}

/// Types convertible into a [`Value`] tree.
///
/// Derivable with `#[derive(Serialize)]`; the derive emits one `Object`
/// entry per named field and serde's externally-tagged representation for
/// enums (unit variant → string, newtype variant → `{"Variant": value}`,
/// tuple variant → `{"Variant": [values…]}`).
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Marker for deserializable types.
///
/// Nothing in this workspace deserializes at run time (results are written,
/// never read back), so the trait carries no methods; the derive emits an
/// empty impl to keep `#[derive(Deserialize)]` lines source-compatible.
pub trait Deserialize<'de>: Sized {}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}

impl_serialize_int!(i8, i16, i32, i64, isize);
impl_serialize_uint!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

/// A [`Value`] is its own serialization, so hand-built value trees (wire
/// protocols, ad-hoc JSON documents) can be passed to the `serde_json`
/// emitters directly.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_values() {
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!(3u32.to_value(), Value::UInt(3));
        assert_eq!((-3i64).to_value(), Value::Int(-3));
        assert_eq!(1.5f64.to_value(), Value::Float(1.5));
        assert_eq!("hi".to_value(), Value::String("hi".into()));
        assert_eq!(vec![1u8, 2].to_value(), Value::Array(vec![Value::UInt(1), Value::UInt(2)]));
        assert_eq!(Option::<u8>::None.to_value(), Value::Null);
    }
}
