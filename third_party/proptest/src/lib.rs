//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no network access, so the workspace vendors the
//! slice of proptest it uses: the [`proptest!`] macro, [`Strategy`] with
//! `prop_map`, range/tuple/`any`/`Just`/`collection::vec` strategies,
//! `prop_assert*`/`prop_assume!`, and `ProptestConfig::with_cases`.
//!
//! Differences from upstream: cases are generated from a fixed deterministic
//! seed (reproducible across runs by construction, no `PROPTEST_*` env
//! handling), and failing cases are reported without shrinking — the panic
//! message includes the failing assertion and its formatted operands, which
//! the small case sizes used in this workspace keep readable.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod test_runner {
    //! Case-running configuration and plumbing used by [`crate::proptest!`].

    /// Configuration for a `proptest!` block (subset of upstream's).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful (non-rejected) cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Why a generated case did not succeed.
    pub enum TestCaseError {
        /// `prop_assume!` filtered the inputs; retry with fresh ones.
        Reject,
        /// A `prop_assert*` failed; the message is reported by panicking.
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with the given reason (usable as `.map_err(TestCaseError::fail)?`).
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }
    }
}

pub use test_runner::Config as ProptestConfig;

/// The deterministic RNG driving case generation.
pub struct TestRng(StdRng);

impl TestRng {
    /// A generator with the fixed workspace test seed.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        TestRng(StdRng::seed_from_u64(0x70726f70_74657374)) // "proptest"
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        use rand::RngCore;
        self.0.next_u64()
    }

    /// Access to the underlying rand generator.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.0
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of one type.
    ///
    /// Unlike upstream proptest there is no value-tree/shrinking layer: a
    /// strategy simply draws a value from the deterministic RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            use rand::Rng;
            rng.rng().gen_range(self.clone())
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            use rand::Rng;
            rng.rng().gen_range(self.clone())
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng;
                    rng.rng().gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::Rng;
                    rng.rng().gen_range(self.clone())
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    //! Whole-domain strategies (`any::<T>()`).

    use super::strategy::Strategy;
    use super::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    macro_rules! impl_arbitrary_int {
        ($($t:ty : $u:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    (rng.next_u64() as $u) as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// A vector-length specification: a half-open range or an exact size.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// A vector strategy: `len` elements (a range or an exact count) of
    /// `element`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, len: len.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            use rand::Rng;
            let n = rng.rng().gen_range(self.len.0.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Everything a `proptest!`-based test file needs, mirroring upstream.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace module matching upstream's `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines deterministic property tests.
///
/// Supported grammar (the subset upstream accepts that this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     #[test]
///     fn name(x in 0u32..10, mut v in prop::collection::vec(any::<u64>(), 1..9)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::TestRng::new();
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < cfg.cases {
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)*
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => {
                        rejected += 1;
                        assert!(
                            rejected < cfg.cases.saturating_mul(256).max(1024),
                            "proptest: too many prop_assume! rejections ({} for {} accepted cases)",
                            rejected,
                            accepted
                        );
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest case failed: {}", msg);
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::Config::default(); $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body (reports instead of
/// panicking mid-case, like upstream).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} == {}: {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left != *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left != *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} != {}: {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                left
            )));
        }
    }};
}

/// Rejects the current case, drawing fresh inputs (bounded retries).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small_even() -> impl Strategy<Value = u64> {
        (0u64..100).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 5u32..10, y in -1.0f64..1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn map_and_vec_compose(v in prop::collection::vec(small_even(), 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for x in &v {
                prop_assert_eq!(x % 2, 0);
            }
        }

        #[test]
        fn assume_rejects_and_retries(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_ne!(x % 2, 1);
        }

        #[test]
        fn tuples_and_any(t in (any::<u32>(), 1u32..4), mut n in 0usize..3) {
            n += t.1 as usize;
            prop_assert!(n >= 1);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = prop::collection::vec((0u64..1000, -1.0f64..1.0), 5..10);
        let a = strat.generate(&mut crate::TestRng::new());
        let b = strat.generate(&mut crate::TestRng::new());
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x == y));
    }
}
