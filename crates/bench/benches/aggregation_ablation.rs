//! Criterion ablation: sensitivity of the §5.5 framework to its n1/n2/n3
//! parameters.  The paper notes the results "are not very sensitive to that
//! choice, and performance is good even with n1 = n2 = n3 = 1"; the printed
//! simulated force times let that claim be checked directly, while Criterion
//! tracks the emulation cost.

use bh::{run_simulation, OptLevel, SimConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgas::Machine;
use std::hint::black_box;

fn config(n: usize) -> SimConfig {
    let mut cfg = SimConfig::new(4_096, Machine::process_per_node(16), OptLevel::AsyncAggregation);
    cfg.steps = 2;
    cfg.measured_steps = 1;
    cfg.n1 = n;
    cfg.n2 = n;
    cfg.n3 = n;
    cfg
}

fn bench_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregation_ablation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[1usize, 4, 16] {
        let cfg = config(n);
        let result = run_simulation(&cfg);
        eprintln!(
            "aggregation_ablation/n1=n2=n3={n}: simulated force = {:.4} s, single-source = {:.0} %",
            result.phases.force,
            100.0 * result.vlist_single_source_fraction().unwrap_or(0.0)
        );
        group.bench_with_input(BenchmarkId::from_parameter(format!("n{n}")), &cfg, |b, cfg| {
            b.iter(|| black_box(run_simulation(black_box(cfg)).phases.force));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_aggregation);
criterion_main!(benches);
