//! Criterion ablation: transparent software caching of shared scalars
//! (MuPC-style, §8 of the paper) versus the manual §5.1 replication.
//!
//! Three variants run on the same workload:
//!
//! * `baseline` — every read of `tol`/`eps`/`rsize` goes to thread 0;
//! * `software_cache` — the same code with a per-rank transparent cache that
//!   is invalidated at every barrier ([`pgas::swcache::CachedScalar`]);
//! * `manual_replication` — the paper's §5.1 optimization.
//!
//! The expected outcome, matching the paper's scepticism about transparent
//! caching: the software cache recovers most of the scalar-read traffic
//! (because the scalars never change between barriers), but the bulk of the
//! baseline's slowdown — fine-grained remote access to bodies and cells —
//! is untouched, so its total time stays far above the manually optimized
//! levels (Tables 4–7).

use bh::report::Phase;
use bh::{run_simulation, OptLevel, SimConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgas::Machine;
use std::hint::black_box;

fn config(opt: OptLevel, swcache: bool) -> SimConfig {
    let mut cfg = SimConfig::new(1_024, Machine::process_per_node(4), opt);
    cfg.steps = 2;
    cfg.measured_steps = 1;
    cfg.software_scalar_cache = swcache;
    cfg
}

fn bench_swcache(c: &mut Criterion) {
    let variants = [
        ("baseline", OptLevel::Baseline, false),
        ("software_cache", OptLevel::Baseline, true),
        ("manual_replication", OptLevel::ReplicateScalars, false),
    ];
    let mut group = c.benchmark_group("swcache_ablation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (name, opt, swcache) in variants {
        let cfg = config(opt, swcache);
        let result = run_simulation(&cfg);
        eprintln!(
            "swcache_ablation/{name}: simulated force = {:.4} s, total = {:.4} s, remote gets = {}",
            result.phases.get(Phase::Force),
            result.total,
            result.total_stats().remote_gets
        );
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| {
                let r = run_simulation(black_box(cfg));
                black_box(r.total)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_swcache);
criterion_main!(benches);
