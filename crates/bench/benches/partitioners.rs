//! Criterion comparison: costzones (Morton-order equal-cost segments, the
//! scheme the paper inherits from SPLASH-2) vs orthogonal recursive
//! bisection (ORB, the classic alternative from Salmon's thesis).
//!
//! Besides wall time, the bench prints the load imbalance each partitioner
//! achieves on the same cost-weighted Plummer workload, which is the metric
//! that actually matters for the force phase.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nbody::body::root_cell;
use nbody::plummer::{generate, PlummerConfig};
use octree::costzones::partition_by_cost;
use octree::orb::partition_orb;
use std::hint::black_box;

fn workload(n: usize) -> Vec<nbody::Body> {
    let mut bodies = generate(&PlummerConfig::new(n, 55));
    for b in &mut bodies {
        b.cost = (1.0 + 40.0 / (0.1 + b.pos.norm())) as u32;
    }
    bodies
}

fn bench_partitioners(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioners");
    let ranks = 16usize;
    for &n in &[2_000usize, 16_000] {
        let bodies = workload(n);
        let (center, rsize) = root_cell(&bodies);

        let cz = partition_by_cost(&bodies, center, rsize, ranks);
        let orb = partition_orb(&bodies, ranks);
        eprintln!(
            "partitioners/n={n}: costzones imbalance = {:.3}, ORB imbalance = {:.3}",
            cz.imbalance(&bodies),
            orb.imbalance(&bodies)
        );

        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("costzones", n), &bodies, |b, bodies| {
            b.iter(|| black_box(partition_by_cost(black_box(bodies), center, rsize, ranks).len()));
        });
        group.bench_with_input(BenchmarkId::new("orb", n), &bodies, |b, bodies| {
            b.iter(|| black_box(partition_orb(black_box(bodies), ranks).len()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partitioners);
criterion_main!(benches);
