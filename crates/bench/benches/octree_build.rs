//! Criterion micro-benchmark: sequential octree construction and
//! centre-of-mass computation (the substrate under every tree-build variant).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nbody::plummer::{generate, PlummerConfig};
use octree::tree::{Octree, TreeParams};
use std::hint::black_box;

fn bench_octree_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("octree_build");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[1_024usize, 4_096, 16_384] {
        let bodies = generate(&PlummerConfig::new(n, 42));
        group.bench_with_input(BenchmarkId::new("build", n), &bodies, |b, bodies| {
            b.iter(|| {
                let tree = Octree::build(black_box(bodies), TreeParams::default());
                black_box(tree.len())
            });
        });
        group.bench_with_input(BenchmarkId::new("build_and_mass", n), &bodies, |b, bodies| {
            b.iter(|| {
                let mut tree = Octree::build(black_box(bodies), TreeParams::default());
                tree.compute_mass(bodies);
                black_box(tree.nodes[0].mass)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_octree_build);
criterion_main!(benches);
