//! Criterion ablation: the three tree-building algorithms of the paper
//! (global insertion under locks, §5.4 merged local trees, §6 subspace),
//! compared both in host wall time and — printed once per variant — in
//! simulated tree-building time.

use bh::report::Phase;
use bh::{run_simulation, OptLevel, SimConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgas::Machine;
use std::hint::black_box;

fn config(opt: OptLevel) -> SimConfig {
    let mut cfg = SimConfig::new(4_096, Machine::process_per_node(8), opt);
    cfg.steps = 2;
    cfg.measured_steps = 1;
    cfg
}

fn bench_treebuild(c: &mut Criterion) {
    let variants = [
        ("global_insertion_locks", OptLevel::CacheLocalTree),
        ("merged_local_trees", OptLevel::MergedTreeBuild),
        ("subspace_cost_threshold", OptLevel::Subspace),
    ];
    let mut group = c.benchmark_group("treebuild_ablation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (name, opt) in variants {
        let cfg = config(opt);
        let result = run_simulation(&cfg);
        eprintln!(
            "treebuild_ablation/{name}: simulated tree-build = {:.4} s (+ cofm {:.4} s)",
            result.phases.get(Phase::TreeBuild),
            result.phases.get(Phase::CenterOfMass)
        );
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| {
                let r = run_simulation(black_box(cfg));
                black_box(r.phases.tree)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_treebuild);
criterion_main!(benches);
