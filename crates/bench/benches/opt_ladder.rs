//! Criterion benchmark: end-to-end emulation of the whole optimization
//! ladder on a small workload.
//!
//! Criterion measures host wall time of the emulation; alongside each
//! measurement the bench prints the *simulated* total time once, so the two
//! views (how long the emulator takes vs how long the emulated machine would
//! take) stay side by side.

use bh::{run_simulation, OptLevel, SimConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgas::Machine;
use std::hint::black_box;

fn config(opt: OptLevel) -> SimConfig {
    let mut cfg = SimConfig::new(2_048, Machine::process_per_node(8), opt);
    cfg.steps = 2;
    cfg.measured_steps = 1;
    cfg
}

fn bench_ladder(c: &mut Criterion) {
    let mut group = c.benchmark_group("opt_ladder");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for opt in OptLevel::ALL {
        let cfg = config(opt);
        let simulated = run_simulation(&cfg).total;
        eprintln!("opt_ladder/{}: simulated total = {:.4} s", opt.name(), simulated);
        group.bench_with_input(BenchmarkId::from_parameter(opt.name()), &cfg, |b, cfg| {
            b.iter(|| black_box(run_simulation(black_box(cfg)).total));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ladder);
criterion_main!(benches);
