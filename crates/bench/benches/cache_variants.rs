//! Criterion ablation: §5.3.1 separate local tree vs §5.3.2 merged local
//! tree with shadow pointers.
//!
//! The paper implements both and reports that the shadow-pointer variant
//! "showed little performance improvement over Table 5: the improved
//! algorithm saves some local copying but does not affect global
//! communication".  This bench reproduces that comparison: the two variants
//! are run on identical workloads and their simulated force times are
//! printed; the expected outcome is a difference of a few percent at most,
//! far below the orders of magnitude separating the cached levels from the
//! uncached ones.

use bh::report::Phase;
use bh::{run_simulation, OptLevel, SimConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgas::Machine;
use std::hint::black_box;

fn config(shadow: bool) -> SimConfig {
    let mut cfg = SimConfig::new(4_096, Machine::process_per_node(8), OptLevel::MergedTreeBuild);
    cfg.steps = 2;
    cfg.measured_steps = 1;
    cfg.shadow_cache = shadow;
    cfg
}

fn bench_cache_variants(c: &mut Criterion) {
    let variants = [("separate_local_tree", false), ("merged_shadow_pointers", true)];
    let mut group = c.benchmark_group("cache_variants");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for (name, shadow) in variants {
        let cfg = config(shadow);
        let result = run_simulation(&cfg);
        eprintln!(
            "cache_variants/{name}: simulated force = {:.4} s, total = {:.4} s",
            result.phases.get(Phase::Force),
            result.total
        );
        group.bench_with_input(BenchmarkId::from_parameter(name), &cfg, |b, cfg| {
            b.iter(|| {
                let r = run_simulation(black_box(cfg));
                black_box(r.phases.force)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cache_variants);
criterion_main!(benches);
