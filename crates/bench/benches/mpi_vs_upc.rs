//! Criterion comparison: the fully optimized UPC solver vs the
//! message-passing (MPI-style) comparator on identical workloads.
//!
//! The paper's conclusion (§9) suspects that "with all these changes, the
//! UPC code is as efficient as a similar MPI code" and defers the direct
//! comparison to future work.  This bench performs that comparison on the
//! emulated machine through the engine backend registry and the shared
//! comparison driver — the same code path as `bhsim --compare upc,mpi` —
//! so the driver logic lives in exactly one place.  The printed simulated
//! totals are the relevant output; the Criterion timings measure the host
//! cost of the emulation itself.

use barnes_hut_upc::backends;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use engine::{run_backends, OptLevel, SimConfig};
use pgas::Machine;
use scenarios::builtin;
use std::hint::black_box;

fn config(ranks: usize) -> SimConfig {
    let mut cfg =
        SimConfig::new(4_096, Machine::process_per_node(ranks), OptLevel::AsyncAggregation);
    cfg.steps = 2;
    cfg.measured_steps = 1;
    cfg
}

fn bench_mpi_vs_upc(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpi_vs_upc");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let registry = backends();
    let scenarios = builtin();
    let plummer = scenarios.get("plummer").expect("plummer is builtin");
    let names = vec!["upc".to_string(), "mpi".to_string()];
    for ranks in [4, 16] {
        let cfg = config(ranks);
        let bodies = plummer.generate(cfg.nbodies, cfg.seed);
        let runs = run_backends(&registry, &names, &cfg, &bodies)
            .expect("upc and mpi are registered builtin backends");
        let (upc, mpi) = (&runs[0].result, &runs[1].result);
        eprintln!(
            "mpi_vs_upc/{ranks} ranks: UPC total = {:.4} s (force {:.4}), MPI total = {:.4} s (force {:.4})",
            upc.total, upc.phases.force, mpi.total, mpi.phases.force
        );
        for backend_name in ["upc", "mpi"] {
            let backend = registry.get(backend_name).expect("builtin backend");
            group.bench_with_input(BenchmarkId::new(backend_name, ranks), &cfg, |b, cfg| {
                b.iter(|| black_box(backend.run(black_box(cfg), black_box(bodies.clone())).total));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_mpi_vs_upc);
criterion_main!(benches);
