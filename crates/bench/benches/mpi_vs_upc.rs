//! Criterion comparison: the fully optimized UPC solver vs the
//! message-passing (MPI-style) comparator on identical workloads.
//!
//! The paper's conclusion (§9) suspects that "with all these changes, the
//! UPC code is as efficient as a similar MPI code" and defers the direct
//! comparison to future work.  This bench performs that comparison on the
//! emulated machine: the same bodies, the same machine model, the same
//! measurement protocol, two programming models.  The printed simulated
//! totals are the relevant output; the Criterion timings measure the host
//! cost of the emulation itself.

use bh::{OptLevel, SimConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pgas::Machine;
use std::hint::black_box;

fn config(ranks: usize) -> SimConfig {
    let mut cfg =
        SimConfig::new(4_096, Machine::process_per_node(ranks), OptLevel::AsyncAggregation);
    cfg.steps = 2;
    cfg.measured_steps = 1;
    cfg
}

fn bench_mpi_vs_upc(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpi_vs_upc");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for ranks in [4, 16] {
        let cfg = config(ranks);
        let upc = bh::run_simulation(&cfg);
        let mpi = bh_mpi::run_simulation(&cfg);
        eprintln!(
            "mpi_vs_upc/{ranks} ranks: UPC total = {:.4} s (force {:.4}), MPI total = {:.4} s (force {:.4})",
            upc.total, upc.phases.force, mpi.total, mpi.phases.force
        );
        group.bench_with_input(BenchmarkId::new("upc_optimized", ranks), &cfg, |b, cfg| {
            b.iter(|| black_box(bh::run_simulation(black_box(cfg)).total));
        });
        group.bench_with_input(BenchmarkId::new("mpi_style", ranks), &cfg, |b, cfg| {
            b.iter(|| black_box(bh_mpi::run_simulation(black_box(cfg)).total));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mpi_vs_upc);
criterion_main!(benches);
