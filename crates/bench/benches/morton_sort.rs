//! Criterion micro-benchmark: Morton encoding and Morton-order sorting, the
//! substrate of the costzones partitioner and of the §6 leaf ordering.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nbody::body::root_cell;
use nbody::morton;
use nbody::plummer::{generate, PlummerConfig};
use nbody::Vec3;
use std::hint::black_box;

fn bench_morton(c: &mut Criterion) {
    let mut group = c.benchmark_group("morton");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[4_096usize, 65_536] {
        let bodies = generate(&PlummerConfig::new(n, 5));
        let positions: Vec<Vec3> = bodies.iter().map(|b| b.pos).collect();
        let (center, rsize) = root_cell(&bodies);

        group.bench_with_input(BenchmarkId::new("encode", n), &positions, |b, positions| {
            b.iter(|| {
                let mut acc = 0u64;
                for &p in positions {
                    acc ^= morton::encode(black_box(p), center, rsize);
                }
                black_box(acc)
            });
        });

        group.bench_with_input(BenchmarkId::new("sort_indices", n), &positions, |b, positions| {
            b.iter(|| {
                black_box(morton::sort_indices_by_morton(black_box(positions), center, rsize))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_morton);
criterion_main!(benches);
