//! Criterion micro-benchmark: the Barnes-Hut force kernel against direct
//! summation (the O(n log n) vs O(n²) crossover the paper's §3 motivates).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nbody::plummer::{generate, PlummerConfig};
use nbody::{direct, DEFAULT_EPS, DEFAULT_THETA};
use octree::walk;
use std::hint::black_box;

fn bench_force(c: &mut Criterion) {
    let mut group = c.benchmark_group("force_kernel");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[512usize, 2_048] {
        let bodies = generate(&PlummerConfig::new(n, 7));
        group.bench_with_input(BenchmarkId::new("barnes_hut", n), &bodies, |b, bodies| {
            b.iter(|| {
                black_box(walk::compute_forces(black_box(bodies), DEFAULT_THETA, DEFAULT_EPS))
            });
        });
        group.bench_with_input(BenchmarkId::new("direct_summation", n), &bodies, |b, bodies| {
            b.iter(|| black_box(direct::compute_forces(black_box(bodies), DEFAULT_EPS)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_force);
criterion_main!(benches);
