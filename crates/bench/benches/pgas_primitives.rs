//! Criterion micro-benchmark: host-side overhead of the PGAS emulator's
//! primitives (fine-grained reads, bulk gets, indexed and aggregated
//! gathers).  This measures the *emulation* cost, not simulated time — it is
//! what bounds how large a workload the harness can run.

use criterion::{criterion_group, criterion_main, Criterion};
use pgas::{GlobalPtr, Machine, Runtime, SharedArena, SharedVec};
use std::hint::black_box;

const ELEMENTS: usize = 4_096;

fn bench_pgas(c: &mut Criterion) {
    let mut group = c.benchmark_group("pgas_primitives");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));

    group.bench_function("fine_grained_reads", |b| {
        let rt = Runtime::new(Machine::test_cluster(2));
        let v: SharedVec<u64> = SharedVec::from_fn(2, ELEMENTS, |i| i as u64);
        b.iter(|| {
            let report = rt.run(|ctx| {
                let mut sum = 0u64;
                for i in 0..v.len() {
                    sum += v.read(ctx, i);
                }
                sum
            });
            black_box(report.ranks[0].result)
        });
    });

    group.bench_function("bulk_get_block", |b| {
        let rt = Runtime::new(Machine::test_cluster(2));
        let v: SharedVec<u64> = SharedVec::from_fn(2, ELEMENTS, |i| i as u64);
        b.iter(|| {
            let report = rt.run(|ctx| v.get_block(ctx, 0..v.len()).into_iter().sum::<u64>());
            black_box(report.ranks[0].result)
        });
    });

    group.bench_function("indexed_gather_ilist", |b| {
        let rt = Runtime::new(Machine::test_cluster(4));
        let v: SharedVec<u64> = SharedVec::from_fn(4, ELEMENTS, |i| i as u64);
        let indices: Vec<usize> = (0..ELEMENTS).step_by(3).collect();
        let indices_ref = &indices;
        b.iter(|| {
            let report = rt.run(|ctx| v.get_ilist(ctx, indices_ref).into_iter().sum::<u64>());
            black_box(report.ranks[0].result)
        });
    });

    group.bench_function("aggregated_vlist_async", |b| {
        let rt = Runtime::new(Machine::test_cluster(4));
        let arena: SharedArena<u64> = SharedArena::new(4);
        let ptrs: Vec<GlobalPtr> =
            (0..ELEMENTS).map(|i| arena.alloc_raw(i % 4, i as u64)).collect();
        let ptrs_ref = &ptrs;
        b.iter(|| {
            let report = rt.run(|ctx| {
                let handle = arena.get_vlist_async(ctx, ptrs_ref);
                ctx.wait_sync(handle).into_iter().sum::<u64>()
            });
            black_box(report.ranks[0].result)
        });
    });

    group.bench_function("barrier_and_allreduce", |b| {
        let rt = Runtime::new(Machine::test_cluster(8));
        b.iter(|| {
            let report = rt.run(|ctx| {
                let mut acc = 0.0;
                for _ in 0..16 {
                    ctx.barrier();
                    acc = ctx.allreduce_sum(1.0);
                }
                acc
            });
            black_box(report.makespan())
        });
    });

    group.finish();
}

criterion_group!(benches, bench_pgas);
criterion_main!(benches);
