//! Criterion comparison: pointer-linked octree vs Warren–Salmon hashed
//! oct-tree (§8 related work) on construction and force evaluation.
//!
//! Both structures implement identical geometry and the identical `l/d < θ`
//! walk, so the comparison isolates the data-structure cost: arena-indexed
//! pointer chasing vs hash-table lookups keyed by path keys.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use nbody::plummer::{generate, PlummerConfig};
use nbody::{DEFAULT_EPS, DEFAULT_THETA};
use octree::hashed::HashedOctree;
use octree::tree::{Octree, TreeParams};
use octree::walk;
use std::hint::black_box;

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("hashed_tree_build");
    for &n in &[1_000usize, 8_000] {
        let bodies = generate(&PlummerConfig::new(n, 99));
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("pointer", n), &bodies, |b, bodies| {
            b.iter(|| {
                let mut t = Octree::build(black_box(bodies), TreeParams::default());
                t.compute_mass(bodies);
                black_box(t.len())
            });
        });
        group.bench_with_input(BenchmarkId::new("hashed", n), &bodies, |b, bodies| {
            b.iter(|| {
                let mut t = HashedOctree::build(black_box(bodies), TreeParams::default());
                t.compute_mass(bodies);
                black_box(t.len())
            });
        });
    }
    group.finish();
}

fn bench_walk(c: &mut Criterion) {
    let mut group = c.benchmark_group("hashed_tree_walk");
    let n = 4_000usize;
    let bodies = generate(&PlummerConfig::new(n, 7));
    let mut pointer = Octree::build(&bodies, TreeParams::default());
    pointer.compute_mass(&bodies);
    let mut hashed = HashedOctree::build(&bodies, TreeParams::default());
    hashed.compute_mass(&bodies);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("pointer", |b| {
        b.iter(|| {
            let mut acc_sum = 0.0;
            for body in &bodies {
                let r = walk::accel_on(
                    &pointer,
                    &bodies,
                    body.pos,
                    Some(body.id),
                    DEFAULT_THETA,
                    DEFAULT_EPS,
                );
                acc_sum += r.acc.norm_sq();
            }
            black_box(acc_sum)
        });
    });
    group.bench_function("hashed", |b| {
        b.iter(|| {
            let mut acc_sum = 0.0;
            for body in &bodies {
                let r =
                    hashed.accel_on(&bodies, body.pos, Some(body.id), DEFAULT_THETA, DEFAULT_EPS);
                acc_sum += r.acc.norm_sq();
            }
            black_box(acc_sum)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_build, bench_walk);
criterion_main!(benches);
