//! Criterion ablation: the multipole acceptance parameter θ.  The paper
//! fixes θ = 1.0 (the SPLASH-2 default); this ablation shows the cost side
//! of that choice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nbody::plummer::{generate, PlummerConfig};
use nbody::DEFAULT_EPS;
use octree::walk;
use std::hint::black_box;

fn bench_theta(c: &mut Criterion) {
    let bodies = generate(&PlummerConfig::new(4_096, 11));
    let mut group = c.benchmark_group("theta_ablation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &theta in &[0.3f64, 0.6, 1.0, 1.5] {
        let interactions: u64 =
            walk::compute_forces(&bodies, theta, DEFAULT_EPS).iter().map(|b| b.cost as u64).sum();
        eprintln!(
            "theta_ablation/theta={theta}: {:.0} interactions per body",
            interactions as f64 / bodies.len() as f64
        );
        group.bench_with_input(
            BenchmarkId::new("force", format!("theta_{theta}")),
            &theta,
            |b, &theta| {
                b.iter(|| black_box(walk::compute_forces(black_box(&bodies), theta, DEFAULT_EPS)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_theta);
criterion_main!(benches);
