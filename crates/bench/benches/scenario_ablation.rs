//! Criterion ablation: how the workload *shape* drives the solver.
//!
//! The paper evaluates only Plummer spheres; this bench runs every scenario
//! family of the `scenarios` crate through the structures whose behaviour
//! depends on the mass distribution, and prints the metrics alongside the
//! timed tree build:
//!
//! * **tree-build depth and size** — cusps (`hernquist`) drive the octree
//!   deep, uniform workloads (`cold-cube`) keep it shallow;
//! * **costzones imbalance** — max-over-average zone cost after
//!   cost-weighted partitioning with realistic per-body costs (one force
//!   evaluation), the quantity the paper's partitioner exists to minimize;
//! * **software-cache pressure** — remote cell fetches per interaction
//!   during a cached (§5.3) distributed run: flatter/bimodal workloads need
//!   more of the remote tree per rank, so their demand-driven caches miss
//!   more.

use bh::{run_simulation_on, OptLevel, SimConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nbody::body::root_cell;
use octree::costzones::partition_by_cost;
use octree::tree::{Octree, TreeParams};
use octree::walk;
use pgas::Machine;
use scenarios::builtin;
use std::hint::black_box;

const NBODIES: usize = 2_048;
const SEED: u64 = 20_110_417;
const RANKS: usize = 4;

fn bench_scenarios(c: &mut Criterion) {
    let registry = builtin();
    let mut group = c.benchmark_group("scenario_ablation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));

    for scenario in registry.iter() {
        let name = scenario.name();
        let tuning = scenario.recommended_config();
        let bodies = scenario.generate(NBODIES, SEED);

        // Tree shape.
        let mut tree = Octree::build(&bodies, TreeParams::default());
        tree.compute_mass(&bodies);
        let max_depth = tree.nodes.iter().map(|n| n.depth).max().unwrap_or(0);

        // Costzones imbalance under realistic per-body costs.
        let costed = walk::compute_forces(&bodies, tuning.theta, tuning.eps);
        let (center, rsize) = root_cell(&costed);
        let partition = partition_by_cost(&costed, center, rsize, RANKS);
        let imbalance = partition.imbalance(&costed);

        // Software-cache pressure in a cached distributed run: cell fetches
        // (bulk gathers) per 1k interactions.  `bytes_in` at this level is
        // dominated by remote-cell traffic, so the ratio is a faithful
        // *comparative* miss-pressure metric across scenarios.
        let mut cfg =
            SimConfig::new(NBODIES, Machine::process_per_node(RANKS), OptLevel::CacheLocalTree);
        cfg.steps = 2;
        cfg.measured_steps = 1;
        cfg.theta = tuning.theta;
        cfg.eps = tuning.eps;
        cfg.dt = tuning.dt;
        let result = run_simulation_on(&cfg, bodies.clone());
        let stats = result.total_stats();
        let cell_bytes = std::mem::size_of::<bh::cellnode::CellNode>() as f64;
        let fetched_cells = stats.bytes_in as f64 / cell_bytes;
        let misses_per_1k = 1_000.0 * fetched_cells / (stats.interactions.max(1) as f64);

        eprintln!(
            "scenario_ablation/{name}: tree depth {max_depth}, {} nodes / {} bodies, \
             costzones imbalance {imbalance:.3}, cache fetches/1k interactions {misses_per_1k:.2}, \
             cached force {:.4} s",
            tree.len(),
            NBODIES,
            result.phases.force,
        );

        group.bench_with_input(BenchmarkId::new("tree_build", name), &bodies, |b, bodies| {
            b.iter(|| {
                let mut t = Octree::build(black_box(bodies), TreeParams::default());
                t.compute_mass(bodies);
                black_box(t.len())
            });
        });
        group.bench_with_input(BenchmarkId::new("costzones", name), &costed, |b, costed| {
            b.iter(|| {
                let p = partition_by_cost(black_box(costed), center, rsize, RANKS);
                black_box(p.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scenarios);
criterion_main!(benches);
