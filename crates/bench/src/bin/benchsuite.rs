//! `benchsuite` — the performance subsystem's driver: sweeps scenario ×
//! backend × opt-level × machine-shape through the engine's backend
//! registry, repeats each point, measures the force-kernel A-B pair, and
//! emits a schema-versioned bench record (`BENCH_*.json`) plus a human
//! table.
//!
//! ```text
//! benchsuite                          # full suite, table to stdout
//! benchsuite --out BENCH_0005.json    # full suite, record written to disk
//! benchsuite --quick --baseline BENCH_0005.json --threshold 25
//!                                     # the CI perf gate: quick grid only,
//!                                     # diffed against the committed record
//! ```
//!
//! Exit codes: `0` success, `1` perf regression vs the baseline, `2` usage
//! error, `3` schema violation or I/O failure.

use bh_bench::suite;
use engine::bench::{diff_against_baseline, kernel_regressions, Record};

struct Options {
    quick: bool,
    reps: Option<usize>,
    out: Option<String>,
    baseline: Option<String>,
    threshold_pct: f64,
    json: bool,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            quick: false,
            reps: None,
            out: None,
            baseline: None,
            threshold_pct: 25.0,
            json: false,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: benchsuite [options]\n\
         \n\
         sweep:\n\
           --quick              run only the quick grid (small n, 1 rep) and\n\
                                the quick kernel pair — the CI perf-smoke mode\n\
           --reps K             override repetitions per sweep point\n\
         \n\
         output:\n\
           --out PATH           write the JSON record to PATH\n\
           --json               print the JSON record to stdout instead of the table\n\
         \n\
         perf gate:\n\
           --baseline PATH      diff deterministic metrics against a committed\n\
                                BENCH_*.json; exit 1 on regression\n\
           --threshold PCT      regression threshold in percent (default 25)\n"
    );
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut opts = Options::default();
    let mut args = std::env::args().skip(1);
    let value = |arg: Option<String>, flag: &str| -> String {
        arg.unwrap_or_else(|| {
            eprintln!("missing value for {flag}");
            usage()
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => usage(),
            "--quick" => opts.quick = true,
            "--json" => opts.json = true,
            "--reps" => {
                opts.reps = Some(value(args.next(), "--reps").parse().unwrap_or_else(|_| {
                    eprintln!("invalid --reps");
                    usage()
                }))
            }
            "--out" => opts.out = Some(value(args.next(), "--out")),
            "--baseline" => opts.baseline = Some(value(args.next(), "--baseline")),
            "--threshold" => {
                opts.threshold_pct =
                    value(args.next(), "--threshold").parse().unwrap_or_else(|_| {
                        eprintln!("invalid --threshold");
                        usage()
                    })
            }
            other => {
                const FLAGS: [&str; 7] =
                    ["--help", "--quick", "--json", "--reps", "--out", "--baseline", "--threshold"];
                match engine::suggest::suggest(other, FLAGS) {
                    Some(near) => eprintln!("unknown option: {other} (did you mean {near}?)"),
                    None => eprintln!("unknown option: {other}"),
                }
                usage()
            }
        }
    }
    if opts.threshold_pct <= 0.0 {
        eprintln!("--threshold must be positive");
        usage()
    }
    opts
}

fn fail_schema(msg: &str) -> ! {
    eprintln!("benchsuite: {msg}");
    std::process::exit(3)
}

fn main() {
    let opts = parse_args();

    eprintln!(
        "benchsuite: running the {} suite (threshold {}%)",
        if opts.quick { "quick" } else { "full" },
        opts.threshold_pct
    );
    let record = suite::run_suite(opts.quick, opts.reps, |line| eprintln!("  {line}"))
        .unwrap_or_else(|e| fail_schema(&e));

    let json = record.to_json();
    if let Some(path) = &opts.out {
        std::fs::write(path, format!("{json}\n"))
            .unwrap_or_else(|e| fail_schema(&format!("cannot write {path}: {e}")));
        eprintln!("benchsuite: record written to {path}");
    }
    if opts.json {
        println!("{json}");
    } else {
        print!("{}", suite::human_table(&record));
    }

    let threshold = opts.threshold_pct / 100.0;
    let mut failed = false;

    // The within-record kernel gate: the leaf-coalesced kernel must not lose
    // to the per-body walk it replaced by more than the slack (same host,
    // same seconds — the one wall-clock comparison that is meaningful
    // everywhere).  The kernel wins by ~5-15 % depending on size, so a
    // genuine loss past 25 % means the coalescing win has clearly eroded;
    // anything tighter starts flagging scheduler noise on loaded CI
    // runners (the measurements are a few milliseconds each).
    const KERNEL_GATE_SLACK: f64 = 0.25;
    let kernel_bad = kernel_regressions(&record, KERNEL_GATE_SLACK);
    for r in &kernel_bad {
        eprintln!(
            "benchsuite: KERNEL REGRESSION {}: coalesced {:.3} ms vs per-body {:.3} ms ({:+.1}%)",
            r.key,
            r.current,
            r.baseline,
            100.0 * (r.ratio - 1.0)
        );
        failed = true;
    }

    if let Some(path) = &opts.baseline {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail_schema(&format!("cannot read baseline {path}: {e}")));
        let baseline = Record::from_json(&text)
            .unwrap_or_else(|e| fail_schema(&format!("baseline {path}: {e}")));
        let diff = diff_against_baseline(&record, &baseline, threshold);
        eprintln!(
            "benchsuite: baseline {path}: {} point(s) compared, {} unmatched, {} regression(s)",
            diff.compared,
            diff.unmatched.len(),
            diff.regressions.len()
        );
        if !diff.protocol_mismatches.is_empty() {
            for m in &diff.protocol_mismatches {
                eprintln!("benchsuite: PROTOCOL MISMATCH {m}");
            }
            fail_schema(&format!(
                "baseline {path} was produced under a different measurement protocol — \
                 regenerate it with the full suite"
            ));
        }
        if diff.compared == 0 {
            fail_schema(&format!(
                "baseline {path} shares no sweep points with this run — stale baseline?"
            ));
        }
        // The symmetric direction of the diff: a baseline point this run
        // should have reproduced but did not means a run or kernel engine
        // silently vanished from the grid — its regressions would be
        // unobservable, so the gate fails rather than passing by omission.
        // The one exception is an axis addition the record schema declares
        // (`new_axes`): the grid legitimately restructured around a new key
        // dimension, so those absences are reported without failing and the
        // baseline should be regenerated to re-arm the strict gate.
        if !diff.new_axes.is_empty() {
            eprintln!(
                "benchsuite: baseline predates the {} key axis(es); grid restructuring allowed \
                 — regenerate the baseline to re-arm the symmetric gate",
                diff.new_axes.join(", ")
            );
        }
        for m in &diff.missing_allowed {
            eprintln!("benchsuite: missing {m} (allowed: axis addition)");
        }
        for m in &diff.missing {
            eprintln!("benchsuite: MISSING {m} (present in baseline, absent from this run)");
            failed = true;
        }
        for line in diff.describe_regressions() {
            eprintln!("benchsuite: REGRESSION {line}");
            failed = true;
        }
    }

    if failed {
        std::process::exit(1);
    }
}
