//! `tables` — regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run -p bh-bench --release --bin tables -- --all
//! cargo run -p bh-bench --release --bin tables -- table2 table5 fig13
//! cargo run -p bh-bench --release --bin tables -- --bodies 32768 --threads 1,4,16,64 table8
//! cargo run -p bh-bench --release --bin tables -- --json results/ --all
//! ```
//!
//! All times are *simulated* seconds produced by the PGAS cost model; see
//! EXPERIMENTS.md for the mapping to the paper's measured numbers.

use bh_bench::experiments::{
    fig5_from_sweep, fig6_from_sweep, ladder_sweep, run_experiment, Experiment, ExperimentOutput,
};
use bh_bench::Scale;
use std::path::PathBuf;

struct Options {
    scale: Scale,
    json_dir: Option<PathBuf>,
    experiments: Vec<Experiment>,
    all: bool,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: tables [options] (--all | <experiment>...)\n\
         \n\
         experiments: {}\n\
         \n\
         options:\n\
           --bodies N         strong-scaling body count        (default 8192; paper 2097152)\n\
           --weak-bodies N    weak-scaling bodies per thread   (default 512;  paper 250000)\n\
           --threads a,b,c    strong-scaling thread counts     (default 1,2,4,8,16,32,64,96,112)\n\
           --weak-threads a,b weak-scaling thread counts       (default 16,32,64,128,256)\n\
           --steps N          time steps to run                (default 4)\n\
           --measured N       trailing steps to measure        (default 2)\n\
           --seed N           Plummer seed\n\
           --paper-scale      use the paper's full workload sizes (very slow)\n\
           --smoke            tiny workload, for checking the harness\n\
           --json DIR         also write each result as JSON into DIR\n\
           --quiet            suppress progress output\n",
        Experiment::ALL.iter().map(|e| e.name()).collect::<Vec<_>>().join(", ")
    );
    std::process::exit(2)
}

fn parse_args() -> Options {
    let mut scale = Scale::default_scale();
    let mut json_dir = None;
    let mut experiments = Vec::new();
    let mut all = false;
    let mut quiet = false;

    let mut args = std::env::args().skip(1).peekable();
    let next_value =
        |args: &mut std::iter::Peekable<std::iter::Skip<std::env::Args>>, flag: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                usage()
            })
        };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => usage(),
            "--all" => all = true,
            "--quiet" => quiet = true,
            "--paper-scale" => {
                let keep_json = json_dir.is_some();
                scale = Scale::paper();
                let _ = keep_json;
            }
            "--smoke" => scale = Scale::smoke(),
            "--bodies" => scale.bodies = parse_num(&next_value(&mut args, "--bodies")),
            "--weak-bodies" => {
                scale.weak_bodies_per_thread = parse_num(&next_value(&mut args, "--weak-bodies"))
            }
            "--steps" => scale.steps = parse_num(&next_value(&mut args, "--steps")),
            "--measured" => scale.measured_steps = parse_num(&next_value(&mut args, "--measured")),
            "--seed" => scale.seed = parse_num(&next_value(&mut args, "--seed")) as u64,
            "--threads" => scale.strong_threads = parse_list(&next_value(&mut args, "--threads")),
            "--weak-threads" => {
                scale.weak_threads = parse_list(&next_value(&mut args, "--weak-threads"))
            }
            "--json" => json_dir = Some(PathBuf::from(next_value(&mut args, "--json"))),
            name => match Experiment::from_name(name) {
                Some(e) => experiments.push(e),
                None => {
                    eprintln!("unknown experiment or option: {name}");
                    usage()
                }
            },
        }
    }
    if !all && experiments.is_empty() {
        usage();
    }
    Options { scale, json_dir, experiments, all, quiet }
}

fn parse_num(s: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("invalid number: {s}");
        usage()
    })
}

fn parse_list(s: &str) -> Vec<usize> {
    s.split(',').map(|p| parse_num(p.trim())).collect()
}

fn emit(name: &str, output: &ExperimentOutput, json_dir: &Option<PathBuf>) {
    println!("================================================================");
    println!("{}", output.render());
    if let Some(dir) = json_dir {
        std::fs::create_dir_all(dir).expect("create json output directory");
        let path = dir.join(format!("{name}.json"));
        let json = serde_json::to_string_pretty(output).expect("serialize experiment output");
        std::fs::write(&path, json).expect("write json output");
        eprintln!("  wrote {}", path.display());
    }
}

fn main() {
    let opts = parse_args();
    let progress = !opts.quiet;
    eprintln!(
        "workload: {} bodies strong / {} bodies-per-thread weak; threads {:?}; {} steps ({} measured)",
        opts.scale.bodies,
        opts.scale.weak_bodies_per_thread,
        opts.scale.strong_threads,
        opts.scale.steps,
        opts.scale.measured_steps
    );

    if opts.all {
        // The ladder sweep feeds Tables 2–7 and Figures 5/6 in one pass.
        eprintln!("running the cumulative-ladder sweep (tables 2-7, figures 5-6) ...");
        let sweep = ladder_sweep(&opts.scale, progress);
        let table_names = ["table2", "table3", "table4", "table5", "table6", "table7"];
        for (i, name) in table_names.iter().enumerate() {
            emit(name, &ExperimentOutput::Table(sweep[i].1.clone()), &opts.json_dir);
        }
        emit(
            "fig5",
            &ExperimentOutput::Series(fig5_from_sweep(&sweep, &opts.scale)),
            &opts.json_dir,
        );
        emit(
            "fig6",
            &ExperimentOutput::Series(fig6_from_sweep(&sweep, &opts.scale)),
            &opts.json_dir,
        );
        for exp in [
            Experiment::Fig7,
            Experiment::Fig8,
            Experiment::Fig10,
            Experiment::Fig11,
            Experiment::Fig12,
            Experiment::Fig13,
            Experiment::Table8,
            Experiment::Table9,
            Experiment::Intranode,
            Experiment::Migration,
            Experiment::VlistSources,
            Experiment::MpiCompare,
            Experiment::SwCache,
            Experiment::CacheVariants,
        ] {
            eprintln!("running {} ...", exp.name());
            let output = run_experiment(exp, &opts.scale, progress);
            emit(exp.name(), &output, &opts.json_dir);
        }
        return;
    }

    for exp in opts.experiments {
        eprintln!("running {} ...", exp.name());
        let output = run_experiment(exp, &opts.scale, progress);
        emit(exp.name(), &output, &opts.json_dir);
    }
}
