//! Workload scales: the paper's sizes and the scaled-down defaults.

use serde::{Deserialize, Serialize};

/// Workload scale used by the experiment harness.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scale {
    /// Bodies for the strong-scaling experiments (paper: 2,097,152).
    pub bodies: usize,
    /// Bodies per thread for the weak-scaling experiments (paper: 250,000).
    pub weak_bodies_per_thread: usize,
    /// Thread counts for the strong-scaling tables (paper: 1–112 nodes).
    pub strong_threads: Vec<usize>,
    /// Thread counts for the weak-scaling figures (paper: 16 threads/node on
    /// up to 64 nodes, i.e. up to 1024 threads).
    pub weak_threads: Vec<usize>,
    /// Threads per node used in the weak-scaling figures (paper: 16).
    pub threads_per_node: usize,
    /// Time steps to run and to measure (paper: 4 run, last 2 measured).
    pub steps: usize,
    /// See [`Scale::steps`].
    pub measured_steps: usize,
    /// RNG seed for the Plummer model.
    pub seed: u64,
}

impl Scale {
    /// The default scaled-down workload: finishes the full `--all` sweep in
    /// tens of minutes on a laptop-class host while preserving the shape of
    /// every experiment.
    pub fn default_scale() -> Scale {
        Scale {
            bodies: 8_192,
            weak_bodies_per_thread: 512,
            strong_threads: vec![1, 2, 4, 8, 16, 32, 64, 96, 112],
            weak_threads: vec![16, 32, 64, 128, 256],
            threads_per_node: 16,
            steps: 4,
            measured_steps: 2,
            seed: 1_234_567,
        }
    }

    /// A very small scale used by smoke tests of the harness itself.
    pub fn smoke() -> Scale {
        Scale {
            bodies: 512,
            weak_bodies_per_thread: 64,
            strong_threads: vec![1, 2, 4],
            weak_threads: vec![2, 4],
            threads_per_node: 2,
            steps: 2,
            measured_steps: 1,
            seed: 7,
        }
    }

    /// The paper's actual workload sizes.  Running this on the emulator is
    /// possible but very slow; it is provided so the mapping to the paper is
    /// explicit.
    pub fn paper() -> Scale {
        Scale {
            bodies: 2 * 1024 * 1024,
            weak_bodies_per_thread: 250_000,
            strong_threads: vec![1, 2, 4, 8, 16, 32, 64, 96, 112],
            weak_threads: vec![16, 128, 256, 512, 1024],
            threads_per_node: 16,
            steps: 4,
            measured_steps: 2,
            seed: 1_234_567,
        }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::default_scale()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_smaller_than_paper() {
        let d = Scale::default_scale();
        let p = Scale::paper();
        assert!(d.bodies < p.bodies);
        assert!(d.weak_bodies_per_thread < p.weak_bodies_per_thread);
        assert_eq!(d.strong_threads, p.strong_threads);
        assert_eq!(d.steps, 4);
        assert_eq!(d.measured_steps, 2);
    }

    #[test]
    fn smoke_scale_is_tiny() {
        let s = Scale::smoke();
        assert!(s.bodies <= 1024);
        assert!(s.strong_threads.iter().all(|&t| t <= 8));
    }
}
