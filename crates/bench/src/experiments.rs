//! Experiment definitions: one entry per table and figure of the paper.

use crate::scale::Scale;
use crate::table::{PhaseTable, Series};
use bh::{run_simulation, OptLevel, SimConfig};
use pgas::Machine;
use serde::{Deserialize, Serialize};

/// Every table and figure of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Experiment {
    /// Table 2: baseline UPC Barnes-Hut, strong scaling.
    Table2,
    /// Table 3: + replicated shared scalars (§5.1).
    Table3,
    /// Table 4: + body redistribution (§5.2).
    Table4,
    /// Table 5: + caching remote cells in a separate local tree (§5.3).
    Table5,
    /// Table 6: + merged-local-tree octree building (§5.4).
    Table6,
    /// Table 7: + non-blocking communication and aggregation (§5.5).
    Table7,
    /// Table 8: strong scaling of the final code, one process per node.
    Table8,
    /// Table 9: strong scaling of the final code, one (pthreads) thread per node.
    Table9,
    /// Figure 5: speed-up of the cumulative optimizations (log scale).
    Fig5,
    /// Figure 6: time per phase at the largest thread count, per optimization.
    Fig6,
    /// Figure 7: weak scaling before the §6 tree-building change.
    Fig7,
    /// Figure 8: per-rank tree-building time split (local build vs merge).
    Fig8,
    /// Figure 10: weak scaling of the subspace build *without* vector reduction.
    Fig10,
    /// Figure 11: weak scaling of the subspace build *with* vector reduction.
    Fig11,
    /// Figure 12: weak scaling while varying threads per node.
    Fig12,
    /// Figure 13: strong-scaling speed-up curve of the final code.
    Fig13,
    /// §4.1 prose: 16 processes vs 16 pthreads on a single node.
    Intranode,
    /// §5.2 prose: fraction of bodies migrating per step.
    Migration,
    /// §5.5 prose: fraction of aggregated requests with a single source.
    VlistSources,
    /// Extension (§9 future work): optimized UPC vs the message-passing
    /// comparator on identical workloads.
    MpiCompare,
    /// Extension (§8 related work): transparent software caching of shared
    /// scalars vs the manual §5.1 replication.
    SwCache,
    /// Extension (§5.3.2): separate local tree vs merged local tree with
    /// shadow pointers.
    CacheVariants,
}

impl Experiment {
    /// All experiments in report order.
    pub const ALL: [Experiment; 22] = [
        Experiment::Table2,
        Experiment::Table3,
        Experiment::Table4,
        Experiment::Table5,
        Experiment::Table6,
        Experiment::Table7,
        Experiment::Fig5,
        Experiment::Fig6,
        Experiment::Fig7,
        Experiment::Fig8,
        Experiment::Fig10,
        Experiment::Fig11,
        Experiment::Fig12,
        Experiment::Fig13,
        Experiment::Table8,
        Experiment::Table9,
        Experiment::Intranode,
        Experiment::Migration,
        Experiment::VlistSources,
        Experiment::MpiCompare,
        Experiment::SwCache,
        Experiment::CacheVariants,
    ];

    /// Command-line name of the experiment.
    pub fn name(self) -> &'static str {
        match self {
            Experiment::Table2 => "table2",
            Experiment::Table3 => "table3",
            Experiment::Table4 => "table4",
            Experiment::Table5 => "table5",
            Experiment::Table6 => "table6",
            Experiment::Table7 => "table7",
            Experiment::Table8 => "table8",
            Experiment::Table9 => "table9",
            Experiment::Fig5 => "fig5",
            Experiment::Fig6 => "fig6",
            Experiment::Fig7 => "fig7",
            Experiment::Fig8 => "fig8",
            Experiment::Fig10 => "fig10",
            Experiment::Fig11 => "fig11",
            Experiment::Fig12 => "fig12",
            Experiment::Fig13 => "fig13",
            Experiment::Intranode => "intranode",
            Experiment::Migration => "migration",
            Experiment::VlistSources => "vlist_sources",
            Experiment::MpiCompare => "mpi_compare",
            Experiment::SwCache => "swcache",
            Experiment::CacheVariants => "cache_variants",
        }
    }

    /// Parses an experiment from its command-line name.
    pub fn from_name(name: &str) -> Option<Experiment> {
        Experiment::ALL.iter().copied().find(|e| e.name() == name)
    }

    /// The optimization level of the strong-scaling tables (None for the
    /// figure-style experiments).
    pub fn table_opt(self) -> Option<(OptLevel, bool)> {
        // (level, pthreads-runtime?)
        match self {
            Experiment::Table2 => Some((OptLevel::Baseline, false)),
            Experiment::Table3 => Some((OptLevel::ReplicateScalars, false)),
            Experiment::Table4 => Some((OptLevel::Redistribute, false)),
            Experiment::Table5 => Some((OptLevel::CacheLocalTree, false)),
            Experiment::Table6 => Some((OptLevel::MergedTreeBuild, false)),
            Experiment::Table7 => Some((OptLevel::AsyncAggregation, false)),
            Experiment::Table8 => Some((OptLevel::Subspace, false)),
            Experiment::Table9 => Some((OptLevel::Subspace, true)),
            _ => None,
        }
    }
}

/// The result of one experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ExperimentOutput {
    /// A phase-breakdown table (Tables 2–9).
    Table(PhaseTable),
    /// A named data series (the figures).
    Series(Series),
    /// Free-form text (the prose statistics).
    Text(String),
    /// Several outputs (e.g. a figure with one series per configuration).
    Multi(Vec<ExperimentOutput>),
}

impl ExperimentOutput {
    /// Renders the output as text.
    pub fn render(&self) -> String {
        match self {
            ExperimentOutput::Table(t) => t.render(),
            ExperimentOutput::Series(s) => s.render(),
            ExperimentOutput::Text(t) => t.clone(),
            ExperimentOutput::Multi(parts) => {
                parts.iter().map(|p| p.render()).collect::<Vec<_>>().join("\n")
            }
        }
    }
}

/// Builds the simulation configuration for a strong-scaling run.
fn strong_config(opt: OptLevel, threads: usize, pthreads: bool, scale: &Scale) -> SimConfig {
    let machine = if pthreads {
        Machine::power5(threads, 1, true)
    } else {
        Machine::process_per_node(threads)
    };
    let mut cfg = SimConfig::new(scale.bodies, machine, opt);
    cfg.steps = scale.steps;
    cfg.measured_steps = scale.measured_steps;
    cfg.seed = scale.seed;
    cfg
}

/// Builds the simulation configuration for a weak-scaling run with the
/// paper's 16-threads-per-node pthreads setup.
fn weak_config(opt: OptLevel, threads: usize, threads_per_node: usize, scale: &Scale) -> SimConfig {
    let tpn = threads_per_node.min(threads).max(1);
    let nodes = threads.div_ceil(tpn);
    let machine = Machine::power5(nodes, tpn, true);
    let mut cfg = SimConfig::new(scale.weak_bodies_per_thread * threads, machine, opt);
    cfg.steps = scale.steps;
    cfg.measured_steps = scale.measured_steps;
    cfg.seed = scale.seed;
    cfg
}

/// Runs one strong-scaling table (one optimization level across the thread
/// counts of the scale).
pub fn strong_table(
    title: &str,
    opt: OptLevel,
    pthreads: bool,
    scale: &Scale,
    progress: bool,
) -> PhaseTable {
    let mut table = PhaseTable::new(title);
    for &threads in &scale.strong_threads {
        if progress {
            eprintln!("  [{}] {} threads ...", opt.name(), threads);
        }
        let cfg = strong_config(opt, threads, pthreads, scale);
        let result = run_simulation(&cfg);
        table.push(threads, result.phases);
    }
    table
}

/// Runs the whole cumulative ladder over the strong-scaling thread counts
/// and returns one table per level, in ladder order
/// (Tables 2–7 plus Table 8's level).
pub fn ladder_sweep(scale: &Scale, progress: bool) -> Vec<(OptLevel, PhaseTable)> {
    OptLevel::ALL
        .into_iter()
        .map(|opt| {
            let title = format!("Cumulative ladder — {}", opt.name());
            (opt, strong_table(&title, opt, false, scale, progress))
        })
        .collect()
}

/// Figure 5 from an existing ladder sweep: parallel speed-up
/// (1-thread time / P-thread time) of every cumulative level.
pub fn fig5_from_sweep(sweep: &[(OptLevel, PhaseTable)], scale: &Scale) -> Series {
    let mut headers: Vec<String> = vec!["threads".to_string()];
    headers.extend(sweep.iter().map(|(opt, _)| opt.name().to_string()));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut series = Series::new(
        "Figure 5: speed-up of cumulative optimizations (relative to the same code on 1 thread)",
        &header_refs,
    );
    for &threads in &scale.strong_threads {
        let mut row = vec![threads as f64];
        for (_, table) in sweep {
            let one = table.column(1).map(|c| c.total).unwrap_or(f64::NAN);
            let this = table.column(threads).map(|c| c.total).unwrap_or(f64::NAN);
            row.push(one / this);
        }
        series.push(row);
    }
    series
}

/// Figure 6 from an existing ladder sweep: per-phase time at the largest
/// thread count for every cumulative level.
pub fn fig6_from_sweep(sweep: &[(OptLevel, PhaseTable)], scale: &Scale) -> Series {
    let threads = *scale.strong_threads.last().expect("at least one thread count");
    let mut series = Series::new(
        format!("Figure 6: time per phase at {threads} threads, per cumulative optimization (level index = ladder position)"),
        &["level", "tree", "cofm", "partition", "redistribute", "force", "advance", "total"],
    );
    for (i, (_, table)) in sweep.iter().enumerate() {
        if let Some(col) = table.column(threads) {
            series.push(vec![
                i as f64,
                col.phases.tree,
                col.phases.cofm,
                col.phases.partition,
                col.phases.redistribute,
                col.phases.force,
                col.phases.advance,
                col.total,
            ]);
        }
    }
    series
}

/// A weak-scaling series of per-phase times for one configuration.
fn weak_series(
    title: &str,
    opt: OptLevel,
    scale: &Scale,
    vector_reduction: bool,
    progress: bool,
) -> Series {
    let mut series = Series::new(
        title,
        &["threads", "tree", "cofm", "partition", "redistribute", "force", "advance", "total"],
    );
    for &threads in &scale.weak_threads {
        if progress {
            eprintln!("  [weak {}] {} threads ...", opt.name(), threads);
        }
        let mut cfg = weak_config(opt, threads, scale.threads_per_node, scale);
        cfg.vector_reduction = vector_reduction;
        let result = run_simulation(&cfg);
        series.push(vec![
            threads as f64,
            result.phases.tree,
            result.phases.cofm,
            result.phases.partition,
            result.phases.redistribute,
            result.phases.force,
            result.phases.advance,
            result.total,
        ]);
    }
    series
}

fn fig8(scale: &Scale, progress: bool) -> Series {
    // Per-rank tree-building split with the §5.4 merged build, at the
    // largest weak-scaling thread count below/equal 128 (the paper uses
    // 16x8 = 128 threads).
    let threads = scale.weak_threads.iter().copied().filter(|&t| t <= 128).max().unwrap_or(16);
    if progress {
        eprintln!("  [fig8] {threads} threads ...");
    }
    let cfg = weak_config(OptLevel::MergedTreeBuild, threads, scale.threads_per_node, scale);
    let result = run_simulation(&cfg);
    let mut series = Series::new(
        format!(
            "Figure 8: per-rank tree-building time split at {threads} threads (merged local trees)"
        ),
        &["rank", "local_build", "merge", "tree_total"],
    );
    for (rank, outcome) in result.ranks.iter().enumerate() {
        series.push(vec![rank as f64, outcome.tree_local, outcome.tree_merge, outcome.phases.tree]);
    }
    series
}

fn fig12(scale: &Scale, progress: bool) -> ExperimentOutput {
    // Weak scaling while varying threads per node: 1, 4, 8, 16 pthreads per
    // node plus one process per node.
    let mut outputs = Vec::new();
    let configs: [(&str, usize, bool); 5] = [
        ("1 thread/node", 1, true),
        ("4 threads/node", 4, true),
        ("8 threads/node", 8, true),
        ("16 threads/node", 16, true),
        ("1 process/node", 1, false),
    ];
    for (label, tpn, pthreads) in configs {
        let mut series =
            Series::new(format!("Figure 12: weak scaling, {label}"), &["threads", "total"]);
        for &threads in &scale.weak_threads {
            if progress {
                eprintln!("  [fig12 {label}] {threads} threads ...");
            }
            let tpn_eff = tpn.min(threads);
            let nodes = threads.div_ceil(tpn_eff);
            let machine = Machine::power5(nodes, tpn_eff, pthreads);
            let mut cfg =
                SimConfig::new(scale.weak_bodies_per_thread * threads, machine, OptLevel::Subspace);
            cfg.steps = scale.steps;
            cfg.measured_steps = scale.measured_steps;
            cfg.seed = scale.seed;
            let result = run_simulation(&cfg);
            series.push(vec![threads as f64, result.total]);
        }
        outputs.push(ExperimentOutput::Series(series));
    }
    ExperimentOutput::Multi(outputs)
}

fn fig13(scale: &Scale, progress: bool) -> Series {
    // Strong-scaling speed-up of the final code.  The paper runs 1
    // thread/node up to 112 and 16 threads/node from 16 to 512; the emulated
    // sweep follows the strong thread list and extends it with the weak
    // thread counts (16 threads/node) beyond its maximum.
    let mut series = Series::new(
        format!(
            "Figure 13: strong-scaling speed-up, {} bodies, fully optimized code",
            scale.bodies
        ),
        &["threads", "total", "speedup", "bodies_per_thread"],
    );
    let mut one_thread_total = None;
    let max_strong = *scale.strong_threads.last().unwrap_or(&1);
    let mut points: Vec<(usize, bool)> = scale.strong_threads.iter().map(|&t| (t, false)).collect();
    points.extend(scale.weak_threads.iter().filter(|&&t| t > max_strong).map(|&t| (t, true)));
    for (threads, pthreads16) in points {
        if progress {
            eprintln!("  [fig13] {threads} threads ...");
        }
        let cfg = if pthreads16 {
            let tpn = scale.threads_per_node.min(threads);
            let machine = Machine::power5(threads.div_ceil(tpn), tpn, true);
            let mut cfg = SimConfig::new(scale.bodies, machine, OptLevel::Subspace);
            cfg.steps = scale.steps;
            cfg.measured_steps = scale.measured_steps;
            cfg.seed = scale.seed;
            cfg
        } else {
            strong_config(OptLevel::Subspace, threads, false, scale)
        };
        let result = run_simulation(&cfg);
        let one = *one_thread_total.get_or_insert(result.total);
        series.push(vec![
            threads as f64,
            result.total,
            one / result.total,
            scale.bodies as f64 / threads as f64,
        ]);
    }
    series
}

fn intranode(scale: &Scale, progress: bool) -> String {
    // §4.1: 16 UPC threads on one node, pthreads vs processes, baseline code.
    let threads = 16usize;
    let run = |pthreads: bool| {
        if progress {
            eprintln!("  [intranode] pthreads={pthreads} ...");
        }
        let machine = Machine::power5(1, threads, pthreads);
        let mut cfg = SimConfig::new(scale.bodies.min(32_768), machine, OptLevel::Baseline);
        cfg.steps = scale.steps;
        cfg.measured_steps = scale.measured_steps;
        cfg.seed = scale.seed;
        run_simulation(&cfg).total
    };
    let with_pthreads = run(true);
    let with_processes = run(false);
    format!(
        "§4.1 single-node experiment ({} bodies, 16 UPC threads on one node, baseline code)\n\
         -pthreads enabled  (16 pthreads/node): {:.3} simulated s\n\
         -pthreads disabled (16 processes/node): {:.3} simulated s\n\
         slowdown of process mode: {:.0}x  (the paper reports 26 s vs >36000 s, i.e. ~1400x)\n",
        scale.bodies.min(32_768),
        with_pthreads,
        with_processes,
        with_processes / with_pthreads
    )
}

fn migration(scale: &Scale) -> String {
    let cfg = {
        let mut cfg = strong_config(OptLevel::CacheLocalTree, 8, false, scale);
        cfg.steps = scale.steps.max(4);
        cfg.measured_steps = scale.measured_steps.min(cfg.steps - 1).max(1);
        cfg
    };
    let result = run_simulation(&cfg);
    format!(
        "§5.2 body-migration statistic ({} bodies, 8 threads, measured over the last {} steps)\n\
         fraction of bodies migrating between owners per step: {:.2} %\n\
         (the paper reports about 2 % on 2M bodies; the fraction shrinks as bodies/thread grow)\n",
        cfg.nbodies,
        cfg.measured_steps,
        100.0 * result.migration_fraction
    )
}

/// Extension experiment: the §9 future-work comparison of the fully
/// optimized UPC code against the message-passing comparator, over the
/// strong-scaling thread counts.
fn mpi_compare(scale: &Scale, progress: bool) -> Series {
    let mut series = Series::new(
        format!(
            "Extension (§9): optimized UPC vs MPI-style comparator, {} bodies (simulated seconds)",
            scale.bodies
        ),
        &["threads", "upc_total", "upc_force", "mpi_total", "mpi_force", "mpi_over_upc"],
    );
    for &threads in &scale.strong_threads {
        if progress {
            eprintln!("  [mpi_compare] {threads} threads ...");
        }
        let cfg = strong_config(OptLevel::Subspace, threads, false, scale);
        let upc = run_simulation(&cfg);
        let mpi = bh_mpi::run_simulation(&cfg);
        series.push(vec![
            threads as f64,
            upc.total,
            upc.phases.force,
            mpi.total,
            mpi.phases.force,
            mpi.total / upc.total.max(1e-12),
        ]);
    }
    series
}

/// Extension experiment: transparent (MuPC-style) software caching of shared
/// scalars vs the manual §5.1 replication, on the otherwise-unoptimized
/// baseline.
fn swcache(scale: &Scale, progress: bool) -> Series {
    let mut series = Series::new(
        format!(
            "Extension (§8): transparent scalar caching vs manual replication, {} bodies (total simulated seconds)",
            scale.bodies.min(8_192)
        ),
        &["threads", "baseline", "software_cache", "manual_repl"],
    );
    for &threads in &scale.strong_threads {
        if threads > 32 {
            // The baseline is extremely slow at large thread counts and the
            // point is made well before 32 threads.
            continue;
        }
        if progress {
            eprintln!("  [swcache] {threads} threads ...");
        }
        let mut base_cfg = strong_config(OptLevel::Baseline, threads, false, scale);
        base_cfg.nbodies = base_cfg.nbodies.min(8_192);
        let baseline = run_simulation(&base_cfg).total;

        let mut cached_cfg = base_cfg.clone();
        cached_cfg.software_scalar_cache = true;
        let cached = run_simulation(&cached_cfg).total;

        let mut repl_cfg = base_cfg.clone();
        repl_cfg.opt = OptLevel::ReplicateScalars;
        let replicated = run_simulation(&repl_cfg).total;

        series.push(vec![threads as f64, baseline, cached, replicated]);
    }
    series
}

/// Extension experiment: the §5.3.1 separate local tree vs the §5.3.2 merged
/// local tree with shadow pointers.
fn cache_variants(scale: &Scale, progress: bool) -> Series {
    let mut series = Series::new(
        format!(
            "Extension (§5.3.2): separate local tree vs shadow-pointer merged tree, {} bodies (force-phase simulated seconds)",
            scale.bodies
        ),
        &["threads", "separate_tree", "shadow_ptrs"],
    );
    for &threads in &scale.strong_threads {
        if progress {
            eprintln!("  [cache_variants] {threads} threads ...");
        }
        let cfg = strong_config(OptLevel::MergedTreeBuild, threads, false, scale);
        let separate = run_simulation(&cfg);
        let mut shadow_cfg = cfg.clone();
        shadow_cfg.shadow_cache = true;
        let shadow = run_simulation(&shadow_cfg);
        series.push(vec![threads as f64, separate.phases.force, shadow.phases.force]);
    }
    series
}

fn vlist_sources(scale: &Scale) -> String {
    let mut out = String::from("§5.5 aggregated-gather source statistic (fully optimized code)\n");
    for &threads in &[8usize, 16, 32] {
        let cfg = strong_config(OptLevel::Subspace, threads, false, scale);
        let result = run_simulation(&cfg);
        let frac = result.vlist_single_source_fraction().unwrap_or(0.0);
        out.push_str(&format!(
            "  {threads:>3} threads: {:.1} % of aggregated requests had a single source thread\n",
            100.0 * frac
        ));
    }
    out.push_str("(the paper reports >95 % at 32 threads and >93 % at 64 threads on 2M bodies)\n");
    out
}

/// Runs one experiment at the given scale.
pub fn run_experiment(exp: Experiment, scale: &Scale, progress: bool) -> ExperimentOutput {
    if let Some((opt, pthreads)) = exp.table_opt() {
        let title = match exp {
            Experiment::Table2 => "Table 2: baseline UPC Barnes-Hut (strong scaling)".to_string(),
            Experiment::Table3 => "Table 3: + replicated shared scalars (§5.1)".to_string(),
            Experiment::Table4 => "Table 4: + body redistribution (§5.2)".to_string(),
            Experiment::Table5 => "Table 5: + cached remote cells (§5.3)".to_string(),
            Experiment::Table6 => "Table 6: + merged-local-tree build (§5.4)".to_string(),
            Experiment::Table7 => "Table 7: + non-blocking aggregation (§5.5)".to_string(),
            Experiment::Table8 => "Table 8: final code, strong scaling, 1 process/node".to_string(),
            Experiment::Table9 => {
                "Table 9: final code, strong scaling, 1 thread/node (pthreads runtime)".to_string()
            }
            _ => unreachable!(),
        };
        return ExperimentOutput::Table(strong_table(&title, opt, pthreads, scale, progress));
    }
    match exp {
        Experiment::Fig5 => {
            let sweep = ladder_sweep(scale, progress);
            ExperimentOutput::Series(fig5_from_sweep(&sweep, scale))
        }
        Experiment::Fig6 => {
            let sweep = ladder_sweep(scale, progress);
            ExperimentOutput::Series(fig6_from_sweep(&sweep, scale))
        }
        Experiment::Fig7 => ExperimentOutput::Series(weak_series(
            "Figure 7: weak scaling before the §6 tree-building change (merged trees + aggregation)",
            OptLevel::AsyncAggregation,
            scale,
            true,
            progress,
        )),
        Experiment::Fig8 => ExperimentOutput::Series(fig8(scale, progress)),
        Experiment::Fig10 => ExperimentOutput::Series(weak_series(
            "Figure 10: weak scaling, subspace build WITHOUT vector reduction",
            OptLevel::Subspace,
            scale,
            false,
            progress,
        )),
        Experiment::Fig11 => ExperimentOutput::Series(weak_series(
            "Figure 11: weak scaling, subspace build WITH vector reduction",
            OptLevel::Subspace,
            scale,
            true,
            progress,
        )),
        Experiment::Fig12 => fig12(scale, progress),
        Experiment::Fig13 => ExperimentOutput::Series(fig13(scale, progress)),
        Experiment::Intranode => ExperimentOutput::Text(intranode(scale, progress)),
        Experiment::Migration => ExperimentOutput::Text(migration(scale)),
        Experiment::VlistSources => ExperimentOutput::Text(vlist_sources(scale)),
        Experiment::MpiCompare => ExperimentOutput::Series(mpi_compare(scale, progress)),
        Experiment::SwCache => ExperimentOutput::Series(swcache(scale, progress)),
        Experiment::CacheVariants => ExperimentOutput::Series(cache_variants(scale, progress)),
        _ => unreachable!("table experiments handled above"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_names_roundtrip() {
        for e in Experiment::ALL {
            assert_eq!(Experiment::from_name(e.name()), Some(e));
        }
        assert_eq!(Experiment::from_name("table99"), None);
    }

    #[test]
    fn strong_table_smoke() {
        let scale = Scale::smoke();
        let out = run_experiment(Experiment::Table5, &scale, false);
        match out {
            ExperimentOutput::Table(t) => {
                assert_eq!(t.columns.len(), scale.strong_threads.len());
                assert!(t.columns.iter().all(|c| c.total > 0.0));
                assert!(t.render().contains("Force Comp."));
            }
            _ => panic!("expected a table"),
        }
    }

    #[test]
    fn fig5_and_fig6_derive_from_one_sweep() {
        let scale = Scale::smoke();
        let sweep = ladder_sweep(&scale, false);
        assert_eq!(sweep.len(), OptLevel::ALL.len());
        let fig5 = fig5_from_sweep(&sweep, &scale);
        assert_eq!(fig5.rows.len(), scale.strong_threads.len());
        assert_eq!(fig5.headers.len(), 1 + OptLevel::ALL.len());
        let fig6 = fig6_from_sweep(&sweep, &scale);
        assert_eq!(fig6.rows.len(), OptLevel::ALL.len());
    }

    #[test]
    fn weak_scaling_series_smoke() {
        let scale = Scale::smoke();
        let out = run_experiment(Experiment::Fig11, &scale, false);
        match out {
            ExperimentOutput::Series(s) => {
                assert_eq!(s.rows.len(), scale.weak_threads.len());
                assert!(s.rows.iter().all(|r| r.last().copied().unwrap_or(0.0) > 0.0));
            }
            _ => panic!("expected a series"),
        }
    }

    #[test]
    fn prose_statistics_render_text() {
        let scale = Scale::smoke();
        for exp in [Experiment::Migration, Experiment::VlistSources] {
            let out = run_experiment(exp, &scale, false);
            match out {
                ExperimentOutput::Text(t) => assert!(!t.is_empty()),
                _ => panic!("expected text"),
            }
        }
    }

    #[test]
    fn extension_experiments_produce_series() {
        let scale = Scale::smoke();
        for exp in [Experiment::MpiCompare, Experiment::SwCache, Experiment::CacheVariants] {
            let out = run_experiment(exp, &scale, false);
            match out {
                ExperimentOutput::Series(s) => {
                    assert!(!s.rows.is_empty(), "{} produced no rows", exp.name());
                    assert!(s.rows.iter().all(|r| r.iter().all(|v| v.is_finite())));
                }
                _ => panic!("expected a series for {}", exp.name()),
            }
        }
    }
}
