//! The benchsuite: the sweep grids, the sweep runner and the force-kernel
//! A-B benchmark behind the `benchsuite` binary.
//!
//! Two grids exist so one committed baseline serves both CI and humans:
//!
//! * the **quick grid** — small workloads, one repetition by default —
//!   cheap enough for the CI `perf-smoke` job to regenerate on every pull
//!   request and diff against the committed `BENCH_*.json`;
//! * the **full grid** — paper-sized workloads (n = 4096), several
//!   repetitions, the opt-ladder slice and extra machine shapes — what the
//!   committed record is produced from.
//!
//! A full `benchsuite` run emits *both* grids, so the committed record
//! always contains the quick points a later `--quick` run needs to match
//! keys against ([`engine::bench::diff_against_baseline`]).
//!
//! The kernel benchmark ([`run_kernel_pair`]) is the A-B experiment behind
//! the leaf-coalesced force kernel: the same built tree, the same bodies,
//! walked once per repetition with the per-body reference evaluation
//! (`CacheTree::walk_per_body` — one node record chased per leaf,
//! reproducing the replaced walk's per-leaf memory behavior under the
//! batched schedule) and once with the SoA-batched one (`CacheTree::walk`),
//! interleaved so host drift hits both equally.  The two produce
//! bit-identical forces and identical interaction counts — asserted here on
//! every run — so the wall-time ratio isolates the memory layout.

use barnes_hut_upc::prelude::*;
use bh::cache::CacheTree;
use bh::shared::{BhShared, RankState};
use bh::treebuild::{allocate_root, bounding_box_phase, center_of_mass_phase, insert_owned_bodies};
use engine::bench::{
    KernelRecord, Record, RunRecord, RunSpec, Sample, Stat, KERNEL_COALESCED, KERNEL_PER_BODY,
};
use std::hint::black_box;
use std::time::Instant;

/// One point of the benchmark sweep grid.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Scenario registry key.
    pub scenario: &'static str,
    /// Backend registry key.
    pub backend: &'static str,
    /// UPC optimization level.
    pub opt: OptLevel,
    /// Tree lifecycle across steps.
    pub policy: TreePolicy,
    /// Force-walk traversal mode.
    pub walk: WalkMode,
    /// Tree-construction algorithm.
    pub build: TreeBuild,
    /// Number of bodies.
    pub nbodies: usize,
    /// Emulated nodes (one UPC thread each).
    pub nodes: usize,
    /// Total time steps.
    pub steps: usize,
    /// Trailing measured steps.
    pub measured_steps: usize,
    /// Fixed repetition count for this point, overriding the suite-wide
    /// default — the big build-axis and scale rows run once: their builds
    /// are deterministic in the counters the gate compares, and repeating
    /// a million-body sweep would dominate the whole suite's wall time.
    pub reps_override: Option<usize>,
    /// Warm-start pathway: `Some(k)` runs a `k`-step equilibration prefix
    /// once (untimed), checkpoints it into a shared snapstore store, and
    /// measures each repetition as a *resume* from that snapshot — the
    /// sweep-side evidence that warm starts beat re-integrating from t = 0.
    /// The point's key carries `warm[p<k>]` instead of `cold`.
    pub warm_prefix: Option<usize>,
}

impl SweepPoint {
    fn new(
        scenario: &'static str,
        backend: &'static str,
        opt: OptLevel,
        nbodies: usize,
        nodes: usize,
    ) -> SweepPoint {
        SweepPoint {
            scenario,
            backend,
            opt,
            policy: TreePolicy::Rebuild,
            walk: WalkMode::PerBody,
            build: TreeBuild::Insertion,
            nbodies,
            nodes,
            steps: 4,
            measured_steps: 2,
            reps_override: None,
            warm_prefix: None,
        }
    }

    /// The [`SimConfig`] this point runs under (scenario tuning applied).
    pub fn config(&self) -> SimConfig {
        let registry = scenario_registry();
        let scenario = registry.get(self.scenario).expect("grid scenario is registered");
        let tuning = scenario.recommended_config();
        let machine = Machine::power5(self.nodes, 1, false);
        let mut cfg = SimConfig::new(self.nbodies, machine, self.opt);
        cfg.steps = self.steps;
        cfg.measured_steps = self.measured_steps;
        cfg.tree_policy = self.policy;
        cfg.walk = self.walk;
        cfg.build = self.build;
        cfg.theta = tuning.theta;
        cfg.eps = tuning.eps;
        cfg.dt = tuning.dt;
        cfg
    }

    /// The bench-record spec for this point, with the warm axis applied.
    pub fn spec(&self) -> RunSpec {
        let mut spec = RunSpec::new(self.scenario, self.backend, &self.config());
        if let Some(prefix) = self.warm_prefix {
            spec.warm = engine::bench::warm_label(prefix);
        }
        spec
    }
}

/// The scenario families every grid covers.
pub const GRID_SCENARIOS: [&str; 3] = ["plummer", "king", "exp-disk"];

/// The backends every grid covers.
pub const GRID_BACKENDS: [&str; 3] = ["upc", "mpi", "direct"];

/// The scenario families of the steps-ladder (tree-policy) slice: long
/// trajectories where the persistent tree must beat per-step rebuild.
pub const POLICY_SCENARIOS: [&str; 2] = ["plummer", "king"];

/// The tree policies the steps-ladder slice sweeps.
pub fn policy_slice() -> [TreePolicy; 3] {
    [
        TreePolicy::Rebuild,
        TreePolicy::Reuse {
            rebuild_every: TreePolicy::DEFAULT_REBUILD_EVERY,
            drift_threshold: TreePolicy::DEFAULT_DRIFT_THRESHOLD,
        },
        TreePolicy::Adaptive,
    ]
}

/// The steps-ladder slice: reuse-vs-rebuild on long (steps = 8)
/// trajectories through the cached-tree level — the workload family the
/// tree-lifecycle subsystem exists for.  Quick mode runs it at the quick
/// grid's size so CI regenerates it on every pull request.
fn steps_ladder_slice(nbodies: usize) -> Vec<SweepPoint> {
    let mut slice = Vec::new();
    for scenario in POLICY_SCENARIOS {
        for policy in policy_slice() {
            let mut p = SweepPoint::new(scenario, "upc", OptLevel::CacheLocalTree, nbodies, 2);
            p.policy = policy;
            p.steps = 8;
            p.measured_steps = 4;
            slice.push(p);
        }
    }
    slice
}

/// The walk-mode slice: the group walk's gated comparison rows.  Only the
/// `group` rows are emitted — their per-body comparators (same scenario,
/// policy, size, nodes and steps protocol) already exist in the
/// steps-ladder slice, so emitting per-body rows here would duplicate
/// sweep-point keys.  Group rows run with and without tree reuse: the walk
/// amortization must win in both regimes.
fn walk_slice(nbodies: usize) -> Vec<SweepPoint> {
    let mut slice = Vec::new();
    for scenario in POLICY_SCENARIOS {
        for policy in [
            TreePolicy::Rebuild,
            TreePolicy::Reuse {
                rebuild_every: TreePolicy::DEFAULT_REBUILD_EVERY,
                drift_threshold: TreePolicy::DEFAULT_DRIFT_THRESHOLD,
            },
        ] {
            let mut p = SweepPoint::new(scenario, "upc", OptLevel::CacheLocalTree, nbodies, 2);
            p.policy = policy;
            p.walk = WalkMode::Group;
            p.steps = 8;
            p.measured_steps = 4;
            slice.push(p);
        }
    }
    slice
}

/// The tree-build slice: insertion vs sorted on every scenario family at
/// one size, holding everything else (§5.3.1 cache level, per-step rebuild,
/// per-body walk) fixed — the A-B evidence that the Morton sample-sort
/// build beats lock-based insertion on tree time with a smaller node arena.
fn build_slice(nbodies: usize, reps_override: Option<usize>) -> Vec<SweepPoint> {
    let mut slice = Vec::new();
    for scenario in scenarios::BUILTIN_NAMES {
        for build in TreeBuild::ALL {
            let mut p = SweepPoint::new(scenario, "upc", OptLevel::CacheLocalTree, nbodies, 2);
            p.build = build;
            p.steps = 2;
            p.measured_steps = 1;
            p.reps_override = reps_override;
            slice.push(p);
        }
    }
    slice
}

/// The warm-start slice: one cold 8-step trajectory plus two warm rows —
/// the same trajectory resumed from a 4-step equilibration checkpoint,
/// under per-step rebuild and under a 2-step reuse cadence (whose resume
/// replays from the mid-cadence anchor, exercising the phase-preserving
/// path).  All three measure every step they integrate, so the committed
/// record is itself the acceptance evidence that resuming beats
/// re-integrating from t = 0 on total simulated seconds.  King on 4 nodes:
/// the scenario/shape keeps the cold row's key disjoint from the
/// steps-ladder and opt-ladder rows (the sweep key does not carry `steps`).
fn warm_slice(nbodies: usize) -> Vec<SweepPoint> {
    let reuse = TreePolicy::Reuse {
        rebuild_every: 2,
        drift_threshold: TreePolicy::DEFAULT_DRIFT_THRESHOLD,
    };
    let mut slice = Vec::new();
    for (policy, warm_prefix) in
        [(TreePolicy::Rebuild, None), (TreePolicy::Rebuild, Some(4)), (reuse, Some(4))]
    {
        let mut p = SweepPoint::new("king", "upc", OptLevel::CacheLocalTree, nbodies, 4);
        p.policy = policy;
        p.steps = 8;
        p.measured_steps = 8;
        p.warm_prefix = warm_prefix;
        slice.push(p);
    }
    slice
}

/// The million-body scale row: the sorted build's headline capability.
/// Sorted-only — the lock-based insertion build at this size spends its
/// whole budget contending on the top of the tree, which the full grid
/// already demonstrates at 65536 — one step, one repetition, group walk.
fn scale_row() -> SweepPoint {
    let mut p = SweepPoint::new("plummer", "upc", OptLevel::CacheLocalTree, 1_000_000, 4);
    p.build = TreeBuild::Sorted;
    p.walk = WalkMode::Group;
    p.steps = 1;
    p.measured_steps = 1;
    p.reps_override = Some(1);
    p
}

/// The quick grid: every scenario × backend at a small size on 2 nodes,
/// 2 steps with 1 measured, plus the steps-ladder tree-policy slice and the
/// walk-mode slice — what CI regenerates on every pull request.  (The quick
/// and full grids use disjoint problem sizes; the baseline diff's
/// missing-point scoping relies on that.)
pub fn quick_grid() -> Vec<SweepPoint> {
    let mut grid = Vec::new();
    for scenario in GRID_SCENARIOS {
        for backend in GRID_BACKENDS {
            let mut p = SweepPoint::new(scenario, backend, OptLevel::Subspace, 512, 2);
            p.steps = 2;
            p.measured_steps = 1;
            grid.push(p);
        }
    }
    grid.extend(steps_ladder_slice(512));
    grid.extend(walk_slice(512));
    grid.extend(build_slice(2048, None));
    grid.extend(warm_slice(512));
    grid
}

/// The full grid: the scenario × backend matrix at n = 4096 on 4 nodes with
/// the paper's 4-steps/2-measured protocol, an opt-ladder slice on the
/// Plummer workload, and a machine-shape sweep of the optimized solver.
pub fn full_grid() -> Vec<SweepPoint> {
    let mut grid = Vec::new();
    for scenario in GRID_SCENARIOS {
        for backend in GRID_BACKENDS {
            grid.push(SweepPoint::new(scenario, backend, OptLevel::Subspace, 4096, 4));
        }
    }
    // Opt-ladder slice (the matrix already holds subspace).
    for opt in [OptLevel::CacheLocalTree, OptLevel::AsyncAggregation] {
        grid.push(SweepPoint::new("plummer", "upc", opt, 4096, 4));
    }
    // Machine shapes around the matrix's 4 nodes.
    for nodes in [2, 8] {
        grid.push(SweepPoint::new("plummer", "upc", OptLevel::Subspace, 4096, nodes));
    }
    // The steps-ladder tree-policy slice at a paper-adjacent size (the
    // acceptance evidence that reuse/adaptive beat per-step rebuild on
    // long trajectories).  At 4096 rather than 2048 since the quick grid's
    // build slice took 2048 (grid sizes must stay disjoint); the slice's
    // machine shape (2 nodes) keeps its rows distinct from the matrix's.
    grid.extend(steps_ladder_slice(4096));
    // The walk-mode slice at the same size: group rows pairing the slice
    // above's per-body rows (the acceptance evidence that group walks beat
    // per-body on force time and traversal volume, with and without reuse).
    grid.extend(walk_slice(4096));
    // The tree-build A-B slice at a size where lock contention on the top
    // of the shared tree dominates the insertion build, plus the
    // million-body sorted-only scale row.
    grid.extend(build_slice(65536, Some(1)));
    grid.push(scale_row());
    // The warm-start slice at the full tier's size.
    grid.extend(warm_slice(4096));
    grid
}

/// The kernel A-B measurements of each mode: `(scenario, nbodies, reps)`.
/// The full list leads with the acceptance-defining Plummer n = 4096 pair.
pub fn kernel_plan(quick: bool) -> Vec<(&'static str, usize, usize)> {
    if quick {
        // Large enough (and repeated enough) that the A-B medians are
        // meaningfully apart from scheduler noise on a loaded CI runner.
        vec![("plummer", 2048, 5)]
    } else {
        vec![("plummer", 4096, 7), ("plummer", 8192, 5), ("king", 4096, 5)]
    }
}

/// Runs one sweep point `reps` times and aggregates the samples.
pub fn run_point(point: &SweepPoint, reps: usize) -> Result<RunRecord, String> {
    let cfg = point.config();
    let registry = scenario_registry();
    let scenario = registry.get(point.scenario).expect("grid scenario is registered");
    let bodies = scenario.generate(cfg.nbodies, cfg.seed);
    let reps = point.reps_override.unwrap_or(reps).max(1);
    if let Some(prefix) = point.warm_prefix {
        return run_warm_point(point, &cfg, bodies, prefix, reps);
    }
    let backends = backend_registry();
    let names = vec![point.backend.to_string()];
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let runs = engine::run_backends(&backends, &names, &cfg, &bodies)?;
        samples.push(Sample::from_run(&runs[0]));
    }
    Ok(RunRecord::from_samples(point.spec(), &samples))
}

/// The suite-shared warm-start snapshot store: one directory per process,
/// so every warm point's equilibration snapshot lands in the same
/// content-addressed store and chunks unchanged across points (body
/// identities, masses, shared prefixes) are stored once.
fn warm_store_dir() -> std::path::PathBuf {
    std::env::temp_dir().join(format!("bh-bench-warmstore-{}", std::process::id()))
}

/// Runs a warm-start sweep point: integrate a `prefix`-step equilibration
/// once (untimed), checkpoint it through the suite's snapstore store, and
/// measure each repetition as a resume from the *reloaded* snapshot — the
/// measured pathway is resume-from-disk, exactly what `bhsim --resume` and
/// the bhserve `resume` op run.
fn run_warm_point(
    point: &SweepPoint,
    cfg: &SimConfig,
    bodies: Vec<Body>,
    prefix: usize,
    reps: usize,
) -> Result<RunRecord, String> {
    if prefix == 0 || prefix >= cfg.steps {
        return Err(format!(
            "warm prefix ({prefix}) must be inside the run's step count ({})",
            cfg.steps
        ));
    }
    let backends = backend_registry();
    let backend =
        backends.get(point.backend).ok_or_else(|| format!("unknown backend: {}", point.backend))?;
    // The untimed equilibration: the recorder carries the *full* config so
    // the checkpoint knows the total the run is heading for.
    let mut cfg_prefix = cfg.clone();
    cfg_prefix.steps = prefix;
    cfg_prefix.measured_steps = cfg.measured_steps.min(prefix);
    let mut recorder =
        snapstore::Recorder::new(point.scenario, point.backend, cfg, bodies.clone(), 0);
    let mut checkpoint: Option<snapstore::SimState> = None;
    backend.run_tracked(&cfg_prefix, bodies, &mut |record| {
        checkpoint = Some(recorder.observe(&record));
    })?;
    let state = checkpoint.ok_or_else(|| "equilibration emitted no step records".to_string())?;

    let store = snapstore::Store::open(warm_store_dir()).map_err(|e| e.to_string())?;
    let saved = store.save_token(&state).map_err(|e| e.to_string())?;
    let state = store.load(&saved.manifest_hash).map_err(|e| e.to_string())?;

    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        let result = snapstore::resume(&state, backend, |_| {})?;
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let run = BackendRun { name: point.backend.to_string(), result, wall_ms };
        samples.push(Sample::from_run(&run));
    }
    Ok(RunRecord::from_samples(point.spec(), &samples))
}

/// Runs the force-kernel A-B benchmark for one scenario and size: builds the
/// shared tree once (single rank, §5.3.1 cache level), then computes all
/// forces `reps` times with each engine, interleaved.  Returns the
/// per-body-walk record followed by the leaf-coalesced record.
///
/// # Panics
/// Panics if the two engines disagree — bit-for-bit on accelerations, or on
/// the interaction count — since then the timing comparison is meaningless.
pub fn run_kernel_pair(scenario_name: &str, nbodies: usize, reps: usize) -> Vec<KernelRecord> {
    let registry = scenario_registry();
    let scenario = registry.get(scenario_name).expect("kernel scenario is registered");
    let tuning = scenario.recommended_config();
    let mut cfg = SimConfig::new(nbodies, Machine::power5(1, 1, false), OptLevel::CacheLocalTree);
    cfg.theta = tuning.theta;
    cfg.eps = tuning.eps;
    cfg.steps = 1;
    cfg.measured_steps = 1;
    let bodies = scenario.generate(nbodies, cfg.seed);
    let shared = BhShared::with_bodies(&cfg, bodies);
    let runtime = Runtime::new(cfg.machine.clone());
    let reps = reps.max(1);

    let cfg_ref = &cfg;
    let shared_ref = &shared;
    let report = runtime.run(|ctx| {
        let mut st = RankState::new(ctx, shared_ref, cfg_ref);
        let (center, rsize) = bounding_box_phase(ctx, shared_ref, &mut st, cfg_ref);
        allocate_root(ctx, shared_ref, center, rsize);
        ctx.barrier();
        insert_owned_bodies(ctx, shared_ref, &mut st, cfg_ref);
        ctx.barrier();
        center_of_mass_phase(ctx, shared_ref, &mut st, cfg_ref);
        ctx.barrier();

        let positions: Vec<(u32, Vec3)> = st
            .my_ids
            .iter()
            .map(|&id| (id, shared_ref.bodytab.read_raw(id as usize).pos))
            .collect();

        let run_engine = |batched: bool| -> (f64, u64, f64) {
            let start = Instant::now();
            let mut cache = CacheTree::new(ctx, shared_ref);
            let mut interactions = 0u64;
            let mut sink = 0.0;
            for &(id, pos) in &positions {
                let r = if batched {
                    cache.walk(ctx, shared_ref, pos, id, cfg_ref.theta, cfg_ref.eps)
                } else {
                    cache.walk_per_body(ctx, shared_ref, pos, id, cfg_ref.theta, cfg_ref.eps)
                };
                interactions += r.interactions as u64;
                sink += r.acc.x + r.acc.y + r.acc.z + r.phi;
            }
            (start.elapsed().as_secs_f64() * 1e3, interactions, sink)
        };

        // Untimed warm-up of both engines (page faults, allocator warm-up).
        let (_, warm_walk, warm_walk_sink) = run_engine(false);
        let (_, warm_batch, warm_batch_sink) = run_engine(true);
        assert_eq!(warm_walk, warm_batch, "kernel engines must evaluate identical interactions");
        assert_eq!(
            warm_walk_sink, warm_batch_sink,
            "kernel engines must produce bit-identical forces"
        );

        let mut walk_ms = Vec::with_capacity(reps);
        let mut batched_ms = Vec::with_capacity(reps);
        for _ in 0..reps {
            let (ms, n, sink) = run_engine(false);
            assert_eq!(n, warm_walk);
            black_box(sink);
            walk_ms.push(ms);
            let (ms, n, sink) = run_engine(true);
            assert_eq!(n, warm_batch);
            black_box(sink);
            batched_ms.push(ms);
        }
        (walk_ms, batched_ms, warm_walk)
    });

    let (walk_ms, batched_ms, interactions) = report.ranks[0].result.clone();
    let record = |engine: &str, times: &[f64]| KernelRecord {
        scenario: scenario_name.to_string(),
        nbodies,
        engine: engine.to_string(),
        reps,
        force_wall_ms: Stat::of(times),
        interactions,
    };
    vec![record(KERNEL_PER_BODY, &walk_ms), record(KERNEL_COALESCED, &batched_ms)]
}

/// Runs the whole suite: the quick grid always, plus the full grid and the
/// full kernel plan unless `quick`.  `reps` overrides the per-mode default
/// repetition count (quick: 1, full: 3) when `Some`.  Progress lines go to
/// `progress` as each point completes.
pub fn run_suite(
    quick: bool,
    reps: Option<usize>,
    mut progress: impl FnMut(&str),
) -> Result<Record, String> {
    let mut record = Record::new(commit_id(), quick);

    let quick_reps = reps.unwrap_or(1);
    for point in quick_grid() {
        let run = run_point(&point, quick_reps)?;
        progress(&format!(
            "quick {:<40} wall {:>8.1} ms  sim {:>9.4} s",
            run.spec.key(),
            run.wall_ms.median,
            run.total_sim_median
        ));
        record.runs.push(run);
    }

    if !quick {
        let full_reps = reps.unwrap_or(3);
        for point in full_grid() {
            let run = run_point(&point, full_reps)?;
            progress(&format!(
                "full  {:<40} wall {:>8.1} ms  sim {:>9.4} s",
                run.spec.key(),
                run.wall_ms.median,
                run.total_sim_median
            ));
            record.runs.push(run);
        }
    }

    for (scenario, nbodies, kernel_reps) in kernel_plan(quick) {
        let pair = run_kernel_pair(scenario, nbodies, kernel_reps);
        progress(&format!(
            "kernel {scenario}/n{nbodies}: per-body {:.2} ms, coalesced {:.2} ms ({:.2}x)",
            pair[0].force_wall_ms.median,
            pair[1].force_wall_ms.median,
            pair[0].force_wall_ms.median / pair[1].force_wall_ms.median.max(1e-9),
        ));
        record.kernels.extend(pair);
    }

    record.validate()?;
    Ok(record)
}

/// The current git commit id (with a `-dirty` suffix when the working tree
/// has uncommitted changes), or `"unknown"` outside a checkout.
pub fn commit_id() -> String {
    let git = |args: &[&str]| {
        std::process::Command::new("git")
            .args(args)
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
    };
    let Some(head) = git(&["rev-parse", "--short=12", "HEAD"]) else {
        return "unknown".to_string();
    };
    let head = head.trim().to_string();
    if head.is_empty() {
        return "unknown".to_string();
    }
    match git(&["status", "--porcelain"]) {
        Some(status) if status.trim().is_empty() => head,
        _ => format!("{head}-dirty"),
    }
}

/// Renders a record as the human-readable tables printed next to the JSON.
pub fn human_table(record: &Record) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "benchsuite record — schema {}, commit {}, {} run(s), {} kernel record(s)\n\n",
        record.schema,
        record.commit,
        record.runs.len(),
        record.kernels.len()
    ));
    out.push_str(&format!(
        "  {:<58} {:>4} {:>11} {:>11} {:>11} {:>12} {:>10} {:>11}\n",
        "run",
        "reps",
        "wall med ms",
        "sim total s",
        "force med s",
        "interactions",
        "macs",
        "remote ops"
    ));
    for run in &record.runs {
        out.push_str(&format!(
            "  {:<58} {:>4} {:>11.1} {:>11.4} {:>11.4} {:>12} {:>10} {:>11}\n",
            run.spec.key(),
            run.reps,
            run.wall_ms.median,
            run.total_sim_median,
            run.phases_median.force,
            run.interactions,
            run.macs,
            run.remote_gets + run.remote_puts,
        ));
    }
    if !record.kernels.is_empty() {
        out.push_str(&format!(
            "\n  {:<24} {:>16} {:>4} {:>12} {:>12} {:>12}\n",
            "kernel", "engine", "reps", "median ms", "p90 ms", "interactions"
        ));
        for k in &record.kernels {
            out.push_str(&format!(
                "  {:<24} {:>16} {:>4} {:>12.3} {:>12.3} {:>12}\n",
                format!("{}/n{}", k.scenario, k.nbodies),
                k.engine,
                k.reps,
                k.force_wall_ms.median,
                k.force_wall_ms.p90,
                k.interactions,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::bench::{diff_against_baseline, kernel_regressions};

    #[test]
    fn quick_grid_covers_the_scenario_backend_matrix() {
        let grid = quick_grid();
        assert_eq!(
            grid.len(),
            GRID_SCENARIOS.len() * GRID_BACKENDS.len()
                + POLICY_SCENARIOS.len() * policy_slice().len()
                + POLICY_SCENARIOS.len() * 2 // walk slice: group × {rebuild, reuse}
                + scenarios::BUILTIN_NAMES.len() * TreeBuild::ALL.len() // build slice
                + 3 // warm slice: cold + warm rebuild + warm reuse
        );
        for scenario in GRID_SCENARIOS {
            for backend in GRID_BACKENDS {
                assert!(
                    grid.iter().any(|p| p.scenario == scenario && p.backend == backend),
                    "missing {scenario}x{backend}"
                );
            }
        }
    }

    #[test]
    fn full_grid_extends_the_quick_matrix() {
        let grid = full_grid();
        assert!(grid.len() > GRID_SCENARIOS.len() * GRID_BACKENDS.len());
        assert!(grid.iter().all(|p| p.nbodies >= 2048));
        // The opt-ladder slice and the machine-shape sweep are present.
        assert!(grid.iter().any(|p| p.opt == OptLevel::CacheLocalTree));
        assert!(grid.iter().any(|p| p.nodes == 8));
    }

    #[test]
    fn both_grids_carry_the_build_slice_and_full_carries_the_scale_row() {
        for (grid, label) in [(quick_grid(), "quick"), (full_grid(), "full")] {
            for scenario in scenarios::BUILTIN_NAMES {
                let sorted: Vec<&SweepPoint> = grid
                    .iter()
                    .filter(|p| p.scenario == scenario && p.build == TreeBuild::Sorted)
                    .collect();
                assert!(!sorted.is_empty(), "{label} grid misses sorted build on {scenario}");
                // Every sorted row at a build-slice size has an insertion
                // comparator differing only in the build axis.
                for s in sorted.iter().filter(|p| p.nbodies < 1_000_000) {
                    assert!(
                        grid.iter().any(|p| {
                            p.build == TreeBuild::Insertion
                                && p.scenario == s.scenario
                                && p.nbodies == s.nbodies
                                && p.nodes == s.nodes
                                && p.steps == s.steps
                                && p.walk == s.walk
                        }),
                        "{label}: no insertion comparator for {scenario}"
                    );
                }
            }
        }
        // The scale row: a million bodies, sorted-only, one rep.
        let full = full_grid();
        let scale: Vec<&SweepPoint> = full.iter().filter(|p| p.nbodies == 1_000_000).collect();
        assert_eq!(scale.len(), 1);
        assert_eq!(scale[0].build, TreeBuild::Sorted);
        assert_eq!(scale[0].reps_override, Some(1));
        assert!(
            !quick_grid().iter().any(|p| p.nbodies >= 65536),
            "million-body rows must never reach the CI quick grid"
        );
    }

    #[test]
    fn both_grids_carry_the_steps_ladder_slice_with_disjoint_sizes() {
        for (grid, label) in [(quick_grid(), "quick"), (full_grid(), "full")] {
            for scenario in POLICY_SCENARIOS {
                for policy in policy_slice() {
                    assert!(
                        grid.iter().any(|p| {
                            p.scenario == scenario
                                && p.policy.name() == policy.name()
                                && p.steps >= 8
                        }),
                        "{label} grid misses {scenario} x {}",
                        policy.name()
                    );
                }
            }
        }
        // The missing-point scoping of the baseline diff relies on the two
        // grids using disjoint problem sizes.
        let quick_sizes: std::collections::BTreeSet<usize> =
            quick_grid().iter().map(|p| p.nbodies).collect();
        let full_sizes: std::collections::BTreeSet<usize> =
            full_grid().iter().map(|p| p.nbodies).collect();
        assert!(quick_sizes.is_disjoint(&full_sizes), "{quick_sizes:?} vs {full_sizes:?}");
    }

    #[test]
    fn walk_slice_pairs_group_rows_with_existing_per_body_rows() {
        for (grid, label) in [(quick_grid(), "quick"), (full_grid(), "full")] {
            // The sorted-only scale row also group-walks; the A-B pairing
            // contract is about the walk slice, which is insertion-build.
            let groups: Vec<&SweepPoint> = grid
                .iter()
                .filter(|p| p.walk == WalkMode::Group && p.build == TreeBuild::Insertion)
                .collect();
            assert_eq!(groups.len(), POLICY_SCENARIOS.len() * 2, "{label}");
            for g in groups {
                // Every group row must have a per-body comparator differing
                // only in the walk mode (same measurement protocol), so the
                // committed record always carries the A-B pair — and no two
                // rows may collide on a sweep-point key.
                assert!(
                    grid.iter().any(|p| {
                        p.walk == WalkMode::PerBody
                            && p.scenario == g.scenario
                            && p.backend == g.backend
                            && p.opt == g.opt
                            && p.policy.spec_label() == g.policy.spec_label()
                            && p.nbodies == g.nbodies
                            && p.nodes == g.nodes
                            && p.steps == g.steps
                            && p.measured_steps == g.measured_steps
                    }),
                    "{label}: no per-body comparator for {}/{}",
                    g.scenario,
                    g.policy.spec_label()
                );
            }
            let mut keys: Vec<String> = grid.iter().map(|p| p.spec().key()).collect();
            let total = keys.len();
            keys.sort();
            keys.dedup();
            assert_eq!(keys.len(), total, "{label}: duplicate sweep-point keys");
        }
    }

    #[test]
    fn both_grids_carry_the_warm_slice_with_its_cold_comparator() {
        for (grid, label) in [(quick_grid(), "quick"), (full_grid(), "full")] {
            let warm: Vec<&SweepPoint> = grid.iter().filter(|p| p.warm_prefix.is_some()).collect();
            assert_eq!(warm.len(), 2, "{label}: warm rebuild + warm reuse");
            for w in &warm {
                assert_eq!(w.warm_prefix, Some(4));
                assert!(w.spec().key().contains("/warm[p4]/"), "{label}: {}", w.spec().key());
                // Every warm row has a cold comparator with the same
                // scenario, size, shape and step protocol — the row the
                // committed record compares total simulated seconds against.
                assert!(
                    grid.iter().any(|p| {
                        p.warm_prefix.is_none()
                            && p.scenario == w.scenario
                            && p.opt == w.opt
                            && p.nbodies == w.nbodies
                            && p.nodes == w.nodes
                            && p.steps == w.steps
                            && p.measured_steps == w.measured_steps
                    }),
                    "{label}: no cold comparator for {}",
                    w.spec().key()
                );
            }
        }
    }

    #[test]
    fn warm_points_resume_and_beat_cold_on_simulated_seconds() {
        let slice = warm_slice(256);
        let cold = run_point(&slice[0], 1).expect("cold");
        assert!(cold.spec.key().contains("/cold/"));
        for warm_point in &slice[1..] {
            let warm = run_point(warm_point, 1).expect("warm");
            assert!(warm.spec.key().contains("/warm[p4]/"), "{}", warm.spec.key());
            assert!(
                warm.total_sim_median < cold.total_sim_median,
                "{}: resumed run must integrate less than the cold run \
                 ({} vs {} simulated seconds)",
                warm.spec.key(),
                warm.total_sim_median,
                cold.total_sim_median
            );
        }
        let _ = std::fs::remove_dir_all(warm_store_dir());
    }

    #[test]
    fn run_point_produces_a_valid_record_that_diffs_clean_against_itself() {
        let point = &quick_grid()[0];
        let a = run_point(point, 1).expect("run");
        let b = run_point(point, 1).expect("run");
        let mut current = Record::new("test".to_string(), true);
        current.runs.push(a);
        current.validate().expect("valid record");
        let mut baseline = Record::new("test".to_string(), true);
        baseline.runs.push(b);
        // Two runs of the same deterministic point must diff clean under the
        // CI threshold.
        let diff = diff_against_baseline(&current, &baseline, 0.25);
        assert_eq!(diff.compared, 1);
        assert!(diff.regressions.is_empty(), "{:?}", diff.describe_regressions());
    }

    #[test]
    fn kernel_pair_agrees_and_records_both_engines() {
        let pair = run_kernel_pair("plummer", 256, 1);
        assert_eq!(pair.len(), 2);
        assert_eq!(pair[0].engine, KERNEL_PER_BODY);
        assert_eq!(pair[1].engine, KERNEL_COALESCED);
        assert_eq!(pair[0].interactions, pair[1].interactions);
        assert!(pair[0].force_wall_ms.median > 0.0);
        // At a tiny size the ratio is noise; just make sure the gate helper
        // accepts a well-formed pair under a generous threshold.
        let mut record = Record::new("test".to_string(), true);
        record.kernels.extend(pair);
        let _ = kernel_regressions(&record, 10.0);
    }
}
