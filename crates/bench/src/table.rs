//! Output containers: phase-breakdown tables (the paper's Tables 2–9) and
//! generic named series (the figures).

use bh::report::{Phase, PhaseTimes};
use serde::{Deserialize, Serialize};

/// One column of a phase table: the result of one run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseColumn {
    /// Number of UPC threads (ranks).
    pub threads: usize,
    /// Per-phase times (max over ranks, summed over measured steps).
    pub phases: PhaseTimes,
    /// Total of the listed phases.
    pub total: f64,
}

/// A table in the paper's format: phases as rows, thread counts as columns,
/// each cell showing simulated seconds and the percentage of the column
/// total.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseTable {
    /// Table caption.
    pub title: String,
    /// One column per thread count.
    pub columns: Vec<PhaseColumn>,
}

impl PhaseTable {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>) -> Self {
        PhaseTable { title: title.into(), columns: Vec::new() }
    }

    /// Appends the result of one run.
    pub fn push(&mut self, threads: usize, phases: PhaseTimes) {
        self.columns.push(PhaseColumn { threads, total: phases.total(), phases });
    }

    /// The column for a given thread count, if present.
    pub fn column(&self, threads: usize) -> Option<&PhaseColumn> {
        self.columns.iter().find(|c| c.threads == threads)
    }

    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{}\n", self.title));
        out.push_str(&format!("{:<16}", "phase"));
        for c in &self.columns {
            out.push_str(&format!("{:>12}  {:>6}", format!("{} thr t(s)", c.threads), "%"));
        }
        out.push('\n');
        for phase in Phase::ALL {
            // Skip all-zero rows that the corresponding paper table also omits
            // (e.g. Redistribution before §5.2).
            if self.columns.iter().all(|c| c.phases.get(phase) == 0.0) {
                continue;
            }
            out.push_str(&format!("{:<16}", phase.label()));
            for c in &self.columns {
                out.push_str(&format!(
                    "{:>12.3}  {:>6.1}",
                    c.phases.get(phase),
                    c.phases.percent(phase)
                ));
            }
            out.push('\n');
        }
        out.push_str(&format!("{:<16}", "Total"));
        for c in &self.columns {
            out.push_str(&format!("{:>12.3}  {:>6}", c.total, ""));
        }
        out.push('\n');
        out
    }
}

/// A generic named data series (used for the figures: speed-ups, per-rank
/// breakdowns, scaling curves).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Series {
    /// Series caption.
    pub title: String,
    /// Column headers (first is the x label).
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<f64>>,
}

impl Series {
    /// Creates an empty series with the given headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Series {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, row: Vec<f64>) {
        assert_eq!(row.len(), self.headers.len(), "series row width mismatch");
        self.rows.push(row);
    }

    /// Renders the series as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{}\n", self.title));
        for h in &self.headers {
            out.push_str(&format!("{h:>16}"));
        }
        out.push('\n');
        for row in &self.rows {
            for v in row {
                if v.fract() == 0.0 && v.abs() < 1e9 {
                    out.push_str(&format!("{:>16}", *v as i64));
                } else {
                    out.push_str(&format!("{v:>16.4}"));
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_table_render_includes_all_columns() {
        let mut t = PhaseTable::new("Table X");
        t.push(1, PhaseTimes { force: 2.0, tree: 1.0, ..Default::default() });
        t.push(4, PhaseTimes { force: 0.5, tree: 0.25, ..Default::default() });
        let text = t.render();
        assert!(text.contains("Table X"));
        assert!(text.contains("Force Comp."));
        assert!(text.contains("Tree-building"));
        assert!(!text.contains("Redistribution"), "all-zero rows are omitted");
        assert!(text.contains("Total"));
        assert_eq!(t.column(4).unwrap().total, 0.75);
        assert!(t.column(2).is_none());
    }

    #[test]
    fn series_render_and_width_check() {
        let mut s = Series::new("Figure Y", &["threads", "speedup"]);
        s.push(vec![1.0, 1.0]);
        s.push(vec![8.0, 5.5]);
        let text = s.render();
        assert!(text.contains("Figure Y"));
        assert!(text.contains("speedup"));
        assert!(text.contains("5.5"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn series_rejects_ragged_rows() {
        let mut s = Series::new("bad", &["a", "b"]);
        s.push(vec![1.0]);
    }
}
