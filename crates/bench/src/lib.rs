//! # bh-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation from the
//! emulated implementation.  The entry point is the `tables` binary
//! (`cargo run -p bh-bench --release --bin tables -- --help`); this library
//! holds the experiment definitions so that they are also usable from tests
//! and Criterion benches.
//!
//! The paper's runs use 2M bodies (strong scaling) and 250K bodies/thread
//! (weak scaling) on up to 1024 threads of a Power5 cluster.  Those sizes are
//! impractical for an emulator running on one host, so every experiment has
//! a scaled-down default and accepts `--bodies` / `--weak-bodies` /
//! `--threads` overrides; EXPERIMENTS.md records which scale was used for the
//! committed results.  Because all reported times are *simulated*, scaling
//! the workload changes magnitudes but preserves the qualitative shape
//! (who wins, where the crossovers are), which is what the reproduction
//! targets.

pub mod experiments;
pub mod scale;
pub mod table;

pub use experiments::{run_experiment, Experiment, ExperimentOutput};
pub use scale::Scale;
pub use table::{PhaseTable, Series};
