//! # bh-bench — experiment harness and performance subsystem
//!
//! Two entry points:
//!
//! * `tables` (`cargo run -p bh-bench --release --bin tables -- --help`) —
//!   regenerates every table and figure of the paper's evaluation from the
//!   emulated implementation.
//! * `benchsuite` (`cargo run -p bh-bench --release --bin benchsuite`) —
//!   the performance subsystem: sweeps scenario × backend × opt-level ×
//!   machine-shape through the backend registry, measures the
//!   leaf-coalesced force kernel against the per-body walk, and emits the
//!   schema-versioned `BENCH_*.json` record the CI perf gate diffs against
//!   (see [`suite`] and `engine::bench`).
//!
//! This library holds the experiment and suite definitions so that they are
//! also usable from tests and Criterion benches.
//!
//! The paper's runs use 2M bodies (strong scaling) and 250K bodies/thread
//! (weak scaling) on up to 1024 threads of a Power5 cluster.  Those sizes are
//! impractical for an emulator running on one host, so every experiment has
//! a scaled-down default and accepts `--bodies` / `--weak-bodies` /
//! `--threads` overrides; EXPERIMENTS.md records which scale was used for the
//! committed results.  Because all reported times are *simulated*, scaling
//! the workload changes magnitudes but preserves the qualitative shape
//! (who wins, where the crossovers are), which is what the reproduction
//! targets.

pub mod experiments;
pub mod scale;
pub mod suite;
pub mod table;

pub use experiments::{run_experiment, Experiment, ExperimentOutput};
pub use scale::Scale;
pub use suite::{full_grid, kernel_plan, quick_grid, run_kernel_pair, run_point, run_suite};
pub use table::{PhaseTable, Series};
