//! Property-based tests for the physics substrate.

use nbody::body::{bounding_box, center_of_mass, root_cell, Body};
use nbody::direct::pairwise_acceleration;
use nbody::morton;
use nbody::plummer::{generate, PlummerConfig};
use nbody::vec3::Vec3;
use proptest::prelude::*;

fn arb_vec3(range: f64) -> impl Strategy<Value = Vec3> {
    (-range..range, -range..range, -range..range).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn arb_bodies(max: usize) -> impl Strategy<Value = Vec<Body>> {
    prop::collection::vec((arb_vec3(100.0), 0.001f64..10.0), 1..max).prop_map(|list| {
        list.into_iter()
            .enumerate()
            .map(|(i, (pos, mass))| Body::at_rest(i as u32, pos, mass))
            .collect()
    })
}

proptest! {
    #[test]
    fn morton_roundtrip(x in 0u64..(1 << 21), y in 0u64..(1 << 21), z in 0u64..(1 << 21)) {
        let code = morton::encode_ints(x, y, z);
        prop_assert_eq!(morton::decode_ints(code), (x, y, z));
    }

    #[test]
    fn morton_codes_are_coordinatewise_monotone(
        p in arb_vec3(10.0),
        dx in 0.0f64..10.0, dy in 0.0f64..10.0, dz in 0.0f64..10.0,
    ) {
        // If every coordinate of q is at least p's, p's Morton code cannot
        // exceed q's (both mapped inside the same box): the interleaved code
        // is a sum of three per-axis monotone functions over disjoint bits.
        let q = p + Vec3::new(dx, dy, dz);
        let center = Vec3::ZERO;
        let rsize = 64.0;
        prop_assert!(morton::encode(p, center, rsize) <= morton::encode(q, center, rsize));
    }

    #[test]
    fn bounding_box_contains_every_body(bodies in arb_bodies(64)) {
        let (lo, hi) = bounding_box(&bodies);
        for b in &bodies {
            prop_assert!(b.pos.x >= lo.x - 1e-12 && b.pos.x <= hi.x + 1e-12);
            prop_assert!(b.pos.y >= lo.y - 1e-12 && b.pos.y <= hi.y + 1e-12);
            prop_assert!(b.pos.z >= lo.z - 1e-12 && b.pos.z <= hi.z + 1e-12);
        }
    }

    #[test]
    fn root_cell_contains_every_body(bodies in arb_bodies(64)) {
        let (center, rsize) = root_cell(&bodies);
        for b in &bodies {
            prop_assert!((b.pos - center).max_abs_component() <= rsize / 2.0 + 1e-9);
        }
        // rsize is a power of two.
        prop_assert!((rsize.log2() - rsize.log2().round()).abs() < 1e-12);
    }

    #[test]
    fn center_of_mass_is_inside_bounding_box(bodies in arb_bodies(64)) {
        let (lo, hi) = bounding_box(&bodies);
        let com = center_of_mass(&bodies);
        prop_assert!(com.x >= lo.x - 1e-9 && com.x <= hi.x + 1e-9);
        prop_assert!(com.y >= lo.y - 1e-9 && com.y <= hi.y + 1e-9);
        prop_assert!(com.z >= lo.z - 1e-9 && com.z <= hi.z + 1e-9);
    }

    #[test]
    fn pairwise_forces_obey_newtons_third_law(
        a in arb_vec3(50.0),
        b in arb_vec3(50.0),
        ma in 0.01f64..100.0,
        mb in 0.01f64..100.0,
        eps in 0.0f64..1.0,
    ) {
        prop_assume!(a.dist(b) > 1e-6);
        let (acc_on_a, _) = pairwise_acceleration(a, b, mb, eps);
        let (acc_on_b, _) = pairwise_acceleration(b, a, ma, eps);
        let f_a = acc_on_a * ma;
        let f_b = acc_on_b * mb;
        prop_assert!((f_a + f_b).norm() <= 1e-9 * f_a.norm().max(1e-12));
    }

    #[test]
    fn pairwise_force_is_attractive(a in arb_vec3(50.0), b in arb_vec3(50.0), m in 0.01f64..10.0) {
        prop_assume!(a.dist(b) > 1e-3);
        let (acc, phi) = pairwise_acceleration(a, b, m, 0.0);
        // Acceleration points from a towards b.
        prop_assert!(acc.dot(b - a) > 0.0);
        prop_assert!(phi < 0.0);
    }

    #[test]
    fn plummer_is_deterministic_and_centred(n in 2usize..200, seed in 0u64..1000) {
        let a = generate(&PlummerConfig::new(n, seed));
        let b = generate(&PlummerConfig::new(n, seed));
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), n);
        let com = center_of_mass(&a);
        prop_assert!(com.norm() < 1e-9);
    }

    #[test]
    fn vec3_octant_roundtrip(p in arb_vec3(10.0), c in arb_vec3(10.0)) {
        let octant = p.octant_of(c);
        prop_assert!(octant < 8);
        // The octant bits must match the per-axis comparisons.
        prop_assert_eq!(octant & 1 != 0, p.x >= c.x);
        prop_assert_eq!(octant & 2 != 0, p.y >= c.y);
        prop_assert_eq!(octant & 4 != 0, p.z >= c.z);
    }
}
