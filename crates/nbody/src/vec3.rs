//! A minimal 3-component vector type.
//!
//! The force kernels only need a handful of operations; this type keeps them
//! inlineable and `Copy` so that `Body` stays a plain-old-data record that the
//! PGAS layer can move with `memcpy`-like semantics.

use serde::{Deserialize, Serialize};
use std::iter::Sum;
use std::ops::{
    Add, AddAssign, Div, DivAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign,
};

/// A 3-component double-precision vector.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Creates a vector with all components equal to `v`.
    #[inline]
    pub const fn splat(v: f64) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Squared distance to `other`.
    #[inline]
    pub fn dist_sq(self, other: Vec3) -> f64 {
        (self - other).norm_sq()
    }

    /// Distance to `other`.
    #[inline]
    pub fn dist(self, other: Vec3) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, other: Vec3) -> Vec3 {
        Vec3::new(self.x.min(other.x), self.y.min(other.y), self.z.min(other.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, other: Vec3) -> Vec3 {
        Vec3::new(self.x.max(other.x), self.y.max(other.y), self.z.max(other.z))
    }

    /// Largest component.
    #[inline]
    pub fn max_component(self) -> f64 {
        self.x.max(self.y).max(self.z)
    }

    /// Smallest component.
    #[inline]
    pub fn min_component(self) -> f64 {
        self.x.min(self.y).min(self.z)
    }

    /// Largest absolute component (useful for cube bounding boxes).
    #[inline]
    pub fn max_abs_component(self) -> f64 {
        self.x.abs().max(self.y.abs()).max(self.z.abs())
    }

    /// Returns `true` if every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Returns the octant index (0..8) of `self` relative to `center`.
    ///
    /// Bit 0 is set when `x >= center.x`, bit 1 for `y`, bit 2 for `z`.
    /// This is the child-selection rule used by every octree in the workspace,
    /// so that all of them agree on geometry.
    #[inline]
    pub fn octant_of(self, center: Vec3) -> usize {
        (usize::from(self.x >= center.x))
            | (usize::from(self.y >= center.y) << 1)
            | (usize::from(self.z >= center.z) << 2)
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl MulAssign<f64> for Vec3 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        *self = *self * rhs;
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl DivAssign<f64> for Vec3 {
    #[inline]
    fn div_assign(&mut self, rhs: f64) {
        *self = *self / rhs;
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl Sum for Vec3 {
    fn sum<I: Iterator<Item = Vec3>>(iter: I) -> Vec3 {
        iter.fold(Vec3::ZERO, |a, b| a + b)
    }
}

impl Index<usize> for Vec3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        match i {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index out of range: {i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 5.0, 0.5);
        assert_eq!(a + Vec3::ZERO, a);
        assert_eq!(a - a, Vec3::ZERO);
        assert_eq!(a + b, b + a);
        assert_eq!((a + b) - b, a);
        assert_eq!(a * 1.0, a);
        assert_eq!(a * 2.0, a + a);
        assert_eq!(-a, a * -1.0);
        assert_eq!(a / 2.0, a * 0.5);
    }

    #[test]
    fn dot_and_norm() {
        let a = Vec3::new(3.0, 4.0, 0.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.norm_sq(), 25.0);
        assert_eq!(a.dot(Vec3::new(0.0, 0.0, 1.0)), 0.0);
        assert_eq!(Vec3::new(1.0, 0.0, 0.0).dot(Vec3::new(1.0, 0.0, 0.0)), 1.0);
    }

    #[test]
    fn distances() {
        let a = Vec3::new(1.0, 1.0, 1.0);
        let b = Vec3::new(2.0, 2.0, 2.0);
        assert!((a.dist(b) - 3.0_f64.sqrt()).abs() < 1e-12);
        assert_eq!(a.dist_sq(a), 0.0);
    }

    #[test]
    fn min_max_components() {
        let a = Vec3::new(1.0, -2.0, 3.0);
        let b = Vec3::new(0.0, 5.0, -1.0);
        assert_eq!(a.min(b), Vec3::new(0.0, -2.0, -1.0));
        assert_eq!(a.max(b), Vec3::new(1.0, 5.0, 3.0));
        assert_eq!(a.max_component(), 3.0);
        assert_eq!(a.min_component(), -2.0);
        assert_eq!(a.max_abs_component(), 3.0);
        assert_eq!(Vec3::new(-7.0, 1.0, 2.0).max_abs_component(), 7.0);
    }

    #[test]
    fn octants_cover_all_eight() {
        let c = Vec3::ZERO;
        let mut seen = [false; 8];
        for &x in &[-1.0, 1.0] {
            for &y in &[-1.0, 1.0] {
                for &z in &[-1.0, 1.0] {
                    seen[Vec3::new(x, y, z).octant_of(c)] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn octant_boundary_is_upper_child() {
        // A point exactly on the split plane goes to the >= side.
        assert_eq!(Vec3::ZERO.octant_of(Vec3::ZERO), 0b111);
    }

    #[test]
    fn indexing() {
        let mut a = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(a[0], 1.0);
        assert_eq!(a[1], 2.0);
        assert_eq!(a[2], 3.0);
        a[1] = 9.0;
        assert_eq!(a.y, 9.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn indexing_out_of_range_panics() {
        let a = Vec3::ZERO;
        let _ = a[3];
    }

    #[test]
    fn sum_of_vectors() {
        let vs = vec![Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 2.0, 0.0), Vec3::new(0.0, 0.0, 3.0)];
        let s: Vec3 = vs.into_iter().sum();
        assert_eq!(s, Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn finiteness() {
        assert!(Vec3::new(1.0, 2.0, 3.0).is_finite());
        assert!(!Vec3::new(f64::NAN, 0.0, 0.0).is_finite());
        assert!(!Vec3::new(0.0, f64::INFINITY, 0.0).is_finite());
    }
}
