//! # nbody — N-body physics substrate
//!
//! This crate provides the physical building blocks used by the Barnes-Hut
//! reproduction of *"Optimizing the Barnes-Hut Algorithm in UPC"*
//! (Zhang, Behzad, Snir; SC 2011):
//!
//! * [`Vec3`] — a small 3-component vector type with the operations the
//!   force kernels need.
//! * [`Body`] — the particle record (position, velocity, acceleration, mass,
//!   work cost from the previous step) shared by every solver in the
//!   workspace.
//! * [`plummer`] — the Plummer-model initial-condition generator used by the
//!   paper (M = −4E = G = 1, following Aarseth, Hénon and Wielen).
//! * [`morton`] — 3-D Morton (Z-order) codes, used for locality-preserving
//!   body orderings and costzones-style partitioning.
//! * [`direct`] — the O(n²) direct-summation force computation, used as the
//!   accuracy baseline against which Barnes-Hut forces are validated.
//! * [`soa`] — structure-of-arrays point-mass batches ([`SoaBodies`]): the
//!   leaf-coalesced inner loop shared by the cached tree walks and the
//!   direct solvers (bit-identical to the scalar loop, faster layout).
//! * [`integrate`] — the leapfrog (kick-drift-kick) integrator with the
//!   SPLASH-2 default time step.
//! * [`energy`] — kinetic/potential energy and virial diagnostics.
//! * [`stats`] — structural statistics (Lagrangian radii, velocity
//!   dispersion, radial profiles) used to validate the generator and to give
//!   the examples physically meaningful output.
//!
//! Everything here is sequential and deterministic; parallel and distributed
//! concerns live in the `pgas` and `bh` crates.

pub mod body;
pub mod direct;
pub mod energy;
pub mod integrate;
pub mod morton;
pub mod plummer;
pub mod soa;
pub mod stats;
pub mod vec3;

pub use body::Body;
pub use soa::SoaBodies;
pub use vec3::Vec3;

/// Gravitational constant used throughout the workspace.
///
/// The paper (and SPLASH-2) use natural units with `G = 1`.
pub const G: f64 = 1.0;

/// Default opening-criterion parameter θ (SPLASH-2 default, §4.1 of the paper).
pub const DEFAULT_THETA: f64 = 1.0;

/// Default potential-softening term ε (SPLASH-2 default).
pub const DEFAULT_EPS: f64 = 0.05;

/// Default time step (SPLASH-2 default, §4.1 of the paper: 0.025 s).
pub const DEFAULT_DT: f64 = 0.025;
