//! Structural statistics of a body distribution.
//!
//! These helpers characterise the *shape* of a particle distribution: how
//! centrally concentrated it is, how fast it is moving, and how its mass is
//! arranged radially.  They serve two purposes in the workspace:
//!
//! * validating the Plummer generator against the model's known analytic
//!   properties (half-mass radius, central concentration, isotropy), and
//! * giving the examples something physically meaningful to print while they
//!   exercise the solvers (e.g. watching Lagrangian radii evolve during a
//!   collision).
//!
//! None of this appears in the paper's evaluation; it is supporting
//! diagnostics for the physics substrate.

use crate::body::{center_of_mass, total_mass, Body};
use crate::vec3::Vec3;

/// Radii of the spheres (centred on the centre of mass) enclosing the given
/// fractions of the total mass.
///
/// `fractions` must be sorted ascending and lie in `(0, 1]`.  Returns one
/// radius per requested fraction; returns all zeros for an empty system.
pub fn lagrangian_radii(bodies: &[Body], fractions: &[f64]) -> Vec<f64> {
    assert!(fractions.windows(2).all(|w| w[0] <= w[1]), "fractions must be sorted ascending");
    assert!(fractions.iter().all(|&f| f > 0.0 && f <= 1.0), "fractions must lie in (0, 1]");
    if bodies.is_empty() {
        return vec![0.0; fractions.len()];
    }
    let com = center_of_mass(bodies);
    let mut by_radius: Vec<(f64, f64)> = bodies.iter().map(|b| (b.pos.dist(com), b.mass)).collect();
    by_radius.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let total = total_mass(bodies);

    let mut out = Vec::with_capacity(fractions.len());
    let mut acc = 0.0;
    let mut idx = 0usize;
    for &f in fractions {
        let target = f * total;
        while idx < by_radius.len() && acc + by_radius[idx].1 < target {
            acc += by_radius[idx].1;
            idx += 1;
        }
        out.push(if idx < by_radius.len() {
            by_radius[idx].0
        } else {
            by_radius.last().unwrap().0
        });
    }
    out
}

/// Radius of the sphere (centred on the centre of mass) containing half of
/// the total mass.
pub fn half_mass_radius(bodies: &[Body]) -> f64 {
    lagrangian_radii(bodies, &[0.5])[0]
}

/// One-dimensional velocity dispersion, `sqrt(⟨|v − ⟨v⟩|²⟩ / 3)`.
pub fn velocity_dispersion(bodies: &[Body]) -> f64 {
    if bodies.is_empty() {
        return 0.0;
    }
    let total = total_mass(bodies);
    if total == 0.0 {
        return 0.0;
    }
    let mean: Vec3 = bodies.iter().map(|b| b.vel * b.mass).sum::<Vec3>() / total;
    let var: f64 = bodies.iter().map(|b| b.mass * (b.vel - mean).norm_sq()).sum::<f64>() / total;
    (var / 3.0).sqrt()
}

/// A single shell of a radial mass profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadialShell {
    /// Inner radius of the shell.
    pub r_inner: f64,
    /// Outer radius of the shell.
    pub r_outer: f64,
    /// Number of bodies in the shell.
    pub count: usize,
    /// Mass in the shell.
    pub mass: f64,
    /// Mean mass density of the shell (mass / shell volume).
    pub density: f64,
}

/// Bins bodies into `nbins` equal-width radial shells between the centre of
/// mass and the radius of the most distant body.
///
/// Returns an empty vector for an empty system or when `nbins` is zero.
pub fn radial_profile(bodies: &[Body], nbins: usize) -> Vec<RadialShell> {
    if bodies.is_empty() || nbins == 0 {
        return Vec::new();
    }
    let com = center_of_mass(bodies);
    let radii: Vec<f64> = bodies.iter().map(|b| b.pos.dist(com)).collect();
    let r_max = radii.iter().copied().fold(0.0_f64, f64::max).max(f64::MIN_POSITIVE);
    let width = r_max / nbins as f64;

    let mut counts = vec![0usize; nbins];
    let mut masses = vec![0.0_f64; nbins];
    for (b, &r) in bodies.iter().zip(&radii) {
        let bin = ((r / width) as usize).min(nbins - 1);
        counts[bin] += 1;
        masses[bin] += b.mass;
    }

    (0..nbins)
        .map(|i| {
            let r_inner = i as f64 * width;
            let r_outer = (i + 1) as f64 * width;
            let volume = 4.0 / 3.0 * std::f64::consts::PI * (r_outer.powi(3) - r_inner.powi(3));
            RadialShell {
                r_inner,
                r_outer,
                count: counts[i],
                mass: masses[i],
                density: masses[i] / volume,
            }
        })
        .collect()
}

/// A compact structural summary of a body distribution, suitable for
/// printing from examples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSummary {
    /// Number of bodies.
    pub nbodies: usize,
    /// Total mass.
    pub total_mass: f64,
    /// Distance of the centre of mass from the origin.
    pub com_offset: f64,
    /// Half-mass radius.
    pub half_mass_radius: f64,
    /// Radius enclosing 90% of the mass.
    pub r90: f64,
    /// One-dimensional velocity dispersion.
    pub velocity_dispersion: f64,
}

/// Computes a [`ClusterSummary`] for the given bodies.
pub fn summarize(bodies: &[Body]) -> ClusterSummary {
    if bodies.is_empty() {
        return ClusterSummary {
            nbodies: 0,
            total_mass: 0.0,
            com_offset: 0.0,
            half_mass_radius: 0.0,
            r90: 0.0,
            velocity_dispersion: 0.0,
        };
    }
    let radii = lagrangian_radii(bodies, &[0.5, 0.9]);
    ClusterSummary {
        nbodies: bodies.len(),
        total_mass: total_mass(bodies),
        com_offset: center_of_mass(bodies).norm(),
        half_mass_radius: radii[0],
        r90: radii[1],
        velocity_dispersion: velocity_dispersion(bodies),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plummer::{generate, PlummerConfig};

    #[test]
    fn empty_system() {
        assert_eq!(lagrangian_radii(&[], &[0.5]), vec![0.0]);
        assert_eq!(half_mass_radius(&[]), 0.0);
        assert_eq!(velocity_dispersion(&[]), 0.0);
        assert!(radial_profile(&[], 10).is_empty());
        assert_eq!(summarize(&[]).nbodies, 0);
    }

    #[test]
    fn lagrangian_radii_are_monotone() {
        let bodies = generate(&PlummerConfig::new(3000, 5));
        let fr = [0.1, 0.25, 0.5, 0.75, 0.9];
        let radii = lagrangian_radii(&bodies, &fr);
        for w in radii.windows(2) {
            assert!(w[0] <= w[1], "Lagrangian radii must be monotone: {radii:?}");
        }
        assert!(radii[0] > 0.0);
    }

    #[test]
    fn equal_mass_shell_counts() {
        // Four equal-mass bodies at radii 1..4: the 50% radius is the radius
        // of the body that carries the cumulative mass past 0.5.
        let bodies: Vec<Body> =
            (1..=4).map(|i| Body::at_rest(i as u32, Vec3::new(i as f64, 0.0, 0.0), 1.0)).collect();
        // Centre of mass is at x = 2.5, so radii from the COM are
        // 1.5, 0.5, 0.5, 1.5.
        let r = lagrangian_radii(&bodies, &[0.5, 1.0]);
        assert!((r[0] - 0.5).abs() < 1e-12);
        assert!((r[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn plummer_half_mass_radius_matches_theory() {
        // With the SPLASH-2 length rescaling a = 3π/16, the analytic Plummer
        // half-mass radius is a / sqrt(2^(2/3) − 1) ≈ 0.766.
        let bodies = generate(&PlummerConfig::new(8000, 7));
        let r_half = half_mass_radius(&bodies);
        let a = 3.0 * std::f64::consts::PI / 16.0;
        let expected = a / (2.0_f64.powf(2.0 / 3.0) - 1.0).sqrt();
        let rel = (r_half - expected).abs() / expected;
        assert!(rel < 0.1, "half-mass radius {r_half} vs analytic {expected} (rel {rel})");
    }

    #[test]
    fn plummer_density_decreases_outward() {
        let bodies = generate(&PlummerConfig::new(6000, 9));
        let profile = radial_profile(&bodies, 8);
        assert_eq!(profile.len(), 8);
        // The innermost shell must be far denser than an outer shell.
        assert!(profile[0].density > 10.0 * profile[4].density.max(1e-12));
        // Shell accounting: counts and masses add up.
        let count: usize = profile.iter().map(|s| s.count).sum();
        let mass: f64 = profile.iter().map(|s| s.mass).sum();
        assert_eq!(count, bodies.len());
        assert!((mass - 1.0).abs() < 1e-9);
    }

    #[test]
    fn radial_profile_bins_tile_the_range() {
        let bodies = generate(&PlummerConfig::new(500, 3));
        let profile = radial_profile(&bodies, 5);
        for w in profile.windows(2) {
            assert!((w[0].r_outer - w[1].r_inner).abs() < 1e-12);
        }
        assert_eq!(profile[0].r_inner, 0.0);
    }

    #[test]
    fn velocity_dispersion_of_cold_system_is_zero() {
        let bodies: Vec<Body> =
            (0..10).map(|i| Body::at_rest(i, Vec3::new(i as f64, 0.0, 0.0), 1.0)).collect();
        assert_eq!(velocity_dispersion(&bodies), 0.0);
    }

    #[test]
    fn velocity_dispersion_ignores_bulk_motion() {
        // A uniformly drifting cold system still has zero dispersion.
        let bodies: Vec<Body> = (0..10)
            .map(|i| Body::new(i, Vec3::new(i as f64, 0.0, 0.0), Vec3::new(3.0, -1.0, 0.5), 1.0))
            .collect();
        assert!(velocity_dispersion(&bodies) < 1e-12);
    }

    #[test]
    fn plummer_summary_is_sensible() {
        let bodies = generate(&PlummerConfig::new(4000, 21));
        let s = summarize(&bodies);
        assert_eq!(s.nbodies, 4000);
        assert!((s.total_mass - 1.0).abs() < 1e-9);
        assert!(s.com_offset < 1e-9, "generator centres the COM");
        assert!(s.half_mass_radius > 0.3 && s.half_mass_radius < 1.5);
        assert!(s.r90 > s.half_mass_radius);
        assert!(s.velocity_dispersion > 0.1 && s.velocity_dispersion < 1.0);
    }

    #[test]
    #[should_panic(expected = "sorted ascending")]
    fn unsorted_fractions_panic() {
        let bodies = generate(&PlummerConfig::new(16, 1));
        lagrangian_radii(&bodies, &[0.9, 0.5]);
    }

    #[test]
    #[should_panic(expected = "lie in (0, 1]")]
    fn out_of_range_fraction_panics() {
        let bodies = generate(&PlummerConfig::new(16, 1));
        lagrangian_radii(&bodies, &[0.0, 0.5]);
    }
}
