//! The particle record shared by every solver in the workspace.

use crate::vec3::Vec3;
use serde::{Deserialize, Serialize};

/// A single simulated body (particle).
///
/// The layout mirrors the SPLASH-2 `body` record that the paper's UPC code
/// inherits: position, velocity, acceleration, mass, plus the per-body *cost*
/// (the number of cell/body interactions performed for this body in the
/// previous force-computation phase).  The cost drives the costzones
/// partitioner and the subspace tree-building algorithm of §6 of the paper.
///
/// The type is `Copy`-free but plain data, so the PGAS layer can move bodies
/// between ranks with bulk transfers (the paper's `upc_memget_ilist`).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Body {
    /// Position.
    pub pos: Vec3,
    /// Velocity.
    pub vel: Vec3,
    /// Acceleration computed by the most recent force phase.
    pub acc: Vec3,
    /// Gravitational potential at the body (diagnostic).
    pub phi: f64,
    /// Mass.
    pub mass: f64,
    /// Work performed for this body in the previous force phase
    /// (number of interactions).  Used for cost-based load balancing.
    pub cost: u32,
    /// Stable identity of the body, preserved across redistribution, so that
    /// results can be compared between solver variants body-by-body.
    pub id: u32,
}

impl Body {
    /// Creates a body at rest with the given id, position and mass.
    pub fn at_rest(id: u32, pos: Vec3, mass: f64) -> Self {
        Body { pos, vel: Vec3::ZERO, acc: Vec3::ZERO, phi: 0.0, mass, cost: 1, id }
    }

    /// Creates a body with the given id, position, velocity and mass.
    pub fn new(id: u32, pos: Vec3, vel: Vec3, mass: f64) -> Self {
        Body { pos, vel, acc: Vec3::ZERO, phi: 0.0, mass, cost: 1, id }
    }

    /// Kinetic energy of the body, `½ m v²`.
    #[inline]
    pub fn kinetic_energy(&self) -> f64 {
        0.5 * self.mass * self.vel.norm_sq()
    }

    /// Momentum of the body, `m v`.
    #[inline]
    pub fn momentum(&self) -> Vec3 {
        self.vel * self.mass
    }
}

/// Computes the axis-aligned bounding box of a set of bodies.
///
/// Returns `(min, max)`.  Returns a degenerate box at the origin for an empty
/// slice (matching SPLASH-2, which never builds a tree over zero bodies but
/// callers should not panic on the edge case).
pub fn bounding_box(bodies: &[Body]) -> (Vec3, Vec3) {
    if bodies.is_empty() {
        return (Vec3::ZERO, Vec3::ZERO);
    }
    let mut lo = bodies[0].pos;
    let mut hi = bodies[0].pos;
    for b in &bodies[1..] {
        lo = lo.min(b.pos);
        hi = hi.max(b.pos);
    }
    (lo, hi)
}

/// Computes the SPLASH-2 root-cell geometry for a set of bodies.
///
/// SPLASH-2 (and the paper, §5.1: the shared scalar `rsize`) keeps the root
/// cell as a cube centred at `center` with side `rsize`, where `rsize` is
/// expanded to the next power of two that contains every body.  Keeping the
/// side a power of two makes cell sides exactly representable and keeps the
/// tree geometry identical from step to step when bodies move slowly.
///
/// Returns `(center, rsize)`.
pub fn root_cell(bodies: &[Body]) -> (Vec3, f64) {
    let (lo, hi) = bounding_box(bodies);
    let center = (lo + hi) * 0.5;
    let half_extent = (hi - lo).max_abs_component() * 0.5;
    // Expand to the next power of two, with a floor of 1.0 like SPLASH-2.
    let mut rsize = 1.0_f64;
    while rsize < 2.0 * half_extent + 1e-12 {
        rsize *= 2.0;
    }
    (center, rsize)
}

/// Total mass of a set of bodies.
pub fn total_mass(bodies: &[Body]) -> f64 {
    bodies.iter().map(|b| b.mass).sum()
}

/// Mass-weighted centre of mass of a set of bodies.
///
/// Returns the origin when the total mass is zero.
pub fn center_of_mass(bodies: &[Body]) -> Vec3 {
    let m = total_mass(bodies);
    if m == 0.0 {
        return Vec3::ZERO;
    }
    bodies.iter().map(|b| b.pos * b.mass).sum::<Vec3>() / m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bodies() -> Vec<Body> {
        vec![
            Body::at_rest(0, Vec3::new(-1.0, 0.0, 0.0), 1.0),
            Body::at_rest(1, Vec3::new(1.0, 0.0, 0.0), 1.0),
            Body::at_rest(2, Vec3::new(0.0, 2.0, -3.0), 2.0),
        ]
    }

    #[test]
    fn bounding_box_contains_all() {
        let bodies = sample_bodies();
        let (lo, hi) = bounding_box(&bodies);
        for b in &bodies {
            assert!(b.pos.x >= lo.x && b.pos.x <= hi.x);
            assert!(b.pos.y >= lo.y && b.pos.y <= hi.y);
            assert!(b.pos.z >= lo.z && b.pos.z <= hi.z);
        }
        assert_eq!(lo, Vec3::new(-1.0, 0.0, -3.0));
        assert_eq!(hi, Vec3::new(1.0, 2.0, 0.0));
    }

    #[test]
    fn bounding_box_empty() {
        assert_eq!(bounding_box(&[]), (Vec3::ZERO, Vec3::ZERO));
    }

    #[test]
    fn root_cell_is_power_of_two_and_contains_bodies() {
        let bodies = sample_bodies();
        let (center, rsize) = root_cell(&bodies);
        assert!(rsize.log2().fract().abs() < 1e-12, "rsize {rsize} must be a power of two");
        for b in &bodies {
            let d = b.pos - center;
            assert!(d.max_abs_component() <= rsize / 2.0 + 1e-12);
        }
    }

    #[test]
    fn root_cell_min_size() {
        let bodies = vec![Body::at_rest(0, Vec3::ZERO, 1.0)];
        let (_, rsize) = root_cell(&bodies);
        assert!(rsize >= 1.0);
    }

    #[test]
    fn center_of_mass_weighted() {
        let bodies = vec![
            Body::at_rest(0, Vec3::new(0.0, 0.0, 0.0), 1.0),
            Body::at_rest(1, Vec3::new(4.0, 0.0, 0.0), 3.0),
        ];
        assert_eq!(center_of_mass(&bodies), Vec3::new(3.0, 0.0, 0.0));
        assert_eq!(total_mass(&bodies), 4.0);
    }

    #[test]
    fn center_of_mass_zero_mass() {
        let bodies = vec![Body::at_rest(0, Vec3::new(5.0, 5.0, 5.0), 0.0)];
        assert_eq!(center_of_mass(&bodies), Vec3::ZERO);
    }

    #[test]
    fn kinetic_energy_and_momentum() {
        let b = Body::new(0, Vec3::ZERO, Vec3::new(2.0, 0.0, 0.0), 3.0);
        assert_eq!(b.kinetic_energy(), 6.0);
        assert_eq!(b.momentum(), Vec3::new(6.0, 0.0, 0.0));
    }
}
