//! Leapfrog (kick-drift-kick) time integration.
//!
//! SPLASH-2's `advance()` phase — the "Body-adv." row of every table in the
//! paper — is a leapfrog step: velocities are advanced half a step, positions
//! a full step, and then velocities the remaining half step once new
//! accelerations are available.  The distributed variants in the `bh` crate
//! call [`kick_drift`] / [`kick`] per body; the sequential helpers here are
//! used by the examples and the accuracy tests.

use crate::body::Body;

/// Advances velocity by half a step and position by a full step
/// (the "kick-drift" part of kick-drift-kick), using the acceleration already
/// stored in the body.
#[inline]
pub fn kick_drift(body: &mut Body, dt: f64) {
    body.vel += body.acc * (dt * 0.5);
    body.pos += body.vel * dt;
}

/// Completes the step: advances velocity by the remaining half step using the
/// freshly computed acceleration.
#[inline]
pub fn kick(body: &mut Body, dt: f64) {
    body.vel += body.acc * (dt * 0.5);
}

/// First step bootstrap used by SPLASH-2: on the very first time step the
/// half-kick uses the initial accelerations directly (equivalent to starting
/// the leapfrog with a synchronized state).
#[inline]
pub fn bootstrap(body: &mut Body, dt: f64) {
    // Identical to kick(); kept as a distinct name so call sites read like the
    // SPLASH-2 startup logic they mirror.
    kick(body, dt);
}

/// Advances a whole system one step given a force evaluation function.
///
/// `forces` receives the bodies (with up-to-date positions) and must return
/// the same bodies with `acc`/`phi`/`cost` filled in.  This is the sequential
/// reference integrator used by tests and examples; the distributed solver has
/// its own phase pipeline.
pub fn step<F>(bodies: &mut Vec<Body>, dt: f64, mut forces: F)
where
    F: FnMut(&[Body]) -> Vec<Body>,
{
    for b in bodies.iter_mut() {
        kick_drift(b, dt);
    }
    let with_forces = forces(bodies);
    debug_assert_eq!(with_forces.len(), bodies.len());
    *bodies = with_forces;
    for b in bodies.iter_mut() {
        kick(b, dt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct;
    use crate::energy;
    use crate::vec3::Vec3;

    #[test]
    fn free_particle_moves_linearly() {
        let mut b = Body::new(0, Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0), 1.0);
        for _ in 0..10 {
            kick_drift(&mut b, 0.1);
            kick(&mut b, 0.1);
        }
        assert!((b.pos.x - 1.0).abs() < 1e-12);
        assert!((b.vel.x - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_acceleration_quadratic_in_time() {
        // A particle under constant acceleration a=1 for t=1 (10 steps of 0.1)
        // should land at x = 0.5 * t^2 with the leapfrog being exact for
        // constant acceleration.
        let mut b = Body::at_rest(0, Vec3::ZERO, 1.0);
        b.acc = Vec3::new(1.0, 0.0, 0.0);
        for _ in 0..10 {
            kick_drift(&mut b, 0.1);
            // acceleration stays constant
            kick(&mut b, 0.1);
        }
        assert!((b.pos.x - 0.5).abs() < 1e-12);
        assert!((b.vel.x - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_body_energy_conservation() {
        // Circular-ish two-body orbit integrated with small steps conserves
        // energy to a tight tolerance over many steps.
        let m = 0.5;
        let r = 1.0;
        // circular speed for two equal masses separated by 2r about the COM:
        // v^2 = G * m_other * r / (2r)^2... derive simply: a = G m /(2r)^2 = v^2/r
        let v = (crate::G * m / (4.0 * r)).sqrt();
        let mut bodies = vec![
            Body::new(0, Vec3::new(-r, 0.0, 0.0), Vec3::new(0.0, -v, 0.0), m),
            Body::new(1, Vec3::new(r, 0.0, 0.0), Vec3::new(0.0, v, 0.0), m),
        ];
        let eps = 0.0;
        bodies = direct::compute_forces(&bodies, eps);
        let e0 = energy::total_energy(&bodies, eps);
        for _ in 0..200 {
            step(&mut bodies, 0.01, |bs| direct::compute_forces(bs, eps));
        }
        let e1 = energy::total_energy(&bodies, eps);
        let drift = ((e1 - e0) / e0).abs();
        assert!(drift < 1e-3, "energy drift {drift} too large");
    }

    #[test]
    fn step_applies_forces_once() {
        let mut bodies = vec![Body::new(0, Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0), 1.0)];
        let mut calls = 0;
        step(&mut bodies, 0.1, |bs| {
            calls += 1;
            bs.to_vec()
        });
        assert_eq!(calls, 1);
        assert!((bodies[0].pos.x - 0.1).abs() < 1e-12);
    }
}
