//! Energy and virial diagnostics.
//!
//! These diagnostics are not part of the paper's evaluation, but they are the
//! standard way to verify that an N-body solver is computing sensible physics,
//! and the workspace's integration tests and examples rely on them.

use crate::body::Body;
use crate::vec3::Vec3;
use crate::G;

/// Total kinetic energy `Σ ½ m v²`.
pub fn kinetic_energy(bodies: &[Body]) -> f64 {
    bodies.iter().map(|b| b.kinetic_energy()).sum()
}

/// Total (softened) potential energy `−Σ_{i<j} G m_i m_j / sqrt(r² + ε²)`.
pub fn potential_energy(bodies: &[Body], eps: f64) -> f64 {
    let mut w = 0.0;
    for i in 0..bodies.len() {
        for j in (i + 1)..bodies.len() {
            let d2 = bodies[i].pos.dist_sq(bodies[j].pos) + eps * eps;
            w -= G * bodies[i].mass * bodies[j].mass / d2.sqrt();
        }
    }
    w
}

/// Total energy (kinetic + potential).
pub fn total_energy(bodies: &[Body], eps: f64) -> f64 {
    kinetic_energy(bodies) + potential_energy(bodies, eps)
}

/// Estimate of [`potential_energy`] that stays tractable at any size.
///
/// Up to `max_bodies` bodies the sum is exact.  Beyond that the O(n²) pair
/// sum would dominate everything around it (an hour of CPU at n = 10⁶,
/// where the tree solver itself needs minutes), so the estimate computes
/// the exact pair sum over a deterministic strided subsample and scales it
/// by the pair-count ratio `n(n−1) / k(k−1)` — unbiased when the sample is
/// representative, which a stride over generator output is (generators
/// emit bodies in sampling order, not sorted by position).
pub fn potential_energy_sampled(bodies: &[Body], eps: f64, max_bodies: usize) -> f64 {
    let n = bodies.len();
    if n <= max_bodies || max_bodies < 2 {
        return potential_energy(bodies, eps);
    }
    let stride = n.div_ceil(max_bodies);
    let sample: Vec<&Body> = bodies.iter().step_by(stride).collect();
    let k = sample.len();
    let mut w = 0.0;
    for i in 0..k {
        for j in (i + 1)..k {
            let d2 = sample[i].pos.dist_sq(sample[j].pos) + eps * eps;
            w -= G * sample[i].mass * sample[j].mass / d2.sqrt();
        }
    }
    w * (n * (n - 1)) as f64 / (k * (k - 1)) as f64
}

/// Virial ratio `2T / |W|`; ~1 for a system in virial equilibrium.
pub fn virial_ratio(bodies: &[Body], eps: f64) -> f64 {
    let t = kinetic_energy(bodies);
    let w = potential_energy(bodies, eps);
    if w == 0.0 {
        return f64::INFINITY;
    }
    2.0 * t / w.abs()
}

/// Net momentum of the system.
pub fn total_momentum(bodies: &[Body]) -> Vec3 {
    bodies.iter().map(|b| b.momentum()).sum()
}

/// Net angular momentum of the system about the origin.
pub fn total_angular_momentum(bodies: &[Body]) -> Vec3 {
    bodies
        .iter()
        .map(|b| {
            let p = b.momentum();
            Vec3::new(
                b.pos.y * p.z - b.pos.z * p.y,
                b.pos.z * p.x - b.pos.x * p.z,
                b.pos.x * p.y - b.pos.y * p.x,
            )
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinetic_energy_simple() {
        let bodies = vec![Body::new(0, Vec3::ZERO, Vec3::new(2.0, 0.0, 0.0), 1.5)];
        assert_eq!(kinetic_energy(&bodies), 3.0);
    }

    #[test]
    fn potential_energy_pair() {
        let bodies = vec![
            Body::at_rest(0, Vec3::ZERO, 2.0),
            Body::at_rest(1, Vec3::new(4.0, 0.0, 0.0), 3.0),
        ];
        assert!((potential_energy(&bodies, 0.0) + 1.5).abs() < 1e-12);
        // Softening reduces |W|.
        assert!(potential_energy(&bodies, 1.0) > potential_energy(&bodies, 0.0));
    }

    #[test]
    fn sampled_potential_is_exact_below_the_limit_and_close_above() {
        // A deterministic pseudo-random cloud (splitmix-style), masses 1/n.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut rnd = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) as f64 / u64::MAX as f64 - 0.5
        };
        let n = 4000;
        let bodies: Vec<Body> = (0..n)
            .map(|i| Body::at_rest(i as u32, Vec3::new(rnd(), rnd(), rnd()), 1.0 / n as f64))
            .collect();
        let exact = potential_energy(&bodies, 0.05);
        // At or above the body count the "sample" is the whole set.
        assert_eq!(potential_energy_sampled(&bodies, 0.05, n), exact);
        // An eighth of the bodies still estimates the smooth pair sum well.
        let est = potential_energy_sampled(&bodies, 0.05, n / 8);
        assert!(
            (est - exact).abs() < 0.10 * exact.abs(),
            "sampled potential {est} too far from exact {exact}"
        );
    }

    #[test]
    fn total_energy_sums() {
        let bodies = vec![
            Body::new(0, Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0), 1.0),
            Body::at_rest(1, Vec3::new(1.0, 0.0, 0.0), 1.0),
        ];
        let e = total_energy(&bodies, 0.0);
        assert!((e - (0.5 - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn momentum_and_angular_momentum() {
        let bodies = vec![
            Body::new(0, Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0), 2.0),
            Body::new(1, Vec3::new(-1.0, 0.0, 0.0), Vec3::new(0.0, -1.0, 0.0), 2.0),
        ];
        assert_eq!(total_momentum(&bodies), Vec3::ZERO);
        // Both bodies orbit the same way: Lz = 2 * (1 * 2 * 1) = 4
        assert_eq!(total_angular_momentum(&bodies), Vec3::new(0.0, 0.0, 4.0));
    }

    #[test]
    fn virial_ratio_of_circular_orbit() {
        // For a circular two-body orbit, 2T/|W| = 1 exactly.
        let m = 0.5;
        let r = 1.0;
        let v = (G * m / (4.0 * r)).sqrt();
        let bodies = vec![
            Body::new(0, Vec3::new(-r, 0.0, 0.0), Vec3::new(0.0, -v, 0.0), m),
            Body::new(1, Vec3::new(r, 0.0, 0.0), Vec3::new(0.0, v, 0.0), m),
        ];
        assert!((virial_ratio(&bodies, 0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn virial_ratio_degenerate() {
        let bodies = vec![Body::new(0, Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0), 1.0)];
        assert!(virial_ratio(&bodies, 0.0).is_infinite());
    }
}
