//! Plummer-model initial-condition generator.
//!
//! The paper (§4.1) generates its initial body distribution with the Plummer
//! model of Aarseth, Hénon and Wielen ("A comparison of numerical methods for
//! the study of star cluster dynamics", 1974), with `M = −4E = G = 1`, exactly
//! as SPLASH-2 does.  This module reimplements that generator:
//!
//! * radii are drawn by inverse-transform sampling of the Plummer cumulative
//!   mass profile,
//! * velocities are drawn with von Neumann rejection sampling of the
//!   isotropic velocity distribution `g(q) = q² (1 − q²)^{7/2}`,
//! * positions/velocities are rescaled to standard (Hénon) units and the
//!   centre of mass is moved to the origin with zero net momentum,
//! * like SPLASH-2, bodies are generated in pairs placed symmetrically about
//!   the origin so that the centre of mass stays well conditioned.

use crate::body::Body;
use crate::vec3::Vec3;
use rand::Rng;
use rand::SeedableRng;

/// Scale factor from virial units used by SPLASH-2 (`3π/16`).
const MFRAC: f64 = 0.999; // mass cut-off fraction, as in SPLASH-2

/// Configuration for the Plummer generator.
#[derive(Debug, Clone)]
pub struct PlummerConfig {
    /// Number of bodies to generate.
    pub nbodies: usize,
    /// RNG seed (the generator is fully deterministic given the seed).
    pub seed: u64,
    /// Total mass of the system (the paper uses 1).
    pub total_mass: f64,
}

impl PlummerConfig {
    /// A configuration with the paper's defaults (`M = 1`) and the given size
    /// and seed.
    pub fn new(nbodies: usize, seed: u64) -> Self {
        PlummerConfig { nbodies, seed, total_mass: 1.0 }
    }
}

/// Draws a uniform random unit-sphere-scaled vector with radius `r`.
fn random_direction<R: Rng>(rng: &mut R, r: f64) -> Vec3 {
    // Marsaglia's rejection method: pick a point in the unit ball surface.
    loop {
        let x = rng.gen_range(-1.0..=1.0);
        let y = rng.gen_range(-1.0..=1.0);
        let z = rng.gen_range(-1.0..=1.0);
        let v = Vec3::new(x, y, z);
        let n2 = v.norm_sq();
        if n2 > 1e-10 && n2 <= 1.0 {
            return v * (r / n2.sqrt());
        }
    }
}

/// Generates `cfg.nbodies` bodies following the Plummer model.
///
/// The returned bodies have ids `0..nbodies`, zero acceleration and unit cost.
/// The centre of mass is at the origin and the total momentum is zero
/// (up to floating-point rounding).
pub fn generate(cfg: &PlummerConfig) -> Vec<Body> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
    let n = cfg.nbodies;
    let mut bodies = Vec::with_capacity(n);
    if n == 0 {
        return bodies;
    }
    let rsc = 3.0 * std::f64::consts::PI / 16.0; // length rescaling (Hénon units)
    let vsc = (1.0 / rsc).sqrt(); // velocity rescaling
    let mass = cfg.total_mass / n as f64;

    let mut i = 0usize;
    while i < n {
        // Radius by inverse transform of the cumulative mass profile:
        // m(r) = r^3 / (1 + r^2)^{3/2}  =>  r = (m^{-2/3} - 1)^{-1/2}
        let m: f64 = rng.gen_range(1e-10..MFRAC);
        let r = 1.0 / (m.powf(-2.0 / 3.0) - 1.0).sqrt();
        let pos = random_direction(&mut rng, rsc * r);

        // Velocity magnitude by rejection sampling of g(q) = q^2 (1-q^2)^{7/2}
        // on q in [0, 1]; the maximum of g is ~0.092, SPLASH-2 uses 0.1.
        let q = loop {
            let x: f64 = rng.gen_range(0.0..1.0);
            let y: f64 = rng.gen_range(0.0..0.1);
            if y < x * x * (1.0 - x * x).powf(3.5) {
                break x;
            }
        };
        let vmag = q * (2.0_f64).sqrt() * (1.0 + r * r).powf(-0.25);
        let vel = random_direction(&mut rng, vsc * vmag);

        bodies.push(Body::new(i as u32, pos, vel, mass));
        i += 1;

        // SPLASH-2 generates bodies in symmetric pairs: the second body of the
        // pair mirrors the first through the origin.  This keeps the centre of
        // mass near the origin before the final correction.
        if i < n {
            let mirrored = Body::new(i as u32, -pos, -vel, mass);
            bodies.push(mirrored);
            i += 1;
        }
    }

    // Exact centre-of-mass / momentum correction.
    let total_mass: f64 = bodies.iter().map(|b| b.mass).sum();
    let com: Vec3 = bodies.iter().map(|b| b.pos * b.mass).sum::<Vec3>() / total_mass;
    let mom: Vec3 = bodies.iter().map(|b| b.vel * b.mass).sum::<Vec3>() / total_mass;
    for b in &mut bodies {
        b.pos -= com;
        b.vel -= mom;
    }
    bodies
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::{center_of_mass, total_mass};

    #[test]
    fn generates_requested_count() {
        let bodies = generate(&PlummerConfig::new(1000, 42));
        assert_eq!(bodies.len(), 1000);
        let odd = generate(&PlummerConfig::new(999, 42));
        assert_eq!(odd.len(), 999);
    }

    #[test]
    fn empty_is_ok() {
        assert!(generate(&PlummerConfig::new(0, 1)).is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&PlummerConfig::new(128, 7));
        let b = generate(&PlummerConfig::new(128, 7));
        assert_eq!(a, b);
        let c = generate(&PlummerConfig::new(128, 8));
        assert_ne!(a, c);
    }

    #[test]
    fn total_mass_is_one() {
        let bodies = generate(&PlummerConfig::new(500, 3));
        assert!((total_mass(&bodies) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn center_of_mass_and_momentum_are_zero() {
        let bodies = generate(&PlummerConfig::new(2000, 11));
        let com = center_of_mass(&bodies);
        assert!(com.norm() < 1e-10, "centre of mass {com:?} should be ~0");
        let mom: Vec3 = bodies.iter().map(|b| b.momentum()).sum();
        assert!(mom.norm() < 1e-10, "net momentum {mom:?} should be ~0");
    }

    #[test]
    fn positions_and_velocities_finite() {
        let bodies = generate(&PlummerConfig::new(5000, 13));
        for b in &bodies {
            assert!(b.pos.is_finite());
            assert!(b.vel.is_finite());
            assert!(b.mass > 0.0);
        }
    }

    #[test]
    fn mass_is_centrally_concentrated() {
        // Half-mass radius of a Plummer sphere (in our rescaled units) is
        // roughly 0.77 * (3π/16) ≈ 0.45; check that far more than half of the
        // mass is within radius 1.0 and that a non-trivial tail lies outside.
        let bodies = generate(&PlummerConfig::new(4000, 99));
        let inside = bodies.iter().filter(|b| b.pos.norm() < 1.0).count();
        assert!(inside > bodies.len() * 6 / 10, "inside={inside}");
        assert!(inside < bodies.len(), "there should be a halo tail");
    }

    #[test]
    fn virial_ratio_is_reasonable() {
        // For an equilibrium Plummer sphere 2T/|W| ≈ 1.  With a finite sample
        // and the SPLASH-2 scalings we accept a generous band; the point is to
        // catch gross scaling errors in the generator.
        let bodies = generate(&PlummerConfig::new(3000, 17));
        let t: f64 = bodies.iter().map(|b| b.kinetic_energy()).sum();
        let mut w = 0.0;
        for i in 0..bodies.len() {
            for j in (i + 1)..bodies.len() {
                let d = bodies[i].pos.dist(bodies[j].pos).max(1e-9);
                w -= bodies[i].mass * bodies[j].mass / d;
            }
        }
        let ratio = 2.0 * t / w.abs();
        assert!(ratio > 0.3 && ratio < 2.0, "virial ratio {ratio} out of band");
    }
}
