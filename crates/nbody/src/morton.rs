//! 3-D Morton (Z-order) codes.
//!
//! Warren and Salmon's hashed oct-tree work (cited by the paper, §8) observed
//! that sorting bodies by the Morton code of their coordinates and splitting
//! the sorted list into equal-cost segments yields partitions with good
//! spatial locality.  The workspace uses Morton codes for
//!
//! * the costzones-style partitioner (`octree::costzones`),
//! * ordering subspace leaves in the §6 scalable tree-building algorithm, and
//! * locality-preserving body orderings in the examples.
//!
//! Codes interleave 21 bits per dimension into a 63-bit key, which is enough
//! resolution for every workload in the repository.

use crate::vec3::Vec3;

/// Number of bits kept per dimension.
pub const BITS_PER_DIM: u32 = 21;

/// Spreads the low 21 bits of `v` so that they occupy every third bit.
#[inline]
fn spread(v: u64) -> u64 {
    let mut x = v & ((1 << BITS_PER_DIM) - 1);
    x = (x | (x << 32)) & 0x001f_0000_0000_ffff;
    x = (x | (x << 16)) & 0x001f_0000_ff00_00ff;
    x = (x | (x << 8)) & 0x100f_00f0_0f00_f00f;
    x = (x | (x << 4)) & 0x10c3_0c30_c30c_30c3;
    x = (x | (x << 2)) & 0x1249_2492_4924_9249;
    x
}

/// Interleaves three 21-bit integers into a Morton key.
#[inline]
pub fn encode_ints(x: u64, y: u64, z: u64) -> u64 {
    spread(x) | (spread(y) << 1) | (spread(z) << 2)
}

/// Maps a position inside the cube centred at `center` with side `rsize`
/// to a Morton key.
///
/// Positions outside the cube are clamped to its boundary; this mirrors how
/// SPLASH-2 clamps coordinates when computing sub-indices.
#[inline]
pub fn encode(pos: Vec3, center: Vec3, rsize: f64) -> u64 {
    let scale = (1u64 << BITS_PER_DIM) as f64;
    let half = rsize / 2.0;
    let mut coords = [0u64; 3];
    for (i, c) in coords.iter_mut().enumerate() {
        let normalised = ((pos[i] - (center[i] - half)) / rsize).clamp(0.0, 1.0 - 1e-15);
        *c = (normalised * scale) as u64;
    }
    encode_ints(coords[0], coords[1], coords[2])
}

/// Extracts every third bit starting at bit 0.
#[inline]
fn compact(v: u64) -> u64 {
    let mut x = v & 0x1249_2492_4924_9249;
    x = (x | (x >> 2)) & 0x10c3_0c30_c30c_30c3;
    x = (x | (x >> 4)) & 0x100f_00f0_0f00_f00f;
    x = (x | (x >> 8)) & 0x001f_0000_ff00_00ff;
    x = (x | (x >> 16)) & 0x001f_0000_0000_ffff;
    x = (x | (x >> 32)) & ((1 << BITS_PER_DIM) - 1);
    x
}

/// Inverse of [`encode_ints`]: recovers the three 21-bit integers.
#[inline]
pub fn decode_ints(code: u64) -> (u64, u64, u64) {
    (compact(code), compact(code >> 1), compact(code >> 2))
}

/// Sorts indices `0..items.len()` by the Morton key of the associated
/// positions.  Returns the permutation (does not move the items).
pub fn sort_indices_by_morton(positions: &[Vec3], center: Vec3, rsize: f64) -> Vec<usize> {
    let mut keyed: Vec<(u64, usize)> =
        positions.iter().enumerate().map(|(i, &p)| (encode(p, center, rsize), i)).collect();
    keyed.sort_unstable_by_key(|&(k, i)| (k, i));
    keyed.into_iter().map(|(_, i)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        for &(x, y, z) in &[
            (0u64, 0, 0),
            (1, 2, 3),
            (100, 200, 300),
            (2_000_000, 1_000_000, 1_500_000),
            ((1 << 21) - 1, 0, (1 << 21) - 1),
        ] {
            let code = encode_ints(x, y, z);
            assert_eq!(decode_ints(code), (x, y, z), "roundtrip failed for ({x},{y},{z})");
        }
    }

    #[test]
    fn interleaving_order() {
        // x occupies bit 0, y bit 1, z bit 2.
        assert_eq!(encode_ints(1, 0, 0), 0b001);
        assert_eq!(encode_ints(0, 1, 0), 0b010);
        assert_eq!(encode_ints(0, 0, 1), 0b100);
        assert_eq!(encode_ints(1, 1, 1), 0b111);
        assert_eq!(encode_ints(2, 0, 0), 0b001_000);
    }

    #[test]
    fn spatial_monotonicity_along_axes() {
        // Along a single axis with the other coordinates fixed, Morton order
        // is monotone in that coordinate.
        let center = Vec3::ZERO;
        let rsize = 8.0;
        let mut last = 0;
        for i in 0..16 {
            let p = Vec3::new(-3.5 + i as f64 * 0.45, 0.0, 0.0);
            let code = encode(p, center, rsize);
            assert!(code >= last, "codes must be non-decreasing along +x");
            last = code;
        }
    }

    #[test]
    fn clamping_out_of_box() {
        let center = Vec3::ZERO;
        let rsize = 2.0;
        let corner_max = encode(Vec3::splat(1.0), center, rsize);
        let outside = encode(Vec3::splat(50.0), center, rsize);
        assert_eq!(corner_max, outside);
        let corner_min = encode(Vec3::splat(-1.0), center, rsize);
        let outside_min = encode(Vec3::splat(-50.0), center, rsize);
        assert_eq!(corner_min, outside_min);
        assert!(outside > outside_min);
    }

    #[test]
    fn sort_indices_is_a_permutation() {
        let pts: Vec<Vec3> = (0..100)
            .map(|i| Vec3::new((i * 37 % 13) as f64, (i * 17 % 7) as f64, (i % 5) as f64))
            .collect();
        let order = sort_indices_by_morton(&pts, Vec3::splat(6.0), 16.0);
        let mut seen = vec![false; pts.len()];
        for &i in &order {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn nearby_points_have_nearby_codes() {
        // Coarse locality check: points in the same small sub-cube compare
        // closer to each other than to a point in the opposite corner.
        let center = Vec3::ZERO;
        let rsize = 16.0;
        let a = encode(Vec3::new(-7.0, -7.0, -7.0), center, rsize);
        let b = encode(Vec3::new(-6.9, -6.9, -6.9), center, rsize);
        let c = encode(Vec3::new(7.0, 7.0, 7.0), center, rsize);
        assert!(c > a);
        assert!((b as i128 - a as i128).abs() < (c as i128 - a as i128).abs());
    }
}
