//! Structure-of-arrays point-mass batches for the hot force kernels.
//!
//! Every force engine in the workspace bottoms out in the same inner loop:
//! accumulate [`direct::pairwise_acceleration`](crate::direct::pairwise_acceleration)
//! over a set of source masses.  When those sources are read out of node or
//! body *structs* (an array-of-structures layout), each iteration drags a
//! whole record through the cache to use 32 bytes of it — and for tree
//! walks the records are not even adjacent, so every source is a pointer
//! chase.  [`SoaBodies`] fixes the layout: positions and masses live in
//! contiguous parallel arrays, gathered **once** per batch, and the inner
//! loop streams through them with unit stride.
//!
//! The kernel deliberately evaluates the *identical* floating-point
//! expression in the *identical* order as a scalar loop over the same
//! sources, so batched and per-source accumulation agree **bit for bit** —
//! the equivalence the `batched_kernel` integration tests pin down.  The
//! speedup comes purely from the memory layout, not from reassociating the
//! sums.
//!
//! Users:
//! * `bh`'s cached force walks coalesce the body leaves of each opened cell
//!   into one [`SoaBodies`] arena slice (built at localization time, reused
//!   by every later walk through that cell);
//! * the O(n²) reference solvers ([`direct::compute_forces`]
//!   (crate::direct::compute_forces) and the engine's `direct` backend)
//!   gather the whole system once per step and stream it per target.

use crate::body::Body;
use crate::direct::pairwise_acceleration;
use crate::vec3::Vec3;

/// A batch of point masses in structure-of-arrays layout.
///
/// The four coordinate/mass arrays always have the same length; `ids` carries
/// the global body id of each entry so targets can skip their own
/// self-interaction.
#[derive(Debug, Clone, Default)]
pub struct SoaBodies {
    xs: Vec<f64>,
    ys: Vec<f64>,
    zs: Vec<f64>,
    mass: Vec<f64>,
    ids: Vec<u32>,
}

impl SoaBodies {
    /// An empty batch.
    pub fn new() -> SoaBodies {
        SoaBodies::default()
    }

    /// An empty batch with room for `cap` sources.
    pub fn with_capacity(cap: usize) -> SoaBodies {
        SoaBodies {
            xs: Vec::with_capacity(cap),
            ys: Vec::with_capacity(cap),
            zs: Vec::with_capacity(cap),
            mass: Vec::with_capacity(cap),
            ids: Vec::with_capacity(cap),
        }
    }

    /// Gathers a whole body slice, preserving order.
    pub fn from_bodies(bodies: &[Body]) -> SoaBodies {
        let mut soa = SoaBodies::with_capacity(bodies.len());
        for b in bodies {
            soa.push(b.id, b.pos, b.mass);
        }
        soa
    }

    /// Appends one source and returns its index in the batch.
    pub fn push(&mut self, id: u32, pos: Vec3, mass: f64) -> usize {
        let idx = self.xs.len();
        self.xs.push(pos.x);
        self.ys.push(pos.y);
        self.zs.push(pos.z);
        self.mass.push(mass);
        self.ids.push(id);
        idx
    }

    /// Number of sources in the batch.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// `true` when the batch holds no sources.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Drops all sources, keeping the allocations.
    pub fn clear(&mut self) {
        self.xs.clear();
        self.ys.clear();
        self.zs.clear();
        self.mass.clear();
        self.ids.clear();
    }

    /// Accumulates the acceleration and potential exerted on `target` by the
    /// sources in `start..start + len`, skipping any source whose id equals
    /// `exclude_id`.  Returns the number of interactions evaluated.
    ///
    /// The accumulation order is the batch order, and each interaction uses
    /// [`pairwise_acceleration`] — exactly what a scalar loop over the same
    /// sources computes, so the result is bit-identical to the per-source
    /// path.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn accumulate_excluding_id(
        &self,
        start: usize,
        len: usize,
        target: Vec3,
        exclude_id: u32,
        eps: f64,
        acc: &mut Vec3,
        phi: &mut f64,
    ) -> u32 {
        let end = start + len;
        let (xs, ys, zs) = (&self.xs[start..end], &self.ys[start..end], &self.zs[start..end]);
        let (ms, ids) = (&self.mass[start..end], &self.ids[start..end]);
        let mut interactions = 0u32;
        for j in 0..len {
            if ids[j] == exclude_id {
                continue;
            }
            let (a, p) = pairwise_acceleration(target, Vec3::new(xs[j], ys[j], zs[j]), ms[j], eps);
            *acc += a;
            *phi += p;
            interactions += 1;
        }
        interactions
    }

    /// Accumulates over the whole batch, skipping the source at `exclude`
    /// (by *index*, so coincident bodies and duplicate ids are handled the
    /// way [`crate::direct::compute_forces`] documents).  Returns the number
    /// of interactions evaluated.
    #[inline]
    pub fn accumulate_excluding_index(
        &self,
        target: Vec3,
        exclude: Option<usize>,
        eps: f64,
        acc: &mut Vec3,
        phi: &mut f64,
    ) -> u32 {
        let mut interactions = 0u32;
        for j in 0..self.len() {
            if Some(j) == exclude {
                continue;
            }
            let (a, p) = pairwise_acceleration(
                target,
                Vec3::new(self.xs[j], self.ys[j], self.zs[j]),
                self.mass[j],
                eps,
            );
            *acc += a;
            *phi += p;
            interactions += 1;
        }
        interactions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plummer::{generate, PlummerConfig};

    fn scalar_reference(
        bodies: &[Body],
        target: Vec3,
        exclude_id: u32,
        eps: f64,
    ) -> (Vec3, f64, u32) {
        let mut acc = Vec3::ZERO;
        let mut phi = 0.0;
        let mut n = 0;
        for b in bodies {
            if b.id == exclude_id {
                continue;
            }
            let (a, p) = pairwise_acceleration(target, b.pos, b.mass, eps);
            acc += a;
            phi += p;
            n += 1;
        }
        (acc, phi, n)
    }

    #[test]
    fn batched_accumulation_is_bit_identical_to_scalar_loop() {
        let bodies = generate(&PlummerConfig::new(64, 11));
        let soa = SoaBodies::from_bodies(&bodies);
        for target in &bodies {
            let mut acc = Vec3::ZERO;
            let mut phi = 0.0;
            let n = soa.accumulate_excluding_id(
                0,
                soa.len(),
                target.pos,
                target.id,
                0.05,
                &mut acc,
                &mut phi,
            );
            let (racc, rphi, rn) = scalar_reference(&bodies, target.pos, target.id, 0.05);
            assert_eq!(acc, racc, "accumulation must be bit-identical");
            assert_eq!(phi, rphi);
            assert_eq!(n, rn);
        }
    }

    #[test]
    fn sub_ranges_compose_to_the_whole() {
        // Accumulating [0, k) then [k, n) equals accumulating [0, n):
        // the order of additions is identical, so this is exact.
        let bodies = generate(&PlummerConfig::new(40, 3));
        let soa = SoaBodies::from_bodies(&bodies);
        let target = Vec3::new(0.3, -0.2, 0.7);
        let k = 17;
        let mut acc = Vec3::ZERO;
        let mut phi = 0.0;
        let a = soa.accumulate_excluding_id(0, k, target, u32::MAX, 0.05, &mut acc, &mut phi);
        let b = soa.accumulate_excluding_id(
            k,
            soa.len() - k,
            target,
            u32::MAX,
            0.05,
            &mut acc,
            &mut phi,
        );
        let mut whole_acc = Vec3::ZERO;
        let mut whole_phi = 0.0;
        let n = soa.accumulate_excluding_id(
            0,
            soa.len(),
            target,
            u32::MAX,
            0.05,
            &mut whole_acc,
            &mut whole_phi,
        );
        assert_eq!(acc, whole_acc);
        assert_eq!(phi, whole_phi);
        assert_eq!(a + b, n);
    }

    #[test]
    fn index_exclusion_handles_coincident_bodies() {
        // Two bodies at the same position: excluding by index leaves exactly
        // one finite contribution even with eps = 0.
        let mut bodies = vec![
            Body::at_rest(0, Vec3::new(1.0, 0.0, 0.0), 1.0),
            Body::at_rest(1, Vec3::new(1.0, 0.0, 0.0), 2.0),
        ];
        bodies[1].id = 0; // duplicate id: index exclusion must still work
        let soa = SoaBodies::from_bodies(&bodies);
        let mut acc = Vec3::ZERO;
        let mut phi = 0.0;
        let n = soa.accumulate_excluding_index(bodies[0].pos, Some(0), 0.05, &mut acc, &mut phi);
        assert_eq!(n, 1);
        assert!(acc.is_finite());
    }

    #[test]
    fn push_clear_and_capacity_round_trip() {
        let mut soa = SoaBodies::with_capacity(4);
        assert!(soa.is_empty());
        assert_eq!(soa.push(7, Vec3::new(1.0, 2.0, 3.0), 4.0), 0);
        assert_eq!(soa.push(8, Vec3::new(-1.0, 0.0, 1.0), 2.0), 1);
        assert_eq!(soa.len(), 2);
        let mut acc = Vec3::ZERO;
        let mut phi = 0.0;
        let n = soa.accumulate_excluding_id(1, 1, Vec3::ZERO, 7, 0.0, &mut acc, &mut phi);
        assert_eq!(n, 1, "range accumulation must only see the requested slice");
        soa.clear();
        assert!(soa.is_empty());
    }
}
