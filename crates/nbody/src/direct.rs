//! Direct O(n²) force summation.
//!
//! The paper motivates Barnes-Hut as the remedy to the quadratic cost of the
//! direct method (§3).  This module provides that direct method so that
//!
//! * Barnes-Hut accelerations can be validated against an exact reference
//!   (the integration tests in the workspace root do this for every
//!   optimization level), and
//! * the O(n²) vs O(n log n) crossover can be demonstrated in the benches.
//!
//! The kernel uses Plummer softening, `a_i = Σ_j G m_j r_ij / (r² + ε²)^{3/2}`,
//! identical to the softened kernel in the tree code so that the two agree in
//! the θ → 0 limit.

use crate::body::Body;
use crate::vec3::Vec3;
use crate::G;

/// The result of evaluating the gravitational interaction of a point mass
/// (`mass` at `pos`) on a target position.
///
/// Shared by the direct solver and the tree solvers so that both use exactly
/// the same floating-point expression (this is what makes their results
/// comparable bit-for-bit in the θ → 0 / single-cell cases).
#[inline]
pub fn pairwise_acceleration(
    target: Vec3,
    source_pos: Vec3,
    source_mass: f64,
    eps: f64,
) -> (Vec3, f64) {
    let dr = source_pos - target;
    let dist_sq = dr.norm_sq() + eps * eps;
    let dist = dist_sq.sqrt();
    let inv_d3 = 1.0 / (dist_sq * dist);
    let acc = dr * (G * source_mass * inv_d3);
    let phi = -G * source_mass / dist;
    (acc, phi)
}

/// Computes accelerations and potentials for every body by direct summation,
/// writing the results into `acc` and `phi` fields of the returned copy.
///
/// Self-interaction is skipped by body index, not by position, so coincident
/// bodies are handled.  The sources are gathered once into a
/// structure-of-arrays batch ([`crate::soa::SoaBodies`]) and streamed per
/// target; the accumulation order matches the naive nested loop, so results
/// are bit-identical to it.
pub fn compute_forces(bodies: &[Body], eps: f64) -> Vec<Body> {
    let soa = crate::soa::SoaBodies::from_bodies(bodies);
    let mut out = bodies.to_vec();
    for i in 0..out.len() {
        let mut acc = Vec3::ZERO;
        let mut phi = 0.0;
        soa.accumulate_excluding_index(bodies[i].pos, Some(i), eps, &mut acc, &mut phi);
        out[i].acc = acc;
        out[i].phi = phi;
        out[i].cost = (bodies.len() - 1) as u32;
    }
    out
}

/// Computes the acceleration on a single position due to all `bodies`
/// (excluding any body whose id equals `exclude_id`).
pub fn acceleration_at(bodies: &[Body], target: Vec3, exclude_id: Option<u32>, eps: f64) -> Vec3 {
    let mut acc = Vec3::ZERO;
    for b in bodies {
        if Some(b.id) == exclude_id {
            continue;
        }
        let (a, _) = pairwise_acceleration(target, b.pos, b.mass, eps);
        acc += a;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_body_symmetry() {
        let bodies = vec![
            Body::at_rest(0, Vec3::new(-1.0, 0.0, 0.0), 2.0),
            Body::at_rest(1, Vec3::new(1.0, 0.0, 0.0), 2.0),
        ];
        let out = compute_forces(&bodies, 0.0);
        // Newton's third law: m0*a0 = -m1*a1.
        let f0 = out[0].acc * out[0].mass;
        let f1 = out[1].acc * out[1].mass;
        assert!((f0 + f1).norm() < 1e-12);
        // Magnitude: G m1 m2 / d^2 = 1*2*2/4 = 1 => a = F/m = 0.5
        assert!((out[0].acc.x - 0.5).abs() < 1e-12);
        assert!((out[1].acc.x + 0.5).abs() < 1e-12);
    }

    #[test]
    fn softening_bounds_close_encounters() {
        let bodies = vec![
            Body::at_rest(0, Vec3::ZERO, 1.0),
            Body::at_rest(1, Vec3::new(1e-9, 0.0, 0.0), 1.0),
        ];
        let out = compute_forces(&bodies, 0.05);
        assert!(out[0].acc.is_finite());
        assert!(out[0].acc.norm() < 1.0 / (0.05_f64 * 0.05), "softening must bound the force");
    }

    #[test]
    fn inverse_square_falloff() {
        let eps = 0.0;
        let near = pairwise_acceleration(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0), 1.0, eps).0;
        let far = pairwise_acceleration(Vec3::ZERO, Vec3::new(2.0, 0.0, 0.0), 1.0, eps).0;
        assert!((near.norm() / far.norm() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn potential_is_negative_and_symmetric() {
        let bodies = vec![
            Body::at_rest(0, Vec3::new(0.0, 0.0, 0.0), 1.0),
            Body::at_rest(1, Vec3::new(3.0, 0.0, 0.0), 1.0),
        ];
        let out = compute_forces(&bodies, 0.0);
        assert!(out[0].phi < 0.0);
        assert!((out[0].phi - out[1].phi).abs() < 1e-12);
        assert!((out[0].phi + 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn cost_counts_interactions() {
        let bodies: Vec<Body> =
            (0..5).map(|i| Body::at_rest(i, Vec3::new(i as f64, 0.0, 0.0), 1.0)).collect();
        let out = compute_forces(&bodies, 0.05);
        assert!(out.iter().all(|b| b.cost == 4));
    }

    #[test]
    fn acceleration_at_excludes_self() {
        let bodies = vec![
            Body::at_rest(7, Vec3::ZERO, 1.0),
            Body::at_rest(8, Vec3::new(2.0, 0.0, 0.0), 1.0),
        ];
        let a = acceleration_at(&bodies, Vec3::ZERO, Some(7), 0.0);
        assert!((a.x - 0.25).abs() < 1e-12);
        let b = acceleration_at(&bodies, Vec3::new(5.0, 0.0, 0.0), None, 0.0);
        assert!(b.x < 0.0);
    }
}
