//! Lock-free sort-based tree construction ([`crate::config::TreeBuild::Sorted`]).
//!
//! The global-insertion builders ([`crate::treebuild`], [`crate::mergetree`])
//! share one structural bottleneck: bodies descend a *shared* tree and claim
//! child slots under per-cell locks, so every subdivision is a lock round
//! trip and every descent step a shared-pointer read.  This module builds
//! the *same* tree — bit for bit, see below — without touching a single
//! lock:
//!
//! 1. **Key encoding.**  Every rank encodes each owned body's root-to-leaf
//!    descent path as a 63-bit key ([`descent_key`]): [`KEY_LEVELS`] (21)
//!    octant digits of 3 bits, derived with exactly the arithmetic of the
//!    insertion descent (`octant_of` + `child_geometry` from the root cube),
//!    so sorting by key groups bodies precisely by the subtree the insertion
//!    build would have put them in.
//! 2. **Cooperative global sort.**  A fixed-size histogram over the
//!    [`BUCKETS`] (512) depth-3 key prefixes is allgathered, every rank
//!    computes the same contiguous bucket → rank assignment
//!    ([`assign_buckets`], a deterministic greedy split balancing body
//!    counts), and one all-to-all exchange routes each `(key, body)` record
//!    to its bucket owner, which sorts its slice by `(key, id)` — together:
//!    a globally sorted key array, distributed by contiguous key range.
//! 3. **Prefix-boundary cell construction.**  Each bucket owner builds its
//!    buckets' subtrees recursively from the sorted slice: a run of ≥ 2
//!    bodies sharing a prefix becomes a cell at that prefix's depth, a
//!    single body becomes a leaf ([`build_range`]).  Cells are allocated
//!    *fully formed*, children linked and summaries folded post-order in
//!    fixed octant order — **zero locks**, and no separate centre-of-mass
//!    phase.
//! 4. **Spine hooking.**  Bucket roots are reported to rank 0, which builds
//!    the depth 0–2 spine cells above them with the same post-order fold
//!    and publishes the root ([`build_spine`]).
//!
//! **Bit-for-bit equivalence.**  Under [`crate::config::TreePolicy::Rebuild`]
//! the resulting tree is *identical* to the global-insertion tree: a cell
//! exists at a (depth, prefix) region exactly when ≥ 2 bodies share that
//! region (plus the always-present root) under both algorithms, geometry is
//! derived with the same `child_geometry` arithmetic, and summaries are
//! folded with the same per-cell arithmetic in the same octant order as
//! [`crate::treebuild`]'s centre-of-mass phase — so the force phase sees
//! the same positions, masses and cell cubes to the last bit (pinned by
//! this module's tests and the `sorted_equivalence` proptest).

use crate::cellnode::{CellNode, NodeKind};
use crate::config::SimConfig;
use crate::shared::{read_body, BhShared, RankState};
use nbody::Vec3;
use pgas::{Ctx, GlobalPtr};

/// Depth of the key encoding: 21 octant digits fill 63 of a `u64`'s bits.
pub const KEY_LEVELS: usize = 21;

/// Depth of the bucket split (the cooperative-sort granularity).
const BUCKET_DEPTH: usize = 3;

/// Number of key buckets: all depth-3 octant prefixes.
pub const BUCKETS: usize = 1 << (3 * BUCKET_DEPTH);

/// One body record routed to its bucket owner: the descent key plus the
/// body payload a leaf needs, so building a foreign bucket never touches
/// the body table again.
#[derive(Debug, Clone, Copy)]
struct SortedBody {
    /// 63-bit descent key ([`descent_key`]).
    key: u64,
    /// Body position (the leaf payload).
    pos: Vec3,
    /// Body mass.
    mass: f64,
    /// Global body id.
    id: u32,
    /// Interaction cost from the previous step.
    cost: u32,
}

/// Encodes `pos`'s root-to-leaf descent path from the root cube `(center,
/// half)` as [`KEY_LEVELS`] octant digits, most significant first.
///
/// The digits are produced by the *same* arithmetic the insertion build
/// uses (`octant_of` against the cell centre, then [`CellNode::child_geometry`]
/// to the chosen sub-cube), so key order is descent order bit for bit.
pub fn descent_key(pos: Vec3, center: Vec3, half: f64) -> u64 {
    let mut c = center;
    let mut h = half;
    let mut key = 0u64;
    for _ in 0..KEY_LEVELS {
        let oct = pos.octant_of(c);
        key = (key << 3) | oct as u64;
        let (nc, nh) = child_geometry(c, h, oct);
        c = nc;
        h = nh;
    }
    key
}

/// The bucket (depth-3 key prefix) of a descent key.
#[inline]
fn bucket_of(key: u64) -> usize {
    (key >> (3 * (KEY_LEVELS - BUCKET_DEPTH))) as usize
}

/// Child-cube geometry, routed through [`CellNode::child_geometry`] so the
/// sorted build can never drift from the insertion build's arithmetic.
#[inline]
fn child_geometry(center: Vec3, half: f64, octant: usize) -> (Vec3, f64) {
    CellNode::new_cell(center, half).child_geometry(octant)
}

/// Geometry of bucket `bucket`'s cube: the root cube descended through the
/// bucket's three octant digits.
fn bucket_geometry(center: Vec3, half: f64, bucket: usize) -> (Vec3, f64) {
    let mut c = center;
    let mut h = half;
    for level in (0..BUCKET_DEPTH).rev() {
        let oct = (bucket >> (3 * level)) & 7;
        let (nc, nh) = child_geometry(c, h, oct);
        c = nc;
        h = nh;
    }
    (c, h)
}

/// Deterministic contiguous bucket → rank assignment: walking the buckets
/// in key order, rank `r` is closed once the cumulative body count reaches
/// its share of the total.  Every rank computes this from the same
/// allgathered histogram with pure integer arithmetic, so the assignment
/// never diverges between ranks.
fn assign_buckets(counts: &[u64; BUCKETS], ranks: usize) -> [usize; BUCKETS] {
    let total: u64 = counts.iter().sum();
    let mut owner = [0usize; BUCKETS];
    let mut r = 0usize;
    let mut acc = 0u64;
    for b in 0..BUCKETS {
        owner[b] = r;
        acc += counts[b];
        while r + 1 < ranks && acc * ranks as u64 >= (r as u64 + 1) * total {
            r += 1;
        }
    }
    owner
}

/// Accumulates child summaries with exactly the arithmetic (and, via the
/// callers, exactly the octant order) of the centre-of-mass phase's
/// per-cell fold, so sorted-build summaries match insertion-build
/// summaries to the last bit.
struct Fold {
    mass: f64,
    moment: Vec3,
    cost: u64,
    nbodies: u32,
}

impl Fold {
    fn new() -> Fold {
        Fold { mass: 0.0, moment: Vec3::ZERO, cost: 0, nbodies: 0 }
    }

    /// Folds one child's summary in (a leaf's payload *is* its body record,
    /// so both arms mirror `try_summarize_cell`).
    fn add(&mut self, child: &CellNode) {
        self.mass += child.mass;
        self.moment += child.cofm * child.mass;
        self.cost += child.cost;
        self.nbodies += match child.kind {
            NodeKind::Body => 1,
            NodeKind::Cell => child.nbodies,
        };
    }

    /// Writes the folded summary into `cell` and marks it done.
    fn finish(self, cell: &mut CellNode) {
        cell.mass = self.mass;
        cell.cofm = if self.mass > 0.0 { self.moment / self.mass } else { cell.center };
        cell.cost = self.cost;
        cell.nbodies = self.nbodies;
        cell.done = true;
    }
}

/// Runs the sorted build for this step: encodes, routes, sorts, builds the
/// bucket subtrees and hooks them under the rank-0 spine.  On return (all
/// ranks, after a barrier) the shared root points at a fully summarized
/// tree — the centre-of-mass phase has nothing left to do.
///
/// Returns `(local_seconds, hook_seconds)` simulated sub-phase times for
/// the Figure 8 style breakdown (like the §5.4 merged build: per-rank
/// bucket construction vs. spine hooking).
pub fn sorted_build(
    ctx: &Ctx,
    shared: &BhShared,
    st: &mut RankState,
    cfg: &SimConfig,
    center: Vec3,
    rsize: f64,
) -> (f64, f64) {
    let local_start = ctx.now();
    let root_half = rsize / 2.0;

    // Phase 1: encode every owned body's descent key (21 cheap local tree
    // ops — against the insertion build's 1 shared read + 1 tree op + lock
    // traffic *per level per body*).
    let mut mine: Vec<SortedBody> = Vec::with_capacity(st.my_ids.len());
    let mut histogram = [0u32; BUCKETS];
    for i in 0..st.my_ids.len() {
        let id = st.my_ids[i];
        let b = read_body(ctx, shared, st, cfg, id);
        let key = descent_key(b.pos, center, root_half);
        histogram[bucket_of(key)] += 1;
        mine.push(SortedBody { key, pos: b.pos, mass: b.mass, id, cost: b.cost });
    }
    ctx.charge_tree_ops(st.my_ids.len() as u64 * KEY_LEVELS as u64);

    // Phase 2: global bucket histogram.  A fixed-size array, so the
    // collective bills its real 2 KiB payload.
    let all_histograms = ctx.allgather(histogram);
    let mut counts = [0u64; BUCKETS];
    for h in &all_histograms {
        for (c, n) in counts.iter_mut().zip(h.iter()) {
            *c += *n as u64;
        }
    }
    ctx.charge_local_accesses(BUCKETS as u64);

    // Phase 3: every rank computes the same bucket → rank assignment.
    let owner_of = assign_buckets(&counts, ctx.ranks());

    // Phase 4: all-to-all key routing (billed per byte, like the §6 body
    // exchange).
    let mut outgoing: Vec<Vec<SortedBody>> = vec![Vec::new(); ctx.ranks()];
    for sb in mine {
        outgoing[owner_of[bucket_of(sb.key)]].push(sb);
    }
    let mut local: Vec<SortedBody> = ctx.exchange(outgoing).into_iter().flatten().collect();

    // Phase 5: sort the received slice by (key, id) — with the contiguous
    // bucket ranges this completes the cooperative global sort.
    local.sort_unstable_by_key(|sb| (sb.key, sb.id));
    let m = local.len() as u64;
    if m > 1 {
        ctx.charge_tree_ops(m * (64 - (m - 1).leading_zeros()) as u64);
    }

    // Phase 6: build each assigned bucket's subtree from its sorted run.
    // Cells are allocated fully formed (children linked, summary folded,
    // `done` set) in post-order — no locks, no later fix-up writes.
    let mut reports: Vec<(u32, GlobalPtr)> = Vec::new();
    let mut start = 0usize;
    while start < local.len() {
        let bucket = bucket_of(local[start].key);
        let mut end = start + 1;
        while end < local.len() && bucket_of(local[end].key) == bucket {
            end += 1;
        }
        let (bc, bh) = bucket_geometry(center, root_half, bucket);
        let (ptr, _) = build_range(ctx, shared, st, cfg, &local[start..end], BUCKET_DEPTH, bc, bh);
        reports.push((bucket as u32, ptr));
        start = end;
    }
    let hook_start = ctx.now();

    // Phase 7: route the bucket roots to rank 0 (an exchange, so the report
    // bytes are billed honestly).
    let mut report_out: Vec<Vec<(u32, GlobalPtr)>> = vec![Vec::new(); ctx.ranks()];
    report_out[0] = reports;
    let gathered = ctx.exchange(report_out);

    // Phase 8: rank 0 hooks the buckets under the depth 0–2 spine and
    // publishes the root.
    if ctx.rank() == 0 {
        let mut ptrs = [GlobalPtr::NULL; BUCKETS];
        for (bucket, ptr) in gathered.into_iter().flatten() {
            ptrs[bucket as usize] = ptr;
        }
        let (root, _) = build_spine(ctx, shared, st, &counts, &ptrs, 0, 0, center, root_half);
        shared.root.write(ctx, root);
    }
    let hook_end = ctx.now();
    ctx.barrier();
    (hook_start - local_start, hook_end - hook_start)
}

/// Builds the subtree over a sorted, non-empty run of bodies that all share
/// the `depth`-digit key prefix of the cube `(center, half)`.  Returns the
/// node's pointer and a copy of its record (so parents fold without
/// re-reading the arena).
#[allow(clippy::too_many_arguments)]
fn build_range(
    ctx: &Ctx,
    shared: &BhShared,
    st: &mut RankState,
    cfg: &SimConfig,
    bodies: &[SortedBody],
    depth: usize,
    center: Vec3,
    half: f64,
) -> (GlobalPtr, CellNode) {
    debug_assert!(!bodies.is_empty(), "build_range over an empty run");
    if bodies.len() == 1 {
        let b = &bodies[0];
        let leaf = CellNode::new_body(b.id, b.pos, b.mass, b.cost);
        return (shared.cells.alloc(ctx, leaf), leaf);
    }
    if depth > cfg.max_depth + 16 {
        // Pathologically coincident bodies: keep the lowest id, drop the
        // rest — the same give-up as the insertion builders (their depth
        // guard orphans the excess leaves), which never triggers on the
        // registered scenario families.
        let b = bodies.iter().min_by_key(|b| b.id).expect("non-empty run");
        let leaf = CellNode::new_body(b.id, b.pos, b.mass, b.cost);
        return (shared.cells.alloc(ctx, leaf), leaf);
    }

    let mut cell = CellNode::new_cell(center, half);
    ctx.charge_tree_ops(1);
    let mut kids: [Option<CellNode>; 8] = [None; 8];
    if depth < KEY_LEVELS {
        // The run is key-sorted, so each child octant is a contiguous
        // sub-run of the next key digit.
        let shift = 3 * (KEY_LEVELS - 1 - depth);
        let mut start = 0usize;
        while start < bodies.len() {
            let oct = ((bodies[start].key >> shift) & 7) as usize;
            let mut end = start + 1;
            while end < bodies.len() && ((bodies[end].key >> shift) & 7) as usize == oct {
                end += 1;
            }
            let (cc, ch) = child_geometry(center, half, oct);
            let (ptr, node) =
                build_range(ctx, shared, st, cfg, &bodies[start..end], depth + 1, cc, ch);
            cell.children[oct] = ptr;
            kids[oct] = Some(node);
            start = end;
        }
    } else {
        // Below the key resolution (coincident to 21 levels): partition by
        // the true positions, like the insertion descent would.
        let mut groups: [Vec<SortedBody>; 8] = Default::default();
        for b in bodies {
            groups[b.pos.octant_of(center)].push(*b);
        }
        for (oct, group) in groups.iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let (cc, ch) = child_geometry(center, half, oct);
            let (ptr, node) = build_range(ctx, shared, st, cfg, group, depth + 1, cc, ch);
            cell.children[oct] = ptr;
            kids[oct] = Some(node);
        }
    }

    let mut fold = Fold::new();
    for node in kids.iter().flatten() {
        fold.add(node);
    }
    fold.finish(&mut cell);
    let ptr = shared.cells.alloc(ctx, cell);
    st.my_cells.push(ptr);
    (ptr, cell)
}

/// Builds the spine node over the bucket range of `(depth, prefix)` on
/// rank 0: attaches bucket roots at [`BUCKET_DEPTH`], hands single-body
/// subtrees up as bare leaves (a cell only exists where ≥ 2 bodies share
/// the region — the insertion build's structural rule), and folds spine
/// cell summaries from their children's records.
#[allow(clippy::too_many_arguments)]
fn build_spine(
    ctx: &Ctx,
    shared: &BhShared,
    st: &mut RankState,
    counts: &[u64; BUCKETS],
    ptrs: &[GlobalPtr; BUCKETS],
    depth: usize,
    prefix: usize,
    center: Vec3,
    half: f64,
) -> (GlobalPtr, CellNode) {
    if depth == BUCKET_DEPTH {
        let ptr = ptrs[prefix];
        debug_assert!(!ptr.is_null(), "non-empty bucket without a reported root");
        return (ptr, shared.cells.read(ctx, ptr));
    }
    let span = 1usize << (3 * (BUCKET_DEPTH - depth - 1));
    let mut cell = CellNode::new_cell(center, half);
    ctx.charge_tree_ops(1);
    let mut kids: [Option<CellNode>; 8] = [None; 8];
    let mut total = 0u64;
    for (oct, kid) in kids.iter_mut().enumerate() {
        let cprefix = (prefix << 3) | oct;
        let cnt: u64 = counts[cprefix * span..(cprefix + 1) * span].iter().sum();
        total += cnt;
        if cnt == 0 {
            continue;
        }
        let (cc, ch) = child_geometry(center, half, oct);
        let (ptr, node) = build_spine(ctx, shared, st, counts, ptrs, depth + 1, cprefix, cc, ch);
        cell.children[oct] = ptr;
        *kid = Some(node);
    }
    if depth > 0 && total == 1 {
        // A single body below this region: no cell here — hand the leaf up.
        let oct = (0..8).find(|&o| kids[o].is_some()).expect("one child must exist");
        return (cell.children[oct], kids[oct].expect("checked above"));
    }
    let mut fold = Fold::new();
    for node in kids.iter().flatten() {
        fold.add(node);
    }
    fold.finish(&mut cell);
    let ptr = shared.cells.alloc(ctx, cell);
    if depth > 0 {
        st.my_cells.push(ptr);
    }
    (ptr, cell)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{OptLevel, SimConfig, TreeBuild};
    use crate::treebuild::{
        allocate_root, bounding_box_phase, center_of_mass_phase, insert_owned_bodies,
    };
    use pgas::Runtime;

    fn build_with(
        build: TreeBuild,
        nbodies: usize,
        ranks: usize,
        opt: OptLevel,
    ) -> (BhShared, pgas::RunReport<()>) {
        let mut cfg = SimConfig::test(nbodies, ranks, opt);
        cfg.build = build;
        let shared = BhShared::with_bodies(
            &cfg,
            nbody::plummer::generate(&nbody::plummer::PlummerConfig::new(nbodies, cfg.seed)),
        );
        let rt = Runtime::new(cfg.machine.clone());
        let report = rt.run(|ctx| {
            let mut st = RankState::new(ctx, &shared, &cfg);
            let (center, rsize) = bounding_box_phase(ctx, &shared, &mut st, &cfg);
            match build {
                TreeBuild::Sorted => {
                    sorted_build(ctx, &shared, &mut st, &cfg, center, rsize);
                }
                TreeBuild::Insertion => {
                    allocate_root(ctx, &shared, center, rsize);
                    ctx.barrier();
                    insert_owned_bodies(ctx, &shared, &mut st, &cfg);
                    ctx.barrier();
                    center_of_mass_phase(ctx, &shared, &mut st, &cfg);
                    ctx.barrier();
                }
            }
        });
        (shared, report)
    }

    /// Asserts the two trees are identical: same shape, same kinds, same
    /// geometry and summaries to the last bit.
    fn assert_trees_identical(a: &BhShared, b: &BhShared, pa: GlobalPtr, pb: GlobalPtr) {
        let na = a.cells.read_raw(pa);
        let nb = b.cells.read_raw(pb);
        assert_eq!(na.kind, nb.kind);
        assert_eq!(na.center.x.to_bits(), nb.center.x.to_bits());
        assert_eq!(na.center.y.to_bits(), nb.center.y.to_bits());
        assert_eq!(na.center.z.to_bits(), nb.center.z.to_bits());
        assert_eq!(na.half.to_bits(), nb.half.to_bits());
        assert_eq!(na.mass.to_bits(), nb.mass.to_bits());
        assert_eq!(na.cofm.x.to_bits(), nb.cofm.x.to_bits());
        assert_eq!(na.cofm.y.to_bits(), nb.cofm.y.to_bits());
        assert_eq!(na.cofm.z.to_bits(), nb.cofm.z.to_bits());
        assert_eq!(na.cost, nb.cost);
        assert_eq!(na.nbodies, nb.nbodies);
        assert_eq!(na.body_id, nb.body_id);
        assert_eq!(na.done, nb.done);
        if na.kind == NodeKind::Cell {
            for oct in 0..8 {
                assert_eq!(
                    na.children[oct].is_null(),
                    nb.children[oct].is_null(),
                    "child shape differs at octant {oct}"
                );
                if !na.children[oct].is_null() {
                    assert_trees_identical(a, b, na.children[oct], nb.children[oct]);
                }
            }
        }
    }

    #[test]
    fn sorted_build_matches_insertion_bit_for_bit() {
        for ranks in [1, 3, 4] {
            let (ins, _) = build_with(TreeBuild::Insertion, 220, ranks, OptLevel::Redistribute);
            let (srt, _) = build_with(TreeBuild::Sorted, 220, ranks, OptLevel::Redistribute);
            assert_trees_identical(&ins, &srt, ins.root.read_raw(), srt.root.read_raw());
        }
    }

    #[test]
    fn sorted_build_acquires_zero_locks() {
        let (_, sorted_report) = build_with(TreeBuild::Sorted, 300, 4, OptLevel::CacheLocalTree);
        for r in &sorted_report.ranks {
            assert_eq!(
                r.stats.lock_acquires, 0,
                "rank {}: the sorted build must never take a lock",
                r.rank
            );
        }
        // Contrast: the insertion build's subdivisions do lock.
        let (_, insertion_report) =
            build_with(TreeBuild::Insertion, 300, 4, OptLevel::CacheLocalTree);
        let insertion_locks: u64 =
            insertion_report.ranks.iter().map(|r| r.stats.lock_acquires).sum();
        assert!(insertion_locks > 0, "insertion build is expected to lock on subdivision");
    }

    #[test]
    fn sorted_tree_contains_every_body_once() {
        for (nbodies, ranks) in [(64usize, 1usize), (200, 3), (257, 7)] {
            let (shared, _) = build_with(TreeBuild::Sorted, nbodies, ranks, OptLevel::Redistribute);
            let root = shared.root.read_raw();
            assert!(!root.is_null());
            let mut seen = vec![false; nbodies];
            fn visit(shared: &BhShared, ptr: GlobalPtr, seen: &mut [bool]) -> u32 {
                let node = shared.cells.read_raw(ptr);
                match node.kind {
                    NodeKind::Body => {
                        assert!(!seen[node.body_id as usize], "body {} twice", node.body_id);
                        seen[node.body_id as usize] = true;
                        1
                    }
                    NodeKind::Cell => {
                        assert!(node.done, "sorted cells are born summarized");
                        let mut count = 0;
                        for c in node.children {
                            if !c.is_null() {
                                count += visit(shared, c, seen);
                            }
                        }
                        assert_eq!(count, node.nbodies);
                        count
                    }
                }
            }
            let count = visit(&shared, root, &mut seen);
            assert_eq!(count as usize, nbodies, "{ranks} ranks");
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn descent_keys_sort_like_the_descent() {
        // Keys of bodies in different root octants order by root octant;
        // equal prefixes group together.
        let center = Vec3::ZERO;
        let half = 4.0;
        let a = descent_key(Vec3::new(-1.0, -1.0, -1.0), center, half);
        let b = descent_key(Vec3::new(1.0, -1.0, -1.0), center, half);
        let c = descent_key(Vec3::new(1.0, 1.0, 1.0), center, half);
        assert!(a < b && b < c);
        assert_eq!(bucket_of(a) >> 6, 0);
        assert_eq!(bucket_of(c) >> 6, 7);
        // 63 bits: the top bit is never set.
        assert_eq!(descent_key(Vec3::new(3.9, 3.9, 3.9), center, half) >> 63, 0);
    }

    #[test]
    fn bucket_assignment_is_contiguous_and_balanced() {
        let mut counts = [0u64; BUCKETS];
        for (b, c) in counts.iter_mut().enumerate() {
            *c = (b % 7) as u64;
        }
        let owner = assign_buckets(&counts, 4);
        // Contiguous, monotone, starts at rank 0 and uses every rank.
        assert_eq!(owner[0], 0);
        for w in owner.windows(2) {
            assert!(w[1] == w[0] || w[1] == w[0] + 1);
        }
        assert_eq!(owner[BUCKETS - 1], 3);
        // Balanced to within one bucket's weight.
        let total: u64 = counts.iter().sum();
        for r in 0..4 {
            let share: u64 = (0..BUCKETS).filter(|&b| owner[b] == r).map(|b| counts[b]).sum();
            assert!(share <= total / 4 + 7, "rank {r} got {share} of {total}");
        }
    }
}
