//! §6: the scalable subspace (cost-threshold) tree-building algorithm.
//!
//! Instead of merging arbitrary local trees (whose conflicts make the merge
//! cost unbalanced, Figure 8), all threads first agree on the *shape* of the
//! top of the merged octree:
//!
//! 1. level by level, every thread bins its bodies into the current set of
//!    open subspaces, the per-subspace costs are combined with **one vector
//!    reduction per level** (Figure 11; a per-subspace scalar reduction is
//!    kept as the Figure 10 ablation), and a subspace whose global cost
//!    exceeds `τ = α·Cost/THREADS` is split into its eight octants;
//! 2. the resulting leaves are ordered along the space-filling traversal and
//!    assigned to threads in contiguous runs of approximately equal cost;
//! 3. an all-to-all exchange routes every body to the owner of its leaf;
//! 4. each thread builds a local subforest for its leaves, computes its
//!    centres of mass locally, and hooks each subtree into the shared top
//!    tree with a single conflict-free pointer update;
//! 5. thread 0 finishes the centres of mass of the (small) top tree.

use crate::cellnode::CellNode;
use crate::config::SimConfig;
use crate::mergetree::upload_subtree;
use crate::shared::{read_body, BhShared, RankState};
use nbody::{Body, Vec3};
use octree::tree::{Octree, TreeParams};
use pgas::{Ctx, GlobalPtr};

/// Reference from an internal subspace cell to one of its children.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChildRef {
    /// No bodies anywhere in this octant.
    Empty,
    /// Child is itself split (index into [`SubspacePlan::internals`]).
    Internal(usize),
    /// Child is a leaf (index into [`SubspacePlan::leaves`]).
    Leaf(usize),
}

/// An internal (split) subspace cell.
#[derive(Debug, Clone)]
pub struct InternalCell {
    /// Geometry.
    pub center: Vec3,
    /// Half side length.
    pub half: f64,
    /// Children, by octant.
    pub children: [ChildRef; 8],
}

/// A leaf subspace: a cell whose global cost is at most τ, owned entirely by
/// one thread.
#[derive(Debug, Clone)]
pub struct LeafCell {
    /// Geometry.
    pub center: Vec3,
    /// Half side length.
    pub half: f64,
    /// Octant path from the root (defines the space-filling order).
    pub path: Vec<u8>,
    /// Global cost of the bodies in this leaf.
    pub cost: f64,
    /// Owning rank.
    pub owner: usize,
}

/// The globally agreed shape of the top of the octree, identical on every
/// rank.
#[derive(Debug, Clone)]
pub struct SubspacePlan {
    /// Split cells; index 0 is the root.
    pub internals: Vec<InternalCell>,
    /// Leaves in space-filling order.
    pub leaves: Vec<LeafCell>,
    /// The split threshold τ used.
    pub tau: f64,
    /// Number of reduction operations performed (1 per level with vector
    /// reduction, 1 per subspace without — the Figure 10/11 contrast).
    pub reductions: u64,
}

/// Per-body leaf assignment for bodies owned by this rank after the
/// exchange: `(body id, leaf index)`.
pub type LeafAssignment = Vec<(u32, u32)>;

/// One candidate subspace during the level-wise refinement.
struct Candidate {
    center: Vec3,
    half: f64,
    path: Vec<u8>,
    /// Index of the parent internal cell and the octant this candidate
    /// occupies there (`None` for the root).
    parent: Option<(usize, u8)>,
    /// Bodies of *this* rank lying in the candidate.
    my_bodies: Vec<(u32, Vec3, f64)>,
}

/// Phase 1+2: builds the subspace plan (the "Partitioning" phase of the §6
/// algorithm).  Returns the plan plus this rank's body→leaf assignments
/// *before* the exchange.
pub fn subspace_partition(
    ctx: &Ctx,
    shared: &BhShared,
    st: &mut RankState,
    cfg: &SimConfig,
) -> (SubspacePlan, LeafAssignment) {
    let ranks = ctx.ranks();

    // Owned bodies with position and cost.
    let owned: Vec<(u32, Vec3, f64)> = st
        .my_ids
        .iter()
        .map(|&id| {
            let b = read_body(ctx, shared, st, cfg, id);
            (id, b.pos, b.cost.max(1) as f64)
        })
        .collect();
    ctx.charge_local_accesses(owned.len() as u64);

    let mut internals: Vec<InternalCell> = Vec::new();
    let mut leaves: Vec<LeafCell> = Vec::new();
    let mut pre_assignment: Vec<(u32, u32)> = Vec::new();
    let mut reductions = 0u64;

    let root = Candidate {
        center: st.center,
        half: st.rsize / 2.0,
        path: Vec::new(),
        parent: None,
        my_bodies: owned,
    };
    let mut level: Vec<Candidate> = vec![root];
    let mut tau = f64::INFINITY;
    let mut depth = 0usize;

    while !level.is_empty() {
        // Global cost of every candidate at this level.
        let local_costs: Vec<f64> =
            level.iter().map(|c| c.my_bodies.iter().map(|&(_, _, cost)| cost).sum()).collect();
        let global_costs: Vec<f64> = if cfg.vector_reduction {
            reductions += 1;
            ctx.allreduce_vec_sum(&local_costs)
        } else {
            // Figure 10 ablation: one scalar reduction per subspace.
            local_costs
                .iter()
                .map(|&c| {
                    reductions += 1;
                    ctx.allreduce_sum(c)
                })
                .collect()
        };
        ctx.charge_tree_ops(level.len() as u64);

        if depth == 0 {
            let total = global_costs[0];
            tau = cfg.alpha * total / ranks as f64;
        }

        let mut next: Vec<Candidate> = Vec::new();
        for (candidate, &cost) in level.into_iter().zip(&global_costs) {
            if cost <= 0.0 {
                // Empty everywhere: the parent keeps an Empty slot.
                continue;
            }
            let split = cost > tau && depth < cfg.max_depth;
            if !split {
                let leaf_idx = leaves.len();
                if let Some((parent, octant)) = candidate.parent {
                    internals[parent].children[octant as usize] = ChildRef::Leaf(leaf_idx);
                }
                for &(id, _, _) in &candidate.my_bodies {
                    pre_assignment.push((id, leaf_idx as u32));
                }
                leaves.push(LeafCell {
                    center: candidate.center,
                    half: candidate.half,
                    path: candidate.path,
                    cost,
                    owner: usize::MAX,
                });
                continue;
            }
            // Split into eight children.
            let internal_idx = internals.len();
            internals.push(InternalCell {
                center: candidate.center,
                half: candidate.half,
                children: [ChildRef::Empty; 8],
            });
            if let Some((parent, octant)) = candidate.parent {
                internals[parent].children[octant as usize] = ChildRef::Internal(internal_idx);
            }
            let mut buckets: Vec<Vec<(u32, Vec3, f64)>> = (0..8).map(|_| Vec::new()).collect();
            for (id, pos, cost) in candidate.my_bodies {
                buckets[pos.octant_of(candidate.center)].push((id, pos, cost));
            }
            let quarter = candidate.half / 2.0;
            for (octant, bucket) in buckets.into_iter().enumerate() {
                let offset = Vec3::new(
                    if octant & 1 != 0 { quarter } else { -quarter },
                    if octant & 2 != 0 { quarter } else { -quarter },
                    if octant & 4 != 0 { quarter } else { -quarter },
                );
                let mut path = candidate.path.clone();
                path.push(octant as u8);
                next.push(Candidate {
                    center: candidate.center + offset,
                    half: quarter,
                    path,
                    parent: Some((internal_idx, octant as u8)),
                    my_bodies: bucket,
                });
            }
        }
        level = next;
        depth += 1;
    }

    // Handle the degenerate case where the root itself never split: make the
    // plan contain a root internal cell with the single leaf below it is not
    // possible (a leaf has a parent), so instead promote the situation by
    // splitting the root once.  This only occurs for tiny inputs.
    if internals.is_empty() && !leaves.is_empty() {
        // The root became a single leaf covering everything; rebuild as one
        // internal root with that leaf's bodies redistributed among octants.
        // Simplest consistent fix: keep the single leaf and synthesise a root
        // internal cell pointing at it in octant 0 is geometrically wrong, so
        // instead mark the leaf as the entire domain and let the builder hook
        // it directly under a root cell of the same geometry.
        // (Handled in `subspace_treebuild` by the `leaf covers root` case.)
    }

    // Order leaves along the space-filling traversal and assign them to
    // ranks in contiguous runs of approximately equal cost.
    let mut order: Vec<usize> = (0..leaves.len()).collect();
    order.sort_by(|&a, &b| leaves[a].path.cmp(&leaves[b].path));
    let total_cost: f64 = leaves.iter().map(|l| l.cost).sum();
    let mut remaining = total_cost;
    let mut zone = 0usize;
    let mut zone_cost = 0.0f64;
    for (seq, &leaf_idx) in order.iter().enumerate() {
        let remaining_zones = (ranks - zone) as f64;
        let target = remaining / remaining_zones;
        let leaves_left = order.len() - seq;
        let must_spread = leaves_left <= ranks - (zone + 1);
        if zone + 1 < ranks && zone_cost > 0.0 && (zone_cost >= target || must_spread) {
            remaining -= zone_cost;
            zone += 1;
            zone_cost = 0.0;
        }
        leaves[leaf_idx].owner = zone;
        zone_cost += leaves[leaf_idx].cost;
    }
    ctx.charge_tree_ops(leaves.len() as u64);

    let plan = SubspacePlan { internals, leaves, tau, reductions };
    (plan, pre_assignment)
}

/// Phase 3: the all-to-all body exchange ("Redistribution").  Returns this
/// rank's post-exchange body→leaf assignments.
pub fn subspace_redistribute(
    ctx: &Ctx,
    shared: &BhShared,
    st: &mut RankState,
    cfg: &SimConfig,
    plan: &SubspacePlan,
    pre_assignment: LeafAssignment,
) -> (LeafAssignment, u64) {
    let ranks = ctx.ranks();
    let mut outgoing: Vec<Vec<(u32, u32)>> = vec![Vec::new(); ranks];
    for (id, leaf) in pre_assignment {
        let owner = plan.leaves[leaf as usize].owner;
        debug_assert!(owner < ranks, "leaf {leaf} was never assigned an owner");
        outgoing[owner].push((id, leaf));
    }
    let received = ctx.exchange(outgoing);
    // Canonicalize to (leaf, id) order: the raw arrival order depends on how
    // the *senders* happened to own bodies before the exchange, which would
    // leak into subforest insertion order (and thus center-of-mass rounding)
    // and break the chunked-stepping bit-equivalence that sessions rely on.
    // The classic path gets the same property from its Morton-order sort in
    // `redistribute_phase`.
    let mut assignment: LeafAssignment = received.into_iter().flatten().collect();
    assignment.sort_unstable_by_key(|&(id, leaf)| (leaf, id));

    let migrated: Vec<usize> =
        assignment.iter().filter(|&&(id, _)| !st.owns(id)).map(|&(id, _)| id as usize).collect();
    if cfg.opt.redistributes_bodies() && !migrated.is_empty() {
        let _ = shared.bodytab.get_ilist(ctx, &migrated);
    }
    let migrated_in = migrated.len() as u64;
    st.set_owned(assignment.iter().map(|&(id, _)| id).collect());
    (assignment, migrated_in)
}

/// Phases 4+5: build the per-leaf subforests, hook them into the shared top
/// tree and finish the top centres of mass ("Tree-building").
///
/// Returns `(local_build_time, hook_time)` in simulated seconds for the
/// Figure 8 style sub-phase breakdown.
pub fn subspace_treebuild(
    ctx: &Ctx,
    shared: &BhShared,
    st: &mut RankState,
    cfg: &SimConfig,
    plan: &SubspacePlan,
    assignment: &LeafAssignment,
) -> (f64, f64) {
    let phase_start = ctx.now();

    // Rank 0 materializes the top tree in the shared arena.
    let top_ptrs: Vec<GlobalPtr> = if ctx.rank() == 0 {
        let mut ptrs = vec![GlobalPtr::NULL; plan.internals.len().max(1)];
        if plan.internals.is_empty() {
            // Degenerate plan (root never split): a bare root cell.
            let root = shared.cells.alloc(ctx, CellNode::new_cell(st.center, st.rsize / 2.0));
            shared.root.write(ctx, root);
            ptrs = vec![root];
        } else {
            for (i, internal) in plan.internals.iter().enumerate() {
                ptrs[i] =
                    shared.cells.alloc(ctx, CellNode::new_cell(internal.center, internal.half));
            }
            // Link internal → internal edges (leaf slots are hooked later by
            // their owners).
            for (i, internal) in plan.internals.iter().enumerate() {
                let mut node = shared.cells.read_local(ctx, ptrs[i]);
                for (octant, child) in internal.children.iter().enumerate() {
                    if let ChildRef::Internal(c) = child {
                        node.children[octant] = ptrs[*c];
                    }
                }
                shared.cells.write_local(ctx, ptrs[i], node);
            }
            shared.root.write(ctx, ptrs[0]);
        }
        ctx.charge_tree_ops(plan.internals.len() as u64);
        ptrs
    } else {
        Vec::new()
    };

    // Every rank learns where to hook each leaf: (parent cell, octant).
    let leaf_hooks: Vec<(GlobalPtr, u8)> = {
        let hooks: Vec<(GlobalPtr, u8)> = if ctx.rank() == 0 {
            plan.leaves
                .iter()
                .enumerate()
                .map(|(leaf_idx, _)| {
                    // Find the internal parent of this leaf.
                    for (i, internal) in plan.internals.iter().enumerate() {
                        for (octant, child) in internal.children.iter().enumerate() {
                            if *child == ChildRef::Leaf(leaf_idx) {
                                return (top_ptrs[i], octant as u8);
                            }
                        }
                    }
                    // Degenerate plan: the single leaf covers the root; hook
                    // it into octant 0 of the bare root cell.
                    (top_ptrs[0], 0)
                })
                .collect()
        } else {
            Vec::new()
        };
        ctx.broadcast(0, hooks)
    };
    ctx.barrier();

    // Build and hook the subforest of every owned leaf.
    let local_start = ctx.now();
    let mut per_leaf: Vec<Vec<(u32, Body)>> = vec![Vec::new(); plan.leaves.len()];
    for &(id, leaf) in assignment {
        let body = read_body(ctx, shared, st, cfg, id);
        per_leaf[leaf as usize].push((id, body));
    }
    let mut hook_time = 0.0;
    for (leaf_idx, members) in per_leaf.into_iter().enumerate() {
        if members.is_empty() {
            continue;
        }
        debug_assert_eq!(plan.leaves[leaf_idx].owner, ctx.rank());
        let ids: Vec<u32> = members.iter().map(|&(id, _)| id).collect();
        let bodies: Vec<Body> = members.iter().map(|&(_, b)| b).collect();
        let leaf = &plan.leaves[leaf_idx];
        let params = TreeParams { leaf_capacity: cfg.leaf_capacity, max_depth: cfg.max_depth };
        let mut tree = Octree::build_in(&bodies, leaf.center, 2.0 * leaf.half, params);
        let visits = tree.compute_mass(&bodies);
        ctx.charge_tree_ops(tree.build_ops + visits);
        let subtree = upload_subtree(ctx, shared, st, &tree, 0, &bodies, &ids);

        // Hook: a single conflict-free slot update on the shared top tree.
        let hook_start = ctx.now();
        let (parent, octant) = leaf_hooks[leaf_idx];
        shared.cells.update(ctx, parent, |cell| {
            cell.children[octant as usize] = subtree;
        });
        hook_time += ctx.now() - hook_start;
    }
    let local_time = (ctx.now() - local_start) - hook_time;
    ctx.barrier();

    // Rank 0 finishes the centres of mass of the top cells (bottom-up: later
    // internals are deeper because parents are created before children).
    if ctx.rank() == 0 {
        for i in (0..top_ptrs.len()).rev() {
            let mut node = shared.cells.read_local(ctx, top_ptrs[i]);
            let mut mass = 0.0;
            let mut moment = Vec3::ZERO;
            let mut cost = 0u64;
            let mut nbodies = 0u32;
            for octant in 0..8 {
                let child = node.children[octant];
                if child.is_null() {
                    continue;
                }
                let c = shared.cells.read(ctx, child);
                mass += c.mass;
                moment += c.cofm * c.mass;
                cost += c.cost;
                nbodies += c.nbodies;
            }
            node.mass = mass;
            node.cofm = if mass > 0.0 { moment / mass } else { node.center };
            node.cost = cost;
            node.nbodies = nbodies;
            node.done = true;
            shared.cells.write_local(ctx, top_ptrs[i], node);
            ctx.charge_tree_ops(1);
        }
    }
    ctx.barrier();

    let _ = phase_start;
    (local_time, hook_time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cellnode::NodeKind;
    use crate::config::OptLevel;
    use crate::treebuild::bounding_box_phase;
    use nbody::body::center_of_mass;
    use pgas::Runtime;

    fn build_subspace(
        nbodies: usize,
        ranks: usize,
        vector_reduction: bool,
    ) -> (BhShared, Vec<SubspacePlan>) {
        let mut cfg = SimConfig::test(nbodies, ranks, OptLevel::Subspace);
        cfg.vector_reduction = vector_reduction;
        let shared = BhShared::new(&cfg);
        let rt = Runtime::new(cfg.machine.clone());
        let report = rt.run(|ctx| {
            let mut st = RankState::new(ctx, &shared, &cfg);
            bounding_box_phase(ctx, &shared, &mut st, &cfg);
            let (plan, pre) = subspace_partition(ctx, &shared, &mut st, &cfg);
            let (assignment, _) = subspace_redistribute(ctx, &shared, &mut st, &cfg, &plan, pre);
            subspace_treebuild(ctx, &shared, &mut st, &cfg, &plan, &assignment);
            ctx.barrier();
            plan
        });
        let plans = report.ranks.into_iter().map(|r| r.result).collect();
        (shared, plans)
    }

    fn verify_tree(shared: &BhShared, nbodies: usize) {
        let root = shared.root.read_raw();
        assert!(!root.is_null());
        let mut seen = vec![false; nbodies];
        fn visit(shared: &BhShared, ptr: GlobalPtr, seen: &mut [bool]) -> (u32, f64) {
            let node = shared.cells.read_raw(ptr);
            match node.kind {
                NodeKind::Body => {
                    assert!(!seen[node.body_id as usize]);
                    seen[node.body_id as usize] = true;
                    (1, node.mass)
                }
                NodeKind::Cell => {
                    let mut count = 0;
                    let mut mass = 0.0;
                    for c in node.children {
                        if !c.is_null() {
                            let (n, m) = visit(shared, c, seen);
                            count += n;
                            mass += m;
                        }
                    }
                    assert_eq!(count, node.nbodies, "subspace cell body count mismatch");
                    assert!((mass - node.mass).abs() < 1e-9);
                    (count, mass)
                }
            }
        }
        let (count, _) = visit(shared, root, &mut seen);
        assert_eq!(count as usize, nbodies);
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn plans_are_identical_across_ranks() {
        let (_, plans) = build_subspace(400, 4, true);
        for p in &plans[1..] {
            assert_eq!(p.internals.len(), plans[0].internals.len());
            assert_eq!(p.leaves.len(), plans[0].leaves.len());
            for (a, b) in p.leaves.iter().zip(&plans[0].leaves) {
                assert_eq!(a.path, b.path);
                assert_eq!(a.owner, b.owner);
                assert!((a.cost - b.cost).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn subspace_tree_contains_every_body_once() {
        for ranks in [1, 2, 4, 6] {
            let (shared, _) = build_subspace(300, ranks, true);
            verify_tree(&shared, 300);
        }
    }

    #[test]
    fn root_summary_matches_bodies() {
        let (shared, _) = build_subspace(500, 4, true);
        let bodies = shared.bodytab.snapshot();
        let root = shared.cells.read_raw(shared.root.read_raw());
        assert!((root.mass - bodies.iter().map(|b| b.mass).sum::<f64>()).abs() < 1e-9);
        assert!((root.cofm - center_of_mass(&bodies)).norm() < 1e-6);
    }

    #[test]
    fn every_leaf_has_an_owner_and_costs_are_bounded() {
        let (_, plans) = build_subspace(600, 4, true);
        let plan = &plans[0];
        assert!(!plan.leaves.is_empty());
        for leaf in &plan.leaves {
            assert!(leaf.owner < 4, "leaf without owner");
            // Each leaf obeys the split threshold (leaves above τ only occur
            // at the depth cap, which this input never reaches).
            assert!(
                leaf.cost <= plan.tau + 1e-9,
                "leaf cost {} exceeds tau {}",
                leaf.cost,
                plan.tau
            );
        }
    }

    #[test]
    fn vector_reduction_does_fewer_reductions() {
        let (_, with_vec) = build_subspace(400, 4, true);
        let (_, without_vec) = build_subspace(400, 4, false);
        assert!(
            with_vec[0].reductions * 4 < without_vec[0].reductions,
            "vector reduction should collapse per-subspace reductions ({} vs {})",
            with_vec[0].reductions,
            without_vec[0].reductions
        );
    }
}
