//! # bh — distributed Barnes-Hut over an emulated PGAS runtime
//!
//! This crate is the core of the reproduction of *"Optimizing the Barnes-Hut
//! Algorithm in UPC"* (Zhang, Behzad, Snir; SC 2011).  It expresses the
//! SPLASH-2 Barnes-Hut application against the UPC-like runtime of the
//! [`pgas`] crate and implements the paper's full, cumulative optimization
//! ladder:
//!
//! | [`OptLevel`]              | paper section | what changes |
//! |---------------------------|---------------|--------------|
//! | `Baseline`                | §4            | literal SPLASH-2 → UPC translation |
//! | `ReplicateScalars`        | §5.1          | `tol`/`eps`/`rsize` replicated per thread |
//! | `Redistribute`            | §5.2          | bodies moved to their owner each step |
//! | `CacheLocalTree`          | §5.3          | remote cells cached in a per-thread local tree |
//! | `MergedTreeBuild`         | §5.4          | lock-free local trees merged into the global tree |
//! | `AsyncAggregation`        | §5.5          | non-blocking aggregated cell gathers |
//! | `Subspace`                | §6            | cost-threshold subspace tree build, vector reductions |
//!
//! The main entry point is [`run_simulation`], which runs the paper's
//! experiment protocol (four time steps, last two measured) and returns the
//! per-phase timing breakdown its tables report, together with the final
//! body states for correctness checks.  The configuration and result types
//! are the solver-neutral ones from the [`engine`] crate (re-exported here),
//! and [`UpcBackend`] registers this solver as the `upc` backend so any
//! scenario can run on it next to the `mpi` and `direct` competitors.
//!
//! ```
//! use bh::{run_simulation, OptLevel, SimConfig};
//! use pgas::Machine;
//!
//! let cfg = SimConfig::test(256, 2, OptLevel::CacheLocalTree);
//! let result = run_simulation(&cfg);
//! assert!(result.phases.force > 0.0);
//! assert_eq!(result.bodies.len(), 256);
//! # let _ = Machine::test_cluster(2);
//! ```

pub mod backend;
pub mod cache;
pub mod cellnode;
pub mod cellstore;
pub mod config;
pub mod force;
pub mod frontier;
pub mod groupwalk;
pub mod lifecycle;
pub mod mergetree;
pub mod partition;
pub mod report;
pub mod shadow;
pub mod shared;
pub mod sim;
pub mod sortbuild;
pub mod subspace;
pub mod treebuild;

pub use backend::UpcBackend;
pub use cellnode::{CellNode, NodeKind};
pub use config::{OptLevel, SimConfig, TreeBuild, TreePolicy, WalkMode};
pub use report::{Phase, PhaseTimes, RankOutcome, SimResult};
pub use shared::{BhShared, RankState};
pub use sim::{run_simulation, run_simulation_on, run_simulation_tracked, run_simulation_with};
