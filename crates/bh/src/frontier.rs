//! The §5.5 force engine: non-blocking communication and message
//! aggregation (Listing 3 of the paper).
//!
//! Each rank processes `n1` *working bodies* concurrently.  Every working
//! body keeps a *frontier* of cache-tree nodes still to be examined.  When a
//! node must be opened but its children are not cached yet, the node is
//! parked on the body's *stalled* list and added (once) to a request list.
//! Once at least `n3` cells are requested and fewer than `n2` gathers are in
//! flight, all requested cells' children are fetched with a single
//! non-blocking aggregated gather (the emulated `bupc_memget_vlist_async`).
//! While gathers are in flight the rank keeps computing on other working
//! bodies, which is what hides the miss latency; it only blocks
//! (`wait_sync`) when no body can make progress.

use crate::cache::CacheTree;
use crate::cellnode::{CellNode, NodeKind};
use crate::config::SimConfig;
use crate::force::BodyForce;
use crate::shared::{read_body, read_eps, read_theta, BhShared, RankState};
use nbody::direct::pairwise_acceleration;
use nbody::Vec3;
use octree::walk::cell_is_far;
use pgas::{Ctx, Handle};
use std::collections::VecDeque;

/// One in-flight aggregated gather: the handle plus, for each parent cell
/// whose children it carries, the parent's cache index and its child count.
struct InFlight {
    handle: Handle<CellNode>,
    parents: Vec<(usize, usize)>,
}

/// A working body (an entry of the paper's list of `n1` concurrently
/// processed bodies).
struct Work {
    id: u32,
    pos: Vec3,
    acc: Vec3,
    phi: f64,
    interactions: u32,
    /// Cache-node indices still to be examined.
    frontier: Vec<usize>,
    /// Cache-node indices waiting for their children to arrive.
    stalled: Vec<usize>,
}

impl Work {
    fn new(id: u32, pos: Vec3) -> Self {
        Work {
            id,
            pos,
            acc: Vec3::ZERO,
            phi: 0.0,
            interactions: 0,
            frontier: vec![0],
            stalled: Vec::new(),
        }
    }

    fn finished(&self) -> bool {
        self.frontier.is_empty() && self.stalled.is_empty()
    }
}

/// The §5.5 force phase.  Functionally identical to
/// [`crate::force::force_phase_cached`]; only the communication schedule
/// differs.  The cache tree lives for one step: this engine only runs at
/// [`crate::config::OptLevel::AsyncAggregation`] and above, where the tree
/// itself is rebuilt every step regardless of policy
/// ([`crate::lifecycle::persistent_tree`]), so there is never a surviving
/// generation to refresh against.
pub fn force_phase_async(
    ctx: &Ctx,
    shared: &BhShared,
    st: &RankState,
    cfg: &SimConfig,
) -> Vec<BodyForce> {
    let theta = read_theta(ctx, shared, st, cfg.opt);
    let eps = read_eps(ctx, shared, st, cfg.opt);
    let n1 = cfg.n1.max(1);
    let n2 = cfg.n2.max(1);
    let n3 = cfg.n3.max(1);

    let mut cache = CacheTree::new(ctx, shared);
    let mut out = Vec::with_capacity(st.my_ids.len());
    let mut pending: VecDeque<u32> = st.my_ids.iter().copied().collect();
    let mut working: Vec<Work> = Vec::with_capacity(n1);
    let mut request_list: Vec<usize> = Vec::new();
    let mut outstanding: VecDeque<InFlight> = VecDeque::new();

    loop {
        // Fill up the list of working bodies.
        while working.len() < n1 {
            match pending.pop_front() {
                Some(id) => {
                    let body = read_body(ctx, shared, st, cfg, id);
                    working.push(Work::new(id, body.pos));
                }
                None => break,
            }
        }
        if working.is_empty() {
            // Nothing left to compute; any gathers still in flight are
            // irrelevant and simply dropped.
            break;
        }

        // Compute for every working body until it can't make progress.
        let mut round_interactions = 0u64;
        let mut round_macs = 0u64;
        for w in working.iter_mut() {
            while let Some(idx) = w.frontier.pop() {
                let node = cache.nodes[idx].node;
                match node.kind {
                    NodeKind::Body => {
                        if node.body_id == w.id {
                            continue;
                        }
                        let (a, p) = pairwise_acceleration(w.pos, node.cofm, node.mass, eps);
                        w.acc += a;
                        w.phi += p;
                        w.interactions += 1;
                        round_interactions += 1;
                    }
                    NodeKind::Cell => {
                        if node.nbodies == 0 {
                            continue;
                        }
                        round_macs += 1;
                        let dist_sq = w.pos.dist_sq(node.cofm);
                        if cell_is_far(node.side(), dist_sq, theta) {
                            let (a, p) = pairwise_acceleration(w.pos, node.cofm, node.mass, eps);
                            w.acc += a;
                            w.phi += p;
                            w.interactions += 1;
                            round_interactions += 1;
                        } else if cache.nodes[idx].localized {
                            for o in 0..8 {
                                let c = cache.nodes[idx].children_local[o];
                                if c >= 0 {
                                    w.frontier.push(c as usize);
                                }
                            }
                        } else {
                            // Park the node and request its children (once).
                            w.stalled.push(idx);
                            if !cache.nodes[idx].requested {
                                cache.nodes[idx].requested = true;
                                request_list.push(idx);
                            }
                        }
                    }
                }
            }
        }
        if round_macs > 0 {
            ctx.charge_macs(round_macs);
        }
        if round_interactions > 0 {
            ctx.charge_interactions(round_interactions);
        }

        // Retire finished bodies.
        let mut i = 0;
        while i < working.len() {
            if working[i].finished() {
                let w = working.swap_remove(i);
                out.push(BodyForce { id: w.id, acc: w.acc, phi: w.phi, cost: w.interactions });
            } else {
                i += 1;
            }
        }

        // Issue aggregated gathers when enough cells have been requested.
        while request_list.len() >= n3 && outstanding.len() < n2 {
            issue_request(ctx, shared, &cache, &mut request_list, &mut outstanding, n3);
        }

        // If nothing can progress, complete (or force-issue) communication.
        let all_stalled = working.iter().all(|w| w.frontier.is_empty());
        let no_new_work = pending.is_empty() || working.len() >= n1;
        if all_stalled && no_new_work && !working.is_empty() {
            if let Some(flight) = outstanding.pop_front() {
                complete_request(ctx, &mut cache, flight);
                revive(&mut working, &cache);
            } else if !request_list.is_empty() && outstanding.len() < n2 {
                // Not enough requests to reach n3, but nobody can progress:
                // flush what we have.
                issue_request(ctx, shared, &cache, &mut request_list, &mut outstanding, n3);
            } else if !working.is_empty() {
                // No outstanding communication and nothing to issue, yet a
                // body is stalled: fall back to a blocking localization (this
                // only happens when n2 is saturated by requests that are not
                // ours, which cannot occur in this single-threaded engine,
                // but the guard keeps the loop total).
                let idx = working
                    .iter()
                    .flat_map(|w| w.stalled.iter().copied())
                    .next()
                    .expect("stalled node");
                cache.localize_children(ctx, shared, idx);
                revive(&mut working, &cache);
            }
        }
    }

    // Any gathers still in flight are complete by construction of the cost
    // model; dropping them is equivalent to never having needed them.
    out
}

/// A working *group* (the [`crate::config::WalkMode::Group`] counterpart of
/// [`Work`]): the §5.5 machinery is unchanged — frontier, stalled list,
/// aggregated gathers — but the traversal runs once per body group under
/// the conservative box criterion.  The frontier pass is pure *discovery*:
/// it drives the non-blocking localization of every cell the group's
/// interaction list will need; once the group can make no more misses, the
/// list is built (and billed) in one local pass and applied to every
/// member.
struct GroupWork {
    ids: Vec<u32>,
    positions: Vec<Vec3>,
    lo: Vec3,
    hi: Vec3,
    frontier: Vec<usize>,
    stalled: Vec<usize>,
}

impl GroupWork {
    fn new(g: crate::groupwalk::Group) -> Self {
        GroupWork {
            ids: g.ids,
            positions: g.positions,
            lo: g.lo,
            hi: g.hi,
            frontier: vec![0],
            stalled: Vec::new(),
        }
    }

    fn finished(&self) -> bool {
        self.frontier.is_empty() && self.stalled.is_empty()
    }
}

/// The §5.5 engine under [`crate::config::WalkMode::Group`]: working units
/// are body groups instead of bodies, so one traversal (and one set of
/// cache misses) serves every member of a group.  `n1` bounds the number of
/// concurrently processed *groups*; `n2`/`n3` keep their meaning.
///
/// The discovery pass repeats the group acceptance decisions the final
/// [`crate::groupwalk::build_list`] makes, but only the latter is billed —
/// the group's MAC work happens once per group, which is the point of the
/// mode; the frontier pass exists to overlap the cache misses with other
/// groups' work, exactly like the per-body §5.5 engine.
pub fn force_phase_async_group(
    ctx: &Ctx,
    shared: &BhShared,
    st: &RankState,
    cfg: &SimConfig,
) -> Vec<BodyForce> {
    use crate::groupwalk::{apply_list, build_list, group_descends, partition_groups, WalkCache};

    let theta = read_theta(ctx, shared, st, cfg.opt);
    let eps = read_eps(ctx, shared, st, cfg.opt);
    let n1 = cfg.n1.max(1);
    let n2 = cfg.n2.max(1);
    let n3 = cfg.n3.max(1);

    let mut cache = CacheTree::new(ctx, shared);
    let mut members: Vec<(u32, Vec3)> = Vec::with_capacity(st.my_ids.len());
    for &id in &st.my_ids {
        let body = read_body(ctx, shared, st, cfg, id);
        members.push((id, body.pos));
    }
    let center = (st.bbox_lo + st.bbox_hi) * 0.5;
    let extent = st.bbox_hi - st.bbox_lo;
    let rsize = extent.x.max(extent.y).max(extent.z);
    let mut pending: VecDeque<crate::groupwalk::Group> =
        partition_groups(&members, center, rsize).into_iter().collect();

    let mut out = Vec::with_capacity(st.my_ids.len());
    let mut working: Vec<GroupWork> = Vec::with_capacity(n1);
    let mut request_list: Vec<usize> = Vec::new();
    let mut outstanding: VecDeque<InFlight> = VecDeque::new();

    loop {
        while working.len() < n1 {
            match pending.pop_front() {
                Some(g) => working.push(GroupWork::new(g)),
                None => break,
            }
        }
        if working.is_empty() {
            break;
        }

        // Discovery: traverse for every working group until it can't make
        // progress, parking unlocalized cells the group must open.
        for w in working.iter_mut() {
            while let Some(idx) = w.frontier.pop() {
                let node = cache.nodes[idx].node;
                match node.kind {
                    NodeKind::Body => {}
                    NodeKind::Cell => {
                        if node.nbodies == 0
                            || !group_descends(
                                node.side(),
                                w.lo,
                                w.hi,
                                node.cofm,
                                &w.positions,
                                theta,
                            )
                        {
                            continue;
                        }
                        if cache.nodes[idx].localized {
                            for &k in cache.kids(idx) {
                                w.frontier.push(k as usize);
                            }
                        } else {
                            // Park the node and request its children (once).
                            w.stalled.push(idx);
                            if !cache.nodes[idx].requested {
                                cache.nodes[idx].requested = true;
                                request_list.push(idx);
                            }
                        }
                    }
                }
            }
        }

        // Retire finished groups: every cell their list opens is localized
        // now, so the list build is one local (billed) pass, and applying
        // it to the members is pure compute.
        let mut i = 0;
        while i < working.len() {
            if working[i].finished() {
                let w = working.swap_remove(i);
                let list = build_list(ctx, shared, &mut cache, w.lo, w.hi, &w.positions, theta);
                let mut interactions = 0u64;
                for (k, &id) in w.ids.iter().enumerate() {
                    let pos = w.positions[k];
                    let (acc, phi, n) = apply_list(&cache, &list, k, pos, id, eps);
                    interactions += n as u64;
                    out.push(BodyForce { id, acc, phi, cost: n });
                }
                ctx.charge_interactions(interactions);
            } else {
                i += 1;
            }
        }

        // Issue aggregated gathers when enough cells have been requested.
        while request_list.len() >= n3 && outstanding.len() < n2 {
            issue_request(ctx, shared, &cache, &mut request_list, &mut outstanding, n3);
        }

        // If nothing can progress, complete (or force-issue) communication.
        let all_stalled = working.iter().all(|w| w.frontier.is_empty());
        let no_new_work = pending.is_empty() || working.len() >= n1;
        if all_stalled && no_new_work && !working.is_empty() {
            if let Some(flight) = outstanding.pop_front() {
                complete_request(ctx, &mut cache, flight);
                revive_groups(&mut working, &cache);
            } else if !request_list.is_empty() && outstanding.len() < n2 {
                issue_request(ctx, shared, &cache, &mut request_list, &mut outstanding, n3);
            } else if !working.is_empty() {
                let idx = working
                    .iter()
                    .flat_map(|w| w.stalled.iter().copied())
                    .next()
                    .expect("stalled node");
                cache.localize_children(ctx, shared, idx);
                revive_groups(&mut working, &cache);
            }
        }
    }

    out
}

/// Moves stalled nodes whose parents are now localized back onto the
/// frontier of their working groups (the [`GroupWork`] twin of [`revive`]).
fn revive_groups(working: &mut [GroupWork], cache: &CacheTree) {
    for w in working.iter_mut() {
        let mut still_stalled = Vec::new();
        for idx in w.stalled.drain(..) {
            if cache.nodes[idx].localized {
                w.frontier.push(idx);
            } else {
                still_stalled.push(idx);
            }
        }
        w.stalled = still_stalled;
    }
}

/// Issues one aggregated gather for the oldest requested cells.
///
/// The paper issues a gather as soon as at least `n3` cells are requested,
/// so each message carries the children of a handful of spatially close
/// cells (which is why §5.5 finds that >90 % of requests have a single
/// source thread).  The batch is therefore capped rather than draining the
/// whole request list.
fn issue_request(
    ctx: &Ctx,
    shared: &BhShared,
    cache: &CacheTree,
    request_list: &mut Vec<usize>,
    outstanding: &mut VecDeque<InFlight>,
    batch_limit: usize,
) {
    if request_list.is_empty() {
        return;
    }
    let take = request_list.len().min(batch_limit.max(1));
    let batch: Vec<usize> = request_list.drain(..take).collect();
    let mut ptrs = Vec::new();
    let mut parents = Vec::with_capacity(batch.len());
    for parent in batch {
        let children = cache.children_ptrs(parent);
        parents.push((parent, children.len()));
        ptrs.extend(children);
    }
    let handle = shared.cells.get_vlist_async(ctx, &ptrs);
    outstanding.push_back(InFlight { handle, parents });
}

/// Waits for one gather and installs its children into the cache.
fn complete_request(ctx: &Ctx, cache: &mut CacheTree, flight: InFlight) {
    let data = ctx.wait_sync(flight.handle);
    let mut offset = 0usize;
    for (parent, count) in flight.parents {
        let children = data[offset..offset + count].to_vec();
        offset += count;
        cache.install_children(ctx, parent, children);
    }
}

/// Moves stalled nodes whose parents are now localized back onto the
/// frontier of their working bodies.
fn revive(working: &mut [Work], cache: &CacheTree) {
    for w in working.iter_mut() {
        let mut still_stalled = Vec::new();
        for idx in w.stalled.drain(..) {
            if cache.nodes[idx].localized {
                w.frontier.push(idx);
            } else {
                still_stalled.push(idx);
            }
        }
        w.stalled = still_stalled;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{OptLevel, SimConfig};
    use crate::force::{force_phase_cached, write_back};
    use crate::shared::RankState;
    use crate::treebuild::{
        allocate_root, bounding_box_phase, center_of_mass_phase, insert_owned_bodies,
    };
    use nbody::Body;
    use pgas::Runtime;

    fn run_force(
        cfg: &SimConfig,
        engine: impl Fn(&Ctx, &BhShared, &mut RankState, &SimConfig) -> Vec<BodyForce> + Sync,
    ) -> (Vec<Body>, f64, Option<f64>) {
        let shared = BhShared::new(cfg);
        let rt = Runtime::new(cfg.machine.clone());
        let report = rt.run(|ctx| {
            let mut st = RankState::new(ctx, &shared, cfg);
            let (center, rsize) = bounding_box_phase(ctx, &shared, &mut st, cfg);
            allocate_root(ctx, &shared, center, rsize);
            ctx.barrier();
            insert_owned_bodies(ctx, &shared, &mut st, cfg);
            ctx.barrier();
            center_of_mass_phase(ctx, &shared, &mut st, cfg);
            ctx.barrier();
            let start = ctx.now();
            let forces = engine(ctx, &shared, &mut st, cfg);
            let force_time = ctx.now() - start;
            write_back(ctx, &shared, &st, cfg, &forces);
            ctx.barrier();
            force_time
        });
        let max_force_time = report.ranks.iter().map(|r| r.result).fold(0.0, f64::max);
        let single_source = report.total_stats().vlist_single_source_fraction();
        (shared.bodytab.snapshot(), max_force_time, single_source)
    }

    #[test]
    fn async_forces_match_blocking_cached_forces() {
        let cfg_async = SimConfig::test(300, 4, OptLevel::AsyncAggregation);
        let cfg_cached = SimConfig::test(300, 4, OptLevel::CacheLocalTree);
        let (async_bodies, _, _) =
            run_force(&cfg_async, |c, s, st, f| force_phase_async(c, s, st, f));
        let (cached_bodies, _, _) = run_force(&cfg_cached, force_phase_cached);
        for (a, b) in async_bodies.iter().zip(&cached_bodies) {
            let err = (a.acc - b.acc).norm() / b.acc.norm().max(1e-12);
            assert!(err < 1e-9, "async engine changed the physics (err {err})");
            assert_eq!(a.cost, b.cost, "both engines must evaluate the same interactions");
        }
    }

    #[test]
    fn async_engine_hides_latency() {
        // On several ranks the blocking cached walk pays a full round trip per
        // miss; the aggregated non-blocking engine should spend clearly less
        // simulated time in the force phase.
        let mut cfg_async = SimConfig::test(400, 8, OptLevel::AsyncAggregation);
        let mut cfg_cached = SimConfig::test(400, 8, OptLevel::CacheLocalTree);
        cfg_async.measured_steps = 1;
        cfg_cached.measured_steps = 1;
        let (_, t_async, _) = run_force(&cfg_async, |c, s, st, f| force_phase_async(c, s, st, f));
        let (_, t_cached, _) = run_force(&cfg_cached, force_phase_cached);
        assert!(
            t_async < t_cached,
            "async force phase ({t_async:.4}s) should beat blocking cached ({t_cached:.4}s)"
        );
    }

    #[test]
    fn aggregated_requests_record_source_statistics() {
        // §5.5 reports that >90 % of aggregated requests are served by a
        // single source thread.  That locality only appears after the
        // partitioner has made ownership spatially compact (checked by the
        // whole-simulation integration tests); here, with the initial block
        // distribution, we only require the statistic to be well-formed.
        let cfg = SimConfig::test(600, 4, OptLevel::AsyncAggregation);
        let (_, _, single) = run_force(&cfg, |c, s, st, f| force_phase_async(c, s, st, f));
        let fraction = single.expect("async engine must issue aggregated requests");
        assert!(fraction > 0.0 && fraction <= 1.0, "ill-formed single-source fraction {fraction}");
    }

    #[test]
    fn works_with_n_parameters_of_one() {
        let mut cfg = SimConfig::test(150, 2, OptLevel::AsyncAggregation);
        cfg.n1 = 1;
        cfg.n2 = 1;
        cfg.n3 = 1;
        let cfg_ref = SimConfig::test(150, 2, OptLevel::CacheLocalTree);
        let (a, _, _) = run_force(&cfg, |c, s, st, f| force_phase_async(c, s, st, f));
        let (b, _, _) = run_force(&cfg_ref, force_phase_cached);
        for (x, y) in a.iter().zip(&b) {
            assert!((x.acc - y.acc).norm() / y.acc.norm().max(1e-12) < 1e-9);
        }
    }
}
