//! The force-computation and body-advancement phases.
//!
//! Three force engines are provided, matching the paper's ladder:
//!
//! * [`force_phase_uncached`] — the literal translation: the walk
//!   dereferences pointers-to-shared for every cell it touches and re-reads
//!   `tol`/`eps` according to the level's scalar discipline (Tables 2–4).
//! * [`force_phase_cached`] — the §5.3.1 demand-driven cache
//!   ([`crate::cache::CacheTree`]) with blocking misses (Tables 5–6).
//! * the §5.5 non-blocking aggregated engine lives in [`crate::frontier`]
//!   (Table 7 onwards).
//!
//! The body-advancement phase ([`advance_phase`]) is the SPLASH-2 leapfrog
//! update, with the same access discipline as every other body access.

use crate::cache::CacheTree;
use crate::cellnode::NodeKind;
use crate::config::SimConfig;
use crate::shared::{read_body, read_eps, read_theta, write_body, BhShared, RankState};
use nbody::direct::pairwise_acceleration;
use nbody::{Body, Vec3};
use octree::walk::cell_is_far;
use pgas::{Ctx, GlobalPtr};

/// Per-body force result used by all engines before write-back.
#[derive(Debug, Clone, Copy)]
pub struct BodyForce {
    /// Global body id.
    pub id: u32,
    /// New acceleration.
    pub acc: Vec3,
    /// New potential.
    pub phi: f64,
    /// Interactions evaluated (next step's cost).
    pub cost: u32,
}

/// Writes computed forces back into the body table under the level's access
/// discipline.
///
/// On the redistributed path (§5.2 onwards) every force belongs to an owned,
/// local body (its pointer-to-shared cast to local), so the write-back runs
/// as one read pass over all owned bodies, the field updates in private
/// memory, then one write pass — instead of interleaving a read-modify-write
/// round trip through the body table per body.  The accesses stay individual
/// local slot accesses (not pgas bulk messages: nothing is remote here), and
/// the charged counts are identical to the per-body path — one local access
/// per body for the read and one for the write, charged in two batches.
pub fn write_back(
    ctx: &Ctx,
    shared: &BhShared,
    st: &RankState,
    cfg: &SimConfig,
    forces: &[BodyForce],
) {
    if cfg.opt.redistributes_bodies() {
        debug_assert!(
            forces.iter().all(|f| st.owns(f.id)),
            "owner-computes: only the owner may write a body"
        );
        // Read pass: all owned bodies, one batched charge.
        ctx.charge_local_accesses(forces.len() as u64);
        let mut bodies: Vec<Body> =
            forces.iter().map(|f| shared.bodytab.read_raw(f.id as usize)).collect();
        for (body, f) in bodies.iter_mut().zip(forces) {
            body.acc = f.acc;
            body.phi = f.phi;
            body.cost = f.cost.max(1);
        }
        // Write pass: the updated bodies back into the table, one batched
        // charge.
        ctx.charge_local_accesses(forces.len() as u64);
        for (body, f) in bodies.iter().zip(forces) {
            shared.bodytab.write_raw(f.id as usize, *body);
        }
    } else {
        for f in forces {
            let mut body = read_body(ctx, shared, st, cfg, f.id);
            body.acc = f.acc;
            body.phi = f.phi;
            body.cost = f.cost.max(1);
            write_body(ctx, shared, st, cfg, f.id, body);
        }
    }
}

/// The force phase of the literal translation (no caching): every visited
/// cell is re-read through its pointer-to-shared for every body.
pub fn force_phase_uncached(
    ctx: &Ctx,
    shared: &BhShared,
    st: &RankState,
    cfg: &SimConfig,
) -> Vec<BodyForce> {
    let root = shared.root.read(ctx);
    let mut out = Vec::with_capacity(st.my_ids.len());
    for &id in &st.my_ids {
        let body = read_body(ctx, shared, st, cfg, id);
        let force = walk_shared(ctx, shared, st, cfg, root, id, &body);
        out.push(force);
    }
    out
}

/// Walks the shared tree for one body without caching.
fn walk_shared(
    ctx: &Ctx,
    shared: &BhShared,
    st: &RankState,
    cfg: &SimConfig,
    root: GlobalPtr,
    id: u32,
    body: &Body,
) -> BodyForce {
    let mut acc = Vec3::ZERO;
    let mut phi = 0.0;
    let mut interactions = 0u32;
    let mut macs = 0u64;
    let fields = cfg.fine_grained_fields.max(1);

    let mut stack = vec![root];
    while let Some(ptr) = stack.pop() {
        // The literal translation reads the cell's fields one by one through
        // the pointer-to-shared (mass, centre of mass, child pointers), so
        // each visit is several fine-grained accesses.
        let mut node = shared.cells.read(ctx, ptr);
        for _ in 1..fields {
            node = shared.cells.read(ctx, ptr);
        }
        match node.kind {
            NodeKind::Body => {
                if node.body_id == id {
                    continue;
                }
                let eps = read_eps(ctx, shared, st, cfg.opt);
                let (a, p) = pairwise_acceleration(body.pos, node.cofm, node.mass, eps);
                acc += a;
                phi += p;
                interactions += 1;
            }
            NodeKind::Cell => {
                if node.nbodies == 0 {
                    continue;
                }
                macs += 1;
                let theta = read_theta(ctx, shared, st, cfg.opt);
                let dist_sq = body.pos.dist_sq(node.cofm);
                if cell_is_far(node.side(), dist_sq, theta) {
                    let eps = read_eps(ctx, shared, st, cfg.opt);
                    let (a, p) = pairwise_acceleration(body.pos, node.cofm, node.mass, eps);
                    acc += a;
                    phi += p;
                    interactions += 1;
                } else {
                    for c in node.children {
                        if !c.is_null() {
                            stack.push(c);
                        }
                    }
                }
            }
        }
    }
    ctx.charge_macs(macs);
    ctx.charge_interactions_shared_ptr(interactions as u64);
    BodyForce { id, acc, phi, cost: interactions }
}

/// The §5.3 cached force phase: one cache tree per rank, blocking
/// localization on miss.
///
/// [`SimConfig::shadow_cache`] selects between the §5.3.1 separate local tree
/// ([`CacheTree`]) and the §5.3.2 merged local tree with shadow pointers
/// ([`crate::shadow::ShadowCacheTree`]); both produce identical forces and
/// identical remote traffic.
///
/// Under per-step rebuild the cache lives for exactly one step, as the paper
/// describes.  Under a persistent [`crate::config::TreePolicy`] the cache is
/// carried in [`RankState`] across steps: while the tree generation is
/// unchanged it is refreshed in place (payload re-reads, arenas
/// re-coalesced, allocations kept); a full rebuild bumps the generation and
/// invalidates it.
///
/// Under [`crate::config::WalkMode::Group`] the per-group engine
/// ([`crate::groupwalk::force_phase_group`]) replaces the per-body loops
/// below: one traversal per body group, the resulting interaction list
/// applied to every member with the same SoA leaf-coalesced kernel.  The
/// per-body path here stays bit-for-bit what it was before the walk-mode
/// knob existed.
pub fn force_phase_cached(
    ctx: &Ctx,
    shared: &BhShared,
    st: &mut RankState,
    cfg: &SimConfig,
) -> Vec<BodyForce> {
    if cfg.walk == crate::config::WalkMode::Group {
        return crate::groupwalk::force_phase_group(ctx, shared, st, cfg);
    }
    let theta = read_theta(ctx, shared, st, cfg.opt);
    let eps = read_eps(ctx, shared, st, cfg.opt);
    let persistent = crate::lifecycle::persistent_tree(cfg);
    let generation = st.lifecycle.generation;
    let mut out = Vec::with_capacity(st.my_ids.len());
    if cfg.shadow_cache {
        let mut cache = match st.shadow_slot.take() {
            Some(mut c) if persistent && c.generation == generation => {
                c.refresh(ctx, shared);
                c
            }
            _ => crate::shadow::ShadowCacheTree::new_for(ctx, shared, generation),
        };
        for &id in &st.my_ids {
            let body = read_body(ctx, shared, st, cfg, id);
            let r = cache.walk(ctx, shared, body.pos, id, theta, eps);
            out.push(BodyForce { id, acc: r.acc, phi: r.phi, cost: r.interactions });
        }
        if persistent {
            st.shadow_slot = Some(cache);
        }
    } else {
        let mut cache = match st.cache_slot.take() {
            Some(mut c) if persistent && c.generation == generation => {
                c.refresh(ctx, shared);
                c
            }
            _ => CacheTree::new_for(ctx, shared, generation),
        };
        for &id in &st.my_ids {
            let body = read_body(ctx, shared, st, cfg, id);
            let r = cache.walk(ctx, shared, body.pos, id, theta, eps);
            out.push(BodyForce { id, acc: r.acc, phi: r.phi, cost: r.interactions });
        }
        if persistent {
            st.cache_slot = Some(cache);
        }
    }
    out
}

/// The body-advancement phase ("Body-adv."): a leapfrog update of every
/// owned body using the freshly computed accelerations.
pub fn advance_phase(ctx: &Ctx, shared: &BhShared, st: &RankState, cfg: &SimConfig) {
    for &id in &st.my_ids {
        let mut body = read_body(ctx, shared, st, cfg, id);
        body.vel += body.acc * cfg.dt;
        body.pos += body.vel * cfg.dt;
        write_body(ctx, shared, st, cfg, id, body);
    }
    ctx.charge_local_accesses(2 * st.my_ids.len() as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptLevel;
    use crate::shared::RankState;
    use crate::treebuild::{
        allocate_root, bounding_box_phase, center_of_mass_phase, insert_owned_bodies,
    };
    use nbody::direct;
    use pgas::Runtime;

    fn forces_with(
        cfg: &SimConfig,
        engine: impl Fn(&Ctx, &BhShared, &mut RankState, &SimConfig) -> Vec<BodyForce> + Sync,
    ) -> (Vec<Body>, Vec<Body>, u64) {
        let shared = BhShared::new(cfg);
        let initial = shared.bodytab.snapshot();
        let rt = Runtime::new(cfg.machine.clone());
        let report = rt.run(|ctx| {
            let mut st = RankState::new(ctx, &shared, cfg);
            let (center, rsize) = bounding_box_phase(ctx, &shared, &mut st, cfg);
            allocate_root(ctx, &shared, center, rsize);
            ctx.barrier();
            insert_owned_bodies(ctx, &shared, &mut st, cfg);
            ctx.barrier();
            center_of_mass_phase(ctx, &shared, &mut st, cfg);
            ctx.barrier();
            let forces = engine(ctx, &shared, &mut st, cfg);
            write_back(ctx, &shared, &st, cfg, &forces);
            ctx.barrier();
        });
        (initial, shared.bodytab.snapshot(), report.total_stats().remote_gets)
    }

    fn max_relative_error(result: &[Body], reference: &[Body]) -> f64 {
        result
            .iter()
            .zip(reference)
            .map(|(a, b)| (a.acc - b.acc).norm() / b.acc.norm().max(1e-12))
            .fold(0.0, f64::max)
    }

    #[test]
    fn uncached_forces_agree_with_sequential_tree_code() {
        let cfg = SimConfig::test(200, 3, OptLevel::ReplicateScalars);
        let (initial, after, _) =
            forces_with(&cfg, |c, s, st, f| force_phase_uncached(c, s, st, f));
        let reference = octree::walk::compute_forces(&initial, cfg.theta, cfg.eps);
        // Both are Barnes-Hut with theta=1; trees may differ slightly in
        // construction order (and hence grouping), so allow a loose bound
        // while requiring agreement with direct summation below.
        let direct_ref = direct::compute_forces(&initial, cfg.eps);
        let err_direct = after
            .iter()
            .zip(&direct_ref)
            .map(|(a, b)| (a.acc - b.acc).norm() / b.acc.norm().max(1e-12))
            .sum::<f64>()
            / after.len() as f64;
        assert!(err_direct < 0.05, "mean error vs direct summation too large: {err_direct}");
        let _ = reference;
    }

    #[test]
    fn cached_and_uncached_forces_are_identical() {
        // Same tree, same traversal criterion: the cached walk must produce
        // exactly the same accelerations as the uncached walk.
        let cfg_a = SimConfig::test(250, 4, OptLevel::Redistribute);
        let cfg_b = SimConfig::test(250, 4, OptLevel::CacheLocalTree);
        let (_, after_uncached, remote_uncached) =
            forces_with(&cfg_a, |c, s, st, f| force_phase_uncached(c, s, st, f));
        let (_, after_cached, remote_cached) = forces_with(&cfg_b, force_phase_cached);
        let err = max_relative_error(&after_cached, &after_uncached);
        assert!(err < 1e-9, "cached vs uncached force mismatch: {err}");
        assert!(
            remote_cached < remote_uncached,
            "caching must reduce remote traffic ({remote_cached} vs {remote_uncached})"
        );
    }

    #[test]
    fn batched_write_back_charges_match_per_body_discipline() {
        // The redistributed-path write-back runs as two passes with batched
        // charges but must charge exactly what the per-body discipline
        // charged: one local access per body for the read and one for the
        // write, and no remote traffic at all.
        let cfg = SimConfig::test(60, 2, OptLevel::Redistribute);
        let shared = BhShared::new(&cfg);
        let rt = Runtime::new(cfg.machine.clone());
        rt.run(|ctx| {
            let st = RankState::new(ctx, &shared, &cfg);
            let forces: Vec<BodyForce> = st
                .my_ids
                .iter()
                .map(|&id| BodyForce { id, acc: Vec3::ZERO, phi: -1.0, cost: 7 })
                .collect();
            let before = ctx.stats_snapshot();
            write_back(ctx, &shared, &st, &cfg, &forces);
            let charged = ctx.stats_snapshot().delta(&before);
            assert_eq!(charged.local_accesses, 2 * forces.len() as u64);
            assert_eq!(charged.remote_gets, 0);
            assert_eq!(charged.remote_puts, 0);
            ctx.barrier();
        });
        let snap = shared.bodytab.snapshot();
        assert!(snap.iter().all(|b| b.cost == 7 && b.phi == -1.0));
    }

    #[test]
    fn advance_phase_moves_bodies() {
        let cfg = SimConfig::test(50, 2, OptLevel::Redistribute);
        let shared = BhShared::new(&cfg);
        let before = shared.bodytab.snapshot();
        let rt = Runtime::new(cfg.machine.clone());
        rt.run(|ctx| {
            let st = RankState::new(ctx, &shared, &cfg);
            advance_phase(ctx, &shared, &st, &cfg);
            ctx.barrier();
        });
        let after = shared.bodytab.snapshot();
        let moved = before.iter().zip(&after).filter(|(b, a)| (b.pos - a.pos).norm() > 0.0).count();
        // Plummer bodies have non-zero velocities, so essentially all move.
        assert!(moved > before.len() * 9 / 10);
    }

    #[test]
    fn baseline_force_reads_scalars_remotely_replicated_does_not() {
        let base = SimConfig::test(80, 2, OptLevel::Baseline);
        let repl = SimConfig::test(80, 2, OptLevel::ReplicateScalars);
        let (_, _, base_remote) =
            forces_with(&base, |c, s, st, f| force_phase_uncached(c, s, st, f));
        let (_, _, repl_remote) =
            forces_with(&repl, |c, s, st, f| force_phase_uncached(c, s, st, f));
        assert!(
            base_remote > repl_remote,
            "baseline must perform more remote reads ({base_remote}) than replicated scalars ({repl_remote})"
        );
    }
}
