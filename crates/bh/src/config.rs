//! Simulation configuration — re-exported from the solver-neutral
//! [`engine`] crate.
//!
//! [`SimConfig`] and [`OptLevel`] moved to `engine::config` when the backend
//! layer was introduced, so that every solver (`bh`, `bh_mpi`, the direct
//! reference) shares one configuration type without depending on this crate.
//! This module keeps the historical `bh::config::*` and `bh::SimConfig`
//! paths working.

pub use engine::config::{OptLevel, SimConfig, TreeBuild, TreePolicy, WalkMode};
