//! Group tree-walks: one traversal per body *group*, evaluated through
//! per-group interaction lists ([`crate::config::WalkMode::Group`]).
//!
//! The per-body force walk — even with the §5.3 cache hiding the *second*
//! touch of every cell — still pays one full traversal per body, so the
//! number of multipole-acceptance tests scales with `n · depth`.  Barnes'
//! classic group-walk refinement ("A modified tree code: don't laugh, it
//! runs") amortizes one traversal over a whole group of nearby bodies:
//!
//! * the rank's owned bodies are partitioned into [`GROUP_SIZE`]-body
//!   groups by Morton order (spatially compact, so the group bounding boxes
//!   stay tight);
//! * each group walks the force cache **once**, producing an *interaction
//!   list* under a *conservative* opening criterion: a cell is opened when
//!   **any** point of the group's bounding box could open it under θ
//!   (`l/d_min ≥ θ` with `d_min` the box-to-centre-of-mass distance).
//!   Since every member body lies inside the box, `d_min ≤ d_body`, so
//!   every cell the group *accepts* would also be accepted by each member's
//!   own criterion — per-body accuracy is never worse;
//! * each list entry records how the box saw the cell.  Cells far even from
//!   the *nearest* box corner are [`EntryKind::Accepted`] for every member;
//!   cells near even at the *farthest* corner are [`EntryKind::Opened`] for
//!   every member (any member's own test would open them too).  For the
//!   borderline shell in between, the builder runs each member's *own*
//!   acceptance test once, at list-construction time: if every member
//!   accepts, the cell is recorded as [`EntryKind::Accepted`] and its
//!   subtree is never touched (no localization, no descent — exactly like
//!   the per-body walks, which never open it either); if every member
//!   opens, it is [`EntryKind::Opened`]; otherwise it is
//!   [`EntryKind::Mixed`] with a per-member accept bitmask and its subtree
//!   extent, and each member either takes the point mass and skips the
//!   subtree or streams the cell's coalesced leaf batch
//!   ([`crate::cache::LeafArena`]) and descends.  The member-level
//!   decisions therefore reproduce the per-body criterion *exactly*: with
//!   fresh lists the group walk computes bit-for-bit the per-body forces,
//!   the identical interaction count and the identical localization set,
//!   while the traversal volume (the `macs` counter: one group test per
//!   visited cell, plus the member tests of the borderline shell, billed
//!   once per list instead of once per body) drops by roughly the group
//!   occupancy — and a list reused across steps applies with no
//!   acceptance tests at all.
//!
//! Under a reuse-capable [`TreePolicy`](crate::config::TreePolicy), the
//! lists are carried across steps in [`crate::shared::RankState`] while the
//! tree generation is unchanged: payloads are epoch-refreshed lazily (the
//! same discipline as the cache itself), and a group's list is rebuilt when
//! a member migrated away, left the group's bounding box, had its leaf
//! relocated (the [`crate::lifecycle::LeafSite`] table records the leaf and
//! parent pointers), or when an opened list cell was subdivided underneath
//! (the epoch refresh drops its localization).  Under the strict
//! `drift_threshold: 0` reuse mode — whose contract is bit-for-bit
//! equivalence with per-step rebuild — lists are rebuilt every step, so the
//! walk sees exactly the tree a rebuild would have produced.

use crate::cache::CacheTree;
use crate::cellnode::{CellNode, NodeKind};
use crate::config::{SimConfig, TreePolicy};
use crate::force::BodyForce;
use crate::lifecycle;
use crate::shadow::ShadowCacheTree;
use crate::shared::{read_body, read_eps, read_theta, BhShared, RankState};
use nbody::direct::pairwise_acceleration;
use nbody::{morton, Vec3};
use octree::walk::cell_is_far;
use pgas::{Ctx, GlobalPtr};
use std::collections::{HashMap, HashSet};

/// Target number of bodies per walk group.  Eight matches one octree level
/// of fan-out: the Morton chunks stay within a few sibling leaf cells, so
/// the group boxes stay tight (the mixed borderline shell, where members
/// fall back to their own acceptance tests, stays thin) while the traversal
/// volume drops by roughly this factor.
pub const GROUP_SIZE: usize = 8;

/// When interaction lists are carried across steps, the group box is padded
/// by this many steps of the fastest member's motion (`pad = steps · v_max
/// · dt`).  A tight box would be invalidated by the very first move of
/// whichever member defines a face; the pad keeps the list conservative
/// for every position the members can reach before the next rebuild is due
/// anyway, at the cost of a slightly thicker mixed shell.
pub const LIST_PAD_STEPS: f64 = 1.0;

/// A cached list may be applied for at most this many steps after it was
/// built.  The box pad keeps a reused list *conservative*, but its
/// accept/open decisions are frozen at build time while the bodies and the
/// cell summaries keep moving; one step of that drift is a bounded, tested
/// approximation (fast coherently-moving workloads — rotating disks — are
/// the worst case), while longer freezes degrade accuracy for diminishing
/// traversal savings (most lists die to leaf relocations first anyway).
pub const MAX_LIST_AGE: u32 = 1;

/// The cache-side interface the group walk needs; implemented by
/// [`CacheTree`] and [`ShadowCacheTree`] (in their own modules, where the
/// private localization machinery is visible).
pub(crate) trait WalkCache {
    /// Ensures node `idx`'s payload was read in the current epoch and
    /// returns it.
    fn payload(&mut self, ctx: &Ctx, shared: &BhShared, idx: usize) -> CellNode;
    /// Node `idx`'s payload without a freshness check (the caller has
    /// already ensured it this epoch).
    fn node(&self, idx: usize) -> CellNode;
    /// `true` once node `idx`'s children are localized.
    fn is_localized(&self, idx: usize) -> bool;
    /// Localizes node `idx`'s children (blocking reads) or, when already
    /// localized, brings them into the current epoch and re-coalesces the
    /// leaf batch.
    fn open(&mut self, ctx: &Ctx, shared: &BhShared, idx: usize);
    /// Cell-kind children of an opened node, in octant order.
    fn kids(&self, idx: usize) -> &[u32];
    /// Accumulates the opened node's coalesced leaf batch onto `(acc, phi)`
    /// (skipping `self_id`), returning the interactions evaluated.
    fn accumulate(
        &self,
        idx: usize,
        pos: Vec3,
        self_id: u32,
        eps: f64,
        acc: &mut Vec3,
        phi: &mut f64,
    ) -> u32;
}

/// How the group criterion classified a list entry's cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EntryKind {
    /// Every member takes the node as a point mass: far from every point of
    /// the group box, or borderline but accepted by every member's own test
    /// at build time (and body-leaf roots).  No subtree follows.
    Accepted,
    /// Every member streams the leaf batch: near even at the farthest box
    /// corner, or borderline but opened by every member's test.
    Opened,
    /// The members' own tests disagreed at build time: `mask` records who
    /// accepts (takes the point mass and jumps over the `skip` subtree
    /// entries) and who descends.
    Mixed,
}

/// One entry of a group's interaction list, in depth-first traversal order
/// (matching the per-body walk's evaluation order exactly).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ListEntry {
    /// Cache-node index.
    pub idx: u32,
    /// Group-level classification.
    pub kind: EntryKind,
    /// For [`EntryKind::Mixed`]: bit `i` set when member `i` (by position
    /// in the group) accepts the cell as a point mass.
    pub mask: u16,
    /// Number of following entries that belong to this cell's subtree
    /// (meaningful for [`EntryKind::Mixed`]; an accepting member jumps over
    /// them).
    pub skip: u32,
}

/// One body group with its cached interaction list.
#[derive(Debug, Clone)]
pub(crate) struct CachedGroup {
    /// Member body ids.
    ids: Vec<u32>,
    /// Bounding box of the member positions when the list was built.
    lo: Vec3,
    hi: Vec3,
    /// Each member's `(leaf, parent)` pointers from the [`lifecycle`] site
    /// table when the list was built; a mismatch means the leaf relocated
    /// and the list must be rebuilt.
    sites: Vec<(GlobalPtr, GlobalPtr)>,
    /// Steps this list has been applied since it was built (see
    /// [`MAX_LIST_AGE`]).
    age: u32,
    /// The interaction list (empty until first built).
    list: Vec<ListEntry>,
}

/// The per-rank group-list cache carried across steps in
/// [`RankState::group_slot`] while the tree generation is unchanged.
#[derive(Debug, Clone)]
pub struct GroupLists {
    /// Tree generation the lists' cache-node indices refer to.
    pub generation: u64,
    groups: Vec<CachedGroup>,
}

/// Squared distance from point `p` to the axis-aligned box `[lo, hi]`
/// (zero when `p` lies inside).
#[inline]
pub fn aabb_dist_sq(lo: Vec3, hi: Vec3, p: Vec3) -> f64 {
    let dx = (lo.x - p.x).max(0.0).max(p.x - hi.x);
    let dy = (lo.y - p.y).max(0.0).max(p.y - hi.y);
    let dz = (lo.z - p.z).max(0.0).max(p.z - hi.z);
    dx * dx + dy * dy + dz * dz
}

/// Squared distance from point `p` to the farthest point of the box
/// `[lo, hi]`.
#[inline]
pub fn aabb_max_dist_sq(lo: Vec3, hi: Vec3, p: Vec3) -> f64 {
    let dx = (p.x - lo.x).abs().max((p.x - hi.x).abs());
    let dy = (p.y - lo.y).abs().max((p.y - hi.y).abs());
    let dz = (p.z - lo.z).abs().max((p.z - hi.z).abs());
    dx * dx + dy * dy + dz * dz
}

/// The conservative group opening decision: `true` when the cell (side `l`,
/// centre of mass at `cofm`) is far from **every** point of the box — so
/// far from every member body too.
#[inline]
pub fn group_cell_is_far(l: f64, lo: Vec3, hi: Vec3, cofm: Vec3, theta: f64) -> bool {
    cell_is_far(l, aabb_dist_sq(lo, hi, cofm), theta)
}

/// `true` when the cell is far even from the *farthest* point of the box:
/// a point at that distance would accept it, so a cell the group cannot
/// accept outright (some box point is near) while this holds sits in the
/// *borderline shell*, where the members' own tests decide.
#[inline]
pub fn group_cell_all_far(l: f64, lo: Vec3, hi: Vec3, cofm: Vec3, theta: f64) -> bool {
    cell_is_far(l, aabb_max_dist_sq(lo, hi, cofm), theta)
}

/// `true` when [`build_list`] would descend into this cell for the given
/// members: the box cannot accept it for everyone, and in the borderline
/// shell at least one member's own test opens it.  The §5.5 group engine's
/// discovery pass uses this to localize exactly the cells the final list
/// build will open.
#[inline]
pub(crate) fn group_descends(
    l: f64,
    lo: Vec3,
    hi: Vec3,
    cofm: Vec3,
    members: &[Vec3],
    theta: f64,
) -> bool {
    if group_cell_is_far(l, lo, hi, cofm, theta) {
        return false;
    }
    if group_cell_all_far(l, lo, hi, cofm, theta) {
        return members.iter().any(|&p| !cell_is_far(l, p.dist_sq(cofm), theta));
    }
    true
}

/// A freshly partitioned body group (before any list exists).
#[derive(Debug, Clone)]
pub(crate) struct Group {
    pub ids: Vec<u32>,
    pub positions: Vec<Vec3>,
    pub lo: Vec3,
    pub hi: Vec3,
}

/// Partitions `(id, position)` pairs into Morton-ordered groups of at most
/// [`GROUP_SIZE`] bodies, with the tight bounding box of each chunk.
/// `center`/`rsize` give the cube the Morton keys are computed in (the
/// step's global bounding box).
pub(crate) fn partition_groups(members: &[(u32, Vec3)], center: Vec3, rsize: f64) -> Vec<Group> {
    let mut order: Vec<usize> = (0..members.len()).collect();
    let rsize = if rsize > 0.0 { rsize } else { 1.0 };
    order.sort_by_key(|&i| (morton::encode(members[i].1, center, rsize), members[i].0));
    order
        .chunks(GROUP_SIZE)
        .map(|chunk| {
            let mut lo = Vec3::new(f64::INFINITY, f64::INFINITY, f64::INFINITY);
            let mut hi = Vec3::new(f64::NEG_INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY);
            let mut ids = Vec::with_capacity(chunk.len());
            let mut positions = Vec::with_capacity(chunk.len());
            for &i in chunk {
                let (id, pos) = members[i];
                ids.push(id);
                positions.push(pos);
                lo.x = lo.x.min(pos.x);
                lo.y = lo.y.min(pos.y);
                lo.z = lo.z.min(pos.z);
                hi.x = hi.x.max(pos.x);
                hi.y = hi.y.max(pos.y);
                hi.z = hi.z.max(pos.z);
            }
            Group { ids, positions, lo, hi }
        })
        .collect()
}

/// Walks the cache once for the box `[lo, hi]`, producing the interaction
/// list under the conservative group criterion.  Bills one MAC per visited
/// non-empty cell (the group test) plus, for cells in the borderline shell
/// where the group test cannot decide for everyone, one member test each —
/// billed here, once per list, instead of once per body per step.
///
/// `members` are the group's body positions, in group order (the bit order
/// of [`ListEntry::mask`]).
///
/// The list is in depth-first order with children descended in *reverse*
/// octant order — the order the per-body stack walks evaluate in — so a
/// member filtering the list by the recorded masks reproduces its per-body
/// walk bit for bit.
pub(crate) fn build_list<C: WalkCache>(
    ctx: &Ctx,
    shared: &BhShared,
    cache: &mut C,
    lo: Vec3,
    hi: Vec3,
    members: &[Vec3],
    theta: f64,
) -> Vec<ListEntry> {
    assert!(!members.is_empty() && members.len() <= 16, "ListEntry::mask holds 1..=16 members");
    let mut list = Vec::new();
    let mut macs = 0u64;
    build_node(ctx, shared, cache, 0, lo, hi, members, theta, &mut list, &mut macs);
    ctx.charge_macs(macs);
    list
}

/// Recursive helper of [`build_list`]: classifies one cache node and, when
/// opened, its subtree, backpatching the subtree extent.
#[allow(clippy::too_many_arguments)]
fn build_node<C: WalkCache>(
    ctx: &Ctx,
    shared: &BhShared,
    cache: &mut C,
    idx: u32,
    lo: Vec3,
    hi: Vec3,
    members: &[Vec3],
    theta: f64,
    list: &mut Vec<ListEntry>,
    macs: &mut u64,
) {
    let node = cache.payload(ctx, shared, idx as usize);
    match node.kind {
        NodeKind::Body => {
            // Only reachable when the root itself is a body leaf; the
            // member-id exclusion happens at evaluation time.
            list.push(ListEntry { idx, kind: EntryKind::Accepted, mask: 0, skip: 0 });
        }
        NodeKind::Cell => {
            if node.nbodies == 0 {
                return;
            }
            *macs += 1;
            if group_cell_is_far(node.side(), lo, hi, node.cofm, theta) {
                list.push(ListEntry { idx, kind: EntryKind::Accepted, mask: 0, skip: 0 });
                return;
            }
            // The box could not accept for everyone.  In the borderline
            // shell (some box point would accept), the members' own tests
            // decide, recorded once in the mask; nearer cells are opened by
            // every member's test automatically.
            let mut kind = EntryKind::Opened;
            let mut mask = 0u16;
            if group_cell_all_far(node.side(), lo, hi, node.cofm, theta) {
                *macs += members.len() as u64;
                for (i, &pos) in members.iter().enumerate() {
                    if cell_is_far(node.side(), pos.dist_sq(node.cofm), theta) {
                        mask |= 1 << i;
                    }
                }
                // Shift-safe full mask for 1..=16 members (`1u16 << 16`
                // would overflow).
                let full = u16::MAX >> (16 - members.len());
                if mask == full {
                    // Every member accepts: the subtree is never needed —
                    // no localization, no descent, exactly like the
                    // per-body walks.
                    list.push(ListEntry { idx, kind: EntryKind::Accepted, mask: 0, skip: 0 });
                    return;
                }
                if mask != 0 {
                    kind = EntryKind::Mixed;
                }
            }
            cache.open(ctx, shared, idx as usize);
            let at = list.len();
            list.push(ListEntry { idx, kind, mask, skip: 0 });
            let kids: Vec<u32> = cache.kids(idx as usize).to_vec();
            for &k in kids.iter().rev() {
                build_node(ctx, shared, cache, k, lo, hi, members, theta, list, macs);
            }
            list[at].skip = (list.len() - at - 1) as u32;
        }
    }
}

/// Brings a cached list's nodes into the current epoch: payload re-reads
/// (the same lazy refresh the cache walks do) plus leaf-batch re-coalescing
/// for the opened cells.  Returns `false` when an opened cell lost its
/// localization (a slot was subdivided underneath) — the list no longer
/// covers the tree below it and must be rebuilt.
fn refresh_list<C: WalkCache>(
    ctx: &Ctx,
    shared: &BhShared,
    cache: &mut C,
    list: &[ListEntry],
) -> bool {
    for e in list {
        cache.payload(ctx, shared, e.idx as usize);
        if e.kind != EntryKind::Accepted {
            if !cache.is_localized(e.idx as usize) {
                return false;
            }
            cache.open(ctx, shared, e.idx as usize);
        }
    }
    true
}

/// Applies one interaction list to the group's `member`-th body.  Every
/// payload has been ensured fresh by [`build_list`]/[`refresh_list`] and
/// every acceptance decision is already recorded in the list, so the
/// evaluation is purely local arithmetic: one point-mass interaction per
/// accepted entry, the SoA leaf batch per opened entry, the recorded mask
/// bit at mixed entries (point mass + subtree skip when set), with the
/// member's own leaf excluded by id throughout.  Returns
/// `(acc, phi, interactions)`.
pub(crate) fn apply_list<C: WalkCache>(
    cache: &C,
    list: &[ListEntry],
    member: usize,
    pos: Vec3,
    self_id: u32,
    eps: f64,
) -> (Vec3, f64, u32) {
    let mut acc = Vec3::ZERO;
    let mut phi = 0.0;
    let mut interactions = 0u32;
    let mut i = 0usize;
    while i < list.len() {
        let e = list[i];
        i += 1;
        let node = cache.node(e.idx as usize);
        match e.kind {
            EntryKind::Accepted => {
                if node.is_body() && node.body_id == self_id {
                    continue;
                }
                if node.is_cell() && node.nbodies == 0 {
                    continue;
                }
                let (a, p) = pairwise_acceleration(pos, node.cofm, node.mass, eps);
                acc += a;
                phi += p;
                interactions += 1;
            }
            EntryKind::Opened => {
                interactions +=
                    cache.accumulate(e.idx as usize, pos, self_id, eps, &mut acc, &mut phi);
            }
            EntryKind::Mixed => {
                if node.nbodies == 0 {
                    i += e.skip as usize;
                    continue;
                }
                if e.mask & (1 << member) != 0 {
                    let (a, p) = pairwise_acceleration(pos, node.cofm, node.mass, eps);
                    acc += a;
                    phi += p;
                    interactions += 1;
                    i += e.skip as usize;
                } else {
                    interactions +=
                        cache.accumulate(e.idx as usize, pos, self_id, eps, &mut acc, &mut phi);
                }
            }
        }
    }
    (acc, phi, interactions)
}

/// The group-walk force phase ([`crate::config::WalkMode::Group`] at the
/// caching levels): the counterpart of
/// [`crate::force::force_phase_cached`], dispatching on
/// [`SimConfig::shadow_cache`] like it does and carrying both the force
/// cache and the group lists across steps under a persistent tree policy.
pub fn force_phase_group(
    ctx: &Ctx,
    shared: &BhShared,
    st: &mut RankState,
    cfg: &SimConfig,
) -> Vec<BodyForce> {
    let theta = read_theta(ctx, shared, st, cfg.opt);
    let eps = read_eps(ctx, shared, st, cfg.opt);
    let persistent = lifecycle::persistent_tree(cfg);
    let generation = st.lifecycle.generation;
    // Strict reuse (`drift_threshold: 0`) promises bit-for-bit equivalence
    // with per-step rebuild, so lists are rebuilt from the (bit-identical)
    // tree every step; list reuse would freeze earlier steps' opening
    // decisions instead.
    let strict = matches!(cfg.tree_policy, TreePolicy::Reuse { drift_threshold, .. } if drift_threshold == 0.0);
    let reuse_lists = persistent && !strict;

    if cfg.shadow_cache {
        let (mut cache, carried) = match st.shadow_slot.take() {
            Some(mut c) if persistent && c.generation == generation => {
                c.refresh(ctx, shared);
                (c, true)
            }
            _ => (ShadowCacheTree::new_for(ctx, shared, generation), false),
        };
        let prior = match st.group_slot.take() {
            Some(l) if reuse_lists && carried && l.generation == generation => Some(l),
            _ => None,
        };
        let (out, lists) =
            group_forces(ctx, shared, st, cfg, &mut cache, prior, reuse_lists, theta, eps);
        if persistent {
            st.shadow_slot = Some(cache);
            if reuse_lists {
                st.group_slot = Some(lists);
            }
        }
        out
    } else {
        let (mut cache, carried) = match st.cache_slot.take() {
            Some(mut c) if persistent && c.generation == generation => {
                c.refresh(ctx, shared);
                (c, true)
            }
            _ => (CacheTree::new_for(ctx, shared, generation), false),
        };
        let prior = match st.group_slot.take() {
            Some(l) if reuse_lists && carried && l.generation == generation => Some(l),
            _ => None,
        };
        let (out, lists) =
            group_forces(ctx, shared, st, cfg, &mut cache, prior, reuse_lists, theta, eps);
        if persistent {
            st.cache_slot = Some(cache);
            if reuse_lists {
                st.group_slot = Some(lists);
            }
        }
        out
    }
}

/// The generic group force phase over either cache flavour: keep the prior
/// step's groups whose members this rank still owns, regroup the leftovers,
/// re-validate or rebuild each group's list, and evaluate every member
/// against its group's list.
#[allow(clippy::too_many_arguments)]
fn group_forces<C: WalkCache>(
    ctx: &Ctx,
    shared: &BhShared,
    st: &RankState,
    cfg: &SimConfig,
    cache: &mut C,
    prior: Option<GroupLists>,
    reuse_lists: bool,
    theta: f64,
    eps: f64,
) -> (Vec<BodyForce>, GroupLists) {
    // Read every owned body once, under the same access discipline as the
    // per-body engine.  Speeds feed the list-reuse box padding.
    let mut pos_of: HashMap<u32, (Vec3, f64)> = HashMap::with_capacity(st.my_ids.len());
    let mut members: Vec<(u32, Vec3)> = Vec::with_capacity(st.my_ids.len());
    for &id in &st.my_ids {
        let body = read_body(ctx, shared, st, cfg, id);
        pos_of.insert(id, (body.pos, body.vel.norm()));
        members.push((id, body.pos));
    }

    // Keep prior groups whose members are all still owned; everything else
    // (fresh ranks, migrated-in bodies) is regrouped by Morton order.
    let mut groups: Vec<CachedGroup> = Vec::new();
    let mut covered: HashSet<u32> = HashSet::new();
    if let Some(prior) = prior {
        for g in prior.groups {
            if g.ids.iter().all(|&id| st.owns(id)) {
                covered.extend(g.ids.iter().copied());
                groups.push(g);
            }
        }
    }
    let leftovers: Vec<(u32, Vec3)> =
        members.iter().copied().filter(|(id, _)| !covered.contains(id)).collect();
    if !leftovers.is_empty() {
        let center = (st.bbox_lo + st.bbox_hi) * 0.5;
        let extent = st.bbox_hi - st.bbox_lo;
        let rsize = extent.x.max(extent.y).max(extent.z);
        for g in partition_groups(&leftovers, center, rsize) {
            groups.push(CachedGroup {
                ids: g.ids,
                lo: g.lo,
                hi: g.hi,
                sites: Vec::new(),
                age: 0,
                list: Vec::new(),
            });
        }
    }

    // Site snapshots and box padding only matter when the lists may be
    // applied on a later step; under per-step rebuild *and* under the
    // strict `drift_threshold: 0` reuse mode (whose contract is
    // counter-for-counter comparability with rebuild) they would only
    // thicken the borderline shell and bill site reads for nothing.
    let track_sites = reuse_lists;
    let mut out = Vec::with_capacity(st.my_ids.len());
    let mut total_interactions = 0u64;
    for g in &mut groups {
        // A cached list stays valid while it is young enough for its frozen
        // decisions, every member is still inside the box it was built for
        // and still hangs off the same leaf slot, and no opened cell was
        // subdivided underneath (checked by the epoch refresh).
        let mut valid = !g.list.is_empty() && g.age < MAX_LIST_AGE;
        if valid {
            for (k, &id) in g.ids.iter().enumerate() {
                let (pos, _) = pos_of[&id];
                if aabb_dist_sq(g.lo, g.hi, pos) > 0.0 {
                    valid = false;
                    break;
                }
                let site = lifecycle::read_site(ctx, shared, st, cfg, id);
                if !site.valid || g.sites.get(k).copied() != Some((site.leaf, site.parent)) {
                    valid = false;
                    break;
                }
            }
        }
        if valid {
            valid = refresh_list(ctx, shared, cache, &g.list);
        }
        if !valid {
            // (Re)build: one pass collects the member positions, the tight
            // box and the fresh site snapshot.  When lists are carried
            // across steps, the box is padded by a few steps of the fastest
            // member's motion, so the very next move of a face-defining
            // member does not invalidate it.
            let mut lo = Vec3::new(f64::INFINITY, f64::INFINITY, f64::INFINITY);
            let mut hi = Vec3::new(f64::NEG_INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY);
            let mut vmax = 0.0f64;
            let mut positions = Vec::with_capacity(g.ids.len());
            g.sites.clear();
            for &id in &g.ids {
                let (pos, speed) = pos_of[&id];
                positions.push(pos);
                vmax = vmax.max(speed);
                lo.x = lo.x.min(pos.x);
                lo.y = lo.y.min(pos.y);
                lo.z = lo.z.min(pos.z);
                hi.x = hi.x.max(pos.x);
                hi.y = hi.y.max(pos.y);
                hi.z = hi.z.max(pos.z);
                if track_sites {
                    let site = lifecycle::read_site(ctx, shared, st, cfg, id);
                    g.sites.push((site.leaf, site.parent));
                }
            }
            if track_sites {
                let pad = LIST_PAD_STEPS * vmax * cfg.dt;
                lo -= Vec3::new(pad, pad, pad);
                hi += Vec3::new(pad, pad, pad);
            }
            g.lo = lo;
            g.hi = hi;
            g.list = build_list(ctx, shared, cache, g.lo, g.hi, &positions, theta);
            g.age = 0;
        } else {
            g.age += 1;
        }

        for (k, &id) in g.ids.iter().enumerate() {
            let (pos, _) = pos_of[&id];
            let (acc, phi, interactions) = apply_list(cache, &g.list, k, pos, id, eps);
            total_interactions += interactions as u64;
            out.push(BodyForce { id, acc, phi, cost: interactions });
        }
    }
    ctx.charge_interactions(total_interactions);

    let generation = st.lifecycle.generation;
    (out, GroupLists { generation, groups })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptLevel;
    use crate::treebuild::{
        allocate_root, bounding_box_phase, center_of_mass_phase, insert_owned_bodies,
    };
    use pgas::Runtime;
    use proptest::prelude::*;

    /// Builds a shared tree over `bodies` and, on every rank, partitions the
    /// owned bodies into groups, builds their interaction lists and hands
    /// `(cache, groups, lists, member positions)` to the verifier.
    fn with_group_lists(
        bodies: Vec<nbody::Body>,
        ranks: usize,
        theta: f64,
        verify: impl Fn(f64, &CacheTree, &Group, &[ListEntry]) + Sync,
    ) {
        let mut cfg = SimConfig::test(bodies.len(), ranks, OptLevel::CacheLocalTree);
        cfg.theta = theta;
        let shared = BhShared::with_bodies(&cfg, bodies);
        let rt = Runtime::new(cfg.machine.clone());
        rt.run(|ctx| {
            let mut st = RankState::new(ctx, &shared, &cfg);
            let (center, rsize) = bounding_box_phase(ctx, &shared, &mut st, &cfg);
            allocate_root(ctx, &shared, center, rsize);
            ctx.barrier();
            insert_owned_bodies(ctx, &shared, &mut st, &cfg);
            ctx.barrier();
            center_of_mass_phase(ctx, &shared, &mut st, &cfg);
            ctx.barrier();

            let members: Vec<(u32, Vec3)> = st
                .my_ids
                .iter()
                .map(|&id| (id, shared.bodytab.read_raw(id as usize).pos))
                .collect();
            let mut cache = CacheTree::new(ctx, &shared);
            for g in partition_groups(&members, center, rsize) {
                let list =
                    build_list(ctx, &shared, &mut cache, g.lo, g.hi, &g.positions, cfg.theta);
                verify(cfg.theta, &cache, &g, &list);
            }
            ctx.barrier();
        });
    }

    /// The conservativeness/exactness contract of a freshly built list:
    /// every entry's classification agrees with each member's own per-body
    /// acceptance test.
    fn assert_list_matches_member_criteria(
        theta: f64,
        cache: &CacheTree,
        g: &Group,
        list: &[ListEntry],
    ) {
        for e in list {
            let node = cache.nodes[e.idx as usize].node;
            if node.is_body() {
                continue;
            }
            let member_far = |pos: Vec3| cell_is_far(node.side(), pos.dist_sq(node.cofm), theta);
            match e.kind {
                EntryKind::Accepted => {
                    for &pos in &g.positions {
                        assert!(
                            member_far(pos),
                            "group accepted a cell a member's own criterion would open \
                             (side {}, dist {})",
                            node.side(),
                            pos.dist(node.cofm)
                        );
                    }
                }
                EntryKind::Opened => {
                    for &pos in &g.positions {
                        assert!(!member_far(pos), "opened-for-all cell accepted by a member");
                    }
                }
                EntryKind::Mixed => {
                    for (i, &pos) in g.positions.iter().enumerate() {
                        assert_eq!(
                            e.mask & (1 << i) != 0,
                            member_far(pos),
                            "mixed mask disagrees with member {i}'s own criterion"
                        );
                    }
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Every scenario family, varied sizes/seeds/θ/rank counts: every
        /// cell the group criterion accepts would also be accepted by the
        /// per-body criterion of each member (and the opened/mixed
        /// classifications agree with the member tests too, so group-walk
        /// error is never worse than per-body error).
        #[test]
        fn group_lists_are_conservative_for_every_scenario_family(
            family in 0usize..6,
            nbodies in 48usize..160,
            seed in 0u64..1_000,
            theta in 0.5f64..1.2,
            ranks in 1usize..4,
        ) {
            let registry = scenarios::builtin();
            let scenario = registry.iter().nth(family).expect("six builtin families");
            let bodies = scenario.generate(nbodies, seed);
            with_group_lists(bodies, ranks, theta, assert_list_matches_member_criteria);
        }
    }

    #[test]
    fn aabb_distance_is_zero_inside_and_euclidean_outside() {
        let lo = Vec3::new(-1.0, -1.0, -1.0);
        let hi = Vec3::new(1.0, 1.0, 1.0);
        assert_eq!(aabb_dist_sq(lo, hi, Vec3::ZERO), 0.0);
        assert_eq!(aabb_dist_sq(lo, hi, Vec3::new(0.9, -0.9, 0.0)), 0.0);
        assert_eq!(aabb_dist_sq(lo, hi, Vec3::new(3.0, 0.0, 0.0)), 4.0);
        assert_eq!(aabb_dist_sq(lo, hi, Vec3::new(2.0, 2.0, 0.0)), 2.0);
    }

    #[test]
    fn group_criterion_is_conservative_for_points_in_the_box() {
        // If the group accepts, every point inside the box accepts.
        let lo = Vec3::new(0.0, 0.0, 0.0);
        let hi = Vec3::new(1.0, 1.0, 1.0);
        let cofm = Vec3::new(5.0, 0.5, 0.5);
        let theta = 1.0;
        let l = 3.0;
        assert!(group_cell_is_far(l, lo, hi, cofm, theta));
        for p in [lo, hi, Vec3::new(1.0, 0.0, 1.0), Vec3::new(0.3, 0.7, 0.2)] {
            assert!(cell_is_far(l, p.dist_sq(cofm), theta));
        }
        // A cell close enough that some box point would open it is opened.
        assert!(!group_cell_is_far(3.0, lo, hi, Vec3::new(2.0, 0.5, 0.5), theta));
    }

    #[test]
    fn partition_groups_chunks_by_morton_order_with_tight_boxes() {
        let members: Vec<(u32, Vec3)> =
            (0..20).map(|i| (i as u32, Vec3::new((i % 5) as f64, (i / 5) as f64, 0.0))).collect();
        let groups = partition_groups(&members, Vec3::new(2.0, 2.0, 0.0), 5.0);
        let total: usize = groups.iter().map(|g| g.ids.len()).sum();
        assert_eq!(total, 20);
        assert!(groups.iter().all(|g| g.ids.len() <= GROUP_SIZE));
        for g in &groups {
            for &id in &g.ids {
                let pos = members[id as usize].1;
                assert_eq!(aabb_dist_sq(g.lo, g.hi, pos), 0.0, "member outside its group box");
            }
        }
    }
}
