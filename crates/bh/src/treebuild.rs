//! Global-insertion tree building (§4 baseline through §5.3) and the
//! parallel centre-of-mass phase.
//!
//! This is the SPLASH-2 algorithm carried over to UPC: every thread inserts
//! the bodies it owns into one shared octree, protecting each cell
//! modification with a global lock.  All pointer traffic goes through
//! pointers-to-shared, so on a distributed machine every descent step of an
//! insertion can be a remote access — which is exactly why Table 2 shows the
//! phase taking hundreds of seconds.

use crate::cellnode::{CellNode, NodeKind};
use crate::config::SimConfig;
use crate::shared::{read_body, read_root_geometry, BhShared, RankState};
use nbody::{Body, Vec3};
use pgas::{Ctx, GlobalPtr};

/// Computes the root-cell geometry for this step: every rank reduces the
/// bounding box of its owned bodies, and the result is either written to the
/// shared scalars by thread 0 (baseline) or replicated locally (§5.1).
///
/// Returns `(center, rsize)`.
pub fn bounding_box_phase(
    ctx: &Ctx,
    shared: &BhShared,
    st: &mut RankState,
    cfg: &SimConfig,
) -> (Vec3, f64) {
    let mut lo = Vec3::splat(f64::INFINITY);
    let mut hi = Vec3::splat(f64::NEG_INFINITY);
    for &id in &st.my_ids {
        let b = read_body(ctx, shared, st, cfg, id);
        lo = lo.min(b.pos);
        hi = hi.max(b.pos);
    }
    if st.my_ids.is_empty() {
        lo = Vec3::ZERO;
        hi = Vec3::ZERO;
    }
    ctx.charge_local_accesses(st.my_ids.len() as u64);

    // Global reduction of the box.
    let boxes = ctx.allgather((lo, hi));
    let mut glo = Vec3::splat(f64::INFINITY);
    let mut ghi = Vec3::splat(f64::NEG_INFINITY);
    for (l, h) in boxes {
        glo = glo.min(l);
        ghi = ghi.max(h);
    }
    // Stash the raw box for the tree-lifecycle fit test (does the new box
    // still sit inside the persistent root cell?).
    st.bbox_lo = glo;
    st.bbox_hi = ghi;

    // Persistent-tree fast path (the lifecycle fit test, hoisted): while the
    // box still fits inside the live root cell, a reuse step keeps that
    // cube's geometry, so the fresh derivation below is dead work — and the
    // private root geometry must match the tree the forces actually walk.
    // If the lifecycle later orders a rebuild anyway (cadence, drift, lost
    // leaf), the rebuild arm re-derives the cube from the stashed box
    // (`bbox_kept_cube` tells it to), so rebuilt trees stay bit-identical
    // under every tree policy.
    st.bbox_kept_cube = false;
    if st.lifecycle.valid {
        let c = st.lifecycle.root_center;
        let h = st.lifecycle.root_half;
        let inside =
            |p: Vec3| (p.x - c.x).abs() <= h && (p.y - c.y).abs() <= h && (p.z - c.z).abs() <= h;
        if inside(glo) && inside(ghi) {
            st.bbox_kept_cube = true;
            st.center = c;
            st.rsize = 2.0 * h;
            return (c, 2.0 * h);
        }
    }

    let (center, rsize) = derive_root_cube(glo, ghi);
    publish_root_cube(ctx, shared, st, cfg, center, rsize);
    (center, rsize)
}

/// Derives the fresh root cube for a global bounding box: centred on the
/// box, sides the smallest power of two covering its largest extent.
pub fn derive_root_cube(glo: Vec3, ghi: Vec3) -> (Vec3, f64) {
    let center = (glo + ghi) * 0.5;
    let half_extent = (ghi - glo).max_abs_component() * 0.5;
    let mut rsize = 1.0f64;
    while rsize < 2.0 * half_extent + 1e-12 {
        rsize *= 2.0;
    }
    (center, rsize)
}

/// Publishes a freshly derived root cube: private copies always, the shared
/// scalars when the optimization level doesn't replicate them.
pub fn publish_root_cube(
    ctx: &Ctx,
    shared: &BhShared,
    st: &mut RankState,
    cfg: &SimConfig,
    center: Vec3,
    rsize: f64,
) {
    if !cfg.opt.replicates_scalars() && ctx.rank() == 0 {
        // Baseline: thread 0 updates the shared scalars; everyone else will
        // re-read them remotely whenever they are needed.  §5.1 and above
        // instead perform the (cheap) derivation redundantly on every
        // thread and keep private copies.
        shared.center.write(ctx, center);
        shared.rsize.write(ctx, rsize);
    }
    // Keep private copies regardless (used by code paths that are allowed to
    // know the value, e.g. the partitioner's key computation on level >= 1).
    st.center = center;
    st.rsize = rsize;
}

/// Allocates the root cell for this step (rank 0) and publishes it through
/// the shared root pointer.  Must be followed by a barrier before insertion.
pub fn allocate_root(ctx: &Ctx, shared: &BhShared, center: Vec3, rsize: f64) {
    if ctx.rank() == 0 {
        let root = shared.cells.alloc(ctx, CellNode::new_cell(center, rsize / 2.0));
        shared.root.write(ctx, root);
    }
}

/// Global-insertion tree build: every rank inserts its owned bodies into the
/// shared tree under per-cell locks (the baseline algorithm, used up to and
/// including [`crate::config::OptLevel::CacheLocalTree`]).
pub fn insert_owned_bodies(ctx: &Ctx, shared: &BhShared, st: &mut RankState, cfg: &SimConfig) {
    let root = shared.root.read(ctx);
    for i in 0..st.my_ids.len() {
        let id = st.my_ids[i];
        let body = read_body(ctx, shared, st, cfg, id);
        insert_body(ctx, shared, st, cfg, root, id, &body);
    }
}

/// Inserts one body into the shared tree rooted at `root`.
pub fn insert_body(
    ctx: &Ctx,
    shared: &BhShared,
    st: &mut RankState,
    cfg: &SimConfig,
    root: GlobalPtr,
    id: u32,
    body: &Body,
) {
    // The baseline re-reads `rsize` (a shared scalar on thread 0) on every
    // insertion — the very access pattern §5.1 calls out.
    let (_center, _rsize) = read_root_geometry(ctx, shared, st, cfg.opt);

    let leaf = shared.cells.alloc(ctx, CellNode::new_body(id, body.pos, body.mass, body.cost));
    let mut cur = root;
    let mut depth = 0usize;
    loop {
        depth += 1;
        if depth > cfg.max_depth + 16 {
            // Pathologically coincident bodies: fold the mass into the
            // existing leaf rather than looping forever.  This never occurs
            // with Plummer initial conditions but keeps the builder total.
            return;
        }
        let node = shared.cells.read(ctx, cur);
        debug_assert_eq!(node.kind, NodeKind::Cell, "descent must stay on cells");
        ctx.charge_tree_ops(1);
        let octant = node.octant_of(body.pos);
        let child = node.children[octant];

        if child.is_null() {
            // Claim the empty slot under the cell's lock.
            let guard = shared.lock_for(cur).lock(ctx);
            let fresh = shared.cells.read(ctx, cur);
            if fresh.children[octant].is_null() {
                let mut updated = fresh;
                updated.children[octant] = leaf;
                shared.cells.write(ctx, cur, updated);
                drop(guard);
                return;
            }
            drop(guard);
            // Lost the race; retry this level.
            continue;
        }

        let child_node = shared.cells.read(ctx, child);
        if child_node.is_cell() {
            cur = child;
            continue;
        }

        // The slot holds another body: subdivide it into a new cell, re-hang
        // the existing body one level down, and keep descending.
        let guard = shared.lock_for(cur).lock(ctx);
        let fresh = shared.cells.read(ctx, cur);
        if fresh.children[octant] != child {
            drop(guard);
            continue; // Someone else already subdivided; retry.
        }
        let (ccenter, chalf) = fresh.child_geometry(octant);
        let mut new_cell = CellNode::new_cell(ccenter, chalf);
        let existing_octant = new_cell.octant_of(child_node.cofm);
        new_cell.children[existing_octant] = child;
        let new_ptr = shared.cells.alloc(ctx, new_cell);
        st.my_cells.push(new_ptr);
        let mut updated = fresh;
        updated.children[octant] = new_ptr;
        shared.cells.write(ctx, cur, updated);
        drop(guard);
        cur = new_ptr;
    }
}

/// The parallel centre-of-mass phase (the "C-of-m Comp." row; only a separate
/// phase before the §5.4 merged tree build).
///
/// Every rank processes the cells it created, in reverse creation order
/// (children before parents), waiting on the `done` flag of children created
/// by other ranks — the same protocol SPLASH-2 uses.
pub fn center_of_mass_phase(ctx: &Ctx, shared: &BhShared, st: &mut RankState, cfg: &SimConfig) {
    let pending = summary_pending(ctx, shared, st);
    drain_summaries(pending, |ptr| try_summarize_cell(ctx, shared, st, cfg, ptr));
}

/// The cells this rank is responsible for summarizing, in reverse creation
/// order (descendants were pushed after their ancestors).  The root cell
/// belongs to rank 0 but is created outside `my_cells`; rank 0 takes the
/// responsibility for it.  Shared by this phase and the tree-lifecycle
/// re-fold.
pub(crate) fn summary_pending(ctx: &Ctx, shared: &BhShared, st: &RankState) -> Vec<GlobalPtr> {
    let mut pending: Vec<GlobalPtr> = st.my_cells.clone();
    if ctx.rank() == 0 {
        let root = shared.root.read(ctx);
        if !root.is_null() {
            pending.insert(0, root);
        }
    }
    pending.reverse();
    pending
}

/// Drains a summary worklist under the SPLASH-2 done-flag protocol:
/// `try_one` returns `false` while a cell's children (owned by other ranks)
/// are not ready, and the cell is retried after the rest of the list has
/// had a chance to make progress.  Shared by the centre-of-mass phase and
/// the tree-lifecycle re-fold, so the livelock guard lives in one place.
pub(crate) fn drain_summaries(
    mut remaining: Vec<GlobalPtr>,
    mut try_one: impl FnMut(GlobalPtr) -> bool,
) {
    while !remaining.is_empty() {
        let mut next = Vec::new();
        let mut progressed = false;
        for &ptr in &remaining {
            if try_one(ptr) {
                progressed = true;
            } else {
                next.push(ptr);
            }
        }
        remaining = next;
        if !remaining.is_empty() && !progressed {
            // All our remaining cells wait on other ranks; let them run.
            std::thread::yield_now();
        }
    }
}

/// Attempts to compute the centre of mass of `ptr`.  Returns `false` when a
/// child's summary is not ready yet.
fn try_summarize_cell(
    ctx: &Ctx,
    shared: &BhShared,
    st: &RankState,
    cfg: &SimConfig,
    ptr: GlobalPtr,
) -> bool {
    let node = shared.cells.read(ctx, ptr);
    if node.done {
        return true;
    }
    ctx.charge_tree_ops(1);
    let mut mass = 0.0;
    let mut moment = Vec3::ZERO;
    let mut cost = 0u64;
    let mut nbodies = 0u32;
    for octant in 0..8 {
        let child = node.children[octant];
        if child.is_null() {
            continue;
        }
        let child_node = shared.cells.read(ctx, child);
        match child_node.kind {
            NodeKind::Body => {
                // SPLASH-2 reads the body record through its pointer; before
                // redistribution this is usually a remote access.
                let body = read_body(ctx, shared, st, cfg, child_node.body_id);
                mass += body.mass;
                moment += body.pos * body.mass;
                cost += body.cost.max(1) as u64;
                nbodies += 1;
            }
            NodeKind::Cell => {
                if !child_node.done {
                    return false;
                }
                mass += child_node.mass;
                moment += child_node.cofm * child_node.mass;
                cost += child_node.cost;
                nbodies += child_node.nbodies;
            }
        }
    }
    let mut updated = node;
    updated.mass = mass;
    updated.cofm = if mass > 0.0 { moment / mass } else { node.center };
    updated.cost = cost;
    updated.nbodies = nbodies;
    updated.done = true;
    shared.cells.write(ctx, ptr, updated);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{OptLevel, SimConfig};
    use nbody::body::center_of_mass;
    use pgas::{Machine, Runtime};

    fn run_build(nbodies: usize, ranks: usize, opt: OptLevel) -> (BhShared, SimConfig) {
        let cfg = SimConfig::test(nbodies, ranks, opt);
        let shared = BhShared::new(&cfg);
        let rt = Runtime::new(Machine::test_cluster(ranks));
        rt.run(|ctx| {
            let mut st = RankState::new(ctx, &shared, &cfg);
            let (center, rsize) = bounding_box_phase(ctx, &shared, &mut st, &cfg);
            allocate_root(ctx, &shared, center, rsize);
            ctx.barrier();
            insert_owned_bodies(ctx, &shared, &mut st, &cfg);
            ctx.barrier();
            center_of_mass_phase(ctx, &shared, &mut st, &cfg);
            ctx.barrier();
        });
        (shared, cfg)
    }

    /// Walks the shared tree and checks structural invariants.
    fn check_tree(shared: &BhShared, nbodies: usize) -> (u32, f64) {
        let root = shared.root.read_raw();
        assert!(!root.is_null());
        let mut seen = vec![false; nbodies];
        fn visit(shared: &BhShared, ptr: GlobalPtr, seen: &mut [bool]) -> (u32, f64) {
            let node = shared.cells.read_raw(ptr);
            match node.kind {
                NodeKind::Body => {
                    assert!(!seen[node.body_id as usize], "body {} in two leaves", node.body_id);
                    seen[node.body_id as usize] = true;
                    (1, node.mass)
                }
                NodeKind::Cell => {
                    assert!(node.done, "cell must have a valid centre of mass");
                    let mut count = 0;
                    let mut mass = 0.0;
                    for c in node.children {
                        if !c.is_null() {
                            let (n, m) = visit(shared, c, seen);
                            count += n;
                            mass += m;
                        }
                    }
                    assert_eq!(count, node.nbodies, "cell body count mismatch");
                    assert!((mass - node.mass).abs() < 1e-9, "cell mass mismatch");
                    (count, mass)
                }
            }
        }
        let (count, mass) = visit(shared, root, &mut seen);
        assert_eq!(count as usize, nbodies, "all bodies must be reachable");
        assert!(seen.iter().all(|&s| s));
        (count, mass)
    }

    #[test]
    fn single_rank_build_matches_sequential_summary() {
        let (shared, cfg) = run_build(128, 1, OptLevel::Baseline);
        let (_, mass) = check_tree(&shared, 128);
        let bodies = shared.bodytab.snapshot();
        assert!((mass - bodies.iter().map(|b| b.mass).sum::<f64>()).abs() < 1e-9);
        let root = shared.cells.read_raw(shared.root.read_raw());
        let com = center_of_mass(&bodies);
        assert!((root.cofm - com).norm() < 1e-9);
        let _ = cfg;
    }

    #[test]
    fn multi_rank_build_contains_every_body_once() {
        for ranks in [2, 4, 7] {
            let (shared, _) = run_build(200, ranks, OptLevel::Baseline);
            check_tree(&shared, 200);
        }
    }

    #[test]
    fn replicated_scalars_produce_identical_tree_summaries() {
        let (a, _) = run_build(150, 3, OptLevel::Baseline);
        let (b, _) = run_build(150, 3, OptLevel::ReplicateScalars);
        let ra = a.cells.read_raw(a.root.read_raw());
        let rb = b.cells.read_raw(b.root.read_raw());
        assert!((ra.cofm - rb.cofm).norm() < 1e-9);
        assert!((ra.mass - rb.mass).abs() < 1e-12);
        assert_eq!(ra.nbodies, rb.nbodies);
    }

    #[test]
    fn persistent_fit_skips_the_rsize_derivation() {
        let cfg = SimConfig::test(96, 2, OptLevel::CacheLocalTree);
        let shared = BhShared::new(&cfg);
        let rt = Runtime::new(Machine::test_cluster(2));
        rt.run(|ctx| {
            let mut st = RankState::new(ctx, &shared, &cfg);
            // A live persistent tree whose (deliberately off-centre) cube
            // contains every Plummer body: the phase must hand back that
            // cube untouched instead of deriving a fresh one.
            st.lifecycle.valid = true;
            st.lifecycle.root_center = nbody::Vec3::new(0.25, -0.125, 0.5);
            st.lifecycle.root_half = 64.0;
            let (center, rsize) = bounding_box_phase(ctx, &shared, &mut st, &cfg);
            assert_eq!(center, st.lifecycle.root_center);
            assert_eq!(rsize, 128.0);
            assert_eq!(st.rsize, 128.0, "the private copy must match the returned cube");
            assert!(st.bbox_kept_cube, "the fast path must flag the kept cube for rebuilds");
            // A rebuild ordered after the fast path re-derives from the
            // stashed box — the same cube the no-tree derivation produces.
            let rederived = derive_root_cube(st.bbox_lo, st.bbox_hi);

            // Box outgrew the cube (or no tree is alive): the derivation
            // runs and returns a fresh power-of-two cube.
            st.lifecycle.root_half = 1e-6;
            let (_, misfit) = bounding_box_phase(ctx, &shared, &mut st, &cfg);
            assert_ne!(misfit, 2e-6, "a misfit box must not reuse the stale cube");
            assert!(!st.bbox_kept_cube, "a misfit must clear the kept-cube flag");
            st.lifecycle.valid = false;
            let (_, fresh) = bounding_box_phase(ctx, &shared, &mut st, &cfg);
            assert_eq!(misfit, fresh, "the misfit path matches the no-tree derivation");
            assert_eq!(rederived, (st.center, st.rsize), "re-derivation matches the fresh cube");
            ctx.barrier();
        });
    }

    #[test]
    fn baseline_tree_build_charges_more_remote_traffic_than_replicated() {
        let cfg_base = SimConfig::test(256, 4, OptLevel::Baseline);
        let cfg_repl = SimConfig::test(256, 4, OptLevel::ReplicateScalars);
        let remote_gets = |cfg: &SimConfig| {
            let shared = BhShared::new(cfg);
            let rt = Runtime::new(cfg.machine.clone());
            let report = rt.run(|ctx| {
                let mut st = RankState::new(ctx, &shared, cfg);
                let (center, rsize) = bounding_box_phase(ctx, &shared, &mut st, cfg);
                allocate_root(ctx, &shared, center, rsize);
                ctx.barrier();
                insert_owned_bodies(ctx, &shared, &mut st, cfg);
                ctx.barrier();
            });
            report.total_stats().remote_gets
        };
        let base = remote_gets(&cfg_base);
        let repl = remote_gets(&cfg_repl);
        assert!(base > repl, "baseline ({base}) must out-communicate replicated scalars ({repl})");
    }
}
