//! Per-phase timing reports — re-exported from the solver-neutral
//! [`engine`] crate.
//!
//! [`Phase`], [`PhaseTimes`], [`RankOutcome`] and [`SimResult`] (plus the
//! rank-report aggregation and measured-window bookkeeping) moved to
//! `engine::report` when the backend layer was introduced, so that every
//! solver produces the same result type and comparisons never go through one
//! competitor's crate.  This module keeps the historical `bh::report::*`
//! paths working.

pub use engine::report::{measurement_begins, Phase, PhaseTimes, RankOutcome, SimResult};
