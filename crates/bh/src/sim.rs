//! The simulation driver: runs the configured number of time steps with the
//! phase structure of the paper and collects the per-phase times its tables
//! report.
//!
//! Each step's tree-building phase is governed by the configured
//! [`crate::config::TreePolicy`]: the default per-step rebuild reproduces
//! the paper's protocol exactly, while the reuse/adaptive policies route
//! through the tree-lifecycle subsystem ([`crate::lifecycle`]) — a
//! persistent global tree, incrementally updated, with drift-triggered
//! rebuilds.

use crate::config::{SimConfig, TreeBuild, WalkMode};
use crate::force::{advance_phase, force_phase_cached, force_phase_uncached, write_back};
use crate::frontier::{force_phase_async, force_phase_async_group};
use crate::lifecycle;
use crate::mergetree::{allocate_merge_root, build_local_tree, merge_into_global};
use crate::partition::{partition_phase, redistribute_phase};
use crate::report::{measurement_begins, Phase, PhaseTimes, RankOutcome, SimResult};
use crate::shared::{BhShared, RankState};
use crate::sortbuild::sorted_build;
use crate::subspace::{subspace_partition, subspace_redistribute, subspace_treebuild};
use crate::treebuild::{
    allocate_root, bounding_box_phase, center_of_mass_phase, derive_root_cube, insert_owned_bodies,
    publish_root_cube,
};
use pgas::{Ctx, GlobalPtr, Runtime};

/// Runs a full simulation according to `cfg` and returns the per-phase
/// timing breakdown, per-rank outcomes and the final body states.
pub fn run_simulation(cfg: &SimConfig) -> SimResult {
    let shared = BhShared::new(cfg);
    run_simulation_with(cfg, &shared)
}

/// Like [`run_simulation`] but over caller-provided initial conditions
/// (any workload — see the `scenarios` crate — not just the built-in
/// Plummer sphere).  The bodies must number `cfg.nbodies` with ids `0..n`.
pub fn run_simulation_on(cfg: &SimConfig, bodies: Vec<nbody::Body>) -> SimResult {
    let shared = BhShared::with_bodies(cfg, bodies);
    run_simulation_with(cfg, &shared)
}

/// Like [`run_simulation_on`] but emits an [`engine::snap::StepRecord`]
/// after every completed time step, so callers (the checkpoint layer) can
/// capture resumable state mid-run.
///
/// Observation is physics-neutral: the record is taken at a point where
/// every rank has passed the advance-phase barrier — the body table is the
/// exact between-steps state — and the only addition to the schedule is one
/// extra barrier per step, outside every phase timer, so tracked runs
/// produce bit-for-bit the bodies of untracked runs.
///
/// Tracked runs are the supervised (retryable) surface, so this entry is
/// fallible: a pending `engine.step` fault in `cfg.faults` aborts the run
/// with an error carrying the [`engine::fault::STEP_FAULT`] marker, after
/// every record for the steps completed *before* the fault has been
/// delivered — a supervisor restores the last checkpoint and retries.
pub fn run_simulation_tracked(
    cfg: &SimConfig,
    bodies: Vec<nbody::Body>,
    observer: &mut (dyn FnMut(engine::snap::StepRecord) + Send),
) -> Result<SimResult, String> {
    let shared = BhShared::with_bodies(cfg, bodies);
    run_simulation_observed(cfg, &shared, Some(observer))
}

/// Like [`run_simulation`] but over an existing shared state (used by tests
/// and benches that want to inspect or pre-seed the body table).
///
/// # Panics
/// Panics when [`SimConfig::validate`] rejects `cfg` (unrunnable
/// measurement window, non-positive physics parameters, ...).
pub fn run_simulation_with(cfg: &SimConfig, shared: &BhShared) -> SimResult {
    match run_simulation_observed(cfg, shared, None) {
        Ok(result) => result,
        // Unsupervised entry points have no recovery layer to hand the
        // fault to; aborting loudly keeps the injection observable.
        Err(e) => panic!("bh::run_simulation: {e}"),
    }
}

/// The shared driver behind [`run_simulation_with`] (no observer) and
/// [`run_simulation_tracked`] (per-step observer).
fn run_simulation_observed(
    cfg: &SimConfig,
    shared: &BhShared,
    observer: Option<&mut (dyn FnMut(engine::snap::StepRecord) + Send)>,
) -> Result<SimResult, String> {
    if let Err(e) = cfg.validate() {
        panic!("bh::run_simulation: invalid config: {e}");
    }
    if let Err(e) = check_walk_mode(cfg) {
        panic!("bh::run_simulation: invalid config: {e}");
    }
    if let Err(e) = check_tree_build(cfg) {
        panic!("bh::run_simulation: invalid config: {e}");
    }
    let step_faults = cfg.faults.targets("engine.step");
    let observer = observer.map(std::sync::Mutex::new);
    let runtime = Runtime::new(cfg.machine.clone());
    let report = runtime.run(|ctx| {
        let mut st = RankState::new(ctx, shared, cfg);
        for step in 0..cfg.steps {
            if step_faults && cfg.faults.step_fault_pending("engine.step", step) {
                // A **pure** read: every rank evaluates the same predicate
                // and abandons the run at the same step — no mutation here,
                // so no rank desynchronizes and no barrier is left hanging.
                // The driver below classifies the abort and consumes the
                // trigger once, after all ranks have returned.
                break;
            }
            if measurement_begins(cfg, step) {
                // Start of the measured window (the paper measures the last
                // two of four steps): reset all accumulators.
                st.timer.reset();
                st.tree_local_time = 0.0;
                st.tree_merge_time = 0.0;
                st.migrated = 0;
                st.owned_accum = 0;
            }
            run_step(ctx, shared, &mut st, cfg, step);
            if let Some(obs) = &observer {
                // Every rank has passed the advance-phase barrier inside
                // `run_step`, so the body table holds the exact
                // between-steps state and nothing writes it until the next
                // step begins.  Rank 0 copies it out, then one barrier
                // releases the other ranks into the next step.  The barrier
                // sits outside every phase timer, so tracked runs report
                // the same phase times and identical physics.
                if ctx.rank() == 0 {
                    let anchor_step = if lifecycle::persistent_tree(cfg) && st.lifecycle.valid {
                        // The reused tree's structure depends on the body
                        // history since the last full rebuild: resume must
                        // replay from there.
                        st.lifecycle.last_rebuild_step
                    } else {
                        // Stateless per-step construction: resume continues
                        // directly from the current bodies.
                        step + 1
                    };
                    let record = engine::snap::StepRecord {
                        step,
                        anchor_step,
                        tree_generation: st.lifecycle.generation,
                        bodies: shared.bodytab.snapshot(),
                    };
                    (obs.lock().expect("snapshot observer poisoned"))(record);
                }
                ctx.barrier();
            }
        }
        let phases = phase_times(&st);
        RankOutcome {
            phases,
            tree_local: st.tree_local_time,
            tree_merge: st.tree_merge_time,
            owned_bodies: st.my_ids.len() as u64,
            migrated_bodies: st.migrated,
            stats: Default::default(),
        }
    });

    if step_faults {
        // The pending predicate is pure, so re-finding the first pending
        // step here names exactly the step every rank broke at.  Consuming
        // the trigger marks it spent in the plan's *shared* state, so the
        // supervisor's checkpoint-restore replay passes the step cleanly.
        if let Some(step) =
            (0..cfg.steps).find(|&s| cfg.faults.step_fault_pending("engine.step", s))
        {
            cfg.faults.consume_step("engine.step", step);
            return Err(format!(
                "{}: injected fault at step {step} (site engine.step); the run aborted \
                 before the step executed and is retryable from the last checkpoint",
                engine::fault::STEP_FAULT
            ));
        }
    }

    let mut ranks: Vec<RankOutcome> = Vec::with_capacity(report.ranks.len());
    for r in &report.ranks {
        let mut outcome = r.result.clone();
        outcome.stats = r.stats.clone();
        ranks.push(outcome);
    }
    let mut result = SimResult::aggregate(cfg, ranks, shared.bodytab.snapshot());
    result.tree_bytes = shared.cells.peak_bytes();
    Ok(result)
}

/// Checks that `cfg.walk` is runnable on this solver: the group walk builds
/// its interaction lists over the §5.3 cell cache, so it requires a caching
/// optimization level.  Shared by [`run_simulation_with`] and
/// [`crate::backend::UpcBackend::supports`] so library callers and the
/// registry fail identically, with a clear error instead of a silent
/// per-body fallback that would make walk-mode comparisons lie.
pub fn check_walk_mode(cfg: &SimConfig) -> Result<(), String> {
    if cfg.walk == WalkMode::Group && !cfg.opt.caches_cells() {
        return Err(format!(
            "walk mode {} requires a caching optimization level (cache-local-tree and above): \
             the group walk builds per-group interaction lists over the force cache, which \
             --opt {} does not have",
            cfg.walk.name(),
            cfg.opt.name()
        ));
    }
    Ok(())
}

/// Checks that `cfg.build` is runnable on this solver: the sorted build
/// routes each body (with its leaf payload) to its Morton-bucket owner, an
/// owner-computes protocol that needs redistributed bodies (§5.2 and above),
/// and it replaces the classic build phase, which the §6 subspace algorithm
/// does not have.  Shared by [`run_simulation_with`] and
/// [`crate::backend::UpcBackend::supports`] so library callers and the
/// registry fail identically (like [`check_walk_mode`]).
pub fn check_tree_build(cfg: &SimConfig) -> Result<(), String> {
    if cfg.build == TreeBuild::Sorted
        && (!cfg.opt.redistributes_bodies() || cfg.opt.subspace_tree_build())
    {
        return Err(format!(
            "tree build {} requires an owner-computes optimization level (redistribute \
             through async-aggregation): the sorted build routes bodies to Morton-bucket \
             owners over the redistribution machinery, which --opt {} does not support",
            cfg.build.name(),
            cfg.opt.name()
        ));
    }
    Ok(())
}

/// Converts a rank's phase timer into the table row structure.
fn phase_times(st: &RankState) -> PhaseTimes {
    PhaseTimes::from_timer(&st.timer)
}

/// Runs one time step with the phase structure of the configured
/// optimization level.
fn run_step(ctx: &Ctx, shared: &BhShared, st: &mut RankState, cfg: &SimConfig, step: usize) {
    if cfg.opt.subspace_tree_build() {
        run_step_subspace(ctx, shared, st, cfg);
    } else {
        run_step_classic(ctx, shared, st, cfg, step);
    }

    // Force computation.  The walk mode selects between one traversal per
    // body (the paper's walk) and one per body group ([`crate::groupwalk`]);
    // the group walk requires a cell cache to build its lists over, which
    // `run_simulation_with`/`UpcBackend::supports` enforce.
    st.timer.begin(ctx, Phase::Force.key());
    let forces = if cfg.opt.async_aggregation() {
        if cfg.walk == WalkMode::Group {
            force_phase_async_group(ctx, shared, st, cfg)
        } else {
            force_phase_async(ctx, shared, st, cfg)
        }
    } else if cfg.opt.caches_cells() {
        // Dispatches on `cfg.walk` internally.
        force_phase_cached(ctx, shared, st, cfg)
    } else {
        force_phase_uncached(ctx, shared, st, cfg)
    };
    write_back(ctx, shared, st, cfg, &forces);
    ctx.barrier();
    st.timer.end(ctx, Phase::Force.key());

    // Body advancement.
    st.timer.begin(ctx, Phase::Advance.key());
    advance_phase(ctx, shared, st, cfg);
    ctx.barrier();
    st.timer.end(ctx, Phase::Advance.key());

    // Step cleanup: under the per-step rebuild protocol (and the subspace
    // build, which re-plans the tree shape every step) the tree is torn
    // down; persistent policies keep it for the next step's lifecycle
    // decision.
    if !lifecycle::persistent_tree(cfg) {
        st.my_cells.clear();
        if ctx.rank() == 0 {
            shared.cells.clear(ctx);
            shared.root.write_raw(GlobalPtr::NULL);
        }
        ctx.barrier();
    }
}

/// Tree building → centre of mass → partitioning → redistribution, as used
/// by every level below the §6 subspace algorithm.
fn run_step_classic(
    ctx: &Ctx,
    shared: &BhShared,
    st: &mut RankState,
    cfg: &SimConfig,
    step: usize,
) {
    // Tree building: reuse the persistent tree when the lifecycle decision
    // allows it, rebuild from scratch otherwise.  Under the default
    // `TreePolicy::Rebuild` the decision short-circuits (no collectives, no
    // charges) and the phase below is exactly the paper's.
    st.timer.begin(ctx, Phase::TreeBuild.key());
    let (mut center, mut rsize) = bounding_box_phase(ctx, shared, st, cfg);
    let decision = lifecycle::decide(ctx, shared, st, cfg, step);
    let rebuilt = matches!(decision, lifecycle::StepBuild::Rebuild);
    match decision {
        lifecycle::StepBuild::Reuse(probes) => {
            lifecycle::incremental_update(ctx, shared, st, cfg, probes);
        }
        lifecycle::StepBuild::Rebuild => {
            if st.bbox_kept_cube {
                // The bounding-box fast path handed back the persistent
                // cube on the bet that this step would reuse the tree; a
                // rebuild must derive its cube from this step's box alone,
                // so rebuilt trees are bit-identical under every policy.
                (center, rsize) = derive_root_cube(st.bbox_lo, st.bbox_hi);
                publish_root_cube(ctx, shared, st, cfg, center, rsize);
            }
            lifecycle::clear_stale_tree(ctx, shared, st);
            if cfg.build == TreeBuild::Sorted {
                // Lock-free sort-based construction ([`crate::sortbuild`]):
                // cells come out fully summarized, so the centre-of-mass
                // phase below has nothing to do.
                let (local_t, hook_t) = sorted_build(ctx, shared, st, cfg, center, rsize);
                st.tree_local_time += local_t;
                st.tree_merge_time += hook_t;
            } else if cfg.opt.merged_tree_build() {
                allocate_merge_root(ctx, shared, center, rsize);
                ctx.barrier();
                let local_start = ctx.now();
                let local_root = build_local_tree(ctx, shared, st, cfg);
                let merge_start = ctx.now();
                st.tree_local_time += merge_start - local_start;
                merge_into_global(ctx, shared, st, cfg, local_root);
                // Record the merge sub-phase before the barrier so that the
                // Figure 8 style per-rank breakdown shows the merge
                // imbalance rather than the barrier wait.
                st.tree_merge_time += ctx.now() - merge_start;
                ctx.barrier();
            } else {
                allocate_root(ctx, shared, center, rsize);
                ctx.barrier();
                insert_owned_bodies(ctx, shared, st, cfg);
                ctx.barrier();
            }
        }
    }
    st.timer.end(ctx, Phase::TreeBuild.key());

    // Centre-of-mass computation (folded into tree building by §5.4+; a
    // reuse step re-folded the summaries during the incremental update).
    st.timer.begin(ctx, Phase::CenterOfMass.key());
    if rebuilt && !cfg.opt.merged_tree_build() && cfg.build != TreeBuild::Sorted {
        center_of_mass_phase(ctx, shared, st, cfg);
    }
    ctx.barrier();
    st.timer.end(ctx, Phase::CenterOfMass.key());

    // A fresh build under a persistent policy captures every owned body's
    // leaf site and bumps the tree generation (tree-building work).
    if rebuilt && lifecycle::persistent_tree(cfg) {
        st.timer.begin(ctx, Phase::TreeBuild.key());
        lifecycle::after_rebuild(ctx, shared, st, cfg, step, center, rsize);
        st.timer.end(ctx, Phase::TreeBuild.key());
    }

    // Partitioning.
    st.timer.begin(ctx, Phase::Partition.key());
    let (plan, keyed) = partition_phase(ctx, shared, st, cfg);
    st.timer.end(ctx, Phase::Partition.key());

    // Redistribution.
    st.timer.begin(ctx, Phase::Redistribute.key());
    let outcome = redistribute_phase(ctx, shared, st, cfg, &plan, keyed);
    st.migrated += outcome.migrated_in;
    st.owned_accum += outcome.owned;
    ctx.barrier();
    st.timer.end(ctx, Phase::Redistribute.key());
}

/// The §6 step structure: partitioning (subspace construction) →
/// redistribution (all-to-all) → tree building (subforests + hooking).
fn run_step_subspace(ctx: &Ctx, shared: &BhShared, st: &mut RankState, cfg: &SimConfig) {
    st.timer.begin(ctx, Phase::Partition.key());
    bounding_box_phase(ctx, shared, st, cfg);
    let (plan, pre) = subspace_partition(ctx, shared, st, cfg);
    st.timer.end(ctx, Phase::Partition.key());

    st.timer.begin(ctx, Phase::Redistribute.key());
    let (assignment, migrated) = subspace_redistribute(ctx, shared, st, cfg, &plan, pre);
    st.migrated += migrated;
    st.owned_accum += st.my_ids.len() as u64;
    ctx.barrier();
    st.timer.end(ctx, Phase::Redistribute.key());

    st.timer.begin(ctx, Phase::TreeBuild.key());
    let (local_t, hook_t) = subspace_treebuild(ctx, shared, st, cfg, &plan, &assignment);
    st.tree_local_time += local_t;
    st.tree_merge_time += hook_t;
    st.timer.end(ctx, Phase::TreeBuild.key());

    // No separate centre-of-mass phase.
    st.timer.begin(ctx, Phase::CenterOfMass.key());
    ctx.barrier();
    st.timer.end(ctx, Phase::CenterOfMass.key());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptLevel;
    use scenarios::builtin;

    #[test]
    fn run_simulation_on_accepts_any_scenario() {
        // Every registered workload family must run through the distributed
        // solver at a non-trivial optimization level, conserve the body
        // count and produce finite physics.
        for scenario in builtin().iter() {
            let cfg = SimConfig::test(192, 3, OptLevel::Subspace);
            let bodies = scenario.generate(cfg.nbodies, cfg.seed);
            let result = run_simulation_on(&cfg, bodies);
            assert_eq!(result.bodies.len(), 192, "{}", scenario.name());
            assert!(
                result.bodies.iter().all(|b| b.pos.is_finite() && b.vel.is_finite()),
                "{} produced non-finite bodies",
                scenario.name()
            );
            assert!(result.phases.total() > 0.0, "{}", scenario.name());
        }
    }

    #[test]
    fn tracked_run_is_physics_neutral_and_emits_every_step() {
        use crate::config::TreePolicy;
        let mut cfg = SimConfig::test(96, 2, OptLevel::CacheLocalTree);
        cfg.steps = 4;
        cfg.measured_steps = 2;
        cfg.tree_policy = TreePolicy::Reuse { rebuild_every: 2, drift_threshold: 0.5 };
        let bodies =
            nbody::plummer::generate(&nbody::plummer::PlummerConfig::new(cfg.nbodies, cfg.seed));
        let plain = run_simulation_on(&cfg, bodies.clone());
        let mut records: Vec<engine::snap::StepRecord> = Vec::new();
        let tracked = run_simulation_tracked(&cfg, bodies, &mut |r| records.push(r))
            .expect("a fault-free tracked run succeeds");
        assert_eq!(records.len(), cfg.steps, "one record per completed step");
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.step, i);
            assert!(r.anchor_step <= i + 1, "anchor may never lie in the future");
            assert_eq!(r.bodies.len(), cfg.nbodies);
            assert!(r.bodies.iter().enumerate().all(|(j, b)| b.id as usize == j), "sorted by id");
        }
        // A rebuild happened at step 0 (no valid tree) and at step 2 (the
        // e2 cadence), so the final record's anchor is step 2.
        assert_eq!(records.last().expect("records").anchor_step, 2);
        assert!(
            engine::snap::bodies_bits_equal(&tracked.bodies, &plain.bodies),
            "observation must not perturb the physics"
        );
        assert!(
            engine::snap::bodies_bits_equal(
                &records.last().expect("records").bodies,
                &plain.bodies
            ),
            "the last record is the final state"
        );
    }

    #[test]
    fn injected_step_faults_abort_once_then_replay_clean() {
        let mut cfg = SimConfig::test(64, 2, OptLevel::CacheLocalTree);
        cfg.steps = 4;
        cfg.measured_steps = 2;
        cfg.faults = engine::fault::FaultPlan::parse("engine.step@n2").unwrap();
        let bodies =
            nbody::plummer::generate(&nbody::plummer::PlummerConfig::new(cfg.nbodies, cfg.seed));

        let mut records: Vec<engine::snap::StepRecord> = Vec::new();
        let err = run_simulation_tracked(&cfg, bodies.clone(), &mut |r| records.push(r))
            .expect_err("the armed step fault must abort the run");
        assert!(err.contains(engine::fault::STEP_FAULT), "{err}");
        assert!(err.contains("step 2"), "{err}");
        // Steps before the fault completed and were observed.
        assert_eq!(records.len(), 2, "steps 0 and 1 ran before the fault");

        // The abort consumed the trigger (shared across clones), so the
        // supervisor's retry with the same plan runs clean and matches a
        // fault-free run bit-for-bit.
        let retry = run_simulation_tracked(&cfg, bodies.clone(), &mut |_| {})
            .expect("the consumed fault must not re-fire");
        let mut clean_cfg = cfg.clone();
        clean_cfg.faults = engine::fault::FaultPlan::default();
        let clean = run_simulation_on(&clean_cfg, bodies);
        assert!(
            engine::snap::bodies_bits_equal(&retry.bodies, &clean.bodies),
            "the retried run must be bit-identical to a fault-free run"
        );
    }

    #[test]
    fn plummer_path_is_unchanged() {
        // `run_simulation` (implicit Plummer) and `run_simulation_on` with
        // the same Plummer bodies must agree body-for-body.
        let cfg = SimConfig::test(128, 2, OptLevel::CacheLocalTree);
        let implicit = run_simulation(&cfg);
        let explicit = run_simulation_on(
            &cfg,
            nbody::plummer::generate(&nbody::plummer::PlummerConfig::new(cfg.nbodies, cfg.seed)),
        );
        for (a, b) in implicit.bodies.iter().zip(&explicit.bodies) {
            assert!((a.pos - b.pos).norm() < 1e-9);
        }
    }
}
