//! The shared cell heap behind the distributed octree, in one of two
//! layouts.
//!
//! The **fat** layout is the historical one: a [`pgas::SharedArena`] of
//! whole [`CellNode`] records (one AoS struct per node, ~152 bytes), with
//! the arena's exact billing.  Every insertion-build configuration uses it,
//! so those paths stay bit-for-bit identical to the pre-`CellStore` solver.
//!
//! The **compact** layout backs the sorted build
//! ([`crate::config::TreeBuild::Sorted`]): per-rank SoA regions — kid
//! handles, centre of mass, mass, cube geometry and metadata in separate
//! column arrays — addressed through 32-bit node handles (`thread << 24 |
//! index`) instead of fat pointers-to-shared.  A node costs
//! [`COMPACT_NODE_BYTES`] (120) instead of `size_of::<CellNode>()` (152),
//! the smaller record is what remote transfers bill, and
//! [`CellStore::clear`] keeps the column capacity so a rebuild rewrites the
//! arena densely from index 0 (compaction on rebuild).
//!
//! Both layouts expose the same surface as [`pgas::SharedArena`], so tree
//! build, force walks, caches, group lists and the persistent-tree
//! lifecycle are layout-agnostic; [`CellStore::peak_bytes`] reports the
//! peak arena footprint as the deterministic `tree_bytes` bench metric.

use crate::cellnode::{CellNode, NodeKind};
use crate::config::TreeBuild;
use nbody::Vec3;
use pgas::{Ctx, GlobalPtr, Handle, SharedArena};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Stored size of one node in the compact SoA layout: the sum of one row of
/// every column (kid handles + centre of mass + mass + cube + metadata).
pub const COMPACT_NODE_BYTES: usize = std::mem::size_of::<[u32; 8]>()
    + std::mem::size_of::<Vec3>()
    + std::mem::size_of::<f64>()
    + std::mem::size_of::<Cube>()
    + std::mem::size_of::<Meta>();

/// Null compact kid handle (no child).
const NIL: u32 = u32::MAX;

/// Cube geometry column entry: cell centre and half side.
#[derive(Clone, Copy)]
struct Cube {
    center: Vec3,
    half: f64,
}

/// Metadata column entry: the non-geometric scalar fields of a node.
#[derive(Clone, Copy)]
struct Meta {
    cost: u64,
    nbodies: u32,
    body_id: u32,
    kind: NodeKind,
    done: bool,
}

/// Packs a child pointer into a 32-bit handle.
fn pack(ptr: GlobalPtr) -> u32 {
    if ptr.is_null() {
        return NIL;
    }
    let (thread, index) = (ptr.threadof(), ptr.indexof());
    assert!(thread < 0xFF, "compact handle: rank {thread} out of the 8-bit range");
    assert!(index < 0x00FF_FFFF, "compact handle: index {index} out of the 24-bit range");
    ((thread as u32) << 24) | index as u32
}

/// Unpacks a 32-bit handle back into a pointer.
fn unpack(handle: u32) -> GlobalPtr {
    if handle == NIL {
        GlobalPtr::NULL
    } else {
        GlobalPtr::new((handle >> 24) as usize, (handle & 0x00FF_FFFF) as usize)
    }
}

/// One rank's compact SoA region.
#[derive(Default)]
struct Columns {
    kids: Vec<[u32; 8]>,
    cofm: Vec<Vec3>,
    mass: Vec<f64>,
    cube: Vec<Cube>,
    meta: Vec<Meta>,
}

impl Columns {
    fn len(&self) -> usize {
        self.meta.len()
    }

    fn push(&mut self, node: CellNode) -> usize {
        self.kids.push(node.children.map(pack));
        self.cofm.push(node.cofm);
        self.mass.push(node.mass);
        self.cube.push(Cube { center: node.center, half: node.half });
        self.meta.push(Meta {
            cost: node.cost,
            nbodies: node.nbodies,
            body_id: node.body_id,
            kind: node.kind,
            done: node.done,
        });
        self.meta.len() - 1
    }

    fn get(&self, index: usize) -> CellNode {
        let meta = self.meta[index];
        let cube = self.cube[index];
        CellNode {
            kind: meta.kind,
            center: cube.center,
            half: cube.half,
            mass: self.mass[index],
            cofm: self.cofm[index],
            cost: meta.cost,
            nbodies: meta.nbodies,
            children: self.kids[index].map(unpack),
            body_id: meta.body_id,
            done: meta.done,
        }
    }

    fn set(&mut self, index: usize, node: CellNode) {
        self.kids[index] = node.children.map(pack);
        self.cofm[index] = node.cofm;
        self.mass[index] = node.mass;
        self.cube[index] = Cube { center: node.center, half: node.half };
        self.meta[index] = Meta {
            cost: node.cost,
            nbodies: node.nbodies,
            body_id: node.body_id,
            kind: node.kind,
            done: node.done,
        };
    }

    fn clear(&mut self) {
        // Vec::clear keeps the capacity: the next build rewrites the columns
        // densely from index 0 over the same allocation.
        self.kids.clear();
        self.cofm.clear();
        self.mass.clear();
        self.cube.clear();
        self.meta.clear();
    }
}

enum Repr {
    Fat(SharedArena<CellNode>),
    Compact(Vec<RwLock<Columns>>),
}

/// The cell heap of one run: fat arena or compact SoA regions, chosen by
/// the configured [`TreeBuild`], with peak-footprint accounting.
pub struct CellStore {
    repr: Repr,
    current_bytes: AtomicU64,
    peak_bytes: AtomicU64,
}

impl CellStore {
    /// Creates the store with one empty region per rank, in the layout the
    /// build algorithm calls for: the sorted build writes the compact SoA
    /// arena, insertion keeps the fat arena (and its exact billing).
    pub fn new(ranks: usize, build: TreeBuild) -> CellStore {
        assert!(ranks > 0, "CellStore requires at least one rank");
        CellStore {
            repr: match build {
                TreeBuild::Insertion => Repr::Fat(SharedArena::new(ranks)),
                TreeBuild::Sorted => {
                    Repr::Compact((0..ranks).map(|_| RwLock::new(Columns::default())).collect())
                }
            },
            current_bytes: AtomicU64::new(0),
            peak_bytes: AtomicU64::new(0),
        }
    }

    /// Stored size of one node in the active layout.
    pub fn node_bytes(&self) -> usize {
        match &self.repr {
            Repr::Fat(_) => std::mem::size_of::<CellNode>(),
            Repr::Compact(_) => COMPACT_NODE_BYTES,
        }
    }

    /// Peak arena footprint (bytes) since creation — allocated nodes times
    /// their stored size, maximized over the run.  Deterministic: a pure
    /// count, no host addresses involved.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes.load(Ordering::Relaxed)
    }

    fn account_alloc(&self) {
        let bytes = self.node_bytes() as u64;
        let now = self.current_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak_bytes.fetch_max(now, Ordering::Relaxed);
    }

    /// Number of ranks.
    pub fn ranks(&self) -> usize {
        match &self.repr {
            Repr::Fat(arena) => arena.ranks(),
            Repr::Compact(regions) => regions.len(),
        }
    }

    /// Number of nodes currently allocated in `rank`'s region.
    pub fn len_of(&self, rank: usize) -> usize {
        match &self.repr {
            Repr::Fat(arena) => arena.len_of(rank),
            Repr::Compact(regions) => regions[rank].read().unwrap().len(),
        }
    }

    /// Total number of nodes across all regions.
    pub fn total_len(&self) -> usize {
        match &self.repr {
            Repr::Fat(arena) => arena.total_len(),
            Repr::Compact(regions) => regions.iter().map(|r| r.read().unwrap().len()).sum(),
        }
    }

    /// Allocates `value` in the calling rank's region (UPC `upc_alloc`) and
    /// returns a pointer-to-shared to it.
    pub fn alloc(&self, ctx: &Ctx, value: CellNode) -> GlobalPtr {
        self.account_alloc();
        match &self.repr {
            Repr::Fat(arena) => arena.alloc(ctx, value),
            Repr::Compact(regions) => {
                ctx.charge_local_accesses(1);
                let index = regions[ctx.rank()].write().unwrap().push(value);
                let ptr = GlobalPtr::new(ctx.rank(), index);
                pack(ptr); // range-check the 32-bit handle at allocation time
                ptr
            }
        }
    }

    /// Dereferences a pointer-to-shared (billed like
    /// [`SharedArena::read`]; the compact layout moves its smaller record).
    pub fn read(&self, ctx: &Ctx, ptr: GlobalPtr) -> CellNode {
        match &self.repr {
            Repr::Fat(arena) => arena.read(ctx, ptr),
            Repr::Compact(regions) => {
                assert!(!ptr.is_null(), "dereference of a null pointer-to-shared");
                let owner = ptr.threadof();
                ctx.charge_shared_read(owner, COMPACT_NODE_BYTES);
                regions[owner].read().unwrap().get(ptr.indexof())
            }
        }
    }

    /// Reads through a pointer the caller has proven local (§5.2/§5.3
    /// casting): only a plain local access is charged.
    pub fn read_local(&self, ctx: &Ctx, ptr: GlobalPtr) -> CellNode {
        match &self.repr {
            Repr::Fat(arena) => arena.read_local(ctx, ptr),
            Repr::Compact(regions) => {
                debug_assert!(ptr.is_local_to(ctx.rank()), "read_local through a remote pointer");
                ctx.charge_local_accesses(1);
                regions[ptr.threadof()].read().unwrap().get(ptr.indexof())
            }
        }
    }

    /// Writes through a pointer-to-shared.
    pub fn write(&self, ctx: &Ctx, ptr: GlobalPtr, value: CellNode) {
        match &self.repr {
            Repr::Fat(arena) => arena.write(ctx, ptr, value),
            Repr::Compact(regions) => {
                assert!(!ptr.is_null(), "write through a null pointer-to-shared");
                let owner = ptr.threadof();
                ctx.charge_shared_write(owner, COMPACT_NODE_BYTES);
                regions[owner].write().unwrap().set(ptr.indexof(), value);
            }
        }
    }

    /// Local-pointer write counterpart of [`CellStore::read_local`].
    pub fn write_local(&self, ctx: &Ctx, ptr: GlobalPtr, value: CellNode) {
        match &self.repr {
            Repr::Fat(arena) => arena.write_local(ctx, ptr, value),
            Repr::Compact(regions) => {
                debug_assert!(ptr.is_local_to(ctx.rank()), "write_local through a remote pointer");
                ctx.charge_local_accesses(1);
                regions[ptr.threadof()].write().unwrap().set(ptr.indexof(), value);
            }
        }
    }

    /// Atomic read-modify-write through a pointer-to-shared (billed as a
    /// round trip, like [`SharedArena::update`]).
    pub fn update<R>(&self, ctx: &Ctx, ptr: GlobalPtr, f: impl FnOnce(&mut CellNode) -> R) -> R {
        match &self.repr {
            Repr::Fat(arena) => arena.update(ctx, ptr, f),
            Repr::Compact(regions) => {
                assert!(!ptr.is_null(), "update through a null pointer-to-shared");
                let owner = ptr.threadof();
                ctx.charge_rmw(owner, COMPACT_NODE_BYTES);
                let mut region = regions[owner].write().unwrap();
                let index = ptr.indexof();
                let mut node = region.get(index);
                let out = f(&mut node);
                region.set(index, node);
                out
            }
        }
    }

    /// Blocking aggregated gather of the listed nodes.
    pub fn get_vlist(&self, ctx: &Ctx, ptrs: &[GlobalPtr]) -> Vec<CellNode> {
        let handle = self.get_vlist_async(ctx, ptrs);
        ctx.wait_sync(handle)
    }

    /// Non-blocking aggregated gather (the emulated
    /// `bupc_memget_vlist_async`, §5.5): one message per distinct source
    /// rank; the compact layout bills its smaller per-node transfer size.
    pub fn get_vlist_async(&self, ctx: &Ctx, ptrs: &[GlobalPtr]) -> Handle<CellNode> {
        match &self.repr {
            Repr::Fat(arena) => arena.get_vlist_async(ctx, ptrs),
            Repr::Compact(regions) => {
                let mut sources: Vec<(usize, usize, u64)> = Vec::new();
                let mut data = Vec::with_capacity(ptrs.len());
                for p in ptrs {
                    assert!(!p.is_null(), "vlist gather of a null pointer");
                    let owner = p.threadof();
                    match sources.iter_mut().find(|(o, _, _)| *o == owner) {
                        Some((_, bytes, elements)) => {
                            *bytes += COMPACT_NODE_BYTES;
                            *elements += 1;
                        }
                        None => sources.push((owner, COMPACT_NODE_BYTES, 1)),
                    }
                    data.push(regions[owner].read().unwrap().get(p.indexof()));
                }
                ctx.issue_vlist(data, &sources)
            }
        }
    }

    /// Clears all regions (the per-step tree teardown).  Column capacity is
    /// kept, so the next build compacts into the same allocation.
    pub fn clear(&self, ctx: &Ctx) {
        self.current_bytes.store(0, Ordering::Relaxed);
        match &self.repr {
            Repr::Fat(arena) => arena.clear(ctx),
            Repr::Compact(regions) => {
                ctx.charge_local_accesses(1);
                for region in regions {
                    region.write().unwrap().clear();
                }
            }
        }
    }

    /// Unbilled read for drivers and tests.
    pub fn read_raw(&self, ptr: GlobalPtr) -> CellNode {
        match &self.repr {
            Repr::Fat(arena) => arena.read_raw(ptr),
            Repr::Compact(regions) => regions[ptr.threadof()].read().unwrap().get(ptr.indexof()),
        }
    }

    /// Unbilled allocation into an explicit rank's region, for test setup
    /// and drivers only.
    pub fn alloc_raw(&self, rank: usize, value: CellNode) -> GlobalPtr {
        self.account_alloc();
        match &self.repr {
            Repr::Fat(arena) => arena.alloc_raw(rank, value),
            Repr::Compact(regions) => {
                let index = regions[rank].write().unwrap().push(value);
                GlobalPtr::new(rank, index)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas::{Machine, Runtime};

    fn sample_cell() -> CellNode {
        let mut cell = CellNode::new_cell(Vec3::new(0.5, -0.25, 1.0), 2.0);
        cell.children[3] = GlobalPtr::new(1, 42);
        cell.children[7] = GlobalPtr::new(0, 7);
        cell.mass = 3.5;
        cell.cofm = Vec3::new(0.1, 0.2, 0.3);
        cell.cost = 17;
        cell.nbodies = 4;
        cell
    }

    #[test]
    fn compact_nodes_are_smaller_than_fat_nodes() {
        assert!(
            COMPACT_NODE_BYTES < std::mem::size_of::<CellNode>(),
            "compact layout ({COMPACT_NODE_BYTES} B) must beat the fat node \
             ({} B)",
            std::mem::size_of::<CellNode>()
        );
    }

    #[test]
    fn handles_pack_and_unpack() {
        assert_eq!(pack(GlobalPtr::NULL), NIL);
        assert!(unpack(NIL).is_null());
        for (thread, index) in [(0usize, 0usize), (3, 12345), (254, 0x00FF_FFFE)] {
            let ptr = GlobalPtr::new(thread, index);
            assert_eq!(unpack(pack(ptr)), ptr);
        }
    }

    #[test]
    fn compact_round_trips_every_field() {
        let store = CellStore::new(2, TreeBuild::Sorted);
        let cell = sample_cell();
        let body = CellNode::new_body(9, Vec3::new(1.0, 2.0, 3.0), 0.5, 3);
        let rt = Runtime::new(Machine::test_cluster(2));
        rt.run(|ctx| {
            let p = store.alloc(ctx, if ctx.rank() == 0 { cell } else { body });
            ctx.barrier();
            let back = store.read(ctx, p);
            let want = if ctx.rank() == 0 { cell } else { body };
            assert_eq!(back.kind, want.kind);
            assert_eq!(back.center, want.center);
            assert_eq!(back.half, want.half);
            assert_eq!(back.mass, want.mass);
            assert_eq!(back.cofm, want.cofm);
            assert_eq!(back.cost, want.cost);
            assert_eq!(back.nbodies, want.nbodies);
            assert_eq!(back.children, want.children);
            assert_eq!(back.body_id, want.body_id);
            assert_eq!(back.done, want.done);
        });
    }

    #[test]
    fn both_layouts_account_peak_bytes_and_compact_on_clear() {
        for build in TreeBuild::ALL {
            let store = CellStore::new(1, build);
            assert_eq!(store.peak_bytes(), 0);
            let rt = Runtime::new(Machine::test_cluster(1));
            rt.run(|ctx| {
                for _ in 0..10 {
                    store.alloc(ctx, sample_cell());
                }
                let peak = store.peak_bytes();
                assert_eq!(peak, 10 * store.node_bytes() as u64);
                store.clear(ctx);
                assert_eq!(store.total_len(), 0);
                // The peak is monotonic across rebuilds; a smaller second
                // tree does not shrink it.
                for _ in 0..3 {
                    store.alloc(ctx, sample_cell());
                }
                assert_eq!(store.peak_bytes(), peak);
            });
        }
    }

    #[test]
    fn compact_remote_reads_bill_the_compact_size() {
        let store = CellStore::new(2, TreeBuild::Sorted);
        let rt = Runtime::new(Machine::test_cluster(2));
        let report = rt.run(|ctx| {
            let p = store.alloc(ctx, sample_cell());
            ctx.barrier();
            // Each rank reads the other's node.
            let other = GlobalPtr::new(1 - ctx.rank(), p.indexof());
            let before = ctx.stats_snapshot();
            let _ = store.read(ctx, other);
            let after = ctx.stats_snapshot();
            (after.remote_gets - before.remote_gets, after.bytes_in - before.bytes_in)
        });
        for r in &report.ranks {
            assert_eq!(r.result, (1, COMPACT_NODE_BYTES as u64));
        }
    }

    #[test]
    fn compact_vlist_bills_like_the_arena() {
        let store = CellStore::new(2, TreeBuild::Sorted);
        let rt = Runtime::new(Machine::test_cluster(2));
        let report = rt.run(|ctx| {
            let mut mine = Vec::new();
            for _ in 0..4 {
                mine.push(store.alloc(ctx, sample_cell()));
            }
            ctx.barrier();
            if ctx.rank() == 0 {
                // Two local, three remote nodes in one aggregated gather.
                let ptrs = [
                    mine[0],
                    GlobalPtr::new(1, 0),
                    GlobalPtr::new(1, 1),
                    mine[1],
                    GlobalPtr::new(1, 2),
                ];
                let nodes = store.get_vlist(ctx, &ptrs);
                assert_eq!(nodes.len(), 5);
            }
            ctx.stats_snapshot()
        });
        let stats = &report.ranks[0].result;
        assert_eq!(stats.vlist_requests, 1);
        assert_eq!(stats.remote_gets, 3);
        assert_eq!(stats.bytes_in, 3 * COMPACT_NODE_BYTES as u64);
    }

    #[test]
    fn update_is_a_billed_round_trip() {
        let store = CellStore::new(1, TreeBuild::Sorted);
        let rt = Runtime::new(Machine::test_cluster(1));
        rt.run(|ctx| {
            let p = store.alloc(ctx, sample_cell());
            let old_mass = store.update(ctx, p, |node| {
                let m = node.mass;
                node.mass += 1.0;
                m
            });
            assert_eq!(old_mass, 3.5);
            assert_eq!(store.read_raw(p).mass, 4.5);
        });
    }
}
