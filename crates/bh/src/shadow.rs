//! Caching with a merged local tree and shadow pointers (§5.3.2, Listing 2).
//!
//! The §5.3.1 cache ([`crate::cache::CacheTree`]) copies *every* cell it
//! opens into the per-thread local tree — even cells that already live in the
//! rank's own shared memory.  §5.3.2 refines this: each cached cell keeps two
//! sets of child links, the original pointers-to-shared and a set of *shadow
//! pointers* that refer either to a private copy (for remote children) or to
//! the original cell itself (for children whose affinity is this rank, which
//! are merely pointer-cast, not copied).
//!
//! The paper reports that this variant "showed little performance improvement
//! over Table 5: the improved algorithm saves some local copying but does not
//! affect global communication and increases the size of cell structures".
//! This module reproduces the variant so the `cache_variants` bench can
//! confirm that observation: remote traffic is identical to §5.3.1, only the
//! local copying cost differs.

use crate::cache::{ChildRanges, LeafArena};
use crate::cellnode::{CellNode, NodeKind};
use crate::shared::BhShared;
use nbody::direct::pairwise_acceleration;
use nbody::Vec3;
use octree::walk::cell_is_far;
use pgas::{Ctx, GlobalPtr};

/// Sentinel for "no shadow child".
const NO_SHADOW: i32 = -1;

/// Where a shadow node's payload came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShadowOrigin {
    /// The cell was remote and a private copy was made (as in §5.3.1).
    CopiedRemote,
    /// The cell already had affinity to this rank; the shadow pointer simply
    /// aliases the original cell (pointer cast, no copy).
    LocalOriginal(GlobalPtr),
}

/// One node of the shadow-pointer cache.
#[derive(Debug, Clone)]
pub struct ShadowNode {
    /// Payload used by the walk (for local originals this is the cast view of
    /// the shared cell, refreshed at installation time — legal because cells
    /// are read-only during the force phase, §7 of the paper).
    pub node: CellNode,
    /// The pointer-to-shared the payload came from (the refresh path
    /// re-reads through it when the tree survives into the next step).
    pub gptr: GlobalPtr,
    /// Provenance of the payload.
    pub origin: ShadowOrigin,
    /// Shadow child links (`shadowp[]` of Listing 2): indices into the cache.
    pub shadow: [i32; 8],
    /// `true` once every child of this node has a shadow link.
    pub localized: bool,
    /// Cache epoch the payload was last read in (see
    /// [`ShadowCacheTree::refresh`]).
    epoch: u32,
    /// Cache epoch `ranges` was coalesced in.
    ranges_epoch: u32,
    /// This cell's slice of the cache's [`LeafArena`].
    ranges: ChildRanges,
}

impl ShadowNode {
    fn new(node: CellNode, gptr: GlobalPtr, origin: ShadowOrigin, epoch: u32) -> ShadowNode {
        ShadowNode {
            node,
            gptr,
            origin,
            shadow: [NO_SHADOW; 8],
            localized: false,
            epoch,
            ranges_epoch: epoch,
            ranges: ChildRanges::default(),
        }
    }
}

/// The §5.3.2 per-rank cache: a merged local tree that only copies remote
/// cells.
///
/// Like [`crate::cache::CacheTree`], localized cells coalesce their body
/// leaves into one SoA batch per cell (the shared [`LeafArena`]) so the
/// walk streams contiguous positions and masses instead of chasing one node
/// record per leaf.
pub struct ShadowCacheTree {
    /// All cache nodes; index 0 is the local view of the global root.
    pub nodes: Vec<ShadowNode>,
    /// The tree generation this cache was built against (see
    /// [`crate::lifecycle`]); while unchanged, the cache is
    /// [`ShadowCacheTree::refresh`]ed across steps instead of rebuilt.
    pub generation: u64,
    /// Current refresh epoch (see [`ShadowCacheTree::refresh`]).
    epoch: u32,
    /// Number of remote cells copied into the cache.
    pub remote_copies: u64,
    /// Number of local cells reused in place (pointer cast instead of copy).
    pub local_reuses: u64,
    /// Coalesced children of every localized cell.
    arena: LeafArena,
}

impl ShadowCacheTree {
    /// Creates the cache from the global root cell.
    pub fn new(ctx: &Ctx, shared: &BhShared) -> Self {
        ShadowCacheTree::new_for(ctx, shared, 0)
    }

    /// Like [`ShadowCacheTree::new`], tagged with the tree generation it
    /// was built against.
    pub fn new_for(ctx: &Ctx, shared: &BhShared, generation: u64) -> Self {
        let root_ptr = shared.root.read(ctx);
        assert!(!root_ptr.is_null(), "force phase requires a built tree");
        let (root, origin) = Self::load(ctx, shared, root_ptr);
        let mut remote_copies = 0;
        let mut local_reuses = 0;
        match origin {
            ShadowOrigin::CopiedRemote => remote_copies += 1,
            ShadowOrigin::LocalOriginal(_) => local_reuses += 1,
        }
        ShadowCacheTree {
            nodes: vec![ShadowNode::new(root, root_ptr, origin, 0)],
            generation,
            epoch: 0,
            remote_copies,
            local_reuses,
            arena: LeafArena::default(),
        }
    }

    /// Carries the cache into the next step of the *same* tree generation:
    /// bumps the refresh epoch and empties the leaf arena without touching
    /// the network.  Payloads are re-read lazily on first touch, under the
    /// §5.3.2 discipline (remote copies re-fetched, local originals
    /// re-cast); localizations whose child-pointer set changed underneath
    /// are dropped at re-read time.
    pub fn refresh(&mut self, _ctx: &Ctx, _shared: &BhShared) {
        self.epoch = self.epoch.wrapping_add(1);
        self.arena.clear();
    }

    /// Ensures node `idx`'s payload was read in the current epoch.
    fn ensure_fresh(&mut self, ctx: &Ctx, shared: &BhShared, idx: usize) {
        if self.nodes[idx].epoch == self.epoch {
            return;
        }
        let (fresh, _) = Self::load(ctx, shared, self.nodes[idx].gptr);
        let stale_children =
            self.nodes[idx].localized && fresh.children != self.nodes[idx].node.children;
        self.nodes[idx].node = fresh;
        self.nodes[idx].epoch = self.epoch;
        if stale_children {
            self.nodes[idx].shadow = [NO_SHADOW; 8];
            self.nodes[idx].localized = false;
            self.nodes[idx].ranges = ChildRanges::default();
        }
    }

    /// Brings a localized cell's children into the current epoch and
    /// re-coalesces its leaf batch.
    fn ensure_children_current(&mut self, ctx: &Ctx, shared: &BhShared, parent: usize) {
        if self.nodes[parent].ranges_epoch == self.epoch {
            return;
        }
        for octant in 0..8 {
            let c = self.nodes[parent].shadow[octant];
            if c != NO_SHADOW {
                self.ensure_fresh(ctx, shared, c as usize);
            }
        }
        self.coalesce_children(parent);
    }

    /// Number of nodes reachable through shadow pointers.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when only the root is present.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Reads a cell, choosing the §5.3.2 discipline: remote cells are copied
    /// (one remote get), local cells are pointer-cast and read in place.
    fn load(ctx: &Ctx, shared: &BhShared, ptr: GlobalPtr) -> (CellNode, ShadowOrigin) {
        if ptr.is_local_to(ctx.rank()) {
            (shared.cells.read_local(ctx, ptr), ShadowOrigin::LocalOriginal(ptr))
        } else {
            (shared.cells.read(ctx, ptr), ShadowOrigin::CopiedRemote)
        }
    }

    /// Installs shadow links for all children of `parent`
    /// (Listing 2, lines 10–23).
    pub fn localize_children(&mut self, ctx: &Ctx, shared: &BhShared, parent: usize) {
        if self.nodes[parent].localized {
            return;
        }
        ctx.charge_tree_ops(1);
        for octant in 0..8 {
            let child_ptr = self.nodes[parent].node.children[octant];
            if child_ptr.is_null() {
                continue;
            }
            let (node, origin) = Self::load(ctx, shared, child_ptr);
            match origin {
                ShadowOrigin::CopiedRemote => self.remote_copies += 1,
                ShadowOrigin::LocalOriginal(_) => self.local_reuses += 1,
            }
            let idx = self.nodes.len();
            let epoch = self.epoch;
            self.nodes.push(ShadowNode::new(node, child_ptr, origin, epoch));
            self.nodes[parent].shadow[octant] = idx as i32;
        }
        self.coalesce_children(parent);
        self.nodes[parent].localized = true;
    }

    /// Coalesces the freshly localized children of `parent` into the arena.
    fn coalesce_children(&mut self, parent: usize) {
        let shadow = self.nodes[parent].shadow;
        let nodes = &self.nodes;
        let ranges = self.arena.coalesce(
            shadow
                .iter()
                .filter(|&&c| c != NO_SHADOW)
                .map(|&c| (c as u32, &nodes[c as usize].node)),
        );
        self.nodes[parent].ranges = ranges;
        self.nodes[parent].ranges_epoch = self.epoch;
    }

    /// Force walk for one body position, localizing cells on demand.
    ///
    /// Identical traversal and arithmetic to
    /// [`crate::cache::CacheTree::walk`], so the two variants produce
    /// bit-identical forces; only the copy-vs-cast bookkeeping differs.
    pub fn walk(
        &mut self,
        ctx: &Ctx,
        shared: &BhShared,
        pos: Vec3,
        self_id: u32,
        theta: f64,
        eps: f64,
    ) -> crate::cache::CachedWalkResult {
        let mut result = crate::cache::CachedWalkResult::default();
        let mut macs = 0u64;
        let mut stack = vec![0usize];
        while let Some(idx) = stack.pop() {
            self.ensure_fresh(ctx, shared, idx);
            let node = self.nodes[idx].node;
            match node.kind {
                NodeKind::Body => {
                    // Only reachable when the root itself is a body leaf.
                    if node.body_id == self_id {
                        continue;
                    }
                    let (a, p) = pairwise_acceleration(pos, node.cofm, node.mass, eps);
                    result.acc += a;
                    result.phi += p;
                    result.interactions += 1;
                }
                NodeKind::Cell => {
                    if node.nbodies == 0 {
                        continue;
                    }
                    macs += 1;
                    let dist_sq = pos.dist_sq(node.cofm);
                    if cell_is_far(node.side(), dist_sq, theta) {
                        let (a, p) = pairwise_acceleration(pos, node.cofm, node.mass, eps);
                        result.acc += a;
                        result.phi += p;
                        result.interactions += 1;
                    } else {
                        if !self.nodes[idx].localized {
                            self.localize_children(ctx, shared, idx);
                        } else {
                            self.ensure_children_current(ctx, shared, idx);
                        }
                        let ranges = self.nodes[idx].ranges;
                        result.interactions += self.arena.accumulate(
                            ranges,
                            pos,
                            self_id,
                            eps,
                            &mut result.acc,
                            &mut result.phi,
                        );
                        for &k in self.arena.kids(ranges) {
                            stack.push(k as usize);
                        }
                    }
                }
            }
        }
        ctx.charge_macs(macs);
        ctx.charge_interactions(result.interactions as u64);
        result
    }
}

impl crate::groupwalk::WalkCache for ShadowCacheTree {
    fn payload(&mut self, ctx: &Ctx, shared: &BhShared, idx: usize) -> CellNode {
        self.ensure_fresh(ctx, shared, idx);
        self.nodes[idx].node
    }

    fn node(&self, idx: usize) -> CellNode {
        self.nodes[idx].node
    }

    fn is_localized(&self, idx: usize) -> bool {
        self.nodes[idx].localized
    }

    fn open(&mut self, ctx: &Ctx, shared: &BhShared, idx: usize) {
        if !self.nodes[idx].localized {
            self.localize_children(ctx, shared, idx);
        } else {
            self.ensure_children_current(ctx, shared, idx);
        }
    }

    fn kids(&self, idx: usize) -> &[u32] {
        self.arena.kids(self.nodes[idx].ranges)
    }

    fn accumulate(
        &self,
        idx: usize,
        pos: Vec3,
        self_id: u32,
        eps: f64,
        acc: &mut Vec3,
        phi: &mut f64,
    ) -> u32 {
        self.arena.accumulate(self.nodes[idx].ranges, pos, self_id, eps, acc, phi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheTree;
    use crate::config::{OptLevel, SimConfig};
    use crate::shared::RankState;
    use crate::treebuild::{
        allocate_root, bounding_box_phase, center_of_mass_phase, insert_owned_bodies,
    };
    use pgas::Runtime;

    /// Builds a shared tree over the configured bodies and runs `f` on every
    /// rank with the tree ready.
    fn with_built_tree<R: Send>(
        cfg: &SimConfig,
        f: impl Fn(&Ctx, &BhShared, &mut RankState) -> R + Sync,
    ) -> Vec<R> {
        let shared = BhShared::new(cfg);
        let rt = Runtime::new(cfg.machine.clone());
        let shared_ref = &shared;
        let report = rt.run(|ctx| {
            let mut st = RankState::new(ctx, shared_ref, cfg);
            let (center, rsize) = bounding_box_phase(ctx, shared_ref, &mut st, cfg);
            allocate_root(ctx, shared_ref, center, rsize);
            ctx.barrier();
            insert_owned_bodies(ctx, shared_ref, &mut st, cfg);
            ctx.barrier();
            center_of_mass_phase(ctx, shared_ref, &mut st, cfg);
            ctx.barrier();
            f(ctx, shared_ref, &mut st)
        });
        report.ranks.into_iter().map(|r| r.result).collect()
    }

    #[test]
    fn shadow_walk_matches_separate_local_tree_exactly() {
        let cfg = SimConfig::test(250, 3, OptLevel::CacheLocalTree);
        let results = with_built_tree(&cfg, |ctx, shared, st| {
            let mut shadow = ShadowCacheTree::new(ctx, shared);
            let mut separate = CacheTree::new(ctx, shared);
            st.my_ids
                .iter()
                .map(|&id| {
                    let b = shared.bodytab.read_raw(id as usize);
                    let a = shadow.walk(ctx, shared, b.pos, id, cfg.theta, cfg.eps);
                    let c = separate.walk(ctx, shared, b.pos, id, cfg.theta, cfg.eps);
                    (
                        (a.acc - c.acc).norm(),
                        (a.phi - c.phi).abs(),
                        a.interactions == c.interactions,
                    )
                })
                .collect::<Vec<_>>()
        });
        for per_rank in results {
            for (dacc, dphi, same_count) in per_rank {
                assert_eq!(dacc, 0.0, "shadow and separate-tree walks must be bit-identical");
                assert_eq!(dphi, 0.0);
                assert!(same_count);
            }
        }
    }

    #[test]
    fn shadow_cache_does_not_copy_local_cells() {
        let cfg = SimConfig::test(400, 4, OptLevel::CacheLocalTree);
        let results = with_built_tree(&cfg, |ctx, shared, st| {
            let mut cache = ShadowCacheTree::new(ctx, shared);
            for &id in &st.my_ids {
                let b = shared.bodytab.read_raw(id as usize);
                cache.walk(ctx, shared, b.pos, id, cfg.theta, cfg.eps);
            }
            (cache.remote_copies, cache.local_reuses)
        });
        for (copies, reuses) in results {
            assert!(reuses > 0, "every rank opens at least some of its own cells");
            assert!(copies > 0, "with several ranks, some cells are remote");
        }
    }

    #[test]
    fn remote_traffic_is_identical_to_separate_local_tree() {
        // The paper's point: §5.3.2 does not change global communication.
        // Both caches are exercised over the *same* built tree (the global
        // insertion order, and hence the tree shape, differs from run to run).
        let cfg = SimConfig::test(300, 4, OptLevel::CacheLocalTree);
        let results = with_built_tree(&cfg, |ctx, shared, st| {
            let before_shadow = ctx.stats_snapshot();
            let mut shadow = ShadowCacheTree::new(ctx, shared);
            for &id in &st.my_ids {
                let b = shared.bodytab.read_raw(id as usize);
                shadow.walk(ctx, shared, b.pos, id, cfg.theta, cfg.eps);
            }
            let shadow_remote = ctx.stats_snapshot().delta(&before_shadow).remote_gets;

            let before_separate = ctx.stats_snapshot();
            let mut separate = CacheTree::new(ctx, shared);
            for &id in &st.my_ids {
                let b = shared.bodytab.read_raw(id as usize);
                separate.walk(ctx, shared, b.pos, id, cfg.theta, cfg.eps);
            }
            let separate_remote = ctx.stats_snapshot().delta(&before_separate).remote_gets;
            (shadow_remote, separate_remote)
        });
        for (shadow_remote, separate_remote) in results {
            assert_eq!(shadow_remote, separate_remote);
        }
    }

    #[test]
    fn second_pass_is_fully_cached() {
        let cfg = SimConfig::test(200, 2, OptLevel::CacheLocalTree);
        let results = with_built_tree(&cfg, |ctx, shared, st| {
            let mut cache = ShadowCacheTree::new(ctx, shared);
            for &id in &st.my_ids {
                let b = shared.bodytab.read_raw(id as usize);
                cache.walk(ctx, shared, b.pos, id, cfg.theta, cfg.eps);
            }
            let before = ctx.stats_snapshot();
            for &id in &st.my_ids {
                let b = shared.bodytab.read_raw(id as usize);
                cache.walk(ctx, shared, b.pos, id, cfg.theta, cfg.eps);
            }
            ctx.stats_snapshot().delta(&before).remote_gets
        });
        assert!(results.into_iter().all(|extra| extra == 0));
    }

    #[test]
    fn single_rank_never_copies() {
        // With one rank everything is local: the shadow cache is pure pointer
        // casting, which is exactly the §5.3 single-thread improvement.
        let cfg = SimConfig::test(150, 1, OptLevel::CacheLocalTree);
        let results = with_built_tree(&cfg, |ctx, shared, st| {
            let mut cache = ShadowCacheTree::new(ctx, shared);
            for &id in &st.my_ids {
                let b = shared.bodytab.read_raw(id as usize);
                cache.walk(ctx, shared, b.pos, id, cfg.theta, cfg.eps);
            }
            (cache.remote_copies, cache.local_reuses)
        });
        for (copies, reuses) in results {
            assert_eq!(copies, 0);
            assert!(reuses > 0);
        }
    }
}
