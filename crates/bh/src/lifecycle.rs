//! The tree-lifecycle subsystem: persistent-tree time stepping.
//!
//! The paper's protocol ([`TreePolicy::Rebuild`]) tears the global octree
//! down after every step and rebuilds it from nothing, which is what its
//! 4-step measurement window does — but over a long trajectory the bodies
//! barely move between steps, so almost all of that work recreates the tree
//! that was just discarded.  Under [`TreePolicy::Reuse`] /
//! [`TreePolicy::Adaptive`] this module keeps the shared tree alive across
//! steps:
//!
//! * every full build records, per body, a [`LeafSite`] — the leaf node's
//!   pointer, its parent cell and octant slot, and the bounds of the
//!   sub-cube the body occupied — in a shared side table that migrates with
//!   body ownership;
//! * at the start of each step, [`decide`] probes every owned body against
//!   its site: bodies still inside their sub-cube only need their leaf
//!   payload refreshed in place, bodies that left it must be re-inserted.
//!   A collective vote turns the per-rank drift counts into one global
//!   decision — reuse, or fall back to a full rebuild (cadence reached,
//!   drift threshold crossed, bounding box outgrew the persistent root, or
//!   any rank lost track of a leaf);
//! * [`incremental_update`] applies a reuse step: in-place leaf refreshes,
//!   detach + re-insert of the drifted bodies (re-using their leaf nodes,
//!   subdividing under the same locks a fresh insertion would take), and a
//!   bottom-up re-fold of every cell's (mass, centre of mass, cost, count)
//!   summary along the dirtied paths — which, bodies being bodies, is every
//!   path, so the re-fold runs over each rank's created cells with the same
//!   done-flag protocol as the centre-of-mass phase, but through cast-local
//!   pointers (the cells were allocated by this rank, §5.2 discipline);
//! * a *tree generation* counter increments on every full build.  The force
//!   caches ([`crate::cache::CacheTree`], [`crate::shadow::ShadowCacheTree`])
//!   carry the generation they were built against: while it is unchanged
//!   they are refreshed in place (payload re-reads, leaf arenas re-coalesced,
//!   localizations kept unless a slot was subdivided) instead of being
//!   reallocated from scratch.
//!
//! The persistent tree targets the global-insertion family (§4–§5.3),
//! where per-step rebuild means every body descending the shared tree
//! under locks.  The upper rungs keep per-step rebuild regardless of
//! policy ([`persistent_tree`]): the §5.4/§5.5 merged build already
//! rebuilds cheaply from lock-free local trees, and the §6 subspace build
//! re-plans the tree's shape from the cost distribution every step.
//! [`TreePolicy::Rebuild`] short-circuits out of every function here,
//! keeping the paper's protocol bit-for-bit identical to the pre-lifecycle
//! solver.

use crate::cellnode::{CellNode, NodeKind};
use crate::config::{SimConfig, TreePolicy};
use crate::mergetree::swap_child_slot;
use crate::shared::{read_body, BhShared, RankState};
use nbody::{Body, Vec3};
use pgas::{Ctx, GlobalPtr};
use std::collections::HashMap;

/// Where a body's leaf lives in the persistent tree: recorded at every full
/// build, kept fresh by the incremental update, stored in
/// [`BhShared::sites`] so it migrates with body ownership.
#[derive(Debug, Clone, Copy)]
pub struct LeafSite {
    /// The body-leaf node in the cell arena (stable across reuse steps; the
    /// incremental update re-uses the allocation when re-inserting).
    pub leaf: GlobalPtr,
    /// The cell whose child slot held the leaf when the site was recorded.
    /// A *hint*: concurrent subdivisions may relocate the leaf one level
    /// down, in which case the detach falls back to a descent.
    pub parent: GlobalPtr,
    /// Slot within `parent`.
    pub octant: u8,
    /// Centre of the containing cell's cube — the drift-test bound.  (The
    /// leaf *slot*'s octant sub-cube would be the tight bound, but with
    /// leaf capacity 1 those cubes are so small that most bodies exit them
    /// every step; the cell cube keeps the tree geometrically consistent —
    /// every ancestor still contains the body — while cutting the re-insert
    /// rate by ~8x per level.  Summaries stay exact either way: the re-fold
    /// recomputes them from the true positions.)
    pub center: Vec3,
    /// Half side length of the containing cell's cube.
    pub half: f64,
    /// `false` when the body could not be located in the tree (pathological
    /// coincident-body fallbacks); forces a rebuild.
    pub valid: bool,
}

impl LeafSite {
    /// The "no site recorded" sentinel.
    pub const INVALID: LeafSite = LeafSite {
        leaf: GlobalPtr::NULL,
        parent: GlobalPtr::NULL,
        octant: 0,
        center: Vec3::ZERO,
        half: 0.0,
        valid: false,
    };

    /// `true` when `pos` is still inside the recorded cell cube.
    #[inline]
    pub fn contains(&self, pos: Vec3) -> bool {
        (pos.x - self.center.x).abs() <= self.half
            && (pos.y - self.center.y).abs() <= self.half
            && (pos.z - self.center.z).abs() <= self.half
    }

    /// `true` when `pos` is still inside the *slot* sub-cube (the recorded
    /// octant of the cell cube).  A body outside its slot but inside the
    /// cell is where the persistent tree and a fresh rebuild first diverge
    /// structurally; `drift_threshold: 0` counts these as drift so that the
    /// policy stays bit-for-bit equivalent to per-step rebuild.
    #[inline]
    pub fn slot_contains(&self, pos: Vec3) -> bool {
        let q = self.half / 2.0;
        let cx = self.center.x + if self.octant & 1 != 0 { q } else { -q };
        let cy = self.center.y + if self.octant & 2 != 0 { q } else { -q };
        let cz = self.center.z + if self.octant & 4 != 0 { q } else { -q };
        (pos.x - cx).abs() <= q && (pos.y - cy).abs() <= q && (pos.z - cz).abs() <= q
    }
}

/// Per-rank lifecycle bookkeeping.  All fields that feed the reuse/rebuild
/// decision are either derived from collectives or updated identically on
/// every rank, so the decision itself never diverges between ranks.
#[derive(Debug, Clone)]
pub struct TreeLifecycle {
    /// Generation of the persistent tree; increments on every full build.
    /// Force caches built against an older generation are discarded instead
    /// of refreshed.
    pub generation: u64,
    /// `true` while a persistent tree from an earlier step is alive.
    pub valid: bool,
    /// Step index of the last full build.
    pub last_rebuild_step: usize,
    /// Set when a reuse step could not keep the tree geometrically exact
    /// (an un-detachable or un-locatable leaf); the next decision rebuilds.
    pub degraded: bool,
    /// Root-cell centre of the persistent tree (the bounding-box fit test).
    pub root_center: Vec3,
    /// Root-cell half side length of the persistent tree.
    pub root_half: f64,
    /// Total cell-arena population right after the last full build.  Reuse
    /// steps only ever grow the arena (detached structure and dropped cache
    /// localizations are never reclaimed mid-generation), so the decision
    /// forces a rebuild once the arena doubles — bounding tree garbage and
    /// cache growth even under an unbounded rebuild cadence.
    pub cells_at_build: usize,
}

impl Default for TreeLifecycle {
    fn default() -> Self {
        TreeLifecycle {
            generation: 0,
            valid: false,
            last_rebuild_step: 0,
            degraded: false,
            root_center: Vec3::ZERO,
            root_half: 0.0,
            cells_at_build: 0,
        }
    }
}

/// One owned body's probe result, computed once by [`decide`] and re-used by
/// [`incremental_update`] so the body table is not read twice.
#[derive(Debug, Clone)]
pub struct Probe {
    /// Global body id.
    pub id: u32,
    /// The body's current state (post-advance of the previous step).
    pub body: Body,
    /// Its recorded leaf site.
    pub site: LeafSite,
    /// `true` when the body is still inside its site's sub-cube.
    pub clean: bool,
}

/// The per-step build decision.
pub enum StepBuild {
    /// Tear down (if needed) and build from scratch.
    Rebuild,
    /// Keep the tree; apply [`incremental_update`] over these probes.
    Reuse(Vec<Probe>),
}

/// `true` when `cfg` carries the tree across steps: a reuse-capable policy
/// on a global-insertion level (§4–§5.3).
///
/// The upper rungs keep per-step rebuild regardless of policy, because for
/// them it is already cheap: the §5.4/§5.5 merged build constructs local
/// trees lock-free and pays only for the merge, and the §6 subspace build
/// re-plans the tree's shape from the cost distribution every step — an
/// incremental update of the *shared* tree (locked descents for every
/// drifted body, shared-pointer re-folds) costs more than either.  Below
/// §5.4, per-step rebuild means every body descending the shared tree
/// under locks, which is exactly what the persistent tree eliminates.
pub fn persistent_tree(cfg: &SimConfig) -> bool {
    cfg.tree_policy.reuses_tree() && !cfg.opt.merged_tree_build() && !cfg.opt.subspace_tree_build()
}

/// Decides whether this step reuses the persistent tree or rebuilds.
///
/// Under [`TreePolicy::Rebuild`] (or subspace levels) this returns
/// immediately with no communication and no charges — the paper's protocol
/// is untouched.  Otherwise every rank probes its owned bodies against
/// their recorded sites and one allgather combines the drift counts and
/// validity flags into a decision that is identical on every rank.
pub fn decide(
    ctx: &Ctx,
    shared: &BhShared,
    st: &mut RankState,
    cfg: &SimConfig,
    step: usize,
) -> StepBuild {
    if !persistent_tree(cfg) {
        return StepBuild::Rebuild;
    }

    // Inputs that are identical on every rank by construction (`valid` and
    // `last_rebuild_step` only change on globally agreed rebuilds) decide a
    // cadence-forced rebuild up front — no probe pass, no collective, no
    // wasted per-body reads on a step that was going to rebuild anyway.
    let since = step.saturating_sub(st.lifecycle.last_rebuild_step);
    let cadence_due = !st.lifecycle.valid
        || match cfg.tree_policy {
            TreePolicy::Rebuild => true,
            TreePolicy::Reuse { rebuild_every, .. } => since >= rebuild_every,
            TreePolicy::Adaptive => since >= TreePolicy::ADAPTIVE_REBUILD_EVERY,
        };
    // The arena only grows during reuse (nothing is reclaimed
    // mid-generation); once it has doubled since the last build, the
    // accumulated garbage costs more than a rebuild.  `total_len` is stable
    // between steps and identical on every rank, so this stays a uniform
    // local decision.
    let bloated = shared.cells.total_len() > 2 * st.lifecycle.cells_at_build.max(1);
    if cadence_due || bloated {
        return StepBuild::Rebuild;
    }

    // `drift_threshold: 0` is the strict mode: even within-cell movement (a
    // body changing octant inside its cell — the first point where the
    // persistent tree and a fresh rebuild diverge structurally) counts as
    // drift, so any reuse step the policy still allows is bit-for-bit a
    // rebuild.  Above zero, the threshold gates the re-insert fraction —
    // the bodies that actually left their leaf's cell bounds.
    let strict = matches!(cfg.tree_policy, TreePolicy::Reuse { drift_threshold, .. } if drift_threshold == 0.0);

    let mut probes = Vec::new();
    let mut dirty = 0u64;
    let mut lost = false;
    for i in 0..st.my_ids.len() {
        let id = st.my_ids[i];
        let body = read_body(ctx, shared, st, cfg, id);
        let site = read_site(ctx, shared, st, cfg, id);
        if !site.valid {
            lost = true;
        }
        let clean = site.valid && site.contains(body.pos);
        let drifted = if strict { !(site.valid && site.slot_contains(body.pos)) } else { !clean };
        if drifted {
            dirty += 1;
        }
        probes.push(Probe { id, body, site, clean });
    }
    ctx.charge_tree_ops(st.my_ids.len() as u64);

    // The new bounding box (stashed by the bounding-box phase) must still
    // fit inside the persistent root cell, or insertions would walk off the
    // tree's geometry.
    let fits = {
        let c = st.lifecycle.root_center;
        let h = st.lifecycle.root_half;
        let inside =
            |p: Vec3| (p.x - c.x).abs() <= h && (p.y - c.y).abs() <= h && (p.z - c.z).abs() <= h;
        inside(st.bbox_lo) && inside(st.bbox_hi)
    };
    let bad = lost || st.lifecycle.degraded || !fits;

    // One collective turns the per-rank observations into a global decision.
    let votes = ctx.allgather((dirty, st.my_ids.len() as u64, bad as u8));
    let total_dirty: u64 = votes.iter().map(|v| v.0).sum();
    let total_owned: u64 = votes.iter().map(|v| v.1).sum();
    let any_bad = votes.iter().any(|v| v.2 != 0);
    let drift = total_dirty as f64 / total_owned.max(1) as f64;

    let rebuild = any_bad
        || match cfg.tree_policy {
            TreePolicy::Rebuild => true,
            TreePolicy::Reuse { drift_threshold, .. } => drift > drift_threshold,
            TreePolicy::Adaptive => drift > TreePolicy::ADAPTIVE_DRIFT,
        };
    if std::env::var("BH_LIFECYCLE_TRACE").is_ok() && ctx.rank() == 0 {
        eprintln!("[lifecycle] step {step}: drift {:.3} since {since} rebuild={rebuild}", drift);
    }
    if rebuild {
        StepBuild::Rebuild
    } else {
        StepBuild::Reuse(probes)
    }
}

/// Tears down the persistent tree before a full rebuild.  A no-op when no
/// tree survived the previous step (first step, or [`TreePolicy::Rebuild`],
/// whose per-step teardown already ran), so the rebuild-only path keeps its
/// exact pre-lifecycle barrier structure.
pub fn clear_stale_tree(ctx: &Ctx, shared: &BhShared, st: &mut RankState) {
    if !st.lifecycle.valid {
        return;
    }
    st.my_cells.clear();
    if ctx.rank() == 0 {
        shared.cells.clear(ctx);
        shared.root.write_raw(GlobalPtr::NULL);
    }
    ctx.barrier();
    st.lifecycle.valid = false;
}

/// Finishes a full build under a persistent policy: bumps the tree
/// generation, records the root geometry, and captures every owned body's
/// [`LeafSite`] by one memoized descent pass over the fresh tree.
pub fn after_rebuild(
    ctx: &Ctx,
    shared: &BhShared,
    st: &mut RankState,
    cfg: &SimConfig,
    step: usize,
    center: Vec3,
    rsize: f64,
) {
    st.lifecycle.generation += 1;
    st.lifecycle.valid = true;
    st.lifecycle.degraded = false;
    st.lifecycle.last_rebuild_step = step;
    st.lifecycle.root_center = center;
    st.lifecycle.root_half = rsize / 2.0;
    st.lifecycle.cells_at_build = shared.cells.total_len();
    capture_sites(ctx, shared, st, cfg);
    ctx.barrier();
}

/// Records the [`LeafSite`] of every body this rank owns by descending the
/// freshly built tree.  Cells are read (and billed) once each per rank via a
/// memo, like a force-phase cache warm-up; a body that cannot be located
/// (the coincident-body give-up of the builders drops bodies from the tree)
/// marks the rank degraded, which forces the next decision to rebuild.
fn capture_sites(ctx: &Ctx, shared: &BhShared, st: &mut RankState, cfg: &SimConfig) {
    let root_ptr = shared.root.read(ctx);
    let mut memo: HashMap<GlobalPtr, CellNode> = HashMap::new();
    for i in 0..st.my_ids.len() {
        let id = st.my_ids[i];
        let body = read_body(ctx, shared, st, cfg, id);
        let site = locate_leaf(ctx, shared, cfg, &mut memo, root_ptr, id, body.pos);
        if !site.valid {
            st.lifecycle.degraded = true;
        }
        write_site(ctx, shared, st, cfg, id, site);
    }
}

/// Descends from `root` to body `id`'s leaf, returning its site (or
/// [`LeafSite::INVALID`] when the body is not reachable by its position).
fn locate_leaf(
    ctx: &Ctx,
    shared: &BhShared,
    cfg: &SimConfig,
    memo: &mut HashMap<GlobalPtr, CellNode>,
    root: GlobalPtr,
    id: u32,
    pos: Vec3,
) -> LeafSite {
    let mut cur = root;
    for _ in 0..cfg.max_depth + 32 {
        let node = read_cell_memo(ctx, shared, memo, cur);
        if node.kind != NodeKind::Cell {
            return LeafSite::INVALID;
        }
        ctx.charge_tree_ops(1);
        let octant = node.octant_of(pos);
        let mut next = GlobalPtr::NULL;
        let child = node.children[octant];
        if !child.is_null() {
            let cn = read_cell_memo(ctx, shared, memo, child);
            if cn.is_body() && cn.body_id == id {
                return LeafSite {
                    leaf: child,
                    parent: cur,
                    octant: octant as u8,
                    center: node.center,
                    half: node.half,
                    valid: true,
                };
            }
            if cn.is_cell() {
                next = child;
            }
        }
        // Coincident-body buckets hang their leaves in arbitrary slots, so
        // an octant miss falls back to scanning the cell.  The recorded
        // bounds are then the parent's cube (conservative: the leaf slot's
        // octant cube does not correspond to the body's position).
        if next.is_null() {
            for o in 0..8 {
                let c = node.children[o];
                if c.is_null() || o == octant {
                    continue;
                }
                let cn = read_cell_memo(ctx, shared, memo, c);
                if cn.is_body() && cn.body_id == id {
                    return LeafSite {
                        leaf: c,
                        parent: cur,
                        octant: o as u8,
                        center: node.center,
                        half: node.half,
                        valid: true,
                    };
                }
            }
            return LeafSite::INVALID;
        }
        cur = next;
    }
    LeafSite::INVALID
}

/// Reads a cell through the memo, billing the shared-pointer read once per
/// distinct cell per capture pass.
fn read_cell_memo(
    ctx: &Ctx,
    shared: &BhShared,
    memo: &mut HashMap<GlobalPtr, CellNode>,
    ptr: GlobalPtr,
) -> CellNode {
    if let Some(node) = memo.get(&ptr) {
        return *node;
    }
    let node = shared.cells.read(ctx, ptr);
    memo.insert(ptr, node);
    node
}

/// Applies one reuse step to the persistent tree: in-place leaf refreshes,
/// detach + re-insert of the drifted bodies, and the bottom-up summary
/// re-fold.  Runs entirely inside the tree-building phase; the separate
/// centre-of-mass phase has nothing left to do afterwards.
pub fn incremental_update(
    ctx: &Ctx,
    shared: &BhShared,
    st: &mut RankState,
    cfg: &SimConfig,
    probes: Vec<Probe>,
) {
    // Phase A: refresh clean leaves in place (the leaf pointer is the
    // stable handle — relocations never change it) and detach the dirty
    // ones from their parent slots.
    let mut dirty: Vec<Probe> = Vec::new();
    for p in probes {
        let fresh = CellNode::new_body(p.id, p.body.pos, p.body.mass, p.body.cost);
        if p.clean {
            shared.cells.write(ctx, p.site.leaf, fresh);
            ctx.charge_tree_ops(1);
        } else if detach_leaf(ctx, shared, cfg, &p.site) {
            dirty.push(p);
        } else {
            // The leaf could not be located (a lost relocation race):
            // refresh it where it is — summaries stay exact, only the
            // spatial partition degrades — and rebuild next step.
            shared.cells.write(ctx, p.site.leaf, fresh);
            ctx.charge_tree_ops(1);
            st.lifecycle.degraded = true;
        }
    }
    ctx.barrier();

    // Phase B: re-insert the detached bodies, re-using their leaf nodes.
    let root = shared.root.read(ctx);
    for p in &dirty {
        let fresh = CellNode::new_body(p.id, p.body.pos, p.body.mass, p.body.cost);
        shared.cells.write(ctx, p.site.leaf, fresh);
        reinsert_leaf(ctx, shared, st, cfg, root, p.site.leaf, &fresh);
    }
    ctx.barrier();

    // Phase C: re-fold summaries bottom-up.  Every body moved, so every
    // root-to-leaf path is dirty: reset the done flags of the cells this
    // rank created (they live in its own region — cast-local accesses) and
    // run the done-flag fold, children before parents.
    for i in 0..st.my_cells.len() {
        let ptr = st.my_cells[i];
        let mut node = shared.cells.read_local(ctx, ptr);
        node.done = false;
        shared.cells.write_local(ctx, ptr, node);
    }
    if ctx.rank() == 0 && !root.is_null() {
        let mut node = shared.cells.read_local(ctx, root);
        node.done = false;
        shared.cells.write_local(ctx, root, node);
    }
    ctx.barrier();
    refold_cells(ctx, shared, st);
    ctx.barrier();
}

/// Unhooks a leaf from the tree: first through its site hint, then (if a
/// relocation made the hint stale) by descending along the leaf's recorded
/// position.  Returns `false` when the leaf cannot be found.
fn detach_leaf(ctx: &Ctx, shared: &BhShared, cfg: &SimConfig, site: &LeafSite) -> bool {
    if !site.parent.is_null()
        && swap_child_slot(
            ctx,
            shared,
            site.parent,
            site.octant as usize,
            site.leaf,
            GlobalPtr::NULL,
        )
    {
        return true;
    }
    // Hint stale: the leaf still holds the position it was placed by (dirty
    // leaves are not refreshed before detaching), so a descent finds it.
    let placed_at = shared.cells.read(ctx, site.leaf).cofm;
    let mut cur = shared.root.read(ctx);
    for _ in 0..cfg.max_depth + 32 {
        if cur.is_null() {
            return false;
        }
        let node = shared.cells.read(ctx, cur);
        if node.kind != NodeKind::Cell {
            return false;
        }
        ctx.charge_tree_ops(1);
        if let Some(o) = (0..8).find(|&o| node.children[o] == site.leaf) {
            if swap_child_slot(ctx, shared, cur, o, site.leaf, GlobalPtr::NULL) {
                return true;
            }
            continue;
        }
        let child = node.children[node.octant_of(placed_at)];
        if child.is_null() {
            return false;
        }
        if shared.cells.read(ctx, child).is_body() {
            return false;
        }
        cur = child;
    }
    false
}

/// Re-inserts a detached leaf under the same locking discipline as a fresh
/// insertion, recording its new site (and keeping the site of any body leaf
/// a subdivision relocates fresh).
fn reinsert_leaf(
    ctx: &Ctx,
    shared: &BhShared,
    st: &mut RankState,
    cfg: &SimConfig,
    root: GlobalPtr,
    leaf_ptr: GlobalPtr,
    leaf: &CellNode,
) {
    let mut cur = root;
    let mut depth = 0usize;
    loop {
        depth += 1;
        if depth > cfg.max_depth + 16 {
            // Pathologically coincident bodies: leave the body out of the
            // tree for this step (its mass is missing from the summaries
            // until the forced rebuild, exactly like the builders' give-up).
            write_site(ctx, shared, st, cfg, leaf.body_id, LeafSite::INVALID);
            st.lifecycle.degraded = true;
            return;
        }
        let node = shared.cells.read(ctx, cur);
        debug_assert_eq!(node.kind, NodeKind::Cell, "re-insert descent must stay on cells");
        ctx.charge_tree_ops(1);
        let octant = node.octant_of(leaf.cofm);
        let child = node.children[octant];

        if child.is_null() {
            if swap_child_slot(ctx, shared, cur, octant, GlobalPtr::NULL, leaf_ptr) {
                let site = LeafSite {
                    leaf: leaf_ptr,
                    parent: cur,
                    octant: octant as u8,
                    center: node.center,
                    half: node.half,
                    valid: true,
                };
                write_site(ctx, shared, st, cfg, leaf.body_id, site);
                return;
            }
            continue; // Lost the race; re-read the slot.
        }

        let child_node = shared.cells.read(ctx, child);
        if child_node.is_cell() {
            cur = child;
            continue;
        }

        // The slot holds another body: subdivide under the cell's lock,
        // exactly like a fresh insertion, and keep the displaced body's
        // site fresh.
        let guard = shared.lock_for(cur).lock(ctx);
        let fresh = shared.cells.read(ctx, cur);
        if fresh.children[octant] != child {
            drop(guard);
            continue;
        }
        let (ccenter, chalf) = fresh.child_geometry(octant);
        let mut new_cell = CellNode::new_cell(ccenter, chalf);
        let existing_octant = new_cell.octant_of(child_node.cofm);
        new_cell.children[existing_octant] = child;
        let new_ptr = shared.cells.alloc(ctx, new_cell);
        st.my_cells.push(new_ptr);
        let mut updated = fresh;
        updated.children[octant] = new_ptr;
        shared.cells.write(ctx, cur, updated);
        drop(guard);

        // The displaced body was clean under the *parent's* cube, so it may
        // lie outside the new sub-cell it was re-hung in (an octant change
        // within its cell).  Recording the sub-cell cube then would make
        // `contains` fail every step and re-insert the body forever; fall
        // back to the cube that is known to contain it.
        let mut displaced = LeafSite {
            leaf: child,
            parent: new_ptr,
            octant: existing_octant as u8,
            center: ccenter,
            half: chalf,
            valid: true,
        };
        if !displaced.contains(child_node.cofm) {
            displaced.center = fresh.center;
            displaced.half = fresh.half;
        }
        write_site(ctx, shared, st, cfg, child_node.body_id, displaced);
        cur = new_ptr;
    }
}

/// The bottom-up summary re-fold: the same done-flag protocol (and the same
/// per-cell arithmetic, so a zero-drift reuse step reproduces a fresh
/// build's summaries bit for bit at the insertion levels) as the
/// centre-of-mass phase, but reading each rank's own cells through cast
/// local pointers and taking child payloads from the leaves themselves —
/// the refreshed leaf *is* the body record.
fn refold_cells(ctx: &Ctx, shared: &BhShared, st: &RankState) {
    let pending = crate::treebuild::summary_pending(ctx, shared, st);
    crate::treebuild::drain_summaries(pending, |ptr| try_refold_cell(ctx, shared, ptr));
}

/// Attempts to re-fold one cell; `false` when a child cell's summary is not
/// ready yet.
fn try_refold_cell(ctx: &Ctx, shared: &BhShared, ptr: GlobalPtr) -> bool {
    let node = if ptr.is_local_to(ctx.rank()) {
        shared.cells.read_local(ctx, ptr)
    } else {
        shared.cells.read(ctx, ptr)
    };
    if node.done {
        return true;
    }
    ctx.charge_tree_ops(1);
    let mut mass = 0.0;
    let mut moment = Vec3::ZERO;
    let mut cost = 0u64;
    let mut nbodies = 0u32;
    for octant in 0..8 {
        let child = node.children[octant];
        if child.is_null() {
            continue;
        }
        let child_node = if child.is_local_to(ctx.rank()) {
            shared.cells.read_local(ctx, child)
        } else {
            shared.cells.read(ctx, child)
        };
        match child_node.kind {
            NodeKind::Body => {
                mass += child_node.mass;
                moment += child_node.cofm * child_node.mass;
                cost += child_node.cost;
                nbodies += 1;
            }
            NodeKind::Cell => {
                if !child_node.done {
                    return false;
                }
                mass += child_node.mass;
                moment += child_node.cofm * child_node.mass;
                cost += child_node.cost;
                nbodies += child_node.nbodies;
            }
        }
    }
    let mut updated = node;
    updated.mass = mass;
    updated.cofm = if mass > 0.0 { moment / mass } else { node.center };
    updated.cost = cost;
    updated.nbodies = nbodies;
    updated.done = true;
    if ptr.is_local_to(ctx.rank()) {
        shared.cells.write_local(ctx, ptr, updated);
    } else {
        shared.cells.write(ctx, ptr, updated);
    }
    true
}

/// Reads body `id`'s site under the body-table access discipline: the
/// record migrates with ownership (it rides the same redistribution
/// transfers as the body), so owned sites cost a local access; foreign
/// sites are one remote get.  Also used by the group walk
/// ([`crate::groupwalk`]) to detect relocated member leaves.
pub(crate) fn read_site(
    ctx: &Ctx,
    shared: &BhShared,
    st: &RankState,
    cfg: &SimConfig,
    id: u32,
) -> LeafSite {
    if cfg.opt.redistributes_bodies() && st.owns(id) {
        ctx.charge_local_accesses(1);
        shared.sites.read_raw(id as usize)
    } else {
        shared.sites.read(ctx, id as usize)
    }
}

/// Writes body `id`'s site (see [`read_site`] for the discipline).
fn write_site(
    ctx: &Ctx,
    shared: &BhShared,
    st: &RankState,
    cfg: &SimConfig,
    id: u32,
    site: LeafSite,
) {
    if cfg.opt.redistributes_bodies() && st.owns(id) {
        ctx.charge_local_accesses(1);
        shared.sites.write_raw(id as usize, site);
    } else {
        shared.sites.write(ctx, id as usize, site);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptLevel;
    use crate::treebuild::{
        allocate_root, bounding_box_phase, center_of_mass_phase, insert_owned_bodies,
    };
    use pgas::Runtime;

    fn reuse_cfg(nbodies: usize, ranks: usize) -> SimConfig {
        let mut cfg = SimConfig::test(nbodies, ranks, OptLevel::CacheLocalTree);
        cfg.tree_policy = TreePolicy::Reuse { rebuild_every: 8, drift_threshold: 1.0 };
        cfg
    }

    #[test]
    fn leaf_site_containment() {
        let site = LeafSite { center: Vec3::new(1.0, 1.0, 1.0), half: 0.5, ..LeafSite::INVALID };
        assert!(site.contains(Vec3::new(1.2, 0.9, 1.5)));
        assert!(!site.contains(Vec3::new(1.6, 1.0, 1.0)));
        assert!(!std::hint::black_box(LeafSite::INVALID).valid);
    }

    #[test]
    fn persistent_tree_requires_reuse_policy_and_a_global_insertion_level() {
        let mut cfg = SimConfig::test(64, 2, OptLevel::CacheLocalTree);
        assert!(!persistent_tree(&cfg));
        cfg.tree_policy = TreePolicy::Adaptive;
        assert!(persistent_tree(&cfg));
        for opt in [OptLevel::Baseline, OptLevel::ReplicateScalars, OptLevel::Redistribute] {
            cfg.opt = opt;
            assert!(persistent_tree(&cfg), "{}", opt.name());
        }
        for opt in [OptLevel::MergedTreeBuild, OptLevel::AsyncAggregation, OptLevel::Subspace] {
            cfg.opt = opt;
            assert!(
                !persistent_tree(&cfg),
                "{}: the merged/subspace builds rebuild cheaply every step",
                opt.name()
            );
        }
    }

    #[test]
    fn capture_locates_every_owned_body() {
        let cfg = reuse_cfg(200, 3);
        let shared = BhShared::new(&cfg);
        let rt = Runtime::new(cfg.machine.clone());
        rt.run(|ctx| {
            let mut st = RankState::new(ctx, &shared, &cfg);
            let (center, rsize) = bounding_box_phase(ctx, &shared, &mut st, &cfg);
            allocate_root(ctx, &shared, center, rsize);
            ctx.barrier();
            insert_owned_bodies(ctx, &shared, &mut st, &cfg);
            ctx.barrier();
            center_of_mass_phase(ctx, &shared, &mut st, &cfg);
            ctx.barrier();
            after_rebuild(ctx, &shared, &mut st, &cfg, 0, center, rsize);
            assert!(!st.lifecycle.degraded, "every Plummer body must be locatable");
            // The recorded sites point at the actual leaves and contain the
            // bodies that produced them.
            for &id in &st.my_ids {
                let site = shared.sites.read_raw(id as usize);
                assert!(site.valid, "body {id} has no site");
                let leaf = shared.cells.read_raw(site.leaf);
                assert!(leaf.is_body());
                assert_eq!(leaf.body_id, id);
                let parent = shared.cells.read_raw(site.parent);
                assert_eq!(parent.children[site.octant as usize], site.leaf);
                let body = shared.bodytab.read_raw(id as usize);
                assert!(site.contains(body.pos), "body {id} outside its recorded sub-cube");
            }
            ctx.barrier();
        });
    }

    #[test]
    fn zero_drift_reuse_reproduces_the_summaries() {
        // Build, capture, then run an incremental update without moving any
        // body: the re-folded summaries must match what the fresh build
        // computed.
        let cfg = reuse_cfg(150, 2);
        let shared = BhShared::new(&cfg);
        let rt = Runtime::new(cfg.machine.clone());
        let report = rt.run(|ctx| {
            let mut st = RankState::new(ctx, &shared, &cfg);
            let (center, rsize) = bounding_box_phase(ctx, &shared, &mut st, &cfg);
            allocate_root(ctx, &shared, center, rsize);
            ctx.barrier();
            insert_owned_bodies(ctx, &shared, &mut st, &cfg);
            ctx.barrier();
            center_of_mass_phase(ctx, &shared, &mut st, &cfg);
            ctx.barrier();
            after_rebuild(ctx, &shared, &mut st, &cfg, 0, center, rsize);
            ctx.barrier();
            let before = shared.cells.read_raw(shared.root.read_raw());

            let decision = decide(ctx, &shared, &mut st, &cfg, 1);
            let probes = match decision {
                StepBuild::Reuse(p) => p,
                StepBuild::Rebuild => panic!("unmoved bodies must allow reuse"),
            };
            assert!(probes.iter().all(|p| p.clean), "no body moved");
            incremental_update(ctx, &shared, &mut st, &cfg, probes);
            ctx.barrier();
            let after = shared.cells.read_raw(shared.root.read_raw());
            (before, after)
        });
        for r in &report.ranks {
            let (before, after) = &r.result;
            assert_eq!(before.mass.to_bits(), after.mass.to_bits());
            assert_eq!(before.cofm.x.to_bits(), after.cofm.x.to_bits());
            assert_eq!(before.nbodies, after.nbodies);
            assert!(after.done);
        }
    }

    #[test]
    fn drifted_bodies_are_reinserted_and_summaries_stay_exact() {
        let cfg = reuse_cfg(120, 2);
        let shared = BhShared::new(&cfg);
        let rt = Runtime::new(cfg.machine.clone());
        rt.run(|ctx| {
            let mut st = RankState::new(ctx, &shared, &cfg);
            let (center, rsize) = bounding_box_phase(ctx, &shared, &mut st, &cfg);
            allocate_root(ctx, &shared, center, rsize);
            ctx.barrier();
            insert_owned_bodies(ctx, &shared, &mut st, &cfg);
            ctx.barrier();
            center_of_mass_phase(ctx, &shared, &mut st, &cfg);
            ctx.barrier();
            after_rebuild(ctx, &shared, &mut st, &cfg, 0, center, rsize);
            ctx.barrier();

            // Move a quarter of the owned bodies to fresh, pairwise
            // distinct spots well inside the root cube (guaranteed to leave
            // their leaf sub-cubes without creating coincident bodies).
            for (k, &id) in st.my_ids.iter().enumerate() {
                if k % 4 == 0 {
                    let mut b = shared.bodytab.read_raw(id as usize);
                    let f = id as f64;
                    b.pos = center + Vec3::new(0.3 + 0.002 * f, 0.1 - 0.001 * f, -0.2 + 0.0015 * f);
                    shared.bodytab.write_raw(id as usize, b);
                }
            }
            ctx.barrier();

            let decision = decide(ctx, &shared, &mut st, &cfg, 1);
            let probes = match decision {
                StepBuild::Reuse(p) => p,
                StepBuild::Rebuild => panic!("drift threshold 1.0 must not force a rebuild"),
            };
            assert!(probes.iter().any(|p| !p.clean), "some bodies must have drifted");
            incremental_update(ctx, &shared, &mut st, &cfg, probes);
            ctx.barrier();

            // The tree still contains every body exactly once and every
            // summary matches its subtree.
            if ctx.rank() == 0 {
                let root = shared.root.read_raw();
                let mut seen = vec![false; cfg.nbodies];
                fn visit(shared: &BhShared, ptr: GlobalPtr, seen: &mut [bool]) -> (u32, f64) {
                    let node = shared.cells.read_raw(ptr);
                    match node.kind {
                        NodeKind::Body => {
                            assert!(!seen[node.body_id as usize]);
                            seen[node.body_id as usize] = true;
                            (1, node.mass)
                        }
                        NodeKind::Cell => {
                            assert!(node.done, "re-fold must complete");
                            let mut count = 0;
                            let mut mass = 0.0;
                            for c in node.children {
                                if !c.is_null() {
                                    let (n, m) = visit(shared, c, seen);
                                    count += n;
                                    mass += m;
                                }
                            }
                            assert_eq!(count, node.nbodies, "stale body count after reuse");
                            assert!((mass - node.mass).abs() < 1e-9);
                            (count, mass)
                        }
                    }
                }
                let (count, _) = visit(&shared, root, &mut seen);
                assert_eq!(count as usize, cfg.nbodies, "a reused tree lost bodies");
                assert!(seen.iter().all(|&s| s));
            }
            ctx.barrier();
        });
    }
}
