//! The shared (PGAS) state of the distributed Barnes-Hut application and the
//! per-rank private state, together with the body-access helpers that encode
//! each optimization level's access/billing discipline.

use crate::cache::CacheTree;
use crate::cellstore::CellStore;
use crate::config::{OptLevel, SimConfig};
use crate::groupwalk::GroupLists;
use crate::lifecycle::{LeafSite, TreeLifecycle};
use crate::shadow::ShadowCacheTree;
use nbody::plummer::{generate, PlummerConfig};
use nbody::{Body, Vec3};
use pgas::shared::SharedScalar;
use pgas::swcache::CachedScalar;
use pgas::{Ctx, GlobalPtr, PhaseTimer, SharedVec};

/// Number of locks in the global lock table protecting cell modifications
/// (SPLASH-2 hashes cells onto a fixed pool of locks).
pub const CELL_LOCKS: usize = 2048;

/// All PGAS-resident state of the application (the equivalent of the UPC
/// program's shared declarations in §4).
pub struct BhShared {
    /// The global body table (`bodytab` in the paper): block-distributed
    /// over ranks, allocated by thread 0 with `upc_global_alloc`.
    pub bodytab: SharedVec<Body>,
    /// The cell heap: cells are allocated by the inserting thread with
    /// `upc_alloc` and linked through pointers-to-shared.  Fat arena or
    /// compact SoA layout according to the configured tree build (see
    /// [`crate::cellstore`]).
    pub cells: CellStore,
    /// Pointer to the root cell of the current step's tree (a shared scalar
    /// on thread 0).
    pub root: SharedScalar<GlobalPtr>,
    /// Root cell size (`rsize`), a shared scalar on thread 0 that §5.1
    /// replicates.
    pub rsize: SharedScalar<f64>,
    /// Root cell centre, shared alongside `rsize`.
    pub center: SharedScalar<Vec3>,
    /// Opening criterion θ (`tol`), a write-once shared scalar on thread 0.
    pub tol: SharedScalar<f64>,
    /// Softening ε (`eps`), a write-once shared scalar on thread 0.
    pub eps: SharedScalar<f64>,
    /// Lock table protecting concurrent cell modification during the global
    /// insertion tree build.
    pub locks: pgas::lock::LockTable,
    /// Per-body leaf sites of the persistent tree (the tree-lifecycle
    /// subsystem's side table, indexed by body id like `bodytab`).  Only
    /// populated under a reuse-capable [`crate::config::TreePolicy`].
    pub sites: pgas::SharedVec<LeafSite>,
}

impl BhShared {
    /// Creates the shared state for a run: generates the Plummer initial
    /// conditions into the body table and initializes the shared scalars.
    pub fn new(cfg: &SimConfig) -> Self {
        let bodies = generate(&PlummerConfig::new(cfg.nbodies, cfg.seed));
        BhShared::with_bodies(cfg, bodies)
    }

    /// Creates the shared state over caller-provided initial conditions
    /// (any workload — see the `scenarios` crate — not just Plummer).
    ///
    /// The bodies must number `cfg.nbodies` and carry ids `0..nbodies` in
    /// order: the solvers use the id as the index into the global body
    /// table when redistributing and when assembling the final snapshot.
    pub fn with_bodies(cfg: &SimConfig, bodies: Vec<Body>) -> Self {
        engine::validate_bodies(cfg, &bodies);
        let ranks = cfg.ranks();
        let nbodies = bodies.len();
        BhShared {
            bodytab: SharedVec::from_vec(ranks, bodies),
            sites: SharedVec::new(ranks, nbodies, LeafSite::INVALID),
            cells: CellStore::new(ranks, cfg.build),
            root: SharedScalar::new(GlobalPtr::NULL),
            rsize: SharedScalar::new(0.0),
            center: SharedScalar::new(Vec3::ZERO),
            tol: SharedScalar::new(cfg.theta),
            eps: SharedScalar::new(cfg.eps),
            locks: pgas::lock::LockTable::new(CELL_LOCKS, ranks),
        }
    }

    /// The lock protecting modifications of the cell addressed by `ptr`.
    pub fn lock_for(&self, ptr: GlobalPtr) -> &pgas::GlobalLock {
        let key = (ptr.threadof() << 20) ^ ptr.indexof();
        self.locks.lock_for(key)
    }
}

/// Per-rank software caches in front of the shared scalars (the MuPC-style
/// transparent caching ablation; see [`SimConfig::software_scalar_cache`]).
#[derive(Default)]
pub struct ScalarCaches {
    /// Cache in front of `tol` (θ).
    pub tol: CachedScalar<f64>,
    /// Cache in front of `eps`.
    pub eps: CachedScalar<f64>,
    /// Cache in front of `rsize`.
    pub rsize: CachedScalar<f64>,
    /// Cache in front of the root-cell centre.
    pub center: CachedScalar<Vec3>,
}

/// Private per-rank state (the UPC thread's private variables).
pub struct RankState {
    /// Global indices of the bodies this rank currently owns
    /// (`mybodytab[]`).
    pub my_ids: Vec<u32>,
    /// Ownership bitmap over all bodies (kept consistent with `my_ids` by
    /// [`RankState::set_owned`]); gives O(1) ownership tests in hot paths.
    owned: Vec<bool>,
    /// Replicated θ (meaningful at [`OptLevel::ReplicateScalars`] and above).
    pub theta: f64,
    /// Replicated ε.
    pub eps: f64,
    /// Replicated root size (`myrsize` in §5.1).
    pub rsize: f64,
    /// Replicated root centre.
    pub center: Vec3,
    /// Cells this rank allocated during the current step's tree build
    /// (`mycelltab[]`), in creation order.
    pub my_cells: Vec<GlobalPtr>,
    /// Phase timer for this rank.
    pub timer: PhaseTimer,
    /// Simulated time spent building the local tree (§5.4/§6 sub-phase,
    /// Figure 8).
    pub tree_local_time: f64,
    /// Simulated time spent merging/hooking into the global tree (Figure 8).
    pub tree_merge_time: f64,
    /// Bodies that migrated to this rank during measured steps.
    pub migrated: u64,
    /// Sum over measured steps of the number of owned bodies (for the
    /// migration-fraction statistic).
    pub owned_accum: u64,
    /// Transparent software caches for the shared scalars, present only when
    /// [`SimConfig::software_scalar_cache`] is enabled.
    pub scalar_caches: Option<ScalarCaches>,
    /// Lower corner of this step's global bounding box (stashed by the
    /// bounding-box phase; the tree-lifecycle fit test reads it).
    pub bbox_lo: Vec3,
    /// Upper corner of this step's global bounding box.
    pub bbox_hi: Vec3,
    /// `true` when the bounding-box phase handed back the persistent root
    /// cube instead of deriving a fresh one this step.  A rebuild must then
    /// re-derive the cube from the stashed box ([`crate::treebuild::derive_root_cube`])
    /// so rebuilt trees stay bit-identical under every tree policy.
    pub bbox_kept_cube: bool,
    /// Persistent-tree bookkeeping (see [`crate::lifecycle`]).
    pub lifecycle: TreeLifecycle,
    /// The force-phase cache carried across steps while the tree generation
    /// is unchanged (reuse policies only; `None` under per-step rebuild).
    pub cache_slot: Option<CacheTree>,
    /// Shadow-variant counterpart of [`RankState::cache_slot`].
    pub shadow_slot: Option<ShadowCacheTree>,
    /// Group-walk interaction lists carried across steps alongside the
    /// force cache (see [`crate::groupwalk`]; `None` under per-step rebuild,
    /// per-body walks, or the strict `drift_threshold: 0` reuse mode).
    pub group_slot: Option<GroupLists>,
}

impl RankState {
    /// Initial state: the rank owns its block of the body table and has
    /// parsed the input parameters locally (as §5.1 prescribes for
    /// write-once scalars).
    pub fn new(ctx: &Ctx, shared: &BhShared, cfg: &SimConfig) -> Self {
        let range = shared.bodytab.local_range(ctx.rank());
        let my_ids: Vec<u32> = range.map(|i| i as u32).collect();
        let mut owned = vec![false; shared.bodytab.len()];
        for &id in &my_ids {
            owned[id as usize] = true;
        }
        RankState {
            my_ids,
            owned,
            theta: cfg.theta,
            eps: cfg.eps,
            rsize: 0.0,
            center: Vec3::ZERO,
            my_cells: Vec::new(),
            timer: PhaseTimer::new(),
            tree_local_time: 0.0,
            tree_merge_time: 0.0,
            migrated: 0,
            owned_accum: 0,
            scalar_caches: if cfg.software_scalar_cache {
                Some(ScalarCaches::default())
            } else {
                None
            },
            bbox_lo: Vec3::ZERO,
            bbox_hi: Vec3::ZERO,
            bbox_kept_cube: false,
            lifecycle: TreeLifecycle::default(),
            cache_slot: None,
            shadow_slot: None,
            group_slot: None,
        }
    }

    /// `true` when this rank currently owns global body `id`.
    #[inline]
    pub fn owns(&self, id: u32) -> bool {
        self.owned.get(id as usize).copied().unwrap_or(false)
    }

    /// Replaces the set of owned bodies (updates both `my_ids` and the
    /// ownership bitmap).
    pub fn set_owned(&mut self, ids: Vec<u32>) {
        for &id in &self.my_ids {
            self.owned[id as usize] = false;
        }
        for &id in &ids {
            self.owned[id as usize] = true;
        }
        self.my_ids = ids;
    }
}

/// Reads the opening criterion θ according to the level's discipline:
/// the baseline re-reads the shared scalar (a remote access for every rank
/// but 0, unless the transparent software cache is enabled); all later levels
/// use the replicated private copy.
#[inline]
pub fn read_theta(ctx: &Ctx, shared: &BhShared, st: &RankState, opt: OptLevel) -> f64 {
    if opt.replicates_scalars() {
        st.theta
    } else if let Some(caches) = &st.scalar_caches {
        caches.tol.read(ctx, &shared.tol)
    } else {
        shared.tol.read(ctx)
    }
}

/// Reads the softening ε according to the level's discipline (see
/// [`read_theta`]).
#[inline]
pub fn read_eps(ctx: &Ctx, shared: &BhShared, st: &RankState, opt: OptLevel) -> f64 {
    if opt.replicates_scalars() {
        st.eps
    } else if let Some(caches) = &st.scalar_caches {
        caches.eps.read(ctx, &shared.eps)
    } else {
        shared.eps.read(ctx)
    }
}

/// Reads the root geometry (`rsize`, centre) according to the level's
/// discipline: the baseline reads the shared scalars on every call, later
/// levels use the per-step replicated copies.
#[inline]
pub fn read_root_geometry(
    ctx: &Ctx,
    shared: &BhShared,
    st: &RankState,
    opt: OptLevel,
) -> (Vec3, f64) {
    if opt.replicates_scalars() {
        (st.center, st.rsize)
    } else if let Some(caches) = &st.scalar_caches {
        (caches.center.read(ctx, &shared.center), caches.rsize.read(ctx, &shared.rsize))
    } else {
        (shared.center.read(ctx), shared.rsize.read(ctx))
    }
}

/// Reads body `id` under the level's access discipline.
///
/// * Baseline / replicate-scalars: the body lives wherever the block
///   distribution put it; the literal translation reads it field by field,
///   so `fine_grained_fields` separate accesses are charged.
/// * Redistribute and above: bodies this rank owns were moved to local
///   shared memory by the redistribution phase and their pointers cast to
///   local (§5.2), so owned bodies cost a local access; foreign bodies are
///   still one remote (whole-struct) get.
pub fn read_body(ctx: &Ctx, shared: &BhShared, st: &RankState, cfg: &SimConfig, id: u32) -> Body {
    let idx = id as usize;
    if cfg.opt.redistributes_bodies() {
        if st.owns(id) {
            ctx.charge_local_accesses(1);
            shared.bodytab.read_raw(idx)
        } else {
            shared.bodytab.read(ctx, idx)
        }
    } else {
        let mut body = shared.bodytab.read(ctx, idx);
        for _ in 1..cfg.fine_grained_fields.max(1) {
            body = shared.bodytab.read(ctx, idx);
        }
        body
    }
}

/// Writes body `id` under the level's access discipline (see [`read_body`]).
pub fn write_body(
    ctx: &Ctx,
    shared: &BhShared,
    st: &RankState,
    cfg: &SimConfig,
    id: u32,
    body: Body,
) {
    let idx = id as usize;
    if cfg.opt.redistributes_bodies() {
        debug_assert!(st.owns(id), "owner-computes: only the owner may write a body");
        ctx.charge_local_accesses(1);
        shared.bodytab.write_raw(idx, body);
    } else {
        for _ in 0..cfg.fine_grained_fields.max(1) {
            shared.bodytab.write(ctx, idx, body);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pgas::{Machine, Runtime};

    fn cfg(ranks: usize, opt: OptLevel) -> SimConfig {
        SimConfig::test(64, ranks, opt)
    }

    #[test]
    fn shared_state_holds_all_bodies() {
        let cfg = cfg(4, OptLevel::Baseline);
        let shared = BhShared::new(&cfg);
        assert_eq!(shared.bodytab.len(), 64);
        assert_eq!(shared.cells.ranks(), 4);
        assert_eq!(shared.tol.read_raw(), cfg.theta);
        assert_eq!(shared.eps.read_raw(), cfg.eps);
    }

    #[test]
    fn initial_ownership_is_block_distribution() {
        let cfg = cfg(4, OptLevel::Baseline);
        let shared = BhShared::new(&cfg);
        let rt = Runtime::new(Machine::test_cluster(4));
        let report = rt.run(|ctx| {
            let st = RankState::new(ctx, &shared, &cfg);
            (st.my_ids.len(), st.my_ids.first().copied())
        });
        assert_eq!(report.ranks[0].result, (16, Some(0)));
        assert_eq!(report.ranks[3].result, (16, Some(48)));
    }

    #[test]
    fn baseline_scalar_reads_are_remote_for_nonzero_ranks() {
        let cfg = cfg(2, OptLevel::Baseline);
        let shared = BhShared::new(&cfg);
        let rt = Runtime::new(Machine::test_cluster(2));
        let report = rt.run(|ctx| {
            let st = RankState::new(ctx, &shared, &cfg);
            let _ = read_theta(ctx, &shared, &st, cfg.opt);
            let _ = read_eps(ctx, &shared, &st, cfg.opt);
            ctx.stats_snapshot().remote_gets
        });
        assert_eq!(report.ranks[0].result, 0);
        assert_eq!(report.ranks[1].result, 2);
    }

    #[test]
    fn replicated_scalar_reads_are_free_of_communication() {
        let cfg = cfg(2, OptLevel::ReplicateScalars);
        let shared = BhShared::new(&cfg);
        let rt = Runtime::new(Machine::test_cluster(2));
        let report = rt.run(|ctx| {
            let st = RankState::new(ctx, &shared, &cfg);
            for _ in 0..100 {
                let _ = read_theta(ctx, &shared, &st, cfg.opt);
                let _ = read_eps(ctx, &shared, &st, cfg.opt);
            }
            ctx.stats_snapshot().remote_gets
        });
        assert!(report.ranks.iter().all(|r| r.result == 0));
    }

    #[test]
    fn baseline_body_reads_are_fine_grained() {
        let cfg = cfg(2, OptLevel::Baseline);
        let shared = BhShared::new(&cfg);
        let rt = Runtime::new(Machine::test_cluster(2));
        let report = rt.run(|ctx| {
            let st = RankState::new(ctx, &shared, &cfg);
            // Rank 1 reads a body owned (by affinity) by rank 0.
            if ctx.rank() == 1 {
                let _ = read_body(ctx, &shared, &st, &cfg, 0);
            }
            ctx.stats_snapshot().remote_gets
        });
        assert_eq!(report.ranks[1].result, cfg.fine_grained_fields as u64);
    }

    #[test]
    fn redistributed_owned_body_access_is_local() {
        let mut cfg = cfg(2, OptLevel::Redistribute);
        cfg.fine_grained_fields = 3;
        let shared = BhShared::new(&cfg);
        let rt = Runtime::new(Machine::test_cluster(2));
        let report = rt.run(|ctx| {
            let mut st = RankState::new(ctx, &shared, &cfg);
            // Pretend this rank was assigned a body whose affinity is the
            // other rank: an owned access must still be billed local.
            let foreign = if ctx.rank() == 0 { 40u32 } else { 0u32 };
            let mut ids = st.my_ids.clone();
            ids.push(foreign);
            st.set_owned(ids);
            let before = ctx.stats_snapshot().remote_gets;
            let _ = read_body(ctx, &shared, &st, &cfg, foreign);
            let b = shared.bodytab.read_raw(foreign as usize);
            write_body(ctx, &shared, &st, &cfg, foreign, b);
            ctx.stats_snapshot().remote_gets - before
        });
        assert!(report.ranks.iter().all(|r| r.result == 0));
    }
}
