//! Demand-driven caching of remote octree cells in a per-thread local tree
//! (§5.3.1, Listing 1 of the paper).
//!
//! Every rank starts the force phase by copying the global root into a
//! private arena of `LocalNode`s.  Whenever the walk needs to open a cell
//! whose children have not been localized yet, it fetches all eight children
//! with pointer-to-shared reads, stores local copies, swizzles the child
//! pointers to local indices and sets the `localized` flag — after which any
//! later visit (for this or any other body) costs only local pointer
//! dereferences.  This is the optimization responsible for the 99 % force
//! time reduction between Table 4 and Table 5.

use crate::cellnode::{CellNode, NodeKind};
use crate::shared::BhShared;
use nbody::direct::pairwise_acceleration;
use nbody::{SoaBodies, Vec3};
use octree::walk::cell_is_far;
use pgas::{Ctx, GlobalPtr};

/// Sentinel for "no local child".
const NO_LOCAL: i32 = -1;

/// Arena of coalesced children shared by the cached walk variants (§5.3.1
/// separate tree and §5.3.2 shadow tree): the body-leaf children of every
/// localized cell gathered once into one structure-of-arrays batch
/// ([`SoaBodies`] — contiguous positions and masses), plus the indices of
/// the cell-kind children, both in octant order per cell.  The batched
/// walks stream through these arrays instead of chasing one node record per
/// leaf.
#[derive(Debug, Default)]
pub(crate) struct LeafArena {
    leaves: SoaBodies,
    cell_kids: Vec<u32>,
}

/// One cell's slice of a [`LeafArena`], recorded when its children are
/// coalesced.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ChildRanges {
    leaf_start: u32,
    leaf_len: u32,
    kids_start: u32,
    kids_len: u32,
}

impl LeafArena {
    /// Coalesces one cell's children — `(cache index, payload)` pairs in
    /// octant order — into the arenas, returning the cell's ranges.  Called
    /// exactly once per cell, right after its children are installed.
    pub(crate) fn coalesce<'a>(
        &mut self,
        children: impl Iterator<Item = (u32, &'a CellNode)>,
    ) -> ChildRanges {
        let leaf_start = self.leaves.len() as u32;
        let kids_start = self.cell_kids.len() as u32;
        for (idx, child) in children {
            match child.kind {
                NodeKind::Body => {
                    self.leaves.push(child.body_id, child.cofm, child.mass);
                }
                NodeKind::Cell => self.cell_kids.push(idx),
            }
        }
        ChildRanges {
            leaf_start,
            leaf_len: self.leaves.len() as u32 - leaf_start,
            kids_start,
            kids_len: self.cell_kids.len() as u32 - kids_start,
        }
    }

    /// Accumulates the ranged cell's leaf batch onto `(acc, phi)` (skipping
    /// `self_id`), returning the interactions evaluated.
    #[inline]
    pub(crate) fn accumulate(
        &self,
        r: ChildRanges,
        pos: Vec3,
        self_id: u32,
        eps: f64,
        acc: &mut Vec3,
        phi: &mut f64,
    ) -> u32 {
        self.leaves.accumulate_excluding_id(
            r.leaf_start as usize,
            r.leaf_len as usize,
            pos,
            self_id,
            eps,
            acc,
            phi,
        )
    }

    /// The ranged cell's cell-kind children, in octant order.
    #[inline]
    pub(crate) fn kids(&self, r: ChildRanges) -> &[u32] {
        &self.cell_kids[r.kids_start as usize..(r.kids_start + r.kids_len) as usize]
    }

    /// Empties the arena while keeping its allocations (the tree-lifecycle
    /// refresh re-coalesces every localized cell in place).
    pub(crate) fn clear(&mut self) {
        self.leaves.clear();
        self.cell_kids.clear();
    }
}

/// A locally cached copy of a shared tree node.
#[derive(Debug, Clone)]
pub struct LocalNode {
    /// Copied payload of the shared node.
    pub node: CellNode,
    /// The pointer-to-shared the payload was copied from (the refresh path
    /// re-reads through it when the tree survives into the next step).
    pub gptr: GlobalPtr,
    /// Local indices of the children once localized.
    pub children_local: [i32; 8],
    /// `true` once all children of this node have local copies
    /// (the `Localized` flag of Listing 1).
    pub localized: bool,
    /// `true` once a gather for this node's children has been issued but not
    /// yet completed (used by the §5.5 non-blocking framework).
    pub requested: bool,
    /// Cache epoch the payload was last read in (see [`CacheTree::refresh`];
    /// a stale payload is re-read through `gptr` on first touch).
    epoch: u32,
    /// Cache epoch `ranges` was coalesced in (the arena is emptied at every
    /// refresh, so stale ranges must not be dereferenced).
    ranges_epoch: u32,
    /// This cell's slice of the cache's [`LeafArena`].
    ranges: ChildRanges,
}

impl LocalNode {
    fn new(node: CellNode, gptr: GlobalPtr, epoch: u32) -> LocalNode {
        LocalNode {
            node,
            gptr,
            children_local: [NO_LOCAL; 8],
            localized: false,
            requested: false,
            epoch,
            ranges_epoch: epoch,
            ranges: ChildRanges::default(),
        }
    }
}

/// A per-rank cache tree.
///
/// Besides the per-node copies, the cache keeps a [`LeafArena`] built as
/// cells are localized, so the batched [`CacheTree::walk`] streams each
/// opened cell's leaves from contiguous arrays.  The per-body evaluation —
/// one `LocalNode` record chased per leaf — survives as
/// [`CacheTree::walk_per_body`], the reference the `benchsuite` kernel
/// benchmark and the bit-for-bit equivalence tests run against.
pub struct CacheTree {
    /// All localized nodes; index 0 is the local copy of the global root
    /// (`L_root` in the paper).
    pub nodes: Vec<LocalNode>,
    /// The tree generation this cache was built against (see
    /// [`crate::lifecycle`]).  While the generation is unchanged the cache
    /// is [`CacheTree::refresh`]ed across steps instead of rebuilt.
    pub generation: u64,
    /// Current refresh epoch: nodes whose [`LocalNode::epoch`] lags are
    /// stale and re-read on first touch.
    epoch: u32,
    /// Coalesced children of every localized cell.
    arena: LeafArena,
}

/// Statistics of a cached force walk for one body.
#[derive(Debug, Clone, Copy, Default)]
pub struct CachedWalkResult {
    /// Acceleration on the body.
    pub acc: Vec3,
    /// Potential at the body.
    pub phi: f64,
    /// Interactions evaluated.
    pub interactions: u32,
}

impl CacheTree {
    /// Creates the cache by copying the global root cell.
    pub fn new(ctx: &Ctx, shared: &BhShared) -> Self {
        CacheTree::new_for(ctx, shared, 0)
    }

    /// Like [`CacheTree::new`], tagged with the tree generation it was
    /// built against.
    pub fn new_for(ctx: &Ctx, shared: &BhShared, generation: u64) -> Self {
        let root_ptr = shared.root.read(ctx);
        assert!(!root_ptr.is_null(), "force phase requires a built tree");
        let root = shared.cells.read(ctx, root_ptr);
        CacheTree {
            nodes: vec![LocalNode::new(root, root_ptr, 0)],
            generation,
            epoch: 0,
            arena: LeafArena::default(),
        }
    }

    /// Carries the cache into the next step of the *same* tree generation:
    /// bumps the refresh epoch (marking every cached payload stale) and
    /// empties the leaf arena, all without touching the network.  Payloads
    /// are then re-read lazily, on first touch by the walk — so a step's
    /// remote traffic matches what a fresh cache would have paid for the
    /// cells it actually visits, while the node allocations, the localized
    /// structure and the arena capacity all survive.  Localizations whose
    /// child-pointer set changed underneath (incremental re-inserts
    /// subdivide slots) are dropped at re-read time.
    pub fn refresh(&mut self, _ctx: &Ctx, _shared: &BhShared) {
        self.epoch = self.epoch.wrapping_add(1);
        self.arena.clear();
    }

    /// Ensures node `idx`'s payload was read in the current epoch,
    /// re-reading it through its pointer-to-shared if not.
    fn ensure_fresh(&mut self, ctx: &Ctx, shared: &BhShared, idx: usize) {
        if self.nodes[idx].epoch == self.epoch {
            return;
        }
        let fresh = shared.cells.read(ctx, self.nodes[idx].gptr);
        let stale_children =
            self.nodes[idx].localized && fresh.children != self.nodes[idx].node.children;
        self.nodes[idx].node = fresh;
        self.nodes[idx].requested = false;
        self.nodes[idx].epoch = self.epoch;
        if stale_children {
            self.nodes[idx].children_local = [NO_LOCAL; 8];
            self.nodes[idx].localized = false;
            self.nodes[idx].ranges = ChildRanges::default();
        }
    }

    /// Brings a localized cell's children into the current epoch and
    /// re-coalesces its leaf batch (the arena was emptied by the refresh).
    fn ensure_children_current(&mut self, ctx: &Ctx, shared: &BhShared, parent: usize) {
        if self.nodes[parent].ranges_epoch == self.epoch {
            return;
        }
        for octant in 0..8 {
            let c = self.nodes[parent].children_local[octant];
            if c != NO_LOCAL {
                self.ensure_fresh(ctx, shared, c as usize);
            }
        }
        self.coalesce_children(parent);
    }

    /// Number of cached nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the cache holds only the root copy.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Installs an already-fetched child under `parent`.
    fn install_child(&mut self, parent: usize, octant: usize, node: CellNode) -> usize {
        let gptr = self.nodes[parent].node.children[octant];
        let idx = self.nodes.len();
        let epoch = self.epoch;
        self.nodes.push(LocalNode::new(node, gptr, epoch));
        self.nodes[parent].children_local[octant] = idx as i32;
        idx
    }

    /// Coalesces the freshly localized children of `parent` into the arena.
    fn coalesce_children(&mut self, parent: usize) {
        let children = self.nodes[parent].children_local;
        let nodes = &self.nodes;
        let ranges = self.arena.coalesce(
            children
                .iter()
                .filter(|&&c| c != NO_LOCAL)
                .map(|&c| (c as u32, &nodes[c as usize].node)),
        );
        self.nodes[parent].ranges = ranges;
        self.nodes[parent].ranges_epoch = self.epoch;
    }

    /// Localizes the children of `parent` with blocking pointer-to-shared
    /// reads (Listing 1, lines 10–18).
    pub fn localize_children(&mut self, ctx: &Ctx, shared: &BhShared, parent: usize) {
        if self.nodes[parent].localized {
            return;
        }
        ctx.charge_tree_ops(1);
        for octant in 0..8 {
            let child_ptr = self.nodes[parent].node.children[octant];
            if child_ptr.is_null() {
                continue;
            }
            let child = shared.cells.read(ctx, child_ptr);
            self.install_child(parent, octant, child);
        }
        self.coalesce_children(parent);
        self.nodes[parent].localized = true;
        self.nodes[parent].requested = false;
    }

    /// Installs the children of `parent` from data fetched by an aggregated
    /// gather (§5.5).  `children` must be the non-null children in octant
    /// order, matching [`CacheTree::children_ptrs`].
    pub fn install_children(&mut self, ctx: &Ctx, parent: usize, children: Vec<CellNode>) {
        if self.nodes[parent].localized {
            return;
        }
        ctx.charge_tree_ops(1);
        let octants: Vec<usize> =
            (0..8).filter(|&o| !self.nodes[parent].node.children[o].is_null()).collect();
        assert_eq!(octants.len(), children.len(), "gathered child count mismatch");
        for (octant, node) in octants.into_iter().zip(children) {
            self.install_child(parent, octant, node);
        }
        self.coalesce_children(parent);
        self.nodes[parent].localized = true;
        self.nodes[parent].requested = false;
    }

    /// The non-null child pointers of `parent`, in octant order (the list an
    /// aggregated gather must fetch).
    pub fn children_ptrs(&self, parent: usize) -> Vec<GlobalPtr> {
        (0..8)
            .filter_map(|o| {
                let p = self.nodes[parent].node.children[o];
                if p.is_null() {
                    None
                } else {
                    Some(p)
                }
            })
            .collect()
    }

    /// Force walk for one body position using the cache, localizing cells on
    /// demand with blocking reads (the §5.3.1 algorithm).
    ///
    /// Opened cells evaluate their coalesced body leaves through the SoA
    /// batch gathered at localization time (contiguous positions and masses,
    /// no per-leaf pointer chasing) and push only their cell-kind children.
    /// The evaluation order — leaves of the opened cell in octant order,
    /// then its cell children depth-first — matches
    /// [`CacheTree::walk_per_body`] exactly, so the two produce bit-identical
    /// forces; they differ only in memory layout.
    pub fn walk(
        &mut self,
        ctx: &Ctx,
        shared: &BhShared,
        pos: Vec3,
        self_id: u32,
        theta: f64,
        eps: f64,
    ) -> CachedWalkResult {
        let mut result = CachedWalkResult::default();
        let mut macs = 0u64;
        let mut stack = vec![0usize];
        while let Some(idx) = stack.pop() {
            self.ensure_fresh(ctx, shared, idx);
            let node = self.nodes[idx].node;
            match node.kind {
                NodeKind::Body => {
                    // Only reachable when the root itself is a body leaf.
                    if node.body_id == self_id {
                        continue;
                    }
                    let (a, p) = pairwise_acceleration(pos, node.cofm, node.mass, eps);
                    result.acc += a;
                    result.phi += p;
                    result.interactions += 1;
                }
                NodeKind::Cell => {
                    if node.nbodies == 0 {
                        continue;
                    }
                    macs += 1;
                    let dist_sq = pos.dist_sq(node.cofm);
                    if cell_is_far(node.side(), dist_sq, theta) {
                        let (a, p) = pairwise_acceleration(pos, node.cofm, node.mass, eps);
                        result.acc += a;
                        result.phi += p;
                        result.interactions += 1;
                    } else {
                        if !self.nodes[idx].localized {
                            self.localize_children(ctx, shared, idx);
                        } else {
                            self.ensure_children_current(ctx, shared, idx);
                        }
                        let ranges = self.nodes[idx].ranges;
                        result.interactions += self.arena.accumulate(
                            ranges,
                            pos,
                            self_id,
                            eps,
                            &mut result.acc,
                            &mut result.phi,
                        );
                        for &k in self.arena.kids(ranges) {
                            stack.push(k as usize);
                        }
                    }
                }
            }
        }
        ctx.charge_macs(macs);
        ctx.charge_interactions(result.interactions as u64);
        result
    }

    /// The per-body reference evaluation: identical traversal schedule to
    /// [`CacheTree::walk`], but each body leaf of an opened cell is read out
    /// of its own [`LocalNode`] record (an array-of-structures pointer chase
    /// per leaf) instead of the coalesced SoA batch.
    ///
    /// This reproduces the *memory behavior* of the walk this PR replaced —
    /// one node record dragged through the cache per leaf — under the
    /// batched walk's evaluation schedule, so the A-B pair isolates the
    /// layout change alone and the two agree bit for bit.  (The replaced
    /// walk itself pushed body leaves through the traversal stack and thus
    /// accumulated in a different order; its per-leaf record reads are what
    /// this reference preserves.)  The `benchsuite` kernel benchmark times
    /// this walk against the batched one, and the equivalence tests assert
    /// the bit-for-bit agreement.
    pub fn walk_per_body(
        &mut self,
        ctx: &Ctx,
        shared: &BhShared,
        pos: Vec3,
        self_id: u32,
        theta: f64,
        eps: f64,
    ) -> CachedWalkResult {
        let mut result = CachedWalkResult::default();
        let mut macs = 0u64;
        let mut stack = vec![0usize];
        while let Some(idx) = stack.pop() {
            self.ensure_fresh(ctx, shared, idx);
            let node = self.nodes[idx].node;
            match node.kind {
                NodeKind::Body => {
                    if node.body_id == self_id {
                        continue;
                    }
                    let (a, p) = pairwise_acceleration(pos, node.cofm, node.mass, eps);
                    result.acc += a;
                    result.phi += p;
                    result.interactions += 1;
                }
                NodeKind::Cell => {
                    if node.nbodies == 0 {
                        continue;
                    }
                    macs += 1;
                    let dist_sq = pos.dist_sq(node.cofm);
                    if cell_is_far(node.side(), dist_sq, theta) {
                        let (a, p) = pairwise_acceleration(pos, node.cofm, node.mass, eps);
                        result.acc += a;
                        result.phi += p;
                        result.interactions += 1;
                    } else {
                        if !self.nodes[idx].localized {
                            self.localize_children(ctx, shared, idx);
                        } else {
                            self.ensure_children_current(ctx, shared, idx);
                        }
                        let children = self.nodes[idx].children_local;
                        for c in children {
                            if c == NO_LOCAL {
                                continue;
                            }
                            let child = self.nodes[c as usize].node;
                            match child.kind {
                                NodeKind::Body => {
                                    if child.body_id == self_id {
                                        continue;
                                    }
                                    let (a, p) =
                                        pairwise_acceleration(pos, child.cofm, child.mass, eps);
                                    result.acc += a;
                                    result.phi += p;
                                    result.interactions += 1;
                                }
                                NodeKind::Cell => stack.push(c as usize),
                            }
                        }
                    }
                }
            }
        }
        ctx.charge_macs(macs);
        ctx.charge_interactions(result.interactions as u64);
        result
    }
}

impl crate::groupwalk::WalkCache for CacheTree {
    fn payload(&mut self, ctx: &Ctx, shared: &BhShared, idx: usize) -> CellNode {
        self.ensure_fresh(ctx, shared, idx);
        self.nodes[idx].node
    }

    fn node(&self, idx: usize) -> CellNode {
        self.nodes[idx].node
    }

    fn is_localized(&self, idx: usize) -> bool {
        self.nodes[idx].localized
    }

    fn open(&mut self, ctx: &Ctx, shared: &BhShared, idx: usize) {
        if !self.nodes[idx].localized {
            self.localize_children(ctx, shared, idx);
        } else {
            self.ensure_children_current(ctx, shared, idx);
        }
    }

    fn kids(&self, idx: usize) -> &[u32] {
        self.arena.kids(self.nodes[idx].ranges)
    }

    fn accumulate(
        &self,
        idx: usize,
        pos: Vec3,
        self_id: u32,
        eps: f64,
        acc: &mut Vec3,
        phi: &mut f64,
    ) -> u32 {
        self.arena.accumulate(self.nodes[idx].ranges, pos, self_id, eps, acc, phi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{OptLevel, SimConfig};
    use crate::shared::RankState;
    use crate::treebuild::{
        allocate_root, bounding_box_phase, center_of_mass_phase, insert_owned_bodies,
    };
    use nbody::direct;
    use pgas::Runtime;

    /// Builds a shared tree over the configured bodies and runs `f` on every
    /// rank with the tree ready.
    fn with_built_tree<R: Send>(
        cfg: &SimConfig,
        f: impl Fn(&Ctx, &BhShared, &mut RankState) -> R + Sync,
    ) -> (BhShared, Vec<R>) {
        let shared = BhShared::new(cfg);
        let rt = Runtime::new(cfg.machine.clone());
        let results = {
            let shared_ref = &shared;
            let report = rt.run(|ctx| {
                let mut st = RankState::new(ctx, shared_ref, cfg);
                let (center, rsize) = bounding_box_phase(ctx, shared_ref, &mut st, cfg);
                allocate_root(ctx, shared_ref, center, rsize);
                ctx.barrier();
                insert_owned_bodies(ctx, shared_ref, &mut st, cfg);
                ctx.barrier();
                center_of_mass_phase(ctx, shared_ref, &mut st, cfg);
                ctx.barrier();
                f(ctx, shared_ref, &mut st)
            });
            report.ranks.into_iter().map(|r| r.result).collect()
        };
        (shared, results)
    }

    #[test]
    fn cached_walk_matches_direct_summation_closely() {
        let cfg = SimConfig::test(150, 2, OptLevel::CacheLocalTree);
        let (shared, results) = with_built_tree(&cfg, |ctx, shared, st| {
            let mut cache = CacheTree::new(ctx, shared);
            st.my_ids
                .iter()
                .map(|&id| {
                    let b = shared.bodytab.read_raw(id as usize);
                    (id, cache.walk(ctx, shared, b.pos, id, 0.0, cfg.eps))
                })
                .collect::<Vec<_>>()
        });
        let bodies = shared.bodytab.snapshot();
        let reference = direct::compute_forces(&bodies, cfg.eps);
        for per_rank in results {
            for (id, walk) in per_rank {
                let r = &reference[id as usize];
                let err = (walk.acc - r.acc).norm() / r.acc.norm().max(1e-12);
                assert!(err < 1e-9, "theta=0 cached walk must equal direct summation (err {err})");
            }
        }
    }

    #[test]
    fn cache_fetches_each_remote_cell_at_most_once() {
        let cfg = SimConfig::test(300, 4, OptLevel::CacheLocalTree);
        let (_, results) = with_built_tree(&cfg, |ctx, shared, st| {
            let before = ctx.stats_snapshot();
            let mut cache = CacheTree::new(ctx, shared);
            for &id in &st.my_ids {
                let b = shared.bodytab.read_raw(id as usize);
                cache.walk(ctx, shared, b.pos, id, cfg.theta, cfg.eps);
            }
            let first_pass = ctx.stats_snapshot().delta(&before).remote_gets;
            // A second pass over the same bodies must not fetch anything new.
            let before2 = ctx.stats_snapshot();
            for &id in &st.my_ids {
                let b = shared.bodytab.read_raw(id as usize);
                cache.walk(ctx, shared, b.pos, id, cfg.theta, cfg.eps);
            }
            let second_pass = ctx.stats_snapshot().delta(&before2).remote_gets;
            (first_pass, second_pass, cache.len())
        });
        for (first, second, cached) in results {
            assert_eq!(second, 0, "second pass must be fully cached");
            assert!(cached > 1);
            // The first pass fetches at most every cell once; it cannot
            // exceed the cache size.
            assert!(first <= cached as u64);
        }
    }

    #[test]
    fn refreshed_cache_matches_a_fresh_cache_bit_for_bit() {
        // Walk once, mutate the tree's payloads (as a reuse step's in-place
        // refresh + re-fold would), refresh the cache and walk again: the
        // refreshed walk must agree bit-for-bit with a cache built from
        // scratch, while re-using the node/arena allocations.
        let cfg = SimConfig::test(200, 2, OptLevel::CacheLocalTree);
        let (_, results) = with_built_tree(&cfg, |ctx, shared, st| {
            let mut cache = CacheTree::new(ctx, shared);
            for &id in &st.my_ids {
                let b = shared.bodytab.read_raw(id as usize);
                cache.walk(ctx, shared, b.pos, id, cfg.theta, cfg.eps);
            }
            let nodes_before = cache.len();

            // Nudge every leaf payload (same structure, new positions), as
            // the incremental update would.
            ctx.barrier();
            if ctx.rank() == 0 {
                for rank in 0..ctx.ranks() {
                    for i in 0..shared.cells.len_of(rank) {
                        let ptr = pgas::GlobalPtr::new(rank, i);
                        let mut node = shared.cells.read_raw(ptr);
                        if node.is_body() {
                            node.cofm.x += 1e-6;
                            shared.cells.write(ctx, ptr, node);
                        }
                    }
                }
            }
            ctx.barrier();

            // The refresh itself must not touch the network; payload
            // re-reads happen lazily, on first touch.
            let before = ctx.stats_snapshot();
            cache.refresh(ctx, shared);
            assert_eq!(ctx.stats_snapshot().delta(&before).remote_gets, 0);

            let mut fresh = CacheTree::new(ctx, shared);
            for &id in &st.my_ids {
                let b = shared.bodytab.read_raw(id as usize);
                let a = cache.walk(ctx, shared, b.pos, id, cfg.theta, cfg.eps);
                let f = fresh.walk(ctx, shared, b.pos, id, cfg.theta, cfg.eps);
                assert_eq!(a.acc.x.to_bits(), f.acc.x.to_bits());
                assert_eq!(a.acc.y.to_bits(), f.acc.y.to_bits());
                assert_eq!(a.acc.z.to_bits(), f.acc.z.to_bits());
                assert_eq!(a.phi.to_bits(), f.phi.to_bits());
                assert_eq!(a.interactions, f.interactions);
            }
            // Same structure: no node was re-allocated by the refresh.
            assert_eq!(cache.len(), nodes_before);
            ctx.barrier();
        });
        drop(results);
    }

    #[test]
    fn children_ptrs_and_install_children_mirror_localize() {
        let cfg = SimConfig::test(200, 2, OptLevel::AsyncAggregation);
        let (_, results) = with_built_tree(&cfg, |ctx, shared, _st| {
            // Localize the root's children through the aggregated-install
            // path and check it matches a blocking localize.
            let mut a = CacheTree::new(ctx, shared);
            let ptrs = a.children_ptrs(0);
            let nodes: Vec<CellNode> = ptrs.iter().map(|&p| shared.cells.read_raw(p)).collect();
            a.install_children(ctx, 0, nodes);

            let mut b = CacheTree::new(ctx, shared);
            b.localize_children(ctx, shared, 0);

            assert_eq!(a.len(), b.len());
            for (x, y) in a.nodes.iter().zip(&b.nodes) {
                assert_eq!(x.node.nbodies, y.node.nbodies);
                assert_eq!(x.children_local, y.children_local);
            }
            a.nodes[0].localized && b.nodes[0].localized
        });
        assert!(results.into_iter().all(|ok| ok));
    }
}
