//! Partitioning and body-redistribution phases.
//!
//! SPLASH-2 assigns bodies to threads with *costzones*: bodies are ordered by
//! a space-filling traversal of the octree and cut into contiguous zones of
//! equal accumulated cost.  The paper keeps that partitioner and adds, in
//! §5.2, a *redistribution* phase that physically moves each body into its
//! owner's shared memory so every later access is local.
//!
//! Here the costzones cut is realised with Morton keys: each rank computes
//! the keys and costs of the bodies it currently owns, rank 0 gathers them,
//! computes `ranks − 1` splitter keys that balance cost, and broadcasts the
//! splitters.  Ownership of any body is then a pure function of its key,
//! which is how every rank learns both who loses and who gains each body.
//! The subsequent [`redistribute_phase`] exchanges the (few) migrating bodies
//! and, from [`OptLevel::Redistribute`] up, charges the indexed bulk gather
//! (`upc_memget_ilist`) that the paper uses to move them.

use crate::config::SimConfig;
use crate::shared::{read_body, read_root_geometry, BhShared, RankState};
use nbody::morton;
use pgas::Ctx;

/// Outcome of the partitioning phase: Morton splitters defining the zones.
#[derive(Debug, Clone)]
pub struct PartitionPlan {
    /// `ranks − 1` ascending Morton keys; zone `r` holds keys in
    /// `[splitters[r−1], splitters[r])` (with open ends at the extremes).
    pub splitters: Vec<u64>,
}

impl PartitionPlan {
    /// The rank that owns a body with Morton key `key` under this plan.
    #[inline]
    pub fn owner_of_key(&self, key: u64) -> usize {
        // partition_point returns the number of splitters <= key, which is
        // exactly the zone index.
        self.splitters.partition_point(|&s| s <= key)
    }
}

/// The partitioning phase (the "Partitioning" row of the tables).
///
/// Returns the plan plus, for reuse by [`redistribute_phase`], this rank's
/// owned body ids paired with their Morton keys.
pub fn partition_phase(
    ctx: &Ctx,
    shared: &BhShared,
    st: &mut RankState,
    cfg: &SimConfig,
) -> (PartitionPlan, Vec<(u32, u64)>) {
    let ranks = ctx.ranks();
    let (center, rsize) = read_root_geometry(ctx, shared, st, cfg.opt);

    // 1. Morton key and cost of every owned body.
    let mut keyed: Vec<(u32, u64)> = Vec::with_capacity(st.my_ids.len());
    let mut contributions: Vec<(u64, u32)> = Vec::with_capacity(st.my_ids.len());
    for &id in &st.my_ids {
        let body = read_body(ctx, shared, st, cfg, id);
        let key = morton::encode(body.pos, center, rsize);
        keyed.push((id, key));
        contributions.push((key, body.cost.max(1)));
    }
    ctx.charge_tree_ops(st.my_ids.len() as u64);

    // 2. Gather (key, cost) pairs on rank 0.
    let mut outgoing: Vec<Vec<(u64, u32)>> = vec![Vec::new(); ranks];
    outgoing[0] = contributions;
    let gathered = ctx.exchange(outgoing);

    // 3. Rank 0 computes cost-balanced splitters.
    let splitters = if ctx.rank() == 0 {
        let mut all: Vec<(u64, u32)> = gathered.into_iter().flatten().collect();
        all.sort_unstable_by_key(|&(k, _)| k);
        ctx.charge_tree_ops(all.len() as u64);
        compute_splitters(&all, ranks)
    } else {
        Vec::new()
    };

    // 4. Broadcast the splitters.
    let splitters = ctx.broadcast(0, splitters);
    (PartitionPlan { splitters }, keyed)
}

/// Computes `parts − 1` splitter keys cutting the sorted `(key, cost)` list
/// into contiguous zones of approximately equal cost.
pub fn compute_splitters(sorted: &[(u64, u32)], parts: usize) -> Vec<u64> {
    assert!(parts > 0);
    let total: u64 = sorted.iter().map(|&(_, c)| c as u64).sum();
    let mut splitters = Vec::with_capacity(parts.saturating_sub(1));
    let mut acc = 0u64;
    let mut zone = 0usize;
    let mut idx = 0usize;
    let mut remaining = total as f64;
    while zone + 1 < parts {
        let remaining_zones = (parts - zone) as f64;
        let target = remaining / remaining_zones;
        let mut zone_cost = 0u64;
        // Always leave enough bodies for the remaining zones to be non-empty
        // when possible.
        while idx < sorted.len()
            && ((zone_cost as f64) < target || zone_cost == 0)
            && sorted.len() - idx > parts - zone - 1
        {
            zone_cost += sorted[idx].1 as u64;
            idx += 1;
        }
        acc += zone_cost;
        let _ = acc;
        remaining -= zone_cost as f64;
        // The splitter is the key of the first body of the next zone (or
        // u64::MAX when everything has been consumed).
        let key = if idx < sorted.len() { sorted[idx].0 } else { u64::MAX };
        splitters.push(key);
        zone += 1;
    }
    splitters
}

/// Result of the redistribution phase.
#[derive(Debug, Clone, Default)]
pub struct RedistributeOutcome {
    /// Number of bodies that migrated *to* this rank this step.
    pub migrated_in: u64,
    /// Number of bodies owned after redistribution.
    pub owned: u64,
}

/// The body-redistribution phase (§5.2; the "Redistribution" row).
///
/// All levels run the ownership exchange (SPLASH-2 also re-partitions the
/// *pointers* each step); from [`crate::config::OptLevel::Redistribute`] up,
/// the migrated bodies' data is additionally fetched with an indexed bulk
/// gather so that later accesses are local.
pub fn redistribute_phase(
    ctx: &Ctx,
    shared: &BhShared,
    st: &mut RankState,
    cfg: &SimConfig,
    plan: &PartitionPlan,
    keyed: Vec<(u32, u64)>,
) -> RedistributeOutcome {
    let ranks = ctx.ranks();

    // Route every owned body id to its new owner (keyed by Morton order so
    // each rank's list arrives sorted in space-filling order).
    let mut outgoing: Vec<Vec<(u64, u32)>> = vec![Vec::new(); ranks];
    for &(id, key) in &keyed {
        outgoing[plan.owner_of_key(key)].push((key, id));
    }
    let received = ctx.exchange(outgoing);

    // New ownership list, in Morton order.
    let mut new_ids: Vec<(u64, u32)> = received.into_iter().flatten().collect();
    new_ids.sort_unstable();
    let new_ids: Vec<u32> = new_ids.into_iter().map(|(_, id)| id).collect();

    // Which of these are new to this rank?
    let migrated: Vec<usize> =
        new_ids.iter().filter(|&&id| !st.owns(id)).map(|&id| id as usize).collect();

    if cfg.opt.redistributes_bodies() && !migrated.is_empty() {
        // Fetch the migrated bodies' data in bulk (upc_memget_ilist); the
        // values are already visible through the body table, so only the
        // transfer cost matters.
        let _ = shared.bodytab.get_ilist(ctx, &migrated);
    }

    let outcome =
        RedistributeOutcome { migrated_in: migrated.len() as u64, owned: new_ids.len() as u64 };
    st.set_owned(new_ids);
    ctx.charge_local_accesses(st.my_ids.len() as u64);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{OptLevel, SimConfig};
    use crate::shared::{BhShared, RankState};
    use pgas::{Machine, Runtime};

    #[test]
    fn splitters_balance_cost() {
        let sorted: Vec<(u64, u32)> =
            (0..1000).map(|i| (i as u64 * 10, 1 + (i % 7) as u32)).collect();
        let splitters = compute_splitters(&sorted, 8);
        assert_eq!(splitters.len(), 7);
        assert!(splitters.windows(2).all(|w| w[0] <= w[1]), "splitters must be sorted");
        // Reconstruct zone costs.
        let plan = PartitionPlan { splitters };
        let mut costs = vec![0u64; 8];
        for &(k, c) in &sorted {
            costs[plan.owner_of_key(k)] += c as u64;
        }
        let total: u64 = costs.iter().sum();
        let ideal = total as f64 / 8.0;
        for &c in &costs {
            assert!((c as f64) < 1.6 * ideal, "zone cost {c} too far from ideal {ideal}");
            assert!(c > 0, "no zone may be empty");
        }
    }

    #[test]
    fn splitters_with_single_part() {
        let sorted = vec![(1u64, 1u32), (2, 1)];
        assert!(compute_splitters(&sorted, 1).is_empty());
    }

    #[test]
    fn splitters_with_fewer_bodies_than_parts() {
        let sorted = vec![(10u64, 5u32), (20, 5), (30, 5)];
        let splitters = compute_splitters(&sorted, 8);
        assert_eq!(splitters.len(), 7);
        let plan = PartitionPlan { splitters };
        // The three bodies land in three distinct zones.
        let owners: std::collections::HashSet<usize> =
            sorted.iter().map(|&(k, _)| plan.owner_of_key(k)).collect();
        assert_eq!(owners.len(), 3);
    }

    #[test]
    fn owner_of_key_is_monotone() {
        let plan = PartitionPlan { splitters: vec![100, 200, 300] };
        assert_eq!(plan.owner_of_key(0), 0);
        assert_eq!(plan.owner_of_key(99), 0);
        assert_eq!(plan.owner_of_key(100), 1);
        assert_eq!(plan.owner_of_key(250), 2);
        assert_eq!(plan.owner_of_key(5000), 3);
    }

    #[test]
    fn partition_and_redistribute_cover_all_bodies_exactly_once() {
        let cfg = SimConfig::test(256, 4, OptLevel::Redistribute);
        let shared = BhShared::new(&cfg);
        let rt = Runtime::new(Machine::test_cluster(4));
        let report = rt.run(|ctx| {
            let mut st = RankState::new(ctx, &shared, &cfg);
            // The partitioner needs a root geometry; compute it like the
            // tree-build phase would.
            let bodies = shared.bodytab.snapshot();
            let (center, rsize) = nbody::body::root_cell(&bodies);
            st.center = center;
            st.rsize = rsize;
            let (plan, keyed) = partition_phase(ctx, &shared, &mut st, &cfg);
            let outcome = redistribute_phase(ctx, &shared, &mut st, &cfg, &plan, keyed);
            assert_eq!(outcome.owned as usize, st.my_ids.len());
            st.my_ids.clone()
        });
        let mut seen = vec![false; 256];
        for r in &report.ranks {
            for &id in &r.result {
                assert!(!seen[id as usize], "body {id} owned by two ranks");
                seen[id as usize] = true;
            }
            assert!(!r.result.is_empty(), "every rank should own some bodies");
        }
        assert!(seen.iter().all(|&s| s), "every body must have an owner");
    }

    #[test]
    fn second_partition_migrates_little() {
        // Running the partition twice in a row without moving bodies should
        // migrate (almost) nothing the second time — the §5.2 observation
        // that only ~2 % of bodies move per step.
        let cfg = SimConfig::test(512, 4, OptLevel::Redistribute);
        let shared = BhShared::new(&cfg);
        let rt = Runtime::new(Machine::test_cluster(4));
        let report = rt.run(|ctx| {
            let mut st = RankState::new(ctx, &shared, &cfg);
            let bodies = shared.bodytab.snapshot();
            let (center, rsize) = nbody::body::root_cell(&bodies);
            st.center = center;
            st.rsize = rsize;
            let (plan, keyed) = partition_phase(ctx, &shared, &mut st, &cfg);
            let first = redistribute_phase(ctx, &shared, &mut st, &cfg, &plan, keyed);
            let (plan2, keyed2) = partition_phase(ctx, &shared, &mut st, &cfg);
            let second = redistribute_phase(ctx, &shared, &mut st, &cfg, &plan2, keyed2);
            (first.migrated_in, second.migrated_in)
        });
        let second_total: u64 = report.ranks.iter().map(|r| r.result.1).sum();
        assert_eq!(second_total, 0, "an identical repartition must not migrate bodies");
    }
}
