//! The shared octree node stored in the PGAS cell arena.
//!
//! SPLASH-2 (and the paper's UPC port) represents the octree with two kinds
//! of records: *cells* (internal nodes with eight child pointers) and
//! *bodies* (leaves).  Both are reached through pointers-to-shared.  Here the
//! two are folded into one `Copy` struct so that a single
//! [`pgas::SharedArena`] can hold the whole distributed tree; the `kind`
//! field distinguishes them.

use nbody::Vec3;
use pgas::GlobalPtr;
use serde::{Deserialize, Serialize};

/// Kind of a shared tree node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// Internal cell with up to eight children.
    Cell,
    /// Leaf referencing one body (`body_id` indexes the global body table).
    Body,
}

/// A node of the distributed octree, stored in the shared cell arena.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CellNode {
    /// Cell or body leaf.
    pub kind: NodeKind,
    /// Geometric centre of the cell (unused for body leaves).
    pub center: Vec3,
    /// Half of the cell side length (unused for body leaves).
    pub half: f64,
    /// Total mass below this node (for body leaves: the body's mass).
    pub mass: f64,
    /// Centre of mass below this node (for body leaves: the body position).
    pub cofm: Vec3,
    /// Accumulated interaction cost below this node.
    pub cost: u64,
    /// Number of bodies below this node.
    pub nbodies: u32,
    /// Child pointers (cells only).
    pub children: [GlobalPtr; 8],
    /// Global body index (body leaves only).
    pub body_id: u32,
    /// `true` once the centre of mass of this node is valid (the SPLASH-2
    /// `done` flag used by the parallel centre-of-mass phase).
    pub done: bool,
}

impl CellNode {
    /// Creates an empty internal cell with the given geometry.
    pub fn new_cell(center: Vec3, half: f64) -> Self {
        CellNode {
            kind: NodeKind::Cell,
            center,
            half,
            mass: 0.0,
            cofm: Vec3::ZERO,
            cost: 0,
            nbodies: 0,
            children: [GlobalPtr::NULL; 8],
            body_id: u32::MAX,
            done: false,
        }
    }

    /// Creates a body leaf for global body `body_id` with the given position
    /// and mass (copied so that tree walks need not re-read the body table).
    pub fn new_body(body_id: u32, pos: Vec3, mass: f64, cost: u32) -> Self {
        CellNode {
            kind: NodeKind::Body,
            center: pos,
            half: 0.0,
            mass,
            cofm: pos,
            cost: cost.max(1) as u64,
            nbodies: 1,
            children: [GlobalPtr::NULL; 8],
            body_id,
            done: true,
        }
    }

    /// `true` for internal cells.
    pub fn is_cell(&self) -> bool {
        self.kind == NodeKind::Cell
    }

    /// `true` for body leaves.
    pub fn is_body(&self) -> bool {
        self.kind == NodeKind::Body
    }

    /// Side length of the cell (0 for body leaves).
    pub fn side(&self) -> f64 {
        2.0 * self.half
    }

    /// Centre and half-size of the `octant`-th child sub-cell.
    pub fn child_geometry(&self, octant: usize) -> (Vec3, f64) {
        let q = self.half / 2.0;
        let offset = Vec3::new(
            if octant & 1 != 0 { q } else { -q },
            if octant & 2 != 0 { q } else { -q },
            if octant & 4 != 0 { q } else { -q },
        );
        (self.center + offset, q)
    }

    /// The octant of `pos` within this cell.
    pub fn octant_of(&self, pos: Vec3) -> usize {
        pos.octant_of(self.center)
    }

    /// Folds another node's (mass, centre of mass, cost, body count) into
    /// this one as a weighted average — the commutative, associative merge
    /// used by §5.4 when two cells are combined.
    pub fn merge_summary(&mut self, mass: f64, cofm: Vec3, cost: u64, nbodies: u32) {
        let total = self.mass + mass;
        if total > 0.0 {
            self.cofm = (self.cofm * self.mass + cofm * mass) / total;
        }
        self.mass = total;
        self.cost += cost;
        self.nbodies += nbodies;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_and_body_constructors() {
        let c = CellNode::new_cell(Vec3::ZERO, 2.0);
        assert!(c.is_cell());
        assert!(!c.is_body());
        assert_eq!(c.side(), 4.0);
        assert!(c.children.iter().all(|p| p.is_null()));
        assert!(!c.done);

        let b = CellNode::new_body(7, Vec3::new(1.0, 2.0, 3.0), 0.5, 0);
        assert!(b.is_body());
        assert_eq!(b.body_id, 7);
        assert_eq!(b.mass, 0.5);
        assert_eq!(b.cofm, Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(b.nbodies, 1);
        assert_eq!(b.cost, 1, "zero cost is clamped to one");
        assert!(b.done);
    }

    #[test]
    fn child_geometry_octants() {
        let c = CellNode::new_cell(Vec3::ZERO, 2.0);
        let (c0, h0) = c.child_geometry(0);
        assert_eq!(h0, 1.0);
        assert_eq!(c0, Vec3::new(-1.0, -1.0, -1.0));
        let (c7, _) = c.child_geometry(7);
        assert_eq!(c7, Vec3::new(1.0, 1.0, 1.0));
        // The octant of a child centre maps back to its index.
        for octant in 0..8 {
            let (pos, _) = c.child_geometry(octant);
            assert_eq!(c.octant_of(pos), octant);
        }
    }

    #[test]
    fn merge_summary_is_weighted_average() {
        let mut a = CellNode::new_cell(Vec3::ZERO, 1.0);
        a.merge_summary(1.0, Vec3::new(0.0, 0.0, 0.0), 2, 1);
        a.merge_summary(3.0, Vec3::new(4.0, 0.0, 0.0), 5, 3);
        assert_eq!(a.mass, 4.0);
        assert_eq!(a.cofm, Vec3::new(3.0, 0.0, 0.0));
        assert_eq!(a.cost, 7);
        assert_eq!(a.nbodies, 4);
    }

    #[test]
    fn merge_summary_commutes() {
        let mut a = CellNode::new_cell(Vec3::ZERO, 1.0);
        let mut b = CellNode::new_cell(Vec3::ZERO, 1.0);
        let parts = [
            (1.0, Vec3::new(1.0, 0.0, 0.0)),
            (2.0, Vec3::new(0.0, 3.0, 0.0)),
            (0.5, Vec3::new(0.0, 0.0, -2.0)),
        ];
        for &(m, p) in &parts {
            a.merge_summary(m, p, 1, 1);
        }
        for &(m, p) in parts.iter().rev() {
            b.merge_summary(m, p, 1, 1);
        }
        assert!((a.cofm - b.cofm).norm() < 1e-12);
        assert!((a.mass - b.mass).abs() < 1e-12);
    }
}
