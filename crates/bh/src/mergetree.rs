//! §5.4 tree building: per-thread local octrees merged into the global tree.
//!
//! Each rank first builds an octree over its own bodies entirely locally
//! (no locks, no remote traffic), computes its centres of mass, and then
//! merges it into the shared global tree.  Merging only needs to lock the
//! cells it actually modifies, and the centre-of-mass of two merged cells is
//! combined as a mass-weighted average — a commutative, associative update
//! performed atomically, so merges can happen in any order and the separate
//! centre-of-mass phase disappears.
//!
//! The merge cost is unbalanced: the rank that links its subtree first pays a
//! pointer update, the rank that arrives second must traverse the winner's
//! (now remote) subtree step by step — the effect shown in Figure 8 and the
//! motivation for the §6 subspace algorithm.

use crate::cellnode::{CellNode, NodeKind};
use crate::config::SimConfig;
use crate::shared::{read_body, BhShared, RankState};
use nbody::{Body, Vec3};
use octree::tree::{Octree, TreeParams, NO_CHILD};
use pgas::{Ctx, GlobalPtr};

/// Builds this rank's local octree over its owned bodies and uploads it into
/// the shared cell arena (local allocations), returning the pointer to its
/// root, or `GlobalPtr::NULL` when the rank owns no bodies.
///
/// The returned subtree has valid summaries (mass, centre of mass, cost,
/// body count) throughout.
pub fn build_local_tree(
    ctx: &Ctx,
    shared: &BhShared,
    st: &mut RankState,
    cfg: &SimConfig,
) -> GlobalPtr {
    if st.my_ids.is_empty() {
        return GlobalPtr::NULL;
    }
    // Gather owned bodies (local accesses after redistribution).
    let bodies: Vec<Body> =
        st.my_ids.iter().map(|&id| read_body(ctx, shared, st, cfg, id)).collect();
    let params = TreeParams { leaf_capacity: cfg.leaf_capacity, max_depth: cfg.max_depth };
    let mut tree = Octree::build_in(&bodies, st.center, st.rsize, params);
    let mass_visits = tree.compute_mass(&bodies);
    ctx.charge_tree_ops(tree.build_ops + mass_visits);

    let ids = st.my_ids.clone();
    upload_subtree(ctx, shared, st, &tree, 0, &bodies, &ids)
}

/// Recursively allocates shared-arena copies of the local octree rooted at
/// `node`, returning the pointer to the copy.
///
/// `ids[i]` is the global body id of `bodies[i]`.  Also used by the §6
/// subspace builder to upload per-leaf subforests.
pub fn upload_subtree(
    ctx: &Ctx,
    shared: &BhShared,
    st: &mut RankState,
    tree: &Octree,
    node: usize,
    bodies: &[Body],
    ids: &[u32],
) -> GlobalPtr {
    let n = &tree.nodes[node];
    if n.is_leaf {
        return upload_leaf(ctx, shared, st, n.center, n.half, &n.bodies, bodies, ids);
    }
    let mut cell = CellNode::new_cell(n.center, n.half);
    cell.mass = n.mass;
    cell.cofm = n.cofm;
    cell.cost = n.cost;
    cell.nbodies = n.nbodies as u32;
    cell.done = true;
    for octant in 0..8 {
        let child = n.children[octant];
        if child != NO_CHILD {
            cell.children[octant] =
                upload_subtree(ctx, shared, st, tree, child as usize, bodies, ids);
        }
    }
    let ptr = shared.cells.alloc(ctx, cell);
    st.my_cells.push(ptr);
    ptr
}

/// Uploads one octree leaf.  A single body becomes a body leaf; a bucket (the
/// coincident-body fallback) becomes a small cell holding body leaves.
#[allow(clippy::too_many_arguments)]
fn upload_leaf(
    ctx: &Ctx,
    shared: &BhShared,
    st: &mut RankState,
    center: Vec3,
    half: f64,
    members: &[usize],
    bodies: &[Body],
    ids: &[u32],
) -> GlobalPtr {
    assert!(!members.is_empty(), "octree leaves always hold at least one body");
    if members.len() == 1 {
        let m = members[0];
        let b = &bodies[m];
        return shared.cells.alloc(ctx, CellNode::new_body(ids[m], b.pos, b.mass, b.cost));
    }
    // Bucket of (nearly) coincident bodies: wrap them in a cell.
    let mut cell = CellNode::new_cell(center, half.max(1e-12));
    let mut children: Vec<GlobalPtr> = Vec::new();
    for &m in members {
        let b = &bodies[m];
        children.push(shared.cells.alloc(ctx, CellNode::new_body(ids[m], b.pos, b.mass, b.cost)));
        cell.merge_summary(b.mass, b.pos, b.cost.max(1) as u64, 1);
    }
    for (slot, ptr) in cell.children.iter_mut().zip(children) {
        *slot = ptr;
    }
    cell.done = true;
    let ptr = shared.cells.alloc(ctx, cell);
    st.my_cells.push(ptr);
    ptr
}

/// Allocates (on rank 0) the empty global root for the merged build and
/// publishes it.  Must be followed by a barrier.
pub fn allocate_merge_root(ctx: &Ctx, shared: &BhShared, center: Vec3, rsize: f64) {
    if ctx.rank() == 0 {
        let mut root = CellNode::new_cell(center, rsize / 2.0);
        root.done = true;
        let ptr = shared.cells.alloc(ctx, root);
        shared.root.write(ctx, ptr);
    }
}

/// Merges this rank's local tree (rooted at `local_root`) into the global
/// tree.
///
/// Cells allocated along the way (slot subdivisions) are recorded in
/// `st.my_cells` so the tree-lifecycle re-fold can reset and re-summarize
/// them on reuse steps; per-step rebuild simply clears the list.
pub fn merge_into_global(
    ctx: &Ctx,
    shared: &BhShared,
    st: &mut RankState,
    cfg: &SimConfig,
    local_root: GlobalPtr,
) {
    if local_root.is_null() {
        return;
    }
    let global_root = shared.root.read(ctx);
    let lnode = shared.cells.read_local(ctx, local_root);
    match lnode.kind {
        NodeKind::Cell => merge_cells(ctx, shared, st, cfg, local_root, global_root),
        // A rank that owns a single body has a bare leaf as its local tree:
        // insert it like any other displaced body.
        NodeKind::Body => {
            insert_leaf_into_global(ctx, shared, st, cfg, local_root, &lnode, global_root)
        }
    }
}

/// Merges local cell `l` (owned by this rank, valid summary) into global cell
/// `g` (same geometry).
fn merge_cells(
    ctx: &Ctx,
    shared: &BhShared,
    st: &mut RankState,
    cfg: &SimConfig,
    l: GlobalPtr,
    g: GlobalPtr,
) {
    let lnode = shared.cells.read_local(ctx, l);
    // Fold the whole subtree's summary into the global cell atomically.
    shared.cells.update(ctx, g, |cell| {
        cell.merge_summary(lnode.mass, lnode.cofm, lnode.cost, lnode.nbodies);
    });
    ctx.charge_tree_ops(1);
    for octant in 0..8 {
        let lchild = lnode.children[octant];
        if !lchild.is_null() {
            merge_child(ctx, shared, st, cfg, g, octant, lchild);
        }
    }
}

/// Swaps `expect` for `replacement` in slot `octant` of cell `g`, under the
/// cell's lock.  Returns `false` when the slot no longer holds `expect`.
///
/// The mutation goes through [`pgas::SharedArena::update`] (same get+put
/// billing as a read-then-write) rather than a whole-node read/write so that
/// it cannot clobber a concurrent atomic summary fold on `g`: summary merges
/// take only the element lock, not [`BhShared::lock_for`], so writing back a
/// stale full node here would silently drop them.
pub(crate) fn swap_child_slot(
    ctx: &Ctx,
    shared: &BhShared,
    g: GlobalPtr,
    octant: usize,
    expect: GlobalPtr,
    replacement: GlobalPtr,
) -> bool {
    let guard = shared.lock_for(g).lock(ctx);
    let swapped = shared.cells.update(ctx, g, |cell| {
        if cell.children[octant] == expect {
            cell.children[octant] = replacement;
            true
        } else {
            false
        }
    });
    drop(guard);
    swapped
}

/// Merges the local node `lchild` into slot `octant` of global cell `g`.
fn merge_child(
    ctx: &Ctx,
    shared: &BhShared,
    st: &mut RankState,
    cfg: &SimConfig,
    g: GlobalPtr,
    octant: usize,
    lchild: GlobalPtr,
) {
    let lnode = shared.cells.read_local(ctx, lchild);
    loop {
        let gnode = shared.cells.read(ctx, g);
        let gchild = gnode.children[octant];

        if gchild.is_null() {
            // Try to hook the whole local subtree with one pointer update.
            if swap_child_slot(ctx, shared, g, octant, GlobalPtr::NULL, lchild) {
                return;
            }
            continue; // Lost the race; re-evaluate.
        }

        let gchild_node = shared.cells.read(ctx, gchild);
        match (gchild_node.kind, lnode.kind) {
            (NodeKind::Cell, NodeKind::Cell) => {
                merge_cells(ctx, shared, st, cfg, lchild, gchild);
                return;
            }
            (NodeKind::Cell, NodeKind::Body) => {
                insert_leaf_into_global(ctx, shared, st, cfg, lchild, &lnode, gchild);
                return;
            }
            (NodeKind::Body, NodeKind::Cell) => {
                // Swap: our cell takes the slot, the displaced body is
                // re-inserted below it.
                if !swap_child_slot(ctx, shared, g, octant, gchild, lchild) {
                    continue;
                }
                insert_leaf_into_global(ctx, shared, st, cfg, gchild, &gchild_node, lchild);
                return;
            }
            (NodeKind::Body, NodeKind::Body) => {
                // Two bodies collide in the slot: subdivide.  The new cell is
                // allocated before the swap (a cell's geometry and a body
                // leaf's summary are immutable, so nothing can go stale); a
                // lost swap merely strands the allocation until the arena
                // clear at the next teardown.
                let (ccenter, chalf) = gnode.child_geometry(octant);
                let mut new_cell = CellNode::new_cell(ccenter, chalf);
                new_cell.done = true;
                new_cell.merge_summary(gchild_node.mass, gchild_node.cofm, gchild_node.cost, 1);
                new_cell.children[new_cell.octant_of(gchild_node.cofm)] = gchild;
                let new_ptr = shared.cells.alloc(ctx, new_cell);
                st.my_cells.push(new_ptr);
                if !swap_child_slot(ctx, shared, g, octant, gchild, new_ptr) {
                    continue;
                }
                insert_leaf_into_global(ctx, shared, st, cfg, lchild, &lnode, new_ptr);
                return;
            }
        }
    }
}

/// Inserts a body leaf (`leaf_ptr`, whose contents are `leaf`) into the
/// global subtree rooted at `cell_ptr`, atomically folding its summary into
/// every cell it descends through.
fn insert_leaf_into_global(
    ctx: &Ctx,
    shared: &BhShared,
    st: &mut RankState,
    cfg: &SimConfig,
    leaf_ptr: GlobalPtr,
    leaf: &CellNode,
    cell_ptr: GlobalPtr,
) {
    let mut cur = cell_ptr;
    let mut depth = 0usize;
    // Outer loop: one iteration per *cell on the descent path*, folding the
    // leaf's summary into that cell exactly once.  The inner loop retries
    // lost slot races without re-folding (a retry used to re-run the fold,
    // double-counting the leaf in `cur` whenever another rank won a hook or
    // subdivision race).
    'descend: loop {
        depth += 1;
        shared.cells.update(ctx, cur, |cell| {
            cell.merge_summary(leaf.mass, leaf.cofm, leaf.cost, 1);
        });
        ctx.charge_tree_ops(1);
        if depth > cfg.max_depth + 16 {
            // Coincident bodies: fold into the cell summary only (the body is
            // then represented by the aggregate, an approximation that never
            // triggers with Plummer inputs).
            return;
        }
        loop {
            let node = shared.cells.read(ctx, cur);
            let octant = node.octant_of(leaf.cofm);
            let child = node.children[octant];

            if child.is_null() {
                if swap_child_slot(ctx, shared, cur, octant, GlobalPtr::NULL, leaf_ptr) {
                    return;
                }
                continue;
            }

            let child_node = shared.cells.read(ctx, child);
            if child_node.is_cell() {
                cur = child;
                continue 'descend;
            }
            // Body/body collision: subdivide and keep descending (see
            // `merge_child` for why the allocation precedes the swap).
            let (ccenter, chalf) = node.child_geometry(octant);
            let mut new_cell = CellNode::new_cell(ccenter, chalf);
            new_cell.done = true;
            new_cell.merge_summary(child_node.mass, child_node.cofm, child_node.cost, 1);
            new_cell.children[new_cell.octant_of(child_node.cofm)] = child;
            let new_ptr = shared.cells.alloc(ctx, new_cell);
            st.my_cells.push(new_ptr);
            if !swap_child_slot(ctx, shared, cur, octant, child, new_ptr) {
                continue;
            }
            cur = new_ptr;
            continue 'descend;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{OptLevel, SimConfig};
    use crate::shared::RankState;
    use crate::treebuild::bounding_box_phase;
    use nbody::body::center_of_mass;
    use pgas::Runtime;

    fn build_merged(nbodies: usize, ranks: usize) -> (BhShared, SimConfig) {
        let cfg = SimConfig::test(nbodies, ranks, OptLevel::MergedTreeBuild);
        let shared = BhShared::new(&cfg);
        let rt = Runtime::new(cfg.machine.clone());
        rt.run(|ctx| {
            let mut st = RankState::new(ctx, &shared, &cfg);
            let (center, rsize) = bounding_box_phase(ctx, &shared, &mut st, &cfg);
            allocate_merge_root(ctx, &shared, center, rsize);
            ctx.barrier();
            let local_root = build_local_tree(ctx, &shared, &mut st, &cfg);
            ctx.barrier();
            merge_into_global(ctx, &shared, &mut st, &cfg, local_root);
            ctx.barrier();
        });
        (shared, cfg)
    }

    /// Checks that the merged tree contains every body exactly once and that
    /// every cell's summary equals the sum of its children.
    fn check_merged_tree(shared: &BhShared, nbodies: usize) {
        let root = shared.root.read_raw();
        assert!(!root.is_null());
        let mut seen = vec![false; nbodies];
        fn visit(shared: &BhShared, ptr: GlobalPtr, seen: &mut [bool]) -> (u32, f64, Vec3) {
            let node = shared.cells.read_raw(ptr);
            match node.kind {
                NodeKind::Body => {
                    assert!(!seen[node.body_id as usize], "body {} appears twice", node.body_id);
                    seen[node.body_id as usize] = true;
                    (1, node.mass, node.cofm * node.mass)
                }
                NodeKind::Cell => {
                    let mut count = 0u32;
                    let mut mass = 0.0;
                    let mut moment = Vec3::ZERO;
                    for c in node.children {
                        if !c.is_null() {
                            let (n, m, mm) = visit(shared, c, seen);
                            count += n;
                            mass += m;
                            moment += mm;
                        }
                    }
                    assert_eq!(count, node.nbodies, "body count mismatch in merged cell");
                    assert!((mass - node.mass).abs() < 1e-9, "mass mismatch in merged cell");
                    if mass > 0.0 {
                        let cofm = moment / mass;
                        assert!(
                            (cofm - node.cofm).norm() < 1e-6,
                            "centre of mass mismatch: {:?} vs {:?}",
                            cofm,
                            node.cofm
                        );
                    }
                    (count, mass, moment)
                }
            }
        }
        let (count, _, _) = visit(shared, root, &mut seen);
        assert_eq!(count as usize, nbodies);
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn merged_tree_single_rank() {
        let (shared, _) = build_merged(100, 1);
        check_merged_tree(&shared, 100);
    }

    #[test]
    fn merged_tree_contains_all_bodies_multi_rank() {
        for ranks in [2, 3, 5, 8] {
            let (shared, _) = build_merged(240, ranks);
            check_merged_tree(&shared, 240);
        }
    }

    #[test]
    fn merged_root_summary_matches_global_center_of_mass() {
        let (shared, _) = build_merged(300, 4);
        let bodies = shared.bodytab.snapshot();
        let root = shared.cells.read_raw(shared.root.read_raw());
        assert!((root.mass - bodies.iter().map(|b| b.mass).sum::<f64>()).abs() < 1e-9);
        assert!((root.cofm - center_of_mass(&bodies)).norm() < 1e-6);
        assert_eq!(root.nbodies as usize, 300);
    }

    #[test]
    fn merged_build_uses_no_remote_traffic_on_one_rank() {
        let cfg = SimConfig::test(100, 1, OptLevel::MergedTreeBuild);
        let shared = BhShared::new(&cfg);
        let rt = Runtime::new(cfg.machine.clone());
        let report = rt.run(|ctx| {
            let mut st = RankState::new(ctx, &shared, &cfg);
            let (center, rsize) = bounding_box_phase(ctx, &shared, &mut st, &cfg);
            allocate_merge_root(ctx, &shared, center, rsize);
            let local_root = build_local_tree(ctx, &shared, &mut st, &cfg);
            merge_into_global(ctx, &shared, &mut st, &cfg, local_root);
            ctx.stats_snapshot().remote_gets
        });
        assert_eq!(report.ranks[0].result, 0);
    }
}
