//! The UPC-emulated solver as an [`engine`] backend.

use crate::config::SimConfig;
use crate::sim::run_simulation_on;
use engine::{Backend, SimResult};
use nbody::Body;

/// The UPC ladder solver (registry key `upc`).
///
/// Honours `cfg.opt`, so a single backend covers all seven ladder levels —
/// `bhsim --backend upc --opt baseline` and `--opt subspace` run the §4
/// literal translation and the §6 subspace algorithm through the same entry
/// point.  [`Backend::supports`] additionally rejects the group walk below
/// the caching levels ([`crate::sim::check_walk_mode`]): the per-group
/// interaction lists are built over the §5.3 cell cache, and silently
/// substituting the per-body walk would make walk-mode comparisons lie —
/// and the sorted tree build outside its owner-computes levels
/// ([`crate::sim::check_tree_build`]).
pub struct UpcBackend;

impl Backend for UpcBackend {
    fn name(&self) -> &'static str {
        "upc"
    }

    fn description(&self) -> &'static str {
        "UPC-emulated ladder solver (one-sided PGAS; honours --opt, all seven levels)"
    }

    fn supports(&self, cfg: &SimConfig) -> Result<(), String> {
        cfg.validate().map_err(|e| e.to_string())?;
        crate::sim::check_walk_mode(cfg)?;
        crate::sim::check_tree_build(cfg)
    }

    fn supports_sessions(&self) -> bool {
        // The advance phase is the stateless `vel += acc·dt; pos += vel·dt`
        // update and every per-run table (ownership, caches, interaction
        // lists) is derived from the current body positions, so chunked
        // stepping is bit-identical to one long run under per-step rebuild —
        // pinned by the session-equivalence integration test.
        true
    }

    fn run(&self, cfg: &SimConfig, bodies: Vec<Body>) -> SimResult {
        run_simulation_on(cfg, bodies)
    }

    fn run_tracked(
        &self,
        cfg: &SimConfig,
        bodies: Vec<Body>,
        observer: &mut (dyn FnMut(engine::snap::StepRecord) + Send),
    ) -> Result<SimResult, String> {
        self.supports(cfg)?;
        crate::sim::run_simulation_tracked(cfg, bodies, observer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptLevel;
    use nbody::plummer::{generate, PlummerConfig};

    #[test]
    fn backend_runs_every_ladder_level() {
        for opt in OptLevel::ALL {
            let cfg = SimConfig::test(96, 2, opt);
            let bodies = generate(&PlummerConfig::new(cfg.nbodies, cfg.seed));
            assert!(UpcBackend.supports(&cfg).is_ok());
            let result = UpcBackend.run(&cfg, bodies);
            assert_eq!(result.bodies.len(), 96, "{}", opt.name());
            assert!(result.phases.total() > 0.0, "{}", opt.name());
        }
    }

    #[test]
    fn backend_matches_run_simulation_exactly() {
        let cfg = SimConfig::test(128, 3, OptLevel::CacheLocalTree);
        let via_backend =
            UpcBackend.run(&cfg, generate(&PlummerConfig::new(cfg.nbodies, cfg.seed)));
        let direct_call = crate::sim::run_simulation(&cfg);
        for (a, b) in via_backend.bodies.iter().zip(&direct_call.bodies) {
            assert_eq!(a.id, b.id);
            assert!((a.pos - b.pos).norm() < 1e-12);
        }
    }
}
