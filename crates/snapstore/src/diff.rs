//! Structural diffing between snapshots.
//!
//! [`diff_manifests`] works at the chunk level — two manifests alone, no
//! body data — and reports which columns moved and how much of the store
//! the snapshots share, which is both the `snapdiff` default view and the
//! observable the dedup tests pin.  [`diff_bodies`] compares materialized
//! body sets field-by-field at bit granularity, the deep view behind
//! `snapdiff --bodies` and the CI checkpoint smoke's equality check.

use crate::state::SimState;
use crate::store::Manifest;
use nbody::Body;

/// Chunk-level changes in one column of one body set.
#[derive(Debug, Clone)]
pub struct ColumnDiff {
    /// `"bodies"` or `"anchor"`.
    pub set: &'static str,
    /// Column name (`id`, `cost`, `mass`, `phi`, `pos`, `vel`, `acc`).
    pub column: &'static str,
    /// Chunks in the column on each side.
    pub chunks_a: usize,
    pub chunks_b: usize,
    /// Chunk positions present on both sides with different hashes.
    pub changed: usize,
}

/// Chunk-level diff of two manifests.
#[derive(Debug, Clone)]
pub struct SnapDiff {
    pub step_a: usize,
    pub step_b: usize,
    pub anchor_step_a: usize,
    pub anchor_step_b: usize,
    pub generation_a: u64,
    pub generation_b: u64,
    /// Distinct chunks referenced by either side.
    pub chunks_union: usize,
    /// Distinct chunks referenced by both sides — the storage the two
    /// snapshots share in one store.
    pub chunks_shared: usize,
    /// Per-column breakdown, columns with `changed > 0` or a length change
    /// only.
    pub columns: Vec<ColumnDiff>,
    /// `true` when both sides reference identical chunk lists everywhere
    /// (bit-identical snapshots).
    pub identical: bool,
    /// `true` when the two snapshots belong to the same run (scenario,
    /// backend, seed, nbodies) — a diff across different runs is usually a
    /// user mistake worth flagging, not an error.
    pub same_run: bool,
}

impl SnapDiff {
    /// Fraction of the union both snapshots share, in `[0, 1]`.
    pub fn shared_fraction(&self) -> f64 {
        if self.chunks_union == 0 {
            1.0
        } else {
            self.chunks_shared as f64 / self.chunks_union as f64
        }
    }
}

/// Diffs two manifests chunk-by-chunk.
pub fn diff_manifests(a: &Manifest, b: &Manifest) -> SnapDiff {
    let set_a = a.chunk_set();
    let set_b = b.chunk_set();
    let chunks_shared = set_a.intersection(&set_b).count();
    let chunks_union = set_a.union(&set_b).count();

    let mut columns = Vec::new();
    let mut identical = true;
    for (set, cols_a, cols_b) in
        [("bodies", &a.bodies, &b.bodies), ("anchor", &a.anchor, &b.anchor)]
    {
        for ((column, hashes_a), (_, hashes_b)) in cols_a.named().into_iter().zip(cols_b.named()) {
            let changed = hashes_a.iter().zip(hashes_b.iter()).filter(|(ha, hb)| ha != hb).count();
            if changed > 0 || hashes_a.len() != hashes_b.len() {
                identical = false;
                columns.push(ColumnDiff {
                    set,
                    column,
                    chunks_a: hashes_a.len(),
                    chunks_b: hashes_b.len(),
                    changed,
                });
            }
        }
    }

    SnapDiff {
        step_a: a.step,
        step_b: b.step,
        anchor_step_a: a.anchor_step,
        anchor_step_b: b.anchor_step,
        generation_a: a.tree_generation,
        generation_b: b.tree_generation,
        chunks_union,
        chunks_shared,
        columns,
        identical,
        same_run: a.scenario == b.scenario
            && a.backend == b.backend
            && a.cfg.seed == b.cfg.seed
            && a.cfg.nbodies == b.cfg.nbodies,
    }
}

/// Convenience: diff two fully loaded states via their body sets.
pub fn diff_states(a: &SimState, b: &SimState) -> BodyDelta {
    diff_bodies(&a.bodies, &b.bodies)
}

/// Field-level, bit-exact comparison of two body sets.
#[derive(Debug, Clone, Default)]
pub struct BodyDelta {
    /// Bodies compared (the shorter of the two sets).
    pub compared: usize,
    /// Bodies present on only one side (length difference).
    pub unmatched: usize,
    /// Bodies whose position bits differ.
    pub moved: usize,
    /// Bodies whose velocity bits differ.
    pub kicked: usize,
    /// Bodies where any field differs at the bit level.
    pub changed: usize,
    /// Largest Euclidean position displacement among compared bodies.
    pub max_displacement: f64,
}

impl BodyDelta {
    /// `true` when the sets are bit-for-bit identical.
    pub fn identical(&self) -> bool {
        self.changed == 0 && self.unmatched == 0
    }
}

/// Compares two body sets (both sorted by id, as everything in this
/// workspace produces them) bit-by-bit.
pub fn diff_bodies(a: &[Body], b: &[Body]) -> BodyDelta {
    let mut delta = BodyDelta {
        compared: a.len().min(b.len()),
        unmatched: a.len().abs_diff(b.len()),
        ..BodyDelta::default()
    };
    for (ba, bb) in a.iter().zip(b.iter()) {
        let moved = ba.pos.x.to_bits() != bb.pos.x.to_bits()
            || ba.pos.y.to_bits() != bb.pos.y.to_bits()
            || ba.pos.z.to_bits() != bb.pos.z.to_bits();
        let kicked = ba.vel.x.to_bits() != bb.vel.x.to_bits()
            || ba.vel.y.to_bits() != bb.vel.y.to_bits()
            || ba.vel.z.to_bits() != bb.vel.z.to_bits();
        let rest = ba.id != bb.id
            || ba.cost != bb.cost
            || ba.mass.to_bits() != bb.mass.to_bits()
            || ba.phi.to_bits() != bb.phi.to_bits()
            || ba.acc.x.to_bits() != bb.acc.x.to_bits()
            || ba.acc.y.to_bits() != bb.acc.y.to_bits()
            || ba.acc.z.to_bits() != bb.acc.z.to_bits();
        if moved {
            delta.moved += 1;
            delta.max_displacement = delta.max_displacement.max((ba.pos - bb.pos).norm());
        }
        if kicked {
            delta.kicked += 1;
        }
        if moved || kicked || rest {
            delta.changed += 1;
        }
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody::Vec3;

    fn bodies(n: usize, salt: f64) -> Vec<Body> {
        (0..n).map(|i| Body::at_rest(i as u32, Vec3::new(i as f64, salt, 0.0), 1.0)).collect()
    }

    #[test]
    fn body_delta_counts_bit_level_changes() {
        let a = bodies(10, 0.0);
        let mut b = a.clone();
        assert!(diff_bodies(&a, &b).identical());

        b[3].pos.x += 0.5;
        b[7].vel.z = 1.0;
        b[9].phi = -2.0;
        let delta = diff_bodies(&a, &b);
        assert_eq!(delta.moved, 1);
        assert_eq!(delta.kicked, 1);
        assert_eq!(delta.changed, 3);
        assert!((delta.max_displacement - 0.5).abs() < 1e-12);
        assert!(!delta.identical());

        let delta = diff_bodies(&a, &b[..8]);
        assert_eq!(delta.unmatched, 2);
        assert!(!delta.identical());
    }
}
