//! The content-addressed on-disk snapshot store.
//!
//! Layout (one store holds every snapshot of a run — or of a whole sweep):
//!
//! ```text
//! <root>/
//!   objects/<2-hex>/<62-hex>   chunk payloads, named by their SHA-256
//!   <name>.json                manifests ("bhsnap/v1")
//! ```
//!
//! A snapshot is chunked **per column**: each body field (id, cost, mass,
//! phi, pos, vel, acc) of each body set (current, anchor) becomes its own
//! run of fixed-size chunks ([`CHUNK_BODIES`] bodies per chunk), and every
//! chunk is stored once under its SHA-256.  Columns rather than rows because
//! that is where the redundancy lives: between two consecutive-step
//! snapshots the ids, costs and masses are typically bit-identical and a
//! mid-cadence pair shares the entire anchor set, so only the columns that
//! actually moved (pos/vel/acc/phi of the current bodies) cost new storage.
//! The manifest records the chunk hash lists plus the full run identity
//! (scenario, backend, every [`SimConfig`] field with floats as bit-exact
//! hex) — everything [`crate::state::resume`] needs.
//!
//! Integrity is checked on every read: a chunk whose content no longer
//! matches its name fails with [`SnapError::Corrupt`], a chunk the manifest
//! references but the store lacks fails with [`SnapError::MissingChunk`] —
//! structured errors, never a panic, so drivers can report which file to
//! restore from backup.

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use engine::{FaultPlan, OptLevel, SimConfig, TreeBuild, TreePolicy, WalkMode};
use nbody::{Body, Vec3};
use pgas::Machine;
use serde::Value;

use crate::sha256;
use crate::state::{digest_bodies, hex_f64, hex_u32, unhex_f64, unhex_u32, SimState};

/// Manifest format tag; bumped on any incompatible schema change.
pub const FORMAT: &str = "bhsnap/v1";

/// Bodies per chunk.  256 bodies × 16 hex digits × 3 components keeps pos
/// chunks around 12 KiB — small enough that one moved body invalidates
/// little, large enough that a 4096-body snapshot is 16 chunks per column,
/// not thousands of files.
pub const CHUNK_BODIES: usize = 256;

/// A snapshot-store failure.  Every variant carries the offending path or
/// object so the user knows *which* file to repair.
#[derive(Debug)]
pub enum SnapError {
    /// Filesystem-level failure (permissions, disk full, unreadable file).
    Io { path: PathBuf, source: std::io::Error },
    /// A stored chunk's content no longer matches its content address.
    Corrupt { hash: String, detail: String },
    /// A manifest chunk reference with no object in the store.
    MissingChunk { hash: String },
    /// A manifest that is not valid `bhsnap/v1` (bad JSON, missing field,
    /// unknown enum name, body-count mismatch, ...).
    Schema { path: PathBuf, detail: String },
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Io { path, source } => {
                write!(f, "snapshot store I/O error at {}: {source}", path.display())
            }
            SnapError::Corrupt { hash, detail } => {
                write!(f, "snapshot chunk {hash} is corrupt: {detail}")
            }
            SnapError::MissingChunk { hash } => {
                write!(f, "snapshot chunk {hash} is missing from the store")
            }
            SnapError::Schema { path, detail } => {
                write!(f, "snapshot manifest {} is invalid: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for SnapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Per-column chunk hash lists for one body set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ColumnHashes {
    pub id: Vec<String>,
    pub cost: Vec<String>,
    pub mass: Vec<String>,
    pub phi: Vec<String>,
    pub pos: Vec<String>,
    pub vel: Vec<String>,
    pub acc: Vec<String>,
}

impl ColumnHashes {
    /// The columns with their stable names, in manifest order.
    pub fn named(&self) -> [(&'static str, &[String]); 7] {
        [
            ("id", &self.id),
            ("cost", &self.cost),
            ("mass", &self.mass),
            ("phi", &self.phi),
            ("pos", &self.pos),
            ("vel", &self.vel),
            ("acc", &self.acc),
        ]
    }

    /// Every chunk hash this set references.
    pub fn all(&self) -> impl Iterator<Item = &str> {
        self.named().into_iter().flat_map(|(_, hashes)| hashes).map(|h| h.as_str())
    }
}

/// A decoded `bhsnap/v1` manifest: the run identity plus the chunk hash
/// lists.  [`crate::diff`] works on manifests alone — no chunk reads — so
/// `snapdiff` over two multi-megabyte snapshots touches two small files.
#[derive(Debug, Clone)]
pub struct Manifest {
    pub scenario: String,
    pub backend: String,
    pub cfg: SimConfig,
    pub step: usize,
    pub anchor_step: usize,
    pub tree_generation: u64,
    /// [`digest_bodies`] of the current / anchor body sets — lets tools
    /// compare end states without materializing bodies.
    pub bodies_digest: String,
    pub anchor_digest: String,
    pub bodies: ColumnHashes,
    pub anchor: ColumnHashes,
}

impl Manifest {
    /// The deduplicated set of chunk hashes the snapshot references.
    pub fn chunk_set(&self) -> BTreeSet<&str> {
        self.bodies.all().chain(self.anchor.all()).collect()
    }
}

/// Outcome of a [`Store::save`]: where the manifest landed and how much of
/// the snapshot was already present (the dedup visible to callers).
#[derive(Debug, Clone)]
pub struct Saved {
    pub manifest_path: PathBuf,
    /// SHA-256 of the manifest text — the stable snapshot token `bhserve`
    /// hands to clients.
    pub manifest_hash: String,
    /// Chunks the snapshot references (deduplicated).
    pub chunks_total: usize,
    /// Chunks that were not already in the store.
    pub chunks_new: usize,
}

/// A content-addressed snapshot store rooted at one directory.
pub struct Store {
    root: PathBuf,
    /// Faultline plan consulted at every I/O injection point (sites
    /// `snap.chunk.io`, `snap.chunk.torn`, `snap.chunk.bitflip`,
    /// `snap.manifest.torn`).  Empty — inert — by default.
    faults: FaultPlan,
}

impl Store {
    /// Opens (creating if needed) a store rooted at `root`.
    pub fn open(root: impl AsRef<Path>) -> Result<Store, SnapError> {
        let root = root.as_ref().to_path_buf();
        let objects = root.join("objects");
        fs::create_dir_all(&objects).map_err(|e| SnapError::Io { path: objects, source: e })?;
        Ok(Store { root, faults: FaultPlan::default() })
    }

    /// Arms the store's faultline injection points with `faults` (builder
    /// style; chaos tests and `bhsim --faults` use this).
    pub fn with_faults(mut self, faults: FaultPlan) -> Store {
        self.faults = faults;
        self
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of the manifest file for `name`.
    pub fn manifest_path(&self, name: &str) -> PathBuf {
        self.root.join(format!("{name}.json"))
    }

    fn object_path(&self, hash: &str) -> PathBuf {
        self.root.join("objects").join(&hash[..2]).join(&hash[2..])
    }

    /// Stores one chunk payload, returning its hash; counts it in
    /// `chunks_new` only when the object was absent.  Writes go through a
    /// temp file + `fsync` + rename + parent-directory `fsync`, so a crash
    /// at any point leaves either no object or a complete, durable one —
    /// never a truncated payload under a valid content address (renames
    /// without the directory sync can vanish on power loss, resurrecting
    /// exactly the torn-object state the `snap.chunk.torn` injection
    /// exercises).
    fn put_chunk(&self, payload: &str, chunks_new: &mut usize) -> Result<String, SnapError> {
        let hash = sha256::hex_digest(payload.as_bytes());
        let path = self.object_path(&hash);
        if path.exists() {
            return Ok(hash);
        }
        let dir = path.parent().expect("object path has a parent").to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| SnapError::Io { path: dir.clone(), source: e })?;
        if self.faults.fires("snap.chunk.io") {
            return Err(SnapError::Io {
                path: path.clone(),
                source: std::io::Error::new(
                    std::io::ErrorKind::StorageFull,
                    "injected ENOSPC (faultline site snap.chunk.io)",
                ),
            });
        }
        if self.faults.fires("snap.chunk.torn") {
            // The failure mode the durable write path exists to rule out: a
            // truncated payload landing under a valid content address (a
            // crash between a non-synced rename and the data reaching disk).
            // The injection plants that end state directly, so readers must
            // surface it as a structured integrity error.
            let torn = &payload[..payload.len() / 2];
            fs::write(&path, torn).map_err(|e| SnapError::Io { path: path.clone(), source: e })?;
            *chunks_new += 1;
            return Ok(hash);
        }
        let tmp = dir.join(format!(".tmp-{hash}"));
        let write = || -> std::io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(payload.as_bytes())?;
            f.sync_all()?;
            fs::rename(&tmp, &path)?;
            sync_dir(&dir)
        };
        write().map_err(|e| SnapError::Io { path: tmp.clone(), source: e })?;
        *chunks_new += 1;
        Ok(hash)
    }

    /// Reads one chunk and verifies its content address.
    fn get_chunk(&self, hash: &str) -> Result<String, SnapError> {
        let path = self.object_path(hash);
        let mut payload = match fs::read_to_string(&path) {
            Ok(p) => p,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(SnapError::MissingChunk { hash: hash.to_string() })
            }
            Err(e) => return Err(SnapError::Io { path, source: e }),
        };
        if !payload.is_empty() && self.faults.fires("snap.chunk.bitflip") {
            // Silent media corruption: flip one bit of the payload on its
            // way in; the content-address check below must catch it.
            let mut bytes = payload.into_bytes();
            bytes[0] ^= 0x01;
            payload =
                String::from_utf8(bytes).expect("hex payloads stay ASCII under a low-bit flip");
        }
        let actual = sha256::hex_digest(payload.as_bytes());
        if actual != hash {
            return Err(SnapError::Corrupt {
                hash: hash.to_string(),
                detail: format!("stored content hashes to {actual}"),
            });
        }
        Ok(payload)
    }

    fn put_column<F>(
        &self,
        bodies: &[Body],
        encode: F,
        chunks_new: &mut usize,
    ) -> Result<Vec<String>, SnapError>
    where
        F: Fn(&Body) -> String,
    {
        let mut hashes = Vec::with_capacity(bodies.len().div_ceil(CHUNK_BODIES));
        for run in bodies.chunks(CHUNK_BODIES) {
            let mut payload = String::new();
            for b in run {
                payload.push_str(&encode(b));
                payload.push('\n');
            }
            hashes.push(self.put_chunk(&payload, chunks_new)?);
        }
        Ok(hashes)
    }

    fn put_bodies(
        &self,
        bodies: &[Body],
        chunks_new: &mut usize,
    ) -> Result<ColumnHashes, SnapError> {
        Ok(ColumnHashes {
            id: self.put_column(bodies, |b| hex_u32(b.id), chunks_new)?,
            cost: self.put_column(bodies, |b| hex_u32(b.cost), chunks_new)?,
            mass: self.put_column(bodies, |b| hex_f64(b.mass), chunks_new)?,
            phi: self.put_column(bodies, |b| hex_f64(b.phi), chunks_new)?,
            pos: self.put_column(bodies, |b| hex_vec3(b.pos), chunks_new)?,
            vel: self.put_column(bodies, |b| hex_vec3(b.vel), chunks_new)?,
            acc: self.put_column(bodies, |b| hex_vec3(b.acc), chunks_new)?,
        })
    }

    /// Reads all lines of one column, checking the line count.
    fn read_column(
        &self,
        hashes: &[String],
        n: usize,
        what: &str,
    ) -> Result<Vec<String>, SnapError> {
        let mut lines = Vec::with_capacity(n);
        for hash in hashes {
            let payload = self.get_chunk(hash)?;
            lines.extend(payload.lines().map(str::to_string));
        }
        if lines.len() != n {
            return Err(SnapError::Corrupt {
                hash: hashes.first().cloned().unwrap_or_default(),
                detail: format!("column {what} holds {} values, expected {n}", lines.len()),
            });
        }
        Ok(lines)
    }

    fn read_bodies(&self, cols: &ColumnHashes, n: usize) -> Result<Vec<Body>, SnapError> {
        let id = self.read_column(&cols.id, n, "id")?;
        let cost = self.read_column(&cols.cost, n, "cost")?;
        let mass = self.read_column(&cols.mass, n, "mass")?;
        let phi = self.read_column(&cols.phi, n, "phi")?;
        let pos = self.read_column(&cols.pos, n, "pos")?;
        let vel = self.read_column(&cols.vel, n, "vel")?;
        let acc = self.read_column(&cols.acc, n, "acc")?;
        let mut bodies = Vec::with_capacity(n);
        for i in 0..n {
            bodies.push(Body {
                id: parse_u32(&id[i], "id")?,
                cost: parse_u32(&cost[i], "cost")?,
                mass: parse_f64(&mass[i], "mass")?,
                phi: parse_f64(&phi[i], "phi")?,
                pos: parse_vec3(&pos[i], "pos")?,
                vel: parse_vec3(&vel[i], "vel")?,
                acc: parse_vec3(&acc[i], "acc")?,
            });
        }
        Ok(bodies)
    }

    /// Saves `state` as `<name>.json`, deduplicating chunks against
    /// everything already in the store.
    pub fn save(&self, state: &SimState, name: &str) -> Result<Saved, SnapError> {
        let (text, manifest_hash, chunks_total, chunks_new) = self.encode_state(state)?;
        let path = self.manifest_path(name);
        self.write_manifest(&path, &text)?;
        Ok(Saved { manifest_path: path, manifest_hash, chunks_total, chunks_new })
    }

    /// Saves `state` named by its own manifest hash and returns that hash as
    /// the token — the handle `bhserve` gives clients for a suspended
    /// session.  Saving the same state twice yields the same token and
    /// writes nothing new.
    pub fn save_token(&self, state: &SimState) -> Result<Saved, SnapError> {
        let (text, manifest_hash, chunks_total, chunks_new) = self.encode_state(state)?;
        let path = self.manifest_path(&manifest_hash);
        self.write_manifest(&path, &text)?;
        Ok(Saved { manifest_path: path, manifest_hash, chunks_total, chunks_new })
    }

    /// Durably writes a manifest: temp file + `fsync` + rename + directory
    /// `fsync`, like [`Store::put_chunk`] — a manifest *names* the snapshot,
    /// so a torn manifest loses the whole checkpoint even when every chunk
    /// survived.  The `snap.manifest.torn` faultline site plants exactly
    /// that end state (a truncated manifest), which readers surface as a
    /// structured [`SnapError::Schema`].
    fn write_manifest(&self, path: &Path, text: &str) -> Result<(), SnapError> {
        if self.faults.fires("snap.manifest.torn") {
            let torn = &text[..text.len() / 2];
            return fs::write(path, torn)
                .map_err(|e| SnapError::Io { path: path.to_path_buf(), source: e });
        }
        let dir = path.parent().filter(|p| !p.as_os_str().is_empty()).unwrap_or(Path::new("."));
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("manifest");
        let tmp = dir.join(format!(".tmp-{name}"));
        let write = || -> std::io::Result<()> {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(text.as_bytes())?;
            f.sync_all()?;
            fs::rename(&tmp, path)?;
            sync_dir(dir)
        };
        write().map_err(|e| SnapError::Io { path: tmp.clone(), source: e })
    }

    fn encode_state(&self, state: &SimState) -> Result<(String, String, usize, usize), SnapError> {
        let mut chunks_new = 0;
        let bodies = self.put_bodies(&state.bodies, &mut chunks_new)?;
        let anchor = self.put_bodies(&state.anchor, &mut chunks_new)?;
        let manifest = Manifest {
            scenario: state.scenario.clone(),
            backend: state.backend.clone(),
            cfg: state.cfg.clone(),
            step: state.step,
            anchor_step: state.anchor_step,
            tree_generation: state.tree_generation,
            bodies_digest: digest_bodies(&state.bodies),
            anchor_digest: digest_bodies(&state.anchor),
            bodies,
            anchor,
        };
        let chunks_total = manifest.chunk_set().len();
        let text = serde_json::to_string_pretty(&encode_manifest(&manifest))
            .expect("manifest Value always serializes");
        let manifest_hash = sha256::hex_digest(text.as_bytes());
        Ok((text, manifest_hash, chunks_total, chunks_new))
    }

    /// Loads the state saved under `name` (a [`Store::save`] name or a
    /// [`Store::save_token`] token).
    pub fn load(&self, name: &str) -> Result<SimState, SnapError> {
        self.load_from(&self.manifest_path(name))
    }

    /// Loads a state from an explicit manifest path inside this store.
    pub fn load_from(&self, manifest_path: &Path) -> Result<SimState, SnapError> {
        let manifest = load_manifest(manifest_path)?;
        let n = manifest.cfg.nbodies;
        let bodies = self.read_bodies(&manifest.bodies, n)?;
        let anchor = self.read_bodies(&manifest.anchor, n)?;
        Ok(SimState {
            scenario: manifest.scenario,
            backend: manifest.backend,
            cfg: manifest.cfg,
            step: manifest.step,
            anchor_step: manifest.anchor_step,
            tree_generation: manifest.tree_generation,
            bodies,
            anchor,
        })
    }
}

/// `fsync`s a directory so a just-renamed entry survives power loss.
fn sync_dir(dir: &Path) -> std::io::Result<()> {
    fs::File::open(dir)?.sync_all()
}

/// Loads a full [`SimState`] from a manifest path, taking the manifest's
/// parent directory as the store root — the one-call entry `bhsim --resume
/// PATH` uses.
pub fn load_state(manifest_path: &Path) -> Result<SimState, SnapError> {
    let root =
        manifest_path.parent().filter(|p| !p.as_os_str().is_empty()).unwrap_or(Path::new("."));
    let store = Store::open(root)?;
    store.load_from(manifest_path)
}

/// Loads and decodes a manifest (no chunk reads) — what `snapdiff` uses.
pub fn load_manifest(path: &Path) -> Result<Manifest, SnapError> {
    let text = fs::read_to_string(path)
        .map_err(|e| SnapError::Io { path: path.to_path_buf(), source: e })?;
    let value =
        serde_json::from_str(&text).map_err(|e| schema(path, format!("not valid JSON: {e:?}")))?;
    decode_manifest(&value, path)
}

fn hex_vec3(v: Vec3) -> String {
    format!("{} {} {}", hex_f64(v.x), hex_f64(v.y), hex_f64(v.z))
}

fn parse_u32(text: &str, what: &str) -> Result<u32, SnapError> {
    unhex_u32(text).ok_or_else(|| SnapError::Corrupt {
        hash: String::new(),
        detail: format!("bad {what} value {text:?}"),
    })
}

fn parse_f64(text: &str, what: &str) -> Result<f64, SnapError> {
    unhex_f64(text).ok_or_else(|| SnapError::Corrupt {
        hash: String::new(),
        detail: format!("bad {what} value {text:?}"),
    })
}

fn parse_vec3(text: &str, what: &str) -> Result<Vec3, SnapError> {
    let mut parts = text.split(' ');
    let mut next = || {
        parts.next().and_then(unhex_f64).ok_or_else(|| SnapError::Corrupt {
            hash: String::new(),
            detail: format!("bad {what} triple {text:?}"),
        })
    };
    let (x, y, z) = (next()?, next()?, next()?);
    Ok(Vec3::new(x, y, z))
}

// --- manifest encoding -----------------------------------------------------

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn str_val(s: &str) -> Value {
    Value::String(s.to_string())
}

fn hashes_val(hashes: &[String]) -> Value {
    Value::Array(hashes.iter().map(|h| str_val(h)).collect())
}

fn encode_columns(cols: &ColumnHashes) -> Value {
    obj(cols.named().into_iter().map(|(name, hashes)| (name, hashes_val(hashes))).collect())
}

fn encode_config(cfg: &SimConfig) -> Value {
    let tree_policy = match cfg.tree_policy {
        TreePolicy::Rebuild => obj(vec![("name", str_val("rebuild"))]),
        TreePolicy::Reuse { rebuild_every, drift_threshold } => obj(vec![
            ("name", str_val("reuse")),
            ("rebuild_every", Value::UInt(rebuild_every as u64)),
            ("drift_threshold", str_val(&hex_f64(drift_threshold))),
        ]),
        TreePolicy::Adaptive => obj(vec![("name", str_val("adaptive"))]),
    };
    obj(vec![
        ("nbodies", Value::UInt(cfg.nbodies as u64)),
        ("seed", Value::UInt(cfg.seed)),
        ("theta", str_val(&hex_f64(cfg.theta))),
        ("eps", str_val(&hex_f64(cfg.eps))),
        ("dt", str_val(&hex_f64(cfg.dt))),
        ("steps", Value::UInt(cfg.steps as u64)),
        ("measured_steps", Value::UInt(cfg.measured_steps as u64)),
        ("tree_policy", tree_policy),
        ("walk", str_val(cfg.walk.name())),
        ("build", str_val(cfg.build.name())),
        ("opt", str_val(cfg.opt.name())),
        (
            "machine",
            obj(vec![
                ("nodes", Value::UInt(cfg.machine.nodes as u64)),
                ("threads_per_node", Value::UInt(cfg.machine.threads_per_node as u64)),
                ("pthreads", Value::Bool(cfg.machine.pthreads)),
            ]),
        ),
        ("n1", Value::UInt(cfg.n1 as u64)),
        ("n2", Value::UInt(cfg.n2 as u64)),
        ("n3", Value::UInt(cfg.n3 as u64)),
        ("alpha", str_val(&hex_f64(cfg.alpha))),
        ("vector_reduction", Value::Bool(cfg.vector_reduction)),
        ("fine_grained_fields", Value::UInt(cfg.fine_grained_fields as u64)),
        ("leaf_capacity", Value::UInt(cfg.leaf_capacity as u64)),
        ("max_depth", Value::UInt(cfg.max_depth as u64)),
        ("shadow_cache", Value::Bool(cfg.shadow_cache)),
        ("software_scalar_cache", Value::Bool(cfg.software_scalar_cache)),
    ])
}

fn encode_manifest(m: &Manifest) -> Value {
    obj(vec![
        ("format", str_val(FORMAT)),
        ("scenario", str_val(&m.scenario)),
        ("backend", str_val(&m.backend)),
        ("step", Value::UInt(m.step as u64)),
        ("anchor_step", Value::UInt(m.anchor_step as u64)),
        ("tree_generation", Value::UInt(m.tree_generation)),
        ("bodies_digest", str_val(&m.bodies_digest)),
        ("anchor_digest", str_val(&m.anchor_digest)),
        ("config", encode_config(&m.cfg)),
        ("bodies", encode_columns(&m.bodies)),
        ("anchor", encode_columns(&m.anchor)),
    ])
}

// --- manifest decoding -----------------------------------------------------
//
// The vendored serde is serialize-only, so decoding walks `Value` by hand.
// Every missing/odd field names itself in the error: the manifest is a
// user-visible file that people will edit and corrupt.

fn schema(path: &Path, detail: String) -> SnapError {
    SnapError::Schema { path: path.to_path_buf(), detail }
}

fn req<'a>(v: &'a Value, key: &str, path: &Path) -> Result<&'a Value, SnapError> {
    v.get(key).ok_or_else(|| schema(path, format!("missing field {key:?}")))
}

fn req_u64(v: &Value, key: &str, path: &Path) -> Result<u64, SnapError> {
    req(v, key, path)?
        .as_u64()
        .ok_or_else(|| schema(path, format!("field {key:?} is not an unsigned integer")))
}

fn req_usize(v: &Value, key: &str, path: &Path) -> Result<usize, SnapError> {
    Ok(req_u64(v, key, path)? as usize)
}

fn req_str<'a>(v: &'a Value, key: &str, path: &Path) -> Result<&'a str, SnapError> {
    req(v, key, path)?
        .as_str()
        .ok_or_else(|| schema(path, format!("field {key:?} is not a string")))
}

fn req_bool(v: &Value, key: &str, path: &Path) -> Result<bool, SnapError> {
    req(v, key, path)?
        .as_bool()
        .ok_or_else(|| schema(path, format!("field {key:?} is not a boolean")))
}

fn req_hex_f64(v: &Value, key: &str, path: &Path) -> Result<f64, SnapError> {
    let text = req_str(v, key, path)?;
    unhex_f64(text)
        .ok_or_else(|| schema(path, format!("field {key:?} is not a 16-digit hex float")))
}

fn req_hashes(v: &Value, key: &str, path: &Path) -> Result<Vec<String>, SnapError> {
    let items = req(v, key, path)?
        .as_array()
        .ok_or_else(|| schema(path, format!("field {key:?} is not an array")))?;
    items
        .iter()
        .map(|item| {
            let s = item
                .as_str()
                .ok_or_else(|| schema(path, format!("field {key:?} holds a non-string hash")))?;
            if s.len() != 64 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
                return Err(schema(path, format!("field {key:?} holds a malformed hash {s:?}")));
            }
            Ok(s.to_string())
        })
        .collect()
}

fn decode_columns(v: &Value, path: &Path) -> Result<ColumnHashes, SnapError> {
    Ok(ColumnHashes {
        id: req_hashes(v, "id", path)?,
        cost: req_hashes(v, "cost", path)?,
        mass: req_hashes(v, "mass", path)?,
        phi: req_hashes(v, "phi", path)?,
        pos: req_hashes(v, "pos", path)?,
        vel: req_hashes(v, "vel", path)?,
        acc: req_hashes(v, "acc", path)?,
    })
}

fn decode_config(v: &Value, path: &Path) -> Result<SimConfig, SnapError> {
    let machine_v = req(v, "machine", path)?;
    let machine = Machine::power5(
        req_usize(machine_v, "nodes", path)?,
        req_usize(machine_v, "threads_per_node", path)?,
        req_bool(machine_v, "pthreads", path)?,
    );
    let opt_name = req_str(v, "opt", path)?;
    let opt = OptLevel::from_name(opt_name)
        .ok_or_else(|| schema(path, format!("unknown opt level {opt_name:?}")))?;

    let mut cfg = SimConfig::new(req_usize(v, "nbodies", path)?, machine, opt);
    cfg.seed = req_u64(v, "seed", path)?;
    cfg.theta = req_hex_f64(v, "theta", path)?;
    cfg.eps = req_hex_f64(v, "eps", path)?;
    cfg.dt = req_hex_f64(v, "dt", path)?;
    cfg.steps = req_usize(v, "steps", path)?;
    cfg.measured_steps = req_usize(v, "measured_steps", path)?;

    let policy_v = req(v, "tree_policy", path)?;
    let policy_name = req_str(policy_v, "name", path)?;
    cfg.tree_policy = match policy_name {
        "rebuild" => TreePolicy::Rebuild,
        "adaptive" => TreePolicy::Adaptive,
        "reuse" => TreePolicy::Reuse {
            rebuild_every: req_usize(policy_v, "rebuild_every", path)?,
            drift_threshold: req_hex_f64(policy_v, "drift_threshold", path)?,
        },
        other => return Err(schema(path, format!("unknown tree policy {other:?}"))),
    };

    let walk_name = req_str(v, "walk", path)?;
    cfg.walk = WalkMode::from_name(walk_name)
        .ok_or_else(|| schema(path, format!("unknown walk mode {walk_name:?}")))?;
    let build_name = req_str(v, "build", path)?;
    cfg.build = TreeBuild::from_name(build_name)
        .ok_or_else(|| schema(path, format!("unknown tree build {build_name:?}")))?;

    cfg.n1 = req_usize(v, "n1", path)?;
    cfg.n2 = req_usize(v, "n2", path)?;
    cfg.n3 = req_usize(v, "n3", path)?;
    cfg.alpha = req_hex_f64(v, "alpha", path)?;
    cfg.vector_reduction = req_bool(v, "vector_reduction", path)?;
    cfg.fine_grained_fields = req_u64(v, "fine_grained_fields", path)? as u32;
    cfg.leaf_capacity = req_usize(v, "leaf_capacity", path)?;
    cfg.max_depth = req_usize(v, "max_depth", path)?;
    cfg.shadow_cache = req_bool(v, "shadow_cache", path)?;
    cfg.software_scalar_cache = req_bool(v, "software_scalar_cache", path)?;
    Ok(cfg)
}

fn decode_manifest(v: &Value, path: &Path) -> Result<Manifest, SnapError> {
    let format = req_str(v, "format", path)?;
    if format != FORMAT {
        return Err(schema(path, format!("format {format:?}, this build reads {FORMAT:?}")));
    }
    let cfg = decode_config(req(v, "config", path)?, path)?;
    let step = req_usize(v, "step", path)?;
    let anchor_step = req_usize(v, "anchor_step", path)?;
    if anchor_step > step {
        return Err(schema(path, format!("anchor_step {anchor_step} is beyond step {step}")));
    }
    Ok(Manifest {
        scenario: req_str(v, "scenario", path)?.to_string(),
        backend: req_str(v, "backend", path)?.to_string(),
        cfg,
        step,
        anchor_step,
        tree_generation: req_u64(v, "tree_generation", path)?,
        bodies_digest: req_str(v, "bodies_digest", path)?.to_string(),
        anchor_digest: req_str(v, "anchor_digest", path)?.to_string(),
        bodies: decode_columns(req(v, "bodies", path)?, path)?,
        anchor: decode_columns(req(v, "anchor", path)?, path)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::snap::bodies_bits_equal;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("snapstore-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_bodies(n: usize, salt: f64) -> Vec<Body> {
        (0..n)
            .map(|i| {
                let mut b = Body::at_rest(i as u32, Vec3::new(i as f64, salt, -1.0), 1.5);
                b.vel = Vec3::new(salt * 0.25, i as f64 * 1e-3, 0.0);
                b.acc = Vec3::new(0.0, -salt, i as f64);
                b.phi = -(i as f64) - salt;
                b.cost = 1 + (i as u32 % 7);
                b
            })
            .collect()
    }

    fn sample_state(n: usize) -> SimState {
        let mut cfg = SimConfig::test(n, 2, OptLevel::CacheLocalTree);
        cfg.steps = 8;
        cfg.measured_steps = 4;
        cfg.tree_policy = TreePolicy::Reuse { rebuild_every: 4, drift_threshold: 0.25 };
        cfg.walk = WalkMode::Group;
        cfg.seed = 42;
        SimState {
            scenario: "plummer".to_string(),
            backend: "upc".to_string(),
            cfg,
            step: 6,
            anchor_step: 4,
            tree_generation: 2,
            bodies: sample_bodies(n, 3.5),
            anchor: sample_bodies(n, 1.25),
        }
    }

    #[test]
    fn save_load_round_trip_is_bit_exact() {
        let dir = temp_dir("roundtrip");
        let store = Store::open(&dir).expect("open");
        let state = sample_state(300); // spans two chunks per column
        let saved = store.save(&state, "step-0006").expect("save");
        assert!(saved.manifest_path.ends_with("step-0006.json"));
        assert_eq!(saved.chunks_new, saved.chunks_total, "fresh store stores every chunk");

        let loaded = store.load("step-0006").expect("load");
        assert_eq!(loaded.scenario, "plummer");
        assert_eq!(loaded.backend, "upc");
        assert_eq!(loaded.step, 6);
        assert_eq!(loaded.anchor_step, 4);
        assert_eq!(loaded.steps_since_rebuild(), 2);
        assert_eq!(loaded.tree_generation, 2);
        assert!(bodies_bits_equal(&loaded.bodies, &state.bodies));
        assert!(bodies_bits_equal(&loaded.anchor, &state.anchor));
        assert_eq!(loaded.cfg.tree_policy, state.cfg.tree_policy);
        assert_eq!(loaded.cfg.walk, WalkMode::Group);
        assert_eq!(loaded.cfg.seed, 42);
        assert_eq!(loaded.cfg.machine.ranks(), state.cfg.machine.ranks());
        assert_eq!(loaded.cfg.dt.to_bits(), state.cfg.dt.to_bits());

        // The free-function entry (what `bhsim --resume` uses).
        let via_path = load_state(&saved.manifest_path).expect("load_state");
        assert!(bodies_bits_equal(&via_path.bodies, &state.bodies));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn consecutive_snapshots_share_most_chunks() {
        let dir = temp_dir("dedup");
        let store = Store::open(&dir).expect("open");
        let s1 = sample_state(300);
        // One step later, mid-cadence: anchor identical, current bodies
        // moved (pos/vel/acc/phi change; id/cost/mass do not).
        let mut s2 = s1.clone();
        s2.step += 1;
        for b in &mut s2.bodies {
            b.pos.x += 1e-6;
            b.vel.y += 1e-6;
            b.acc.z += 1e-6;
            b.phi += 1e-6;
        }
        let first = store.save(&s1, "step-0006").expect("save 1");
        let second = store.save(&s2, "step-0007").expect("save 2");
        assert!(
            second.chunks_new * 2 < second.chunks_total,
            "content addressing must share >50% of chunks between consecutive snapshots \
             (shared {} of {})",
            second.chunks_total - second.chunks_new,
            second.chunks_total
        );
        assert_eq!(first.chunks_total, second.chunks_total);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_token_is_idempotent_and_content_named() {
        let dir = temp_dir("token");
        let store = Store::open(&dir).expect("open");
        let state = sample_state(64);
        let a = store.save_token(&state).expect("first");
        let b = store.save_token(&state).expect("second");
        assert_eq!(a.manifest_hash, b.manifest_hash);
        assert_eq!(b.chunks_new, 0, "second save of identical state writes nothing");
        let loaded = store.load(&a.manifest_hash).expect("load by token");
        assert!(bodies_bits_equal(&loaded.bodies, &state.bodies));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_chunk_is_a_structured_error() {
        let dir = temp_dir("corrupt");
        let store = Store::open(&dir).expect("open");
        let state = sample_state(64);
        store.save(&state, "snap").expect("save");

        // Flip bytes in one object file.
        let objects = dir.join("objects");
        let some_object = fs::read_dir(&objects)
            .expect("objects dir")
            .flat_map(|d| fs::read_dir(d.expect("fan-out dir").path()).expect("inner dir"))
            .next()
            .expect("at least one chunk")
            .expect("dir entry")
            .path();
        fs::write(&some_object, "0000000000000000\n").expect("corrupt");

        match store.load("snap") {
            Err(SnapError::Corrupt { hash, .. }) => assert_eq!(hash.len(), 64),
            other => panic!("expected SnapError::Corrupt, got {other:?}"),
        }

        // Delete it instead: missing chunk, also structured.
        fs::remove_file(&some_object).expect("remove");
        match store.load("snap") {
            Err(SnapError::MissingChunk { hash }) => assert_eq!(hash.len(), 64),
            other => panic!("expected SnapError::MissingChunk, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_manifests_fail_with_schema_errors() {
        let dir = temp_dir("schema");
        let store = Store::open(&dir).expect("open");
        let path = store.manifest_path("bad");

        fs::write(&path, "{ not json").expect("write");
        assert!(matches!(store.load("bad"), Err(SnapError::Schema { .. })));

        fs::write(&path, "{\"format\": \"bhsnap/v999\"}").expect("write");
        match store.load("bad") {
            Err(SnapError::Schema { detail, .. }) => assert!(detail.contains("bhsnap/v999")),
            other => panic!("expected SnapError::Schema, got {other:?}"),
        }

        let state = sample_state(16);
        let saved = store.save(&state, "good").expect("save");
        let mangled = fs::read_to_string(&saved.manifest_path)
            .expect("read")
            .replace("\"walk\": \"group\"", "\"walk\": \"sideways\"");
        fs::write(&path, mangled).expect("write");
        match store.load("bad") {
            Err(SnapError::Schema { detail, .. }) => {
                assert!(detail.contains("sideways"), "{detail}")
            }
            other => panic!("expected SnapError::Schema, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }
    #[test]
    fn injected_io_faults_surface_as_structured_errors() {
        let dir = temp_dir("fault-io");
        let store = Store::open(&dir)
            .expect("open store")
            .with_faults(FaultPlan::parse("snap.chunk.io@n1").expect("spec"));
        match store.save(&sample_state(16), "doomed") {
            Err(SnapError::Io { source, .. }) => {
                assert!(source.to_string().contains("injected ENOSPC"), "{source}")
            }
            other => panic!("expected SnapError::Io, got {other:?}"),
        }
        // The trigger was one-shot: the very next save goes through clean.
        store.save(&sample_state(16), "fine").expect("save after the fault consumed");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_chunk_writes_read_back_as_corrupt_not_a_panic() {
        let dir = temp_dir("fault-torn");
        let store = Store::open(&dir)
            .expect("open store")
            .with_faults(FaultPlan::parse("snap.chunk.torn@n1").expect("spec"));
        let saved = store.save(&sample_state(16), "torn").expect("save plants the torn object");
        let clean = Store::open(&dir).expect("reopen");
        match clean.load("torn") {
            Err(SnapError::Corrupt { detail, .. }) => {
                assert!(detail.contains("stored content hashes to"), "{detail}")
            }
            other => panic!("expected SnapError::Corrupt, got {other:?}"),
        }
        assert!(saved.chunks_new > 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flipped_chunk_reads_fail_verification() {
        let dir = temp_dir("fault-bitflip");
        let store = Store::open(&dir).expect("open store");
        store.save(&sample_state(16), "ok").expect("save");

        let flipping = Store::open(&dir)
            .expect("reopen")
            .with_faults(FaultPlan::parse("snap.chunk.bitflip@n1").expect("spec"));
        match flipping.load("ok") {
            Err(SnapError::Corrupt { detail, .. }) => {
                assert!(detail.contains("stored content hashes to"), "{detail}")
            }
            other => panic!("expected SnapError::Corrupt, got {other:?}"),
        }
        // The on-disk object is untouched; a clean reader round-trips.
        let clean = Store::open(&dir).expect("reopen clean");
        let loaded = clean.load("ok").expect("load");
        assert!(bodies_bits_equal(&loaded.bodies, &sample_state(16).bodies));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_manifests_load_as_schema_errors() {
        let dir = temp_dir("fault-manifest");
        let store = Store::open(&dir)
            .expect("open store")
            .with_faults(FaultPlan::parse("snap.manifest.torn@n1").expect("spec"));
        store.save(&sample_state(16), "half").expect("save plants the torn manifest");
        let clean = Store::open(&dir).expect("reopen");
        assert!(matches!(clean.load("half"), Err(SnapError::Schema { .. })));
        let _ = fs::remove_dir_all(&dir);
    }
}
