//! # snapstore — content-addressed checkpoint/restore for simulation state
//!
//! The paper's experiment protocol is short (four steps), but everything
//! built around it here — long reuse-cadence runs, multi-tenant serving,
//! bench sweeps that re-integrate the same equilibration prefix for every
//! point — wants runs that can *stop and continue*.  This crate owns that:
//!
//! - [`SimState`] is the one serializable value a bit-exact resume needs:
//!   run identity (scenario, backend, full config), step counter, tree
//!   generation, the current bodies **and** the anchor bodies (the state
//!   that entered the last full tree rebuild, so a persistent-tree run
//!   resumes with its rebuild cadence phase intact).
//! - [`Recorder`] folds a backend's per-step [`engine::snap::StepRecord`]
//!   stream into [`SimState`] values; [`resume`] replays from the anchor,
//!   verifies the replay against the checkpoint bit-for-bit, and continues
//!   the run.
//! - [`Store`] persists states chunked per column and content-addressed by
//!   a vendored SHA-256 ([`sha256`]), so consecutive-step snapshots and
//!   sweep points sharing an equilibration prefix share unchanged chunks in
//!   one on-disk store; manifests (`bhsnap/v1`) record chunk hashes plus
//!   the full run identity with floats as bit-exact hex.
//! - [`diff_manifests`] / [`diff_bodies`] report which chunks and which
//!   bodies moved between two snapshots (the `snapdiff` tool).
//!
//! Integrity failures are structured [`SnapError`] values — a corrupted or
//! missing chunk names itself; nothing panics on bad input.

pub mod diff;
pub mod sha256;
pub mod state;
pub mod store;

pub use diff::{diff_bodies, diff_manifests, diff_states, BodyDelta, ColumnDiff, SnapDiff};
pub use state::{
    digest_bodies, hex_f64, hex_u32, resume, unhex_f64, unhex_u32, Recorder, SimState,
};
pub use store::{
    load_manifest, load_state, ColumnHashes, Manifest, Saved, SnapError, Store, CHUNK_BODIES,
    FORMAT,
};
