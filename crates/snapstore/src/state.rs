//! The serializable simulation state and the capture/resume machinery
//! around it.
//!
//! [`SimState`] owns everything a bit-exact resume needs: the run's
//! identity (scenario, backend, full [`SimConfig`]), the step counter, the
//! tree generation, and *two* body sets — the current bodies and the
//! **anchor** bodies, the state that entered the last full tree rebuild.
//! Under a persistent [`engine::TreePolicy`] the reused tree's structure is
//! a function of the body history since that rebuild, so resuming from the
//! current bodies alone would hand the solver a freshly rebuilt tree where
//! the uninterrupted run had an incrementally updated one, silently
//! shifting the rebuild cadence and breaking bit-equality.  Resume instead
//! replays from the anchor: the first replayed step rebuilds from scratch
//! exactly as the uninterrupted run's anchor step did (rebuilt trees are a
//! pure function of the bodies entering the step), so the replay reproduces
//! the interrupted trajectory bit for bit — and verifies that claim against
//! the checkpoint's stored current bodies before continuing.

use engine::snap::{bodies_bits_equal, StepRecord};
use engine::{Backend, SimConfig, SimResult};
use nbody::Body;

/// Everything a resume needs, in one serializable value.
///
/// Invariants: `bodies` is the state after `step` completed time steps,
/// sorted by id; `anchor` is the state after `anchor_step` completed steps
/// (`anchor_step <= step`, equal exactly when the configuration keeps no
/// cross-step tree state — then `anchor` and `bodies` are the same bodies
/// and their chunks share storage by content addressing).
#[derive(Debug, Clone)]
pub struct SimState {
    /// Workload family name (`scenarios` registry key).
    pub scenario: String,
    /// Solver name (`engine::BackendRegistry` key).
    pub backend: String,
    /// The full configuration of the (whole) run, including `steps` — the
    /// total the run is heading for, not the portion already executed.
    pub cfg: SimConfig,
    /// Completed time steps (`bodies` is the state after this many steps).
    pub step: usize,
    /// The step a bit-exact resume replays from (the last full rebuild).
    pub anchor_step: usize,
    /// Tree generation at capture (0 when the solver keeps no persistent
    /// tree); diagnostic, surfaced by `snapdiff`.
    pub tree_generation: u64,
    /// Body states after `step` steps, sorted by id.
    pub bodies: Vec<Body>,
    /// Body states after `anchor_step` steps, sorted by id.
    pub anchor: Vec<Body>,
}

impl SimState {
    /// Steps of rebuild cadence already consumed at capture — the phase the
    /// ISSUE's regression test guards: dropping it (resuming from `bodies`
    /// with a fresh tree) silently shifts every later rebuild.
    pub fn steps_since_rebuild(&self) -> usize {
        self.step - self.anchor_step
    }

    /// `true` when the run this state was captured from has already
    /// executed all its configured steps.
    pub fn complete(&self) -> bool {
        self.step >= self.cfg.steps
    }
}

/// Folds the per-step [`StepRecord`] stream of a tracked run into
/// [`SimState`] values.
///
/// The recorder keeps the one piece of history a record alone cannot
/// provide: the anchor bodies.  A record says *where* the anchor is
/// (`anchor_step`); the bodies that entered that step were the *previous*
/// record's bodies, which the recorder retains across observations.
pub struct Recorder {
    scenario: String,
    backend: String,
    cfg: SimConfig,
    /// Absolute step offset: 0 for a from-scratch run, `anchor_step` of the
    /// checkpoint when replaying a resumed run (whose records count from 0).
    base: usize,
    /// Bodies entering the next observed step (S_t for the upcoming record
    /// of step t).
    prev: Vec<Body>,
    anchor: Vec<Body>,
    anchor_step: usize,
}

impl Recorder {
    /// A recorder for a run starting from `initial` bodies at absolute step
    /// `base` (0 unless replaying a resume).
    pub fn new(
        scenario: &str,
        backend: &str,
        cfg: &SimConfig,
        initial: Vec<Body>,
        base: usize,
    ) -> Recorder {
        Recorder {
            scenario: scenario.to_string(),
            backend: backend.to_string(),
            cfg: cfg.clone(),
            base,
            prev: initial.clone(),
            anchor: initial,
            anchor_step: base,
        }
    }

    /// Folds one observation into the running anchor state and returns the
    /// complete resumable state after that step.
    pub fn observe(&mut self, record: &StepRecord) -> SimState {
        let abs_step = self.base + record.step;
        let abs_anchor = self.base + record.anchor_step;
        if abs_anchor == abs_step {
            // A full rebuild ran during this step: the anchor bodies are
            // the ones that entered it.
            self.anchor = std::mem::replace(&mut self.prev, record.bodies.clone());
            self.anchor_step = abs_anchor;
        } else if abs_anchor == abs_step + 1 {
            // No cross-step tree state: resume restarts from the current
            // bodies directly.
            self.anchor = record.bodies.clone();
            self.anchor_step = abs_anchor;
            self.prev = record.bodies.clone();
        } else {
            debug_assert!(
                abs_anchor == self.anchor_step,
                "anchor moved without a rebuild observation ({} -> {abs_anchor})",
                self.anchor_step
            );
            self.prev = record.bodies.clone();
        }
        SimState {
            scenario: self.scenario.clone(),
            backend: self.backend.clone(),
            cfg: self.cfg.clone(),
            step: abs_step + 1,
            anchor_step: self.anchor_step,
            tree_generation: record.tree_generation,
            bodies: record.bodies.clone(),
            anchor: self.anchor.clone(),
        }
    }
}

/// Resumes an interrupted run from `state`, replaying from the anchor and
/// verifying the replay against the checkpoint before continuing to the
/// configured total `state.cfg.steps`.
///
/// `on_state` fires with the resumable state after every step *beyond* the
/// checkpoint (absolute step numbering), so callers can keep checkpointing
/// the continued run.  Returns the tail run's [`SimResult`] — its phase
/// tables cover the trailing measured window exactly as the uninterrupted
/// run's would (the window depends only on work done, which replays
/// identically), and its bodies are the final state of the whole run.
///
/// Fails when the backend cannot run tracked, when the run is already
/// complete, or — the load-bearing check — when the replayed trajectory
/// diverges from the checkpoint's stored bodies, which means the store and
/// the solver disagree and continuing would corrupt the run.
pub fn resume(
    state: &SimState,
    backend: &dyn Backend,
    mut on_state: impl FnMut(SimState) + Send,
) -> Result<SimResult, String> {
    if state.complete() {
        return Err(format!(
            "checkpoint is already complete ({} of {} steps executed)",
            state.step, state.cfg.steps
        ));
    }
    if state.bodies.len() != state.cfg.nbodies || state.anchor.len() != state.cfg.nbodies {
        return Err(format!(
            "checkpoint body count ({} current / {} anchor) does not match cfg.nbodies ({})",
            state.bodies.len(),
            state.anchor.len(),
            state.cfg.nbodies
        ));
    }
    let mut cfg_tail = state.cfg.clone();
    cfg_tail.steps = state.cfg.steps - state.anchor_step;
    cfg_tail.measured_steps = state.cfg.measured_steps.min(cfg_tail.steps);

    let mut recorder = Recorder::new(
        &state.scenario,
        &state.backend,
        &state.cfg,
        state.anchor.clone(),
        state.anchor_step,
    );
    let mut replay_error: Option<String> = None;
    let mut observer = |record: StepRecord| {
        let observed = recorder.observe(&record);
        if observed.step == state.step
            && !bodies_bits_equal(&observed.bodies, &state.bodies)
            && replay_error.is_none()
        {
            replay_error = Some(format!(
                "replay diverged from the checkpoint at step {}: the replayed bodies are not \
                 bit-identical to the stored ones (store and solver disagree)",
                state.step
            ));
        }
        if observed.step > state.step {
            on_state(observed);
        }
    };
    let result = backend.run_tracked(&cfg_tail, state.anchor.clone(), &mut observer)?;
    if let Some(e) = replay_error {
        return Err(e);
    }
    Ok(result)
}

/// Bit-exact hex encoding of one `f64` (16 lowercase hex digits of its IEEE
/// bits) — the same encoding the `bhserve` wire protocol uses for bodies.
pub fn hex_f64(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Decodes [`hex_f64`].
pub fn unhex_f64(text: &str) -> Option<f64> {
    if text.len() != 16 {
        return None;
    }
    u64::from_str_radix(text, 16).ok().map(f64::from_bits)
}

/// Bit-exact hex encoding of one `u32` (8 lowercase hex digits).
pub fn hex_u32(v: u32) -> String {
    format!("{v:08x}")
}

/// Decodes [`hex_u32`].
pub fn unhex_u32(text: &str) -> Option<u32> {
    if text.len() != 8 {
        return None;
    }
    u32::from_str_radix(text, 16).ok()
}

/// Canonical digest of a body set: SHA-256 over the bit-exact hex encoding
/// of every field of every body, in id order.  Two body sets digest equal
/// iff [`bodies_bits_equal`] holds, so drivers can compare end states
/// across process boundaries (the CI checkpoint smoke compares the resumed
/// run's digest against the uninterrupted run's).
pub fn digest_bodies(bodies: &[Body]) -> String {
    let mut h = crate::sha256::Sha256::new();
    for b in bodies {
        let line = format!(
            "{} {} {} {} {} {} {} {} {} {} {} {} {}\n",
            hex_u32(b.id),
            hex_u32(b.cost),
            hex_f64(b.mass),
            hex_f64(b.phi),
            hex_f64(b.pos.x),
            hex_f64(b.pos.y),
            hex_f64(b.pos.z),
            hex_f64(b.vel.x),
            hex_f64(b.vel.y),
            hex_f64(b.vel.z),
            hex_f64(b.acc.x),
            hex_f64(b.acc.y),
            hex_f64(b.acc.z),
        );
        h.update(line.as_bytes());
    }
    let mut out = String::with_capacity(64);
    for byte in h.finalize() {
        out.push_str(&format!("{byte:02x}"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody::Vec3;

    fn body(id: u32, x: f64) -> Body {
        Body::at_rest(id, Vec3::new(x, 0.0, 0.0), 1.0)
    }

    #[test]
    fn hex_roundtrips_are_bit_exact() {
        for v in [0.0, -0.0, 1.5, f64::MIN_POSITIVE, -3.25e300, f64::NAN] {
            let decoded = unhex_f64(&hex_f64(v)).expect("roundtrip");
            assert_eq!(decoded.to_bits(), v.to_bits());
        }
        assert_eq!(unhex_u32(&hex_u32(u32::MAX)), Some(u32::MAX));
        assert_eq!(unhex_f64("abc"), None);
        assert_eq!(unhex_u32("zzzzzzzz"), None);
    }

    #[test]
    fn digest_tracks_bit_equality() {
        let a = vec![body(0, 1.0), body(1, 2.0)];
        let mut b = a.clone();
        assert_eq!(digest_bodies(&a), digest_bodies(&b));
        b[1].vel.y = f64::from_bits(1);
        assert_ne!(digest_bodies(&a), digest_bodies(&b));
    }

    #[test]
    fn recorder_tracks_the_anchor_through_rebuilds() {
        let cfg = SimConfig::test(2, 1, engine::OptLevel::CacheLocalTree);
        let s0 = vec![body(0, 0.0), body(1, 1.0)];
        let s1 = vec![body(0, 0.1), body(1, 1.1)];
        let s2 = vec![body(0, 0.2), body(1, 1.2)];
        let s3 = vec![body(0, 0.3), body(1, 1.3)];
        let mut rec = Recorder::new("plummer", "upc", &cfg, s0.clone(), 0);

        // Step 0 rebuilds (anchor_step == step): anchor is the initial set.
        let st = rec.observe(&StepRecord {
            step: 0,
            anchor_step: 0,
            tree_generation: 1,
            bodies: s1.clone(),
        });
        assert_eq!((st.step, st.anchor_step), (1, 0));
        assert!(bodies_bits_equal(&st.anchor, &s0));

        // Step 1 reuses the tree: anchor unchanged.
        let st = rec.observe(&StepRecord {
            step: 1,
            anchor_step: 0,
            tree_generation: 1,
            bodies: s2.clone(),
        });
        assert_eq!((st.step, st.anchor_step), (2, 0));
        assert_eq!(st.steps_since_rebuild(), 2);
        assert!(bodies_bits_equal(&st.anchor, &s0));
        assert!(bodies_bits_equal(&st.bodies, &s2));

        // Step 2 rebuilds: the anchor becomes the bodies that entered it.
        let st = rec.observe(&StepRecord {
            step: 2,
            anchor_step: 2,
            tree_generation: 2,
            bodies: s3.clone(),
        });
        assert_eq!((st.step, st.anchor_step), (3, 2));
        assert!(bodies_bits_equal(&st.anchor, &s2));
    }

    #[test]
    fn recorder_handles_stateless_configurations() {
        let cfg = SimConfig::test(1, 1, engine::OptLevel::Subspace);
        let s0 = vec![body(0, 0.0)];
        let s1 = vec![body(0, 0.5)];
        let mut rec = Recorder::new("plummer", "upc", &cfg, s0, 0);
        // anchor_step == step + 1 marks "resume from current directly".
        let st = rec.observe(&StepRecord {
            step: 0,
            anchor_step: 1,
            tree_generation: 0,
            bodies: s1.clone(),
        });
        assert_eq!((st.step, st.anchor_step), (1, 1));
        assert_eq!(st.steps_since_rebuild(), 0);
        assert!(bodies_bits_equal(&st.anchor, &s1));
    }
}
