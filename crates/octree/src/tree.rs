//! Arena-based sequential octree with SPLASH-2 geometry.

use nbody::body::{root_cell, Body};
use nbody::vec3::Vec3;

/// Sentinel for "no child".
pub const NO_CHILD: i32 = -1;

/// Construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct TreeParams {
    /// Maximum number of bodies a leaf may hold before it is split.
    /// SPLASH-2 splits down to one body per leaf.
    pub leaf_capacity: usize,
    /// Maximum tree depth; below this depth leaves are allowed to exceed
    /// `leaf_capacity` (guards against coincident bodies).
    pub max_depth: usize,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams { leaf_capacity: 1, max_depth: 64 }
    }
}

/// A node of the octree: either an internal cell with up to eight children or
/// a leaf holding body indices.
#[derive(Debug, Clone)]
pub struct Node {
    /// Geometric centre of the cell.
    pub center: Vec3,
    /// Half of the cell's side length.
    pub half: f64,
    /// Total mass of the bodies below this node (filled by `compute_mass`).
    pub mass: f64,
    /// Centre of mass of the bodies below this node (filled by
    /// `compute_mass`).
    pub cofm: Vec3,
    /// Accumulated interaction cost of the bodies below this node.
    pub cost: u64,
    /// Number of bodies below this node.
    pub nbodies: usize,
    /// Child node indices (`NO_CHILD` when absent); meaningful only for
    /// internal nodes.
    pub children: [i32; 8],
    /// Body indices held by this node; non-empty only for leaves.
    pub bodies: Vec<usize>,
    /// `true` for leaves.
    pub is_leaf: bool,
    /// Depth of the node (root = 0).
    pub depth: usize,
}

impl Node {
    fn new_leaf(center: Vec3, half: f64, depth: usize) -> Self {
        Node {
            center,
            half,
            mass: 0.0,
            cofm: Vec3::ZERO,
            cost: 0,
            nbodies: 0,
            children: [NO_CHILD; 8],
            bodies: Vec::new(),
            is_leaf: true,
            depth,
        }
    }

    /// Side length of the cell.
    pub fn side(&self) -> f64 {
        2.0 * self.half
    }

    /// Centre and half-size of the `octant`-th child cell.
    pub fn child_geometry(&self, octant: usize) -> (Vec3, f64) {
        let q = self.half / 2.0;
        let offset = Vec3::new(
            if octant & 1 != 0 { q } else { -q },
            if octant & 2 != 0 { q } else { -q },
            if octant & 4 != 0 { q } else { -q },
        );
        (self.center + offset, q)
    }
}

/// An arena-based octree over a slice of bodies.
///
/// The tree stores body *indices*; the body slice itself is owned by the
/// caller, which is what the distributed solvers need (bodies live in PGAS
/// shared memory there).
#[derive(Debug, Clone)]
pub struct Octree {
    /// All nodes; index 0 is the root.
    pub nodes: Vec<Node>,
    /// Root cell centre.
    pub center: Vec3,
    /// Root cell side length (`rsize` in SPLASH-2 and the paper).
    pub rsize: f64,
    params: TreeParams,
    /// Number of elementary insertion descents performed while building; the
    /// distributed tree-building phases use this to charge simulated work.
    pub build_ops: u64,
}

impl Octree {
    /// Builds a tree over `bodies` using the bodies' own bounding box.
    pub fn build(bodies: &[Body], params: TreeParams) -> Self {
        let (center, rsize) = root_cell(bodies);
        Self::build_in(bodies, center, rsize, params)
    }

    /// Builds a tree over `bodies` inside an explicitly supplied root cell
    /// (used when the root geometry is shared across ranks, as in the paper
    /// where `rsize` is a shared scalar computed by thread 0).
    pub fn build_in(bodies: &[Body], center: Vec3, rsize: f64, params: TreeParams) -> Self {
        let mut tree = Octree {
            nodes: vec![Node::new_leaf(center, rsize / 2.0, 0)],
            center,
            rsize,
            params,
            build_ops: 0,
        };
        for (i, b) in bodies.iter().enumerate() {
            tree.insert(bodies, i, b.pos);
        }
        tree
    }

    /// Creates an empty tree with the given root geometry.
    pub fn empty(center: Vec3, rsize: f64, params: TreeParams) -> Self {
        Octree {
            nodes: vec![Node::new_leaf(center, rsize / 2.0, 0)],
            center,
            rsize,
            params,
            build_ops: 0,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the tree holds no bodies.
    pub fn is_empty(&self) -> bool {
        self.nodes[0].nbodies == 0
    }

    /// Total number of bodies inserted.
    pub fn nbodies(&self) -> usize {
        self.nodes[0].nbodies
    }

    /// Inserts body `index` (taken from `bodies`) at position `pos`.
    ///
    /// `pos` is passed explicitly so the caller can insert with positions
    /// held elsewhere (e.g. a PGAS copy); it must match `bodies[index].pos`
    /// whenever `compute_mass` will be called with the same slice.
    pub fn insert(&mut self, bodies: &[Body], index: usize, pos: Vec3) {
        let mut node = 0usize;
        loop {
            self.build_ops += 1;
            self.nodes[node].nbodies += 1;
            if self.nodes[node].is_leaf {
                let can_hold = self.nodes[node].bodies.len() < self.params.leaf_capacity
                    || self.nodes[node].depth >= self.params.max_depth;
                if can_hold {
                    self.nodes[node].bodies.push(index);
                    return;
                }
                self.split_leaf(bodies, node);
                // fall through: the node is now internal.
            }
            let octant = pos.octant_of(self.nodes[node].center);
            let child = self.nodes[node].children[octant];
            if child == NO_CHILD {
                let (ccenter, chalf) = self.nodes[node].child_geometry(octant);
                let cdepth = self.nodes[node].depth + 1;
                let new_index = self.nodes.len() as i32;
                self.nodes.push(Node::new_leaf(ccenter, chalf, cdepth));
                self.nodes[node].children[octant] = new_index;
                node = new_index as usize;
            } else {
                node = child as usize;
            }
        }
    }

    /// Splits a full leaf, pushing its bodies one level down.
    fn split_leaf(&mut self, bodies: &[Body], node: usize) {
        let existing = std::mem::take(&mut self.nodes[node].bodies);
        let saved_nbodies = self.nodes[node].nbodies;
        self.nodes[node].is_leaf = false;
        // Re-insert existing bodies below this node without re-counting them
        // at this node.
        for idx in existing {
            self.build_ops += 1;
            let pos = bodies[idx].pos;
            let mut cur = node;
            loop {
                if cur != node {
                    self.nodes[cur].nbodies += 1;
                }
                if self.nodes[cur].is_leaf {
                    let can_hold = self.nodes[cur].bodies.len() < self.params.leaf_capacity
                        || self.nodes[cur].depth >= self.params.max_depth;
                    if can_hold {
                        self.nodes[cur].bodies.push(idx);
                        break;
                    }
                    self.split_leaf(bodies, cur);
                }
                let octant = pos.octant_of(self.nodes[cur].center);
                let child = self.nodes[cur].children[octant];
                if child == NO_CHILD {
                    let (ccenter, chalf) = self.nodes[cur].child_geometry(octant);
                    let cdepth = self.nodes[cur].depth + 1;
                    let new_index = self.nodes.len() as i32;
                    self.nodes.push(Node::new_leaf(ccenter, chalf, cdepth));
                    self.nodes[cur].children[octant] = new_index;
                    cur = new_index as usize;
                } else {
                    cur = child as usize;
                }
            }
        }
        self.nodes[node].nbodies = saved_nbodies;
    }

    /// Bottom-up centre-of-mass / mass / cost computation.
    ///
    /// Returns the number of node visits (used by the distributed variants to
    /// charge simulated work for the "C-of-m Comp." phase).
    pub fn compute_mass(&mut self, bodies: &[Body]) -> u64 {
        let mut visits = 0u64;
        self.compute_mass_rec(0, bodies, &mut visits);
        visits
    }

    fn compute_mass_rec(&mut self, node: usize, bodies: &[Body], visits: &mut u64) {
        *visits += 1;
        if self.nodes[node].is_leaf {
            let mut mass = 0.0;
            let mut moment = Vec3::ZERO;
            let mut cost = 0u64;
            for &i in &self.nodes[node].bodies {
                mass += bodies[i].mass;
                moment += bodies[i].pos * bodies[i].mass;
                cost += bodies[i].cost.max(1) as u64;
            }
            self.nodes[node].mass = mass;
            self.nodes[node].cofm =
                if mass > 0.0 { moment / mass } else { self.nodes[node].center };
            self.nodes[node].cost = cost;
            return;
        }
        let mut mass = 0.0;
        let mut moment = Vec3::ZERO;
        let mut cost = 0u64;
        for octant in 0..8 {
            let child = self.nodes[node].children[octant];
            if child != NO_CHILD {
                self.compute_mass_rec(child as usize, bodies, visits);
                let c = &self.nodes[child as usize];
                mass += c.mass;
                moment += c.cofm * c.mass;
                cost += c.cost;
            }
        }
        self.nodes[node].mass = mass;
        self.nodes[node].cofm = if mass > 0.0 { moment / mass } else { self.nodes[node].center };
        self.nodes[node].cost = cost;
    }

    /// Iterates over the body indices stored in leaves, in depth-first
    /// (Morton-like) order.
    pub fn bodies_depth_first(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.nbodies());
        let mut stack = vec![0usize];
        // Depth-first, visiting children in octant order; using an explicit
        // stack visits them in reverse push order, so push octants reversed.
        while let Some(node) = stack.pop() {
            let n = &self.nodes[node];
            if n.is_leaf {
                out.extend_from_slice(&n.bodies);
            } else {
                for octant in (0..8).rev() {
                    let child = n.children[octant];
                    if child != NO_CHILD {
                        stack.push(child as usize);
                    }
                }
            }
        }
        out
    }

    /// Checks the structural invariants of the tree; used by tests and the
    /// property suite.  Returns an error string describing the first
    /// violation found.
    pub fn check_invariants(&self, bodies: &[Body]) -> Result<(), String> {
        let mut seen = vec![false; bodies.len()];
        let mut count = 0usize;
        for (i, n) in self.nodes.iter().enumerate() {
            if n.is_leaf {
                for &b in &n.bodies {
                    if seen[b] {
                        return Err(format!("body {b} appears in more than one leaf"));
                    }
                    seen[b] = true;
                    count += 1;
                    let d = bodies[b].pos - n.center;
                    if d.max_abs_component() > n.half * (1.0 + 1e-9) {
                        return Err(format!("body {b} outside its leaf {i}"));
                    }
                }
            } else {
                if !n.bodies.is_empty() {
                    return Err(format!("internal node {i} holds bodies"));
                }
                let child_count: usize = n
                    .children
                    .iter()
                    .filter(|&&c| c != NO_CHILD)
                    .map(|&c| self.nodes[c as usize].nbodies)
                    .sum();
                if child_count != n.nbodies {
                    return Err(format!(
                        "node {i} claims {} bodies but its children hold {child_count}",
                        n.nbodies
                    ));
                }
            }
        }
        if count != self.nbodies() {
            return Err(format!("leaves hold {count} bodies, root claims {}", self.nbodies()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody::plummer::{generate, PlummerConfig};

    fn plummer(n: usize) -> Vec<Body> {
        generate(&PlummerConfig::new(n, 12345))
    }

    #[test]
    fn single_body_tree() {
        let bodies = vec![Body::at_rest(0, Vec3::new(0.1, 0.2, 0.3), 2.0)];
        let mut t = Octree::build(&bodies, TreeParams::default());
        assert_eq!(t.nbodies(), 1);
        t.compute_mass(&bodies);
        assert_eq!(t.nodes[0].mass, 2.0);
        assert_eq!(t.nodes[0].cofm, bodies[0].pos);
        t.check_invariants(&bodies).unwrap();
    }

    #[test]
    fn empty_tree() {
        let t = Octree::build(&[], TreeParams::default());
        assert!(t.is_empty());
        assert_eq!(t.nbodies(), 0);
    }

    #[test]
    fn invariants_hold_for_plummer() {
        let bodies = plummer(500);
        let mut t = Octree::build(&bodies, TreeParams::default());
        t.compute_mass(&bodies);
        t.check_invariants(&bodies).unwrap();
        assert_eq!(t.nbodies(), 500);
    }

    #[test]
    fn mass_is_conserved() {
        let bodies = plummer(300);
        let mut t = Octree::build(&bodies, TreeParams::default());
        t.compute_mass(&bodies);
        let total: f64 = bodies.iter().map(|b| b.mass).sum();
        assert!((t.nodes[0].mass - total).abs() < 1e-12);
        let com = nbody::body::center_of_mass(&bodies);
        assert!((t.nodes[0].cofm - com).norm() < 1e-9);
    }

    #[test]
    fn cost_aggregates_body_costs() {
        let mut bodies = plummer(64);
        for (i, b) in bodies.iter_mut().enumerate() {
            b.cost = (i % 5 + 1) as u32;
        }
        let mut t = Octree::build(&bodies, TreeParams::default());
        t.compute_mass(&bodies);
        let expected: u64 = bodies.iter().map(|b| b.cost as u64).sum();
        assert_eq!(t.nodes[0].cost, expected);
    }

    #[test]
    fn coincident_bodies_hit_depth_limit_not_stack_overflow() {
        let bodies: Vec<Body> =
            (0..4).map(|i| Body::at_rest(i, Vec3::new(0.25, 0.25, 0.25), 1.0)).collect();
        let params = TreeParams { leaf_capacity: 1, max_depth: 8 };
        let mut t = Octree::build(&bodies, params);
        t.compute_mass(&bodies);
        t.check_invariants(&bodies).unwrap();
        assert_eq!(t.nbodies(), 4);
    }

    #[test]
    fn leaf_capacity_respected() {
        let bodies = plummer(200);
        let t = Octree::build(&bodies, TreeParams { leaf_capacity: 8, max_depth: 64 });
        for n in &t.nodes {
            if n.is_leaf && n.depth < 64 {
                assert!(n.bodies.len() <= 8);
            }
        }
        t.check_invariants(&bodies).unwrap();
    }

    #[test]
    fn depth_first_order_is_a_permutation() {
        let bodies = plummer(128);
        let t = Octree::build(&bodies, TreeParams::default());
        let order = t.bodies_depth_first();
        assert_eq!(order.len(), 128);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..128).collect::<Vec<_>>());
    }

    #[test]
    fn child_geometry_covers_parent() {
        let n = Node::new_leaf(Vec3::ZERO, 2.0, 0);
        for octant in 0..8 {
            let (c, h) = n.child_geometry(octant);
            assert_eq!(h, 1.0);
            assert!(c.max_abs_component() <= 2.0);
            // The child's centre must be inside the parent.
            assert!((c - n.center).max_abs_component() <= n.half);
        }
        assert_eq!(n.side(), 4.0);
    }

    #[test]
    fn build_in_respects_given_root() {
        let bodies = plummer(50);
        let t = Octree::build_in(&bodies, Vec3::ZERO, 64.0, TreeParams::default());
        assert_eq!(t.rsize, 64.0);
        assert_eq!(t.nodes[0].half, 32.0);
        t.check_invariants(&bodies).unwrap();
    }

    #[test]
    fn build_ops_counted() {
        let bodies = plummer(100);
        let t = Octree::build(&bodies, TreeParams::default());
        assert!(t.build_ops >= 100, "at least one descent step per body");
    }
}
