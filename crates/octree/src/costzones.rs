//! Cost-based space partitioning (the SPLASH-2 "costzones" scheme).
//!
//! SPLASH-2 assigns bodies to processors by walking the octree in a fixed
//! (Morton-like) traversal order and cutting the sequence of leaves into
//! contiguous *zones* of approximately equal accumulated cost, where the cost
//! of a body is the number of interactions it needed in the previous step.
//! Because the traversal order is spatial, each zone is spatially compact,
//! which is what gives the force phase its locality (and what makes the §5.3
//! caching so effective).
//!
//! This module implements the same idea over Morton-sorted bodies: the
//! partition of `n` bodies into `p` zones such that each zone is a contiguous
//! run in Morton order with cost as close as possible to `total_cost / p`.

use nbody::body::Body;
use nbody::morton::sort_indices_by_morton;
use nbody::vec3::Vec3;

/// A partition of bodies into per-rank zones.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    /// `zones[r]` lists the body indices assigned to rank `r`, in Morton
    /// order.
    pub zones: Vec<Vec<usize>>,
}

impl Partition {
    /// Number of zones (ranks).
    pub fn len(&self) -> usize {
        self.zones.len()
    }

    /// `true` when there are no zones.
    pub fn is_empty(&self) -> bool {
        self.zones.is_empty()
    }

    /// Total number of bodies across all zones.
    pub fn total_bodies(&self) -> usize {
        self.zones.iter().map(|z| z.len()).sum()
    }

    /// The zone index owning `body`, or `None` if the body is unassigned
    /// (which would violate the partition invariant).
    pub fn owner_of(&self, body: usize) -> Option<usize> {
        self.zones.iter().position(|z| z.contains(&body))
    }

    /// The cost of each zone given the bodies' costs.
    pub fn zone_costs(&self, bodies: &[Body]) -> Vec<u64> {
        self.zones.iter().map(|z| z.iter().map(|&i| bodies[i].cost.max(1) as u64).sum()).collect()
    }

    /// Maximum zone cost divided by the ideal (average) zone cost; 1.0 is a
    /// perfect balance.
    pub fn imbalance(&self, bodies: &[Body]) -> f64 {
        let costs = self.zone_costs(bodies);
        let total: u64 = costs.iter().sum();
        if total == 0 || costs.is_empty() {
            return 1.0;
        }
        let ideal = total as f64 / costs.len() as f64;
        costs.iter().copied().max().unwrap_or(0) as f64 / ideal
    }
}

/// Partitions `bodies` into `parts` equal-cost zones along the Morton order
/// defined by the root cell (`center`, `rsize`).
///
/// Every body is assigned to exactly one zone; zones are contiguous in
/// Morton order.  Greedy prefix cutting is used: a zone is closed once its
/// accumulated cost reaches the remaining-average target, which bounds the
/// imbalance by the largest single body cost.
pub fn partition_by_cost(bodies: &[Body], center: Vec3, rsize: f64, parts: usize) -> Partition {
    assert!(parts > 0, "cannot partition into zero zones");
    let positions: Vec<Vec3> = bodies.iter().map(|b| b.pos).collect();
    let order = sort_indices_by_morton(&positions, center, rsize);

    let costs: Vec<u64> = bodies.iter().map(|b| b.cost.max(1) as u64).collect();
    let total: u64 = costs.iter().sum();

    let mut zones: Vec<Vec<usize>> = vec![Vec::new(); parts];
    let mut remaining_cost = total as f64;
    let mut zone = 0usize;
    let mut zone_cost = 0u64;
    for (seq, &bi) in order.iter().enumerate() {
        let remaining_zones = (parts - zone) as f64;
        let target = remaining_cost / remaining_zones;
        // Close the current zone once it has met its cost target, or early
        // when only as many bodies remain as there are zones left (so that a
        // partition of n <= parts bodies gives every body its own zone).
        let bodies_left = order.len() - seq;
        let must_spread = bodies_left <= parts - (zone + 1);
        if zone + 1 < parts && zone_cost > 0 && (zone_cost as f64 >= target || must_spread) {
            remaining_cost -= zone_cost as f64;
            zone += 1;
            zone_cost = 0;
        }
        zones[zone].push(bi);
        zone_cost += costs[bi];
    }
    Partition { zones }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody::body::root_cell;
    use nbody::plummer::{generate, PlummerConfig};

    fn plummer_with_costs(n: usize) -> Vec<Body> {
        let mut bodies = generate(&PlummerConfig::new(n, 77));
        // Give the inner bodies higher costs, as a real force phase would.
        for b in &mut bodies {
            let r = b.pos.norm();
            b.cost = (1.0 + 50.0 / (0.1 + r)) as u32;
        }
        bodies
    }

    #[test]
    fn partition_covers_all_bodies_exactly_once() {
        let bodies = plummer_with_costs(500);
        let (center, rsize) = root_cell(&bodies);
        let p = partition_by_cost(&bodies, center, rsize, 7);
        assert_eq!(p.len(), 7);
        assert_eq!(p.total_bodies(), 500);
        let mut seen = vec![false; 500];
        for zone in &p.zones {
            for &i in zone {
                assert!(!seen[i], "body {i} assigned twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn zones_are_reasonably_balanced() {
        let bodies = plummer_with_costs(2000);
        let (center, rsize) = root_cell(&bodies);
        for parts in [2, 4, 8, 16] {
            let p = partition_by_cost(&bodies, center, rsize, parts);
            let imbalance = p.imbalance(&bodies);
            assert!(imbalance < 1.5, "imbalance {imbalance} too high for {parts} zones");
            assert!(p.zones.iter().all(|z| !z.is_empty()), "no zone may be empty");
        }
    }

    #[test]
    fn single_zone_gets_everything() {
        let bodies = plummer_with_costs(100);
        let (center, rsize) = root_cell(&bodies);
        let p = partition_by_cost(&bodies, center, rsize, 1);
        assert_eq!(p.zones[0].len(), 100);
        assert!((p.imbalance(&bodies) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn more_zones_than_bodies() {
        let bodies = plummer_with_costs(3);
        let (center, rsize) = root_cell(&bodies);
        let p = partition_by_cost(&bodies, center, rsize, 8);
        assert_eq!(p.total_bodies(), 3);
        // Exactly three non-empty zones.
        assert_eq!(p.zones.iter().filter(|z| !z.is_empty()).count(), 3);
    }

    #[test]
    fn zones_are_spatially_compact() {
        // The average intra-zone pairwise distance should be clearly smaller
        // than the global average pairwise distance.
        let bodies = plummer_with_costs(400);
        let (center, rsize) = root_cell(&bodies);
        let p = partition_by_cost(&bodies, center, rsize, 8);

        let mean_dist = |idx: &[usize]| {
            let mut total = 0.0;
            let mut count = 0usize;
            for (a, &i) in idx.iter().enumerate() {
                for &j in idx.iter().skip(a + 1) {
                    total += bodies[i].pos.dist(bodies[j].pos);
                    count += 1;
                }
            }
            if count == 0 {
                0.0
            } else {
                total / count as f64
            }
        };
        let all: Vec<usize> = (0..bodies.len()).collect();
        let global = mean_dist(&all);
        let zonal: f64 = p.zones.iter().map(|z| mean_dist(z)).sum::<f64>() / p.zones.len() as f64;
        assert!(zonal < 0.8 * global, "zones should be compact: zonal {zonal} vs global {global}");
    }

    #[test]
    fn owner_lookup() {
        let bodies = plummer_with_costs(50);
        let (center, rsize) = root_cell(&bodies);
        let p = partition_by_cost(&bodies, center, rsize, 4);
        for i in 0..50 {
            assert!(p.owner_of(i).is_some());
        }
    }
}
