//! Warren–Salmon hashed oct-tree.
//!
//! The paper's related-work section (§8) points at Warren and Salmon's
//! parallel hashed oct-tree ("A parallel hashed oct-tree N-body algorithm",
//! SC 1993) as an alternative organisation of the Barnes-Hut data structure:
//! instead of a pointer-linked tree, every cell is identified by a *key* that
//! encodes its path from the root, and cells live in a hash table keyed by
//! that value.  The key scheme makes parents, children and neighbours
//! computable arithmetically, which is what lets the original work distribute
//! the tree by hashing keys to processors, and it is the natural companion of
//! the Morton-ordered body partitioning already used by [`crate::costzones`].
//!
//! The paper speculates ("It is interesting to speculate whether such
//! data-dependent storage order and dynamic partitions could be accommodated
//! by extending PGAS shared array distributions") but does not evaluate this
//! design; this module provides it as a comparison substrate so the bench
//! suite can quantify the pointer-tree vs hashed-tree trade-off on identical
//! workloads.
//!
//! ## Key scheme
//!
//! The root cell has key `1`.  The child in octant `o ∈ 0..8` of the cell
//! with key `k` has key `(k << 3) | o`.  The leading 1 bit acts as a
//! sentinel, so the depth of a cell is recoverable from its key and keys of
//! different depths never collide.  With 64-bit keys the tree can be 21
//! levels deep, the same resolution as [`nbody::morton`].

use crate::tree::TreeParams;
use crate::walk::cell_is_far;
use nbody::body::{root_cell, Body};
use nbody::direct::pairwise_acceleration;
use nbody::vec3::Vec3;
use std::collections::HashMap;

/// The key of the root cell.
pub const ROOT_KEY: u64 = 1;

/// Maximum depth representable by a 64-bit Warren–Salmon key
/// (the leading sentinel bit leaves 63 bits = 21 octant triplets).
pub const MAX_KEY_DEPTH: usize = 21;

/// Returns the key of the `octant`-th child of `key`.
#[inline]
pub fn child_key(key: u64, octant: usize) -> u64 {
    debug_assert!(octant < 8);
    (key << 3) | octant as u64
}

/// Returns the key of the parent of `key`, or `None` for the root.
#[inline]
pub fn parent_key(key: u64) -> Option<u64> {
    if key <= ROOT_KEY {
        None
    } else {
        Some(key >> 3)
    }
}

/// Returns the octant of `key` within its parent.
#[inline]
pub fn octant_of_key(key: u64) -> usize {
    (key & 0b111) as usize
}

/// Depth of the cell identified by `key` (root = 0).
#[inline]
pub fn key_depth(key: u64) -> usize {
    debug_assert!(key >= ROOT_KEY);
    ((63 - key.leading_zeros()) / 3) as usize
}

/// A cell of the hashed oct-tree.
#[derive(Debug, Clone)]
pub struct HashedCell {
    /// Warren–Salmon key of the cell.
    pub key: u64,
    /// Geometric centre.
    pub center: Vec3,
    /// Half of the side length.
    pub half: f64,
    /// Total mass below the cell (after [`HashedOctree::compute_mass`]).
    pub mass: f64,
    /// Centre of mass below the cell (after [`HashedOctree::compute_mass`]).
    pub cofm: Vec3,
    /// Accumulated interaction cost of the bodies below the cell.
    pub cost: u64,
    /// Number of bodies below the cell.
    pub nbodies: usize,
    /// Bitmask of existing children (bit `o` set when child `o` exists).
    pub child_mask: u8,
    /// Body indices held directly by this cell (non-empty only for leaves).
    pub bodies: Vec<usize>,
    /// `true` for leaves.
    pub is_leaf: bool,
}

impl HashedCell {
    fn new_leaf(key: u64, center: Vec3, half: f64) -> Self {
        HashedCell {
            key,
            center,
            half,
            mass: 0.0,
            cofm: Vec3::ZERO,
            cost: 0,
            nbodies: 0,
            child_mask: 0,
            bodies: Vec::new(),
            is_leaf: true,
        }
    }

    /// Side length of the cell.
    #[inline]
    pub fn side(&self) -> f64 {
        2.0 * self.half
    }

    /// Centre and half-size of the `octant`-th child.
    #[inline]
    pub fn child_geometry(&self, octant: usize) -> (Vec3, f64) {
        let q = self.half / 2.0;
        let offset = Vec3::new(
            if octant & 1 != 0 { q } else { -q },
            if octant & 2 != 0 { q } else { -q },
            if octant & 4 != 0 { q } else { -q },
        );
        (self.center + offset, q)
    }

    /// `true` when the `octant`-th child exists.
    #[inline]
    pub fn has_child(&self, octant: usize) -> bool {
        self.child_mask & (1 << octant) != 0
    }
}

/// A Barnes-Hut oct-tree stored as a hash table of Warren–Salmon keys.
///
/// Geometry (cubic cells, power-of-two root, one body per leaf up to a depth
/// limit) is identical to [`crate::tree::Octree`]; the two structures built
/// over the same bodies contain the same cells and yield identical forces,
/// which is asserted by the test and property suites.
#[derive(Debug, Clone)]
pub struct HashedOctree {
    cells: HashMap<u64, HashedCell>,
    /// Root cell centre.
    pub center: Vec3,
    /// Root cell side length.
    pub rsize: f64,
    params: TreeParams,
    /// Number of elementary insertion descents performed while building.
    pub build_ops: u64,
}

impl HashedOctree {
    /// Builds a hashed tree over `bodies` using the bodies' own bounding box.
    pub fn build(bodies: &[Body], params: TreeParams) -> Self {
        let (center, rsize) = root_cell(bodies);
        Self::build_in(bodies, center, rsize, params)
    }

    /// Builds a hashed tree inside an explicitly supplied root cell.
    pub fn build_in(bodies: &[Body], center: Vec3, rsize: f64, params: TreeParams) -> Self {
        let max_depth = params.max_depth.min(MAX_KEY_DEPTH);
        let params = TreeParams { max_depth, ..params };
        let mut tree = HashedOctree { cells: HashMap::new(), center, rsize, params, build_ops: 0 };
        tree.cells.insert(ROOT_KEY, HashedCell::new_leaf(ROOT_KEY, center, rsize / 2.0));
        for (i, b) in bodies.iter().enumerate() {
            tree.insert(bodies, i, b.pos);
        }
        tree
    }

    /// Creates an empty hashed tree with the given root geometry.
    pub fn empty(center: Vec3, rsize: f64, params: TreeParams) -> Self {
        let mut cells = HashMap::new();
        cells.insert(ROOT_KEY, HashedCell::new_leaf(ROOT_KEY, center, rsize / 2.0));
        HashedOctree { cells, center, rsize, params, build_ops: 0 }
    }

    /// Number of cells in the tree.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` when the tree holds no bodies.
    pub fn is_empty(&self) -> bool {
        self.root().nbodies == 0
    }

    /// Total number of bodies inserted.
    pub fn nbodies(&self) -> usize {
        self.root().nbodies
    }

    /// The root cell.
    pub fn root(&self) -> &HashedCell {
        &self.cells[&ROOT_KEY]
    }

    /// Looks up a cell by key.
    pub fn cell(&self, key: u64) -> Option<&HashedCell> {
        self.cells.get(&key)
    }

    /// Iterates over every cell in an unspecified order.
    pub fn cells(&self) -> impl Iterator<Item = &HashedCell> {
        self.cells.values()
    }

    /// Inserts body `index` at position `pos`.
    ///
    /// As with [`crate::tree::Octree::insert`], the position is passed
    /// explicitly so the caller can insert with positions held elsewhere; it
    /// must match `bodies[index].pos` whenever `compute_mass` is later called
    /// with the same slice.
    pub fn insert(&mut self, bodies: &[Body], index: usize, pos: Vec3) {
        let mut key = ROOT_KEY;
        loop {
            self.build_ops += 1;
            let (is_leaf, can_hold, center) = {
                let cell = self.cells.get_mut(&key).expect("descent key must exist");
                cell.nbodies += 1;
                let can_hold = cell.bodies.len() < self.params.leaf_capacity
                    || key_depth(key) >= self.params.max_depth;
                (cell.is_leaf, can_hold, cell.center)
            };
            if is_leaf {
                if can_hold {
                    self.cells.get_mut(&key).unwrap().bodies.push(index);
                    return;
                }
                self.split_leaf(bodies, key);
            }
            let octant = pos.octant_of(center);
            key = self.ensure_child(key, octant);
        }
    }

    /// Ensures the `octant`-th child of `key` exists and returns its key.
    fn ensure_child(&mut self, key: u64, octant: usize) -> u64 {
        let ck = child_key(key, octant);
        if !self.cells.contains_key(&ck) {
            let (ccenter, chalf) = self.cells[&key].child_geometry(octant);
            self.cells.insert(ck, HashedCell::new_leaf(ck, ccenter, chalf));
            self.cells.get_mut(&key).unwrap().child_mask |= 1 << octant;
        }
        ck
    }

    /// Splits a full leaf, pushing its bodies one level down.
    fn split_leaf(&mut self, bodies: &[Body], key: u64) {
        let existing = {
            let cell = self.cells.get_mut(&key).expect("split key must exist");
            cell.is_leaf = false;
            std::mem::take(&mut cell.bodies)
        };
        for idx in existing {
            self.build_ops += 1;
            let pos = bodies[idx].pos;
            let mut cur = key;
            loop {
                if cur != key {
                    self.cells.get_mut(&cur).unwrap().nbodies += 1;
                }
                let (is_leaf, can_hold, center) = {
                    let cell = &self.cells[&cur];
                    let can_hold = cell.bodies.len() < self.params.leaf_capacity
                        || key_depth(cur) >= self.params.max_depth;
                    (cell.is_leaf, can_hold, cell.center)
                };
                if is_leaf {
                    if can_hold {
                        self.cells.get_mut(&cur).unwrap().bodies.push(idx);
                        break;
                    }
                    self.split_leaf(bodies, cur);
                }
                let octant = pos.octant_of(center);
                cur = self.ensure_child(cur, octant);
            }
        }
    }

    /// Bottom-up centre-of-mass / mass / cost computation.
    ///
    /// Returns the number of cell visits.
    pub fn compute_mass(&mut self, bodies: &[Body]) -> u64 {
        // Process cells from the deepest level upward; sorting keys in
        // descending numeric order visits children before parents because a
        // child key is always numerically larger than its parent's.
        let mut keys: Vec<u64> = self.cells.keys().copied().collect();
        keys.sort_unstable_by(|a, b| b.cmp(a));
        let mut visits = 0u64;
        for key in keys {
            visits += 1;
            let cell = &self.cells[&key];
            let (mass, moment, cost) = if cell.is_leaf {
                let mut mass = 0.0;
                let mut moment = Vec3::ZERO;
                let mut cost = 0u64;
                for &i in &cell.bodies {
                    mass += bodies[i].mass;
                    moment += bodies[i].pos * bodies[i].mass;
                    cost += bodies[i].cost.max(1) as u64;
                }
                (mass, moment, cost)
            } else {
                let mut mass = 0.0;
                let mut moment = Vec3::ZERO;
                let mut cost = 0u64;
                for octant in 0..8 {
                    if cell.has_child(octant) {
                        let c = &self.cells[&child_key(key, octant)];
                        mass += c.mass;
                        moment += c.cofm * c.mass;
                        cost += c.cost;
                    }
                }
                (mass, moment, cost)
            };
            let cell = self.cells.get_mut(&key).unwrap();
            cell.mass = mass;
            cell.cofm = if mass > 0.0 { moment / mass } else { cell.center };
            cell.cost = cost;
        }
        visits
    }

    /// Computes the acceleration exerted on `target` by the bodies in the
    /// tree, using the same `l/d < θ` acceptance test and softened kernel as
    /// [`crate::walk::accel_on`].
    pub fn accel_on(
        &self,
        bodies: &[Body],
        target: Vec3,
        exclude_id: Option<u32>,
        theta: f64,
        eps: f64,
    ) -> crate::walk::WalkResult {
        let mut result = crate::walk::WalkResult {
            acc: Vec3::ZERO,
            phi: 0.0,
            interactions: 0,
            nodes_visited: 0,
            macs: 0,
        };
        if self.is_empty() {
            return result;
        }
        self.walk_cell(ROOT_KEY, bodies, target, exclude_id, theta, eps, &mut result);
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn walk_cell(
        &self,
        key: u64,
        bodies: &[Body],
        target: Vec3,
        exclude_id: Option<u32>,
        theta: f64,
        eps: f64,
        result: &mut crate::walk::WalkResult,
    ) {
        let cell = &self.cells[&key];
        result.nodes_visited += 1;
        if cell.nbodies == 0 {
            return;
        }
        let dist_sq = target.dist_sq(cell.cofm);
        if cell.is_leaf {
            for &bi in &cell.bodies {
                let b = &bodies[bi];
                if Some(b.id) == exclude_id {
                    continue;
                }
                let (a, p) = pairwise_acceleration(target, b.pos, b.mass, eps);
                result.acc += a;
                result.phi += p;
                result.interactions += 1;
            }
            return;
        }
        result.macs += 1;
        if cell_is_far(cell.side(), dist_sq, theta) {
            let (a, p) = pairwise_acceleration(target, cell.cofm, cell.mass, eps);
            result.acc += a;
            result.phi += p;
            result.interactions += 1;
            return;
        }
        for octant in 0..8 {
            if cell.has_child(octant) {
                self.walk_cell(
                    child_key(key, octant),
                    bodies,
                    target,
                    exclude_id,
                    theta,
                    eps,
                    result,
                );
            }
        }
    }

    /// Computes forces on every body, returning updated copies
    /// (acc/phi/cost filled in) — the hashed-tree counterpart of
    /// [`crate::walk::compute_forces`].
    pub fn compute_forces(bodies: &[Body], theta: f64, eps: f64) -> Vec<Body> {
        let mut tree = HashedOctree::build(bodies, TreeParams::default());
        tree.compute_mass(bodies);
        let mut out = bodies.to_vec();
        for b in &mut out {
            let r = tree.accel_on(bodies, b.pos, Some(b.id), theta, eps);
            b.acc = r.acc;
            b.phi = r.phi;
            b.cost = r.interactions.max(1);
        }
        out
    }

    /// Checks the structural invariants of the hashed tree; returns an error
    /// string describing the first violation found.
    pub fn check_invariants(&self, bodies: &[Body]) -> Result<(), String> {
        let mut seen = vec![false; bodies.len()];
        let mut count = 0usize;
        for (&key, cell) in &self.cells {
            if cell.key != key {
                return Err(format!("cell stored under key {key:#x} claims key {:#x}", cell.key));
            }
            if let Some(parent) = parent_key(key) {
                let Some(p) = self.cells.get(&parent) else {
                    return Err(format!("cell {key:#x} has no parent in the table"));
                };
                if !p.has_child(octant_of_key(key)) {
                    return Err(format!("parent of {key:#x} does not list it as a child"));
                }
                // Geometry must match the parent's child_geometry rule.
                let (expect_center, expect_half) = p.child_geometry(octant_of_key(key));
                if (expect_center - cell.center).max_abs_component() > 1e-9
                    || (expect_half - cell.half).abs() > 1e-9
                {
                    return Err(format!("cell {key:#x} geometry disagrees with its parent"));
                }
            }
            if cell.is_leaf {
                if cell.child_mask != 0 {
                    return Err(format!("leaf {key:#x} has children"));
                }
                for &b in &cell.bodies {
                    if seen[b] {
                        return Err(format!("body {b} appears in more than one leaf"));
                    }
                    seen[b] = true;
                    count += 1;
                    let d = bodies[b].pos - cell.center;
                    if d.max_abs_component() > cell.half * (1.0 + 1e-9) {
                        return Err(format!("body {b} outside its leaf {key:#x}"));
                    }
                }
            } else {
                if !cell.bodies.is_empty() {
                    return Err(format!("internal cell {key:#x} holds bodies"));
                }
                let child_count: usize = (0..8)
                    .filter(|&o| cell.has_child(o))
                    .map(|o| self.cells[&child_key(key, o)].nbodies)
                    .sum();
                if child_count != cell.nbodies {
                    return Err(format!(
                        "cell {key:#x} claims {} bodies but its children hold {child_count}",
                        cell.nbodies
                    ));
                }
            }
        }
        if count != self.nbodies() {
            return Err(format!("leaves hold {count} bodies, root claims {}", self.nbodies()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Octree;
    use crate::walk;
    use nbody::plummer::{generate, PlummerConfig};
    use nbody::{DEFAULT_EPS, DEFAULT_THETA};

    fn plummer(n: usize) -> Vec<Body> {
        generate(&PlummerConfig::new(n, 4242))
    }

    #[test]
    fn key_navigation() {
        assert_eq!(key_depth(ROOT_KEY), 0);
        let c3 = child_key(ROOT_KEY, 3);
        assert_eq!(c3, 0b1_011);
        assert_eq!(key_depth(c3), 1);
        assert_eq!(octant_of_key(c3), 3);
        assert_eq!(parent_key(c3), Some(ROOT_KEY));
        assert_eq!(parent_key(ROOT_KEY), None);
        let deep = child_key(child_key(c3, 7), 0);
        assert_eq!(key_depth(deep), 3);
        assert_eq!(parent_key(deep), Some(child_key(c3, 7)));
    }

    #[test]
    fn keys_unique_across_depths() {
        // Octant-0 children never collide with their ancestors thanks to the
        // sentinel bit.
        let mut k = ROOT_KEY;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..MAX_KEY_DEPTH {
            assert!(seen.insert(k));
            k = child_key(k, 0);
        }
    }

    #[test]
    fn single_body() {
        let bodies = vec![Body::at_rest(0, Vec3::new(0.1, -0.2, 0.3), 2.0)];
        let mut t = HashedOctree::build(&bodies, TreeParams::default());
        assert_eq!(t.nbodies(), 1);
        t.compute_mass(&bodies);
        assert_eq!(t.root().mass, 2.0);
        assert_eq!(t.root().cofm, bodies[0].pos);
        t.check_invariants(&bodies).unwrap();
    }

    #[test]
    fn empty_tree() {
        let t = HashedOctree::build(&[], TreeParams::default());
        assert!(t.is_empty());
        assert_eq!(t.len(), 1);
        let r = t.accel_on(&[], Vec3::ZERO, None, 1.0, 0.05);
        assert_eq!(r.acc, Vec3::ZERO);
    }

    #[test]
    fn invariants_and_mass_conservation() {
        let bodies = plummer(600);
        let mut t = HashedOctree::build(&bodies, TreeParams::default());
        t.compute_mass(&bodies);
        t.check_invariants(&bodies).unwrap();
        assert_eq!(t.nbodies(), 600);
        let total: f64 = bodies.iter().map(|b| b.mass).sum();
        assert!((t.root().mass - total).abs() < 1e-12);
    }

    #[test]
    fn same_structure_as_pointer_tree() {
        let bodies = plummer(400);
        let params = TreeParams::default();
        let mut hashed = HashedOctree::build(&bodies, params);
        hashed.compute_mass(&bodies);
        let mut pointer = Octree::build(&bodies, params);
        pointer.compute_mass(&bodies);
        // Same root geometry, same number of cells, same total mass.
        assert_eq!(hashed.rsize, pointer.rsize);
        assert_eq!(hashed.center, pointer.center);
        assert_eq!(hashed.len(), pointer.len());
        assert!((hashed.root().mass - pointer.nodes[0].mass).abs() < 1e-12);
        assert!((hashed.root().cofm - pointer.nodes[0].cofm).norm() < 1e-12);
    }

    #[test]
    fn forces_match_pointer_tree() {
        let bodies = plummer(300);
        let from_hashed = HashedOctree::compute_forces(&bodies, DEFAULT_THETA, DEFAULT_EPS);
        let from_pointer = walk::compute_forces(&bodies, DEFAULT_THETA, DEFAULT_EPS);
        for (h, p) in from_hashed.iter().zip(&from_pointer) {
            assert!((h.acc - p.acc).norm() < 1e-10, "hashed and pointer walks must agree");
            assert!((h.phi - p.phi).abs() < 1e-10);
            assert_eq!(h.cost, p.cost, "identical structure implies identical interaction counts");
        }
    }

    #[test]
    fn theta_zero_matches_direct() {
        let bodies = plummer(150);
        let tree_forces = HashedOctree::compute_forces(&bodies, 0.0, DEFAULT_EPS);
        let direct_forces = nbody::direct::compute_forces(&bodies, DEFAULT_EPS);
        for (t, d) in tree_forces.iter().zip(&direct_forces) {
            let rel = (t.acc - d.acc).norm() / d.acc.norm().max(1e-12);
            assert!(rel < 1e-9);
        }
    }

    #[test]
    fn coincident_bodies_respect_depth_limit() {
        let bodies: Vec<Body> =
            (0..5).map(|i| Body::at_rest(i, Vec3::new(0.3, 0.3, 0.3), 1.0)).collect();
        let params = TreeParams { leaf_capacity: 1, max_depth: 6 };
        let mut t = HashedOctree::build(&bodies, params);
        t.compute_mass(&bodies);
        t.check_invariants(&bodies).unwrap();
        assert_eq!(t.nbodies(), 5);
        assert!(t.cells().all(|c| key_depth(c.key) <= 6));
    }

    #[test]
    fn depth_limit_clamped_to_key_capacity() {
        let bodies = plummer(64);
        let t = HashedOctree::build(&bodies, TreeParams { leaf_capacity: 1, max_depth: 1000 });
        assert!(t.cells().all(|c| key_depth(c.key) <= MAX_KEY_DEPTH));
        t.check_invariants(&bodies).unwrap();
    }

    #[test]
    fn leaf_capacity_respected() {
        let bodies = plummer(256);
        let t = HashedOctree::build(&bodies, TreeParams { leaf_capacity: 4, max_depth: 20 });
        for c in t.cells() {
            if c.is_leaf && key_depth(c.key) < 20 {
                assert!(c.bodies.len() <= 4);
            }
        }
        t.check_invariants(&bodies).unwrap();
    }

    #[test]
    fn cell_lookup_by_key() {
        let bodies = plummer(32);
        let t = HashedOctree::build(&bodies, TreeParams::default());
        assert!(t.cell(ROOT_KEY).is_some());
        assert!(t.cell(0xdead_beef_dead_beef).is_none());
    }
}
