//! # octree — sequential Barnes-Hut octree substrate
//!
//! The paper's distributed solvers all manipulate *some* octree: the shared
//! global tree of the baseline, per-thread local trees used as caches (§5.3),
//! per-thread local trees that are merged (§5.4), and the cost-threshold
//! subspace tree of §6.  This crate provides the sequential pieces those
//! solvers are assembled from:
//!
//! * [`tree::Octree`] — an arena-based octree over a slice of bodies, with
//!   SPLASH-2 geometry (cubic cells, power-of-two root size, one body per
//!   leaf up to a depth limit);
//! * [`tree::Octree::compute_mass`] — bottom-up centre-of-mass / total-mass
//!   computation;
//! * [`walk`] — the force-computation tree walk with the `l/d < θ` multipole
//!   acceptance criterion and Plummer softening (identical arithmetic to
//!   `nbody::direct`, so the two converge as θ → 0);
//! * [`costzones`] — the SPLASH-2-style cost-based space partitioning
//!   (Morton-ordered, equal-cost segments) used to assign bodies to threads.
//!
//! Two comparison substrates from the paper's related-work section are also
//! provided so the bench suite can quantify the design choices the paper
//! takes for granted:
//!
//! * [`hashed`] — the Warren–Salmon hashed oct-tree (keys instead of
//!   pointers), the alternative tree organisation discussed in §8;
//! * [`orb`] — orthogonal recursive bisection, the classic alternative to
//!   costzones for assigning bodies to ranks.
//!
//! The distributed variants in the `bh` crate re-express tree *construction*
//! against the PGAS emulator; they reuse this crate's geometry helpers and
//! its tree walk for correctness checks.

pub mod costzones;
pub mod hashed;
pub mod orb;
pub mod tree;
pub mod walk;

pub use costzones::{partition_by_cost, Partition};
pub use hashed::{HashedCell, HashedOctree};
pub use orb::partition_orb;
pub use tree::{Node, Octree, TreeParams};
pub use walk::{accel_on, compute_forces, WalkResult};
