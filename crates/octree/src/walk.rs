//! Force-computation tree walk with the `l/d < θ` multipole acceptance
//! criterion (Fig. 2 of the paper) and Plummer softening.

use crate::tree::{Octree, NO_CHILD};
use nbody::body::Body;
use nbody::direct::pairwise_acceleration;
use nbody::vec3::Vec3;

/// Result of walking the tree for a single target body.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkResult {
    /// Acceleration on the target.
    pub acc: Vec3,
    /// Gravitational potential at the target.
    pub phi: f64,
    /// Number of interactions evaluated (cells accepted + bodies in opened
    /// leaves); this is the per-body *cost* that drives load balancing.
    pub interactions: u32,
    /// Number of tree nodes visited (opened or accepted).
    pub nodes_visited: u32,
    /// Number of multipole-acceptance tests evaluated (one per visited
    /// non-empty internal cell).
    pub macs: u32,
}

/// Decides whether the cell (side `l`, centre of mass at distance `d` from
/// the target) may be used as a single point mass: the paper's `l/d < θ`
/// test.
#[inline]
pub fn cell_is_far(l: f64, dist_sq: f64, theta: f64) -> bool {
    // l/d < theta  <=>  l^2 < theta^2 d^2  (all quantities non-negative)
    l * l < theta * theta * dist_sq
}

/// Computes the acceleration exerted on `target` by the bodies in `tree`.
///
/// `exclude_id` skips a body id (the target itself) when a leaf is expanded
/// body-by-body.  `bodies` must be the same slice the tree was built over.
pub fn accel_on(
    tree: &Octree,
    bodies: &[Body],
    target: Vec3,
    exclude_id: Option<u32>,
    theta: f64,
    eps: f64,
) -> WalkResult {
    let mut result =
        WalkResult { acc: Vec3::ZERO, phi: 0.0, interactions: 0, nodes_visited: 0, macs: 0 };
    if tree.is_empty() {
        return result;
    }
    walk_node(tree, bodies, 0, target, exclude_id, theta, eps, &mut result);
    result
}

#[allow(clippy::too_many_arguments)]
fn walk_node(
    tree: &Octree,
    bodies: &[Body],
    node: usize,
    target: Vec3,
    exclude_id: Option<u32>,
    theta: f64,
    eps: f64,
    result: &mut WalkResult,
) {
    let n = &tree.nodes[node];
    result.nodes_visited += 1;
    if n.nbodies == 0 {
        return;
    }

    let dist_sq = target.dist_sq(n.cofm);
    if n.is_leaf {
        // Interact with each body in the leaf individually (SPLASH-2 leaves
        // hold a single body; buckets are handled the same way).
        for &bi in &n.bodies {
            let b = &bodies[bi];
            if Some(b.id) == exclude_id {
                continue;
            }
            let (a, p) = pairwise_acceleration(target, b.pos, b.mass, eps);
            result.acc += a;
            result.phi += p;
            result.interactions += 1;
        }
        return;
    }

    result.macs += 1;
    if cell_is_far(n.side(), dist_sq, theta) {
        // Far enough: use the cell's centre of mass.
        let (a, p) = pairwise_acceleration(target, n.cofm, n.mass, eps);
        result.acc += a;
        result.phi += p;
        result.interactions += 1;
        return;
    }

    // Open the cell.
    for octant in 0..8 {
        let child = n.children[octant];
        if child != NO_CHILD {
            walk_node(tree, bodies, child as usize, target, exclude_id, theta, eps, result);
        }
    }
}

/// Computes forces on every body with a Barnes-Hut walk, returning updated
/// copies (acc/phi/cost filled in).  Sequential reference used by tests,
/// examples and the single-rank paths of the distributed solvers.
pub fn compute_forces(bodies: &[Body], theta: f64, eps: f64) -> Vec<Body> {
    let mut tree = Octree::build(bodies, crate::tree::TreeParams::default());
    tree.compute_mass(bodies);
    let mut out = bodies.to_vec();
    for b in &mut out {
        let r = accel_on(&tree, bodies, b.pos, Some(b.id), theta, eps);
        b.acc = r.acc;
        b.phi = r.phi;
        b.cost = r.interactions.max(1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::TreeParams;
    use nbody::direct;
    use nbody::plummer::{generate, PlummerConfig};
    use nbody::{DEFAULT_EPS, DEFAULT_THETA};

    fn relative_error(a: Vec3, b: Vec3) -> f64 {
        (a - b).norm() / b.norm().max(1e-12)
    }

    #[test]
    fn mac_test_matches_definition() {
        assert!(cell_is_far(1.0, 4.01, 1.0)); // l/d just under theta
        assert!(!cell_is_far(2.0, 4.0, 1.0)); // l/d = 1.0, not strictly less
        assert!(cell_is_far(1.0, 100.0, 0.3));
        assert!(!cell_is_far(5.0, 100.0, 0.3));
    }

    #[test]
    fn theta_zero_matches_direct_summation() {
        let bodies = generate(&PlummerConfig::new(200, 5));
        let tree_forces = compute_forces(&bodies, 0.0, DEFAULT_EPS);
        let direct_forces = direct::compute_forces(&bodies, DEFAULT_EPS);
        for (t, d) in tree_forces.iter().zip(&direct_forces) {
            assert!(
                relative_error(t.acc, d.acc) < 1e-9,
                "theta=0 walk must equal direct summation"
            );
        }
    }

    #[test]
    fn default_theta_is_accurate_enough() {
        let bodies = generate(&PlummerConfig::new(500, 6));
        let tree_forces = compute_forces(&bodies, DEFAULT_THETA, DEFAULT_EPS);
        let direct_forces = direct::compute_forces(&bodies, DEFAULT_EPS);
        let mean_err: f64 = tree_forces
            .iter()
            .zip(&direct_forces)
            .map(|(t, d)| relative_error(t.acc, d.acc))
            .sum::<f64>()
            / bodies.len() as f64;
        // theta = 1.0 (monopole only) typically gives ~1% mean error on a
        // Plummer sphere.
        assert!(mean_err < 0.05, "mean relative force error {mean_err} too large for theta=1");
    }

    #[test]
    fn smaller_theta_is_more_accurate_and_more_expensive() {
        let bodies = generate(&PlummerConfig::new(400, 7));
        let direct_forces = direct::compute_forces(&bodies, DEFAULT_EPS);
        let coarse = compute_forces(&bodies, 1.2, DEFAULT_EPS);
        let fine = compute_forces(&bodies, 0.4, DEFAULT_EPS);
        let err = |set: &Vec<Body>| {
            set.iter().zip(&direct_forces).map(|(t, d)| relative_error(t.acc, d.acc)).sum::<f64>()
                / set.len() as f64
        };
        assert!(err(&fine) < err(&coarse));
        let cost = |set: &Vec<Body>| set.iter().map(|b| b.cost as u64).sum::<u64>();
        assert!(cost(&fine) > cost(&coarse));
    }

    #[test]
    fn interaction_count_is_sub_quadratic() {
        let bodies = generate(&PlummerConfig::new(2000, 8));
        let out = compute_forces(&bodies, DEFAULT_THETA, DEFAULT_EPS);
        let total: u64 = out.iter().map(|b| b.cost as u64).sum();
        let n = bodies.len() as u64;
        assert!(total < n * (n - 1) / 4, "tree code should do far fewer than n^2 interactions");
        assert!(total > n, "every body interacts with something");
    }

    #[test]
    fn empty_and_single_body_walks() {
        let empty = Octree::build(&[], TreeParams::default());
        let r = accel_on(&empty, &[], Vec3::ZERO, None, 1.0, 0.05);
        assert_eq!(r.acc, Vec3::ZERO);

        let bodies = vec![Body::at_rest(0, Vec3::new(1.0, 0.0, 0.0), 1.0)];
        let mut tree = Octree::build(&bodies, TreeParams::default());
        tree.compute_mass(&bodies);
        // The body exerts no force on itself.
        let r = accel_on(&tree, &bodies, bodies[0].pos, Some(0), 1.0, 0.05);
        assert_eq!(r.acc, Vec3::ZERO);
        // But it attracts a test position at the origin.
        let r = accel_on(&tree, &bodies, Vec3::ZERO, None, 1.0, 0.0);
        assert!(r.acc.x > 0.0);
    }

    #[test]
    fn momentum_is_approximately_conserved() {
        // Sum of m*a over all bodies should be ~0 (Newton's third law holds
        // approximately for the tree approximation).
        let bodies = generate(&PlummerConfig::new(300, 9));
        let out = compute_forces(&bodies, DEFAULT_THETA, DEFAULT_EPS);
        let net: Vec3 = out.iter().map(|b| b.acc * b.mass).sum();
        let scale: f64 = out.iter().map(|b| (b.acc * b.mass).norm()).sum();
        assert!(net.norm() / scale < 0.05, "net force {net:?} should be small relative to {scale}");
    }
}
