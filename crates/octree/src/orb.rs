//! Orthogonal recursive bisection (ORB) partitioning.
//!
//! The paper uses the SPLASH-2 costzones scheme (Morton-ordered equal-cost
//! segments, [`crate::costzones`]) to assign bodies to threads.  ORB is the
//! classic alternative from the distributed N-body literature (Salmon's
//! thesis, cited as [21] by the paper): space is cut recursively by
//! axis-aligned planes so that each side carries half of the remaining cost,
//! until there is one region per rank.  ORB regions are boxes rather than
//! Morton-order segments, which gives them slightly better surface-to-volume
//! ratios at the price of a more expensive (and harder to parallelise)
//! partitioning step.
//!
//! This module exists as an ablation substrate: the bench suite compares the
//! two partitioners' balance and locality on identical Plummer workloads, and
//! the property suite checks that both produce disjoint covers.  The
//! distributed solvers in `bh` keep using costzones, exactly as the paper
//! does.

use crate::costzones::Partition;
use nbody::body::Body;

/// Partitions `bodies` into `parts` zones by orthogonal recursive bisection
/// on body cost.
///
/// Every body is assigned to exactly one zone.  When `parts` is not a power
/// of two, the cost target of each side of a cut is proportional to the
/// number of ranks assigned to that side, so any rank count is supported.
pub fn partition_orb(bodies: &[Body], parts: usize) -> Partition {
    assert!(parts > 0, "cannot partition into zero zones");
    let mut zones: Vec<Vec<usize>> = vec![Vec::new(); parts];
    let all: Vec<usize> = (0..bodies.len()).collect();
    bisect(bodies, all, 0, parts, &mut zones);
    Partition { zones }
}

/// Recursively bisects `indices` into zones `[first_zone, first_zone + nzones)`.
fn bisect(
    bodies: &[Body],
    indices: Vec<usize>,
    first_zone: usize,
    nzones: usize,
    zones: &mut Vec<Vec<usize>>,
) {
    if nzones == 1 {
        zones[first_zone] = indices;
        return;
    }
    // Give the left side floor(nzones/2) ranks and the matching share of cost.
    let left_zones = nzones / 2;
    let right_zones = nzones - left_zones;

    let axis = longest_axis(bodies, &indices);
    let mut order = indices;
    order.sort_unstable_by(|&a, &b| {
        bodies[a].pos[axis]
            .partial_cmp(&bodies[b].pos[axis])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });

    let total_cost: u64 = order.iter().map(|&i| cost_of(bodies, i)).sum();
    let target = total_cost as f64 * left_zones as f64 / nzones as f64;

    // Find the split point: the smallest prefix whose cost reaches the target,
    // while leaving at least one body per zone on each side whenever possible.
    let mut acc = 0u64;
    let mut split = 0usize;
    for (k, &i) in order.iter().enumerate() {
        // Stop before consuming so many bodies that the right side cannot
        // populate its zones.
        if order.len() - k <= right_zones && split > 0 {
            break;
        }
        if acc as f64 >= target && k >= left_zones.min(order.len()) {
            break;
        }
        acc += cost_of(bodies, i);
        split = k + 1;
    }
    // Ensure the left side is non-empty when there are bodies to give it.
    if split == 0 && !order.is_empty() {
        split = 1;
    }

    let right = order.split_off(split.min(order.len()));
    let left = order;
    bisect(bodies, left, first_zone, left_zones, zones);
    bisect(bodies, right, first_zone + left_zones, right_zones, zones);
}

#[inline]
fn cost_of(bodies: &[Body], i: usize) -> u64 {
    bodies[i].cost.max(1) as u64
}

/// The coordinate axis (0, 1 or 2) along which the bounding box of the given
/// subset is longest.
fn longest_axis(bodies: &[Body], indices: &[usize]) -> usize {
    if indices.is_empty() {
        return 0;
    }
    let mut lo = bodies[indices[0]].pos;
    let mut hi = lo;
    for &i in &indices[1..] {
        lo = lo.min(bodies[i].pos);
        hi = hi.max(bodies[i].pos);
    }
    let extent = hi - lo;
    let mut axis = 0;
    if extent[1] > extent[axis] {
        axis = 1;
    }
    if extent[2] > extent[axis] {
        axis = 2;
    }
    axis
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody::plummer::{generate, PlummerConfig};
    use nbody::vec3::Vec3;

    fn plummer_with_costs(n: usize) -> Vec<Body> {
        let mut bodies = generate(&PlummerConfig::new(n, 31));
        for b in &mut bodies {
            let r = b.pos.norm();
            b.cost = (1.0 + 40.0 / (0.1 + r)) as u32;
        }
        bodies
    }

    fn assert_disjoint_cover(p: &Partition, n: usize) {
        let mut seen = vec![false; n];
        for zone in &p.zones {
            for &i in zone {
                assert!(!seen[i], "body {i} assigned twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every body must be assigned");
    }

    #[test]
    fn covers_all_bodies_exactly_once() {
        let bodies = plummer_with_costs(500);
        for parts in [1, 2, 3, 5, 8, 16] {
            let p = partition_orb(&bodies, parts);
            assert_eq!(p.len(), parts);
            assert_eq!(p.total_bodies(), 500);
            assert_disjoint_cover(&p, 500);
        }
    }

    #[test]
    fn zones_are_reasonably_balanced() {
        let bodies = plummer_with_costs(2000);
        for parts in [2, 4, 8, 16] {
            let p = partition_orb(&bodies, parts);
            let imbalance = p.imbalance(&bodies);
            assert!(imbalance < 1.5, "ORB imbalance {imbalance} too high for {parts} zones");
            assert!(p.zones.iter().all(|z| !z.is_empty()));
        }
    }

    #[test]
    fn non_power_of_two_parts() {
        let bodies = plummer_with_costs(700);
        for parts in [3, 5, 6, 7, 11] {
            let p = partition_orb(&bodies, parts);
            assert_eq!(p.len(), parts);
            assert_disjoint_cover(&p, 700);
            let imbalance = p.imbalance(&bodies);
            assert!(imbalance < 1.8, "imbalance {imbalance} for {parts} parts");
        }
    }

    #[test]
    fn fewer_bodies_than_parts() {
        let bodies = plummer_with_costs(3);
        let p = partition_orb(&bodies, 8);
        assert_eq!(p.total_bodies(), 3);
        assert_disjoint_cover(&p, 3);
        // No zone holds more than the bodies available; some must be empty.
        assert!(p.zones.iter().filter(|z| !z.is_empty()).count() <= 3);
    }

    #[test]
    fn single_zone_gets_everything() {
        let bodies = plummer_with_costs(64);
        let p = partition_orb(&bodies, 1);
        assert_eq!(p.zones[0].len(), 64);
    }

    #[test]
    fn zones_are_spatially_compact() {
        let bodies = plummer_with_costs(400);
        let p = partition_orb(&bodies, 8);
        let mean_dist = |idx: &[usize]| {
            let mut total = 0.0;
            let mut count = 0usize;
            for (a, &i) in idx.iter().enumerate() {
                for &j in idx.iter().skip(a + 1) {
                    total += bodies[i].pos.dist(bodies[j].pos);
                    count += 1;
                }
            }
            if count == 0 {
                0.0
            } else {
                total / count as f64
            }
        };
        let all: Vec<usize> = (0..bodies.len()).collect();
        let global = mean_dist(&all);
        let zonal: f64 = p.zones.iter().map(|z| mean_dist(z)).sum::<f64>() / p.zones.len() as f64;
        assert!(zonal < 0.8 * global, "ORB zones should be compact: {zonal} vs {global}");
    }

    #[test]
    fn splits_along_the_longest_axis() {
        // Bodies spread along x only: a 2-way ORB cut must separate low-x
        // from high-x bodies.
        let bodies: Vec<Body> =
            (0..10).map(|i| Body::at_rest(i, Vec3::new(i as f64, 0.0, 0.0), 1.0)).collect();
        let p = partition_orb(&bodies, 2);
        let max_left = p.zones[0].iter().map(|&i| bodies[i].pos.x).fold(f64::MIN, f64::max);
        let min_right = p.zones[1].iter().map(|&i| bodies[i].pos.x).fold(f64::MAX, f64::min);
        assert!(max_left < min_right, "left zone must lie entirely below the cut");
        assert_eq!(p.zones[0].len(), 5);
        assert_eq!(p.zones[1].len(), 5);
    }

    #[test]
    fn cost_weighted_cut_position() {
        // One very expensive body on the left should pull the cut so that the
        // left zone holds fewer bodies.
        let mut bodies: Vec<Body> =
            (0..10).map(|i| Body::at_rest(i, Vec3::new(i as f64, 0.0, 0.0), 1.0)).collect();
        bodies[0].cost = 9; // left-most body as expensive as 9 others
        let p = partition_orb(&bodies, 2);
        assert!(p.zones[0].len() < p.zones[1].len());
        let costs = p.zone_costs(&bodies);
        let imbalance =
            *costs.iter().max().unwrap() as f64 / (costs.iter().sum::<u64>() as f64 / 2.0);
        assert!(imbalance < 1.3);
    }
}
