//! Property-based tests for the octree substrate.

use nbody::body::{root_cell, Body};
use nbody::vec3::Vec3;
use octree::costzones::partition_by_cost;
use octree::tree::{Octree, TreeParams};
use octree::walk::accel_on;
use proptest::prelude::*;

fn arb_bodies(max: usize) -> impl Strategy<Value = Vec<Body>> {
    prop::collection::vec(
        ((-50.0f64..50.0, -50.0f64..50.0, -50.0f64..50.0), 0.01f64..5.0, 1u32..100),
        1..max,
    )
    .prop_map(|list| {
        list.into_iter()
            .enumerate()
            .map(|(i, ((x, y, z), mass, cost))| {
                let mut b = Body::at_rest(i as u32, Vec3::new(x, y, z), mass);
                b.cost = cost;
                b
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tree_invariants_hold_for_arbitrary_bodies(bodies in arb_bodies(120)) {
        let mut tree = Octree::build(&bodies, TreeParams::default());
        tree.compute_mass(&bodies);
        prop_assert!(tree.check_invariants(&bodies).is_ok());
        prop_assert_eq!(tree.nbodies(), bodies.len());
    }

    #[test]
    fn tree_mass_is_conserved(bodies in arb_bodies(100)) {
        let mut tree = Octree::build(&bodies, TreeParams::default());
        tree.compute_mass(&bodies);
        let total: f64 = bodies.iter().map(|b| b.mass).sum();
        prop_assert!((tree.nodes[0].mass - total).abs() < 1e-9 * total.max(1.0));
        let total_cost: u64 = bodies.iter().map(|b| b.cost.max(1) as u64).sum();
        prop_assert_eq!(tree.nodes[0].cost, total_cost);
    }

    #[test]
    fn depth_first_order_is_a_permutation(bodies in arb_bodies(100)) {
        let tree = Octree::build(&bodies, TreeParams::default());
        let mut order = tree.bodies_depth_first();
        order.sort_unstable();
        prop_assert_eq!(order, (0..bodies.len()).collect::<Vec<_>>());
    }

    #[test]
    fn leaf_capacity_is_respected(bodies in arb_bodies(150), capacity in 1usize..8) {
        let params = TreeParams { leaf_capacity: capacity, max_depth: 64 };
        let tree = Octree::build(&bodies, params);
        for node in &tree.nodes {
            if node.is_leaf && node.depth < 64 {
                prop_assert!(node.bodies.len() <= capacity);
            }
        }
    }

    #[test]
    fn walk_with_zero_theta_is_exact(bodies in arb_bodies(40)) {
        let mut tree = Octree::build(&bodies, TreeParams::default());
        tree.compute_mass(&bodies);
        for b in &bodies {
            let walk = accel_on(&tree, &bodies, b.pos, Some(b.id), 0.0, 0.05);
            let exact = nbody::direct::acceleration_at(&bodies, b.pos, Some(b.id), 0.05);
            prop_assert!((walk.acc - exact).norm() <= 1e-9 * exact.norm().max(1e-9));
        }
    }

    #[test]
    fn costzones_partition_is_a_disjoint_cover(bodies in arb_bodies(150), parts in 1usize..12) {
        let (center, rsize) = root_cell(&bodies);
        let partition = partition_by_cost(&bodies, center, rsize, parts);
        prop_assert_eq!(partition.len(), parts);
        prop_assert_eq!(partition.total_bodies(), bodies.len());
        let mut seen = vec![false; bodies.len()];
        for zone in &partition.zones {
            for &i in zone {
                prop_assert!(!seen[i]);
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn costzones_imbalance_is_bounded_by_largest_body(bodies in arb_bodies(200), parts in 2usize..8) {
        prop_assume!(bodies.len() >= parts * 2);
        let (center, rsize) = root_cell(&bodies);
        let partition = partition_by_cost(&bodies, center, rsize, parts);
        let costs = partition.zone_costs(&bodies);
        let total: u64 = costs.iter().sum();
        let ideal = total as f64 / parts as f64;
        let max_single = bodies.iter().map(|b| b.cost.max(1) as u64).max().unwrap() as f64;
        let max_zone = *costs.iter().max().unwrap() as f64;
        // Greedy prefix cutting can overshoot the target by at most one body.
        prop_assert!(max_zone <= ideal + max_single + 1.0);
    }
}
