//! Property-based tests for the workload-generation subsystem: every
//! registered scenario must satisfy the shared conventions (determinism,
//! normalization, conservation) for arbitrary sizes and seeds, and each
//! family must keep its characteristic physical shape.

use proptest::prelude::*;
use scenarios::{builtin, Diagnostics};

/// Virial-ratio band expected from each family at moderate n.
///
/// Equilibrium spheres sit near 1, the approximate rotation-curve disk in a
/// generous band around 1, the cold cube at exactly 0, and the merger (two
/// internally virialized systems plus orbital energy) between the two.
fn virial_band(name: &str) -> (f64, f64) {
    match name {
        "plummer" => (0.5, 1.6),
        "king" | "hernquist" => (0.6, 1.4),
        "exp-disk" => (0.4, 1.7),
        "cold-cube" => (0.0, 1e-9),
        // Two internally virialized spheres plus the orbital kinetic energy
        // of the encounter: the composite ratio sits near 2.
        "merger" => (0.3, 2.5),
        other => panic!("no virial band registered for scenario {other}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_scenario_is_deterministic_and_normalized(
        n in 64usize..256,
        seed in 0u64..1_000_000,
    ) {
        for scenario in builtin().iter() {
            let name = scenario.name();
            let bodies = scenario.generate(n, seed);
            prop_assert_eq!(bodies.len(), n, "{} must generate n bodies", name);

            // Bit-identical replay from the same (n, seed).
            let replay = scenario.generate(n, seed);
            prop_assert_eq!(&bodies, &replay, "{} must be deterministic", name);

            // Ids are 0..n in order (the solvers index the body table by id).
            for (i, b) in bodies.iter().enumerate() {
                prop_assert_eq!(b.id as usize, i, "{} ids must be 0..n", name);
                prop_assert!(b.pos.is_finite() && b.vel.is_finite(), "{} non-finite body", name);
                prop_assert!(b.mass > 0.0, "{} non-positive mass", name);
            }

            let d = scenario.diagnostics(&bodies);
            prop_assert!((d.total_mass - 1.0).abs() < 1e-9,
                "{} total mass {} != 1", name, d.total_mass);
            prop_assert!(d.com_offset < 1e-9,
                "{} centre of mass off origin by {}", name, d.com_offset);
            prop_assert!(d.momentum < 1e-9,
                "{} net momentum {}", name, d.momentum);
        }
    }

    #[test]
    fn different_seeds_give_different_workloads(n in 64usize..200, seed in 0u64..100_000) {
        for scenario in builtin().iter() {
            let a = scenario.generate(n, seed);
            let b = scenario.generate(n, seed.wrapping_add(1));
            prop_assert!(a != b, "{} ignored its seed", scenario.name());
        }
    }

    #[test]
    fn virial_ratio_matches_each_family(seed in 0u64..10_000) {
        // Moderate n keeps the O(n²) potential sum fast while staying well
        // inside each band's sampling noise.
        let n = 512;
        for scenario in builtin().iter() {
            let bodies = scenario.generate(n, seed);
            let d = Diagnostics::measure(&bodies, scenario.recommended_config().eps);
            let (lo, hi) = virial_band(scenario.name());
            prop_assert!(
                d.virial_ratio >= lo && d.virial_ratio <= hi,
                "{} virial ratio {} outside [{}, {}]",
                scenario.name(), d.virial_ratio, lo, hi
            );
        }
    }
}

#[test]
fn scenario_shapes_are_distinguishable() {
    // The families exist to stress different solver paths; make sure the
    // structural signatures that drive those paths actually differ.
    let registry = builtin();
    let n = 2_000;
    let seed = 424_242;
    let diag = |name: &str| {
        let s = registry.get(name).unwrap();
        Diagnostics::measure(&s.generate(n, seed), s.recommended_config().eps)
    };

    let plummer = diag("plummer");
    let hernquist = diag("hernquist");
    let disk = diag("exp-disk");
    let merger = diag("merger");

    // The cusp concentrates mass far more than the cored profiles.
    assert!(hernquist.concentration > 2.0 * plummer.concentration);
    // King's tidal edge is a hard cutoff: its outermost body sits at the
    // (rescaled) tidal radius, while Plummer's halo tail reaches several
    // times further out.
    let max_r = |name: &str| {
        registry
            .get(name)
            .unwrap()
            .generate(n, seed)
            .iter()
            .map(|b| b.pos.norm())
            .fold(0.0f64, f64::max)
    };
    assert!(max_r("king") < 0.5 * max_r("plummer"));
    // Only the disk carries macroscopic angular momentum.
    assert!(disk.angular_momentum > 10.0 * plummer.angular_momentum.max(1e-6));
    // Only the merger is hollow at its centre of mass.
    assert!(merger.r10 > 3.0 * plummer.r10);
}

#[test]
fn zero_and_tiny_sizes_are_safe() {
    for scenario in builtin().iter() {
        assert!(scenario.generate(0, 1).is_empty(), "{}", scenario.name());
        for n in 1..4 {
            let bodies = scenario.generate(n, 7);
            assert_eq!(bodies.len(), n, "{} n={n}", scenario.name());
            assert!(bodies.iter().all(|b| b.pos.is_finite() && b.vel.is_finite()));
        }
    }
}
