//! Hernquist-profile sphere: a steep ρ ∝ 1/r central cusp.
//!
//! The Hernquist (1990) model has density `ρ(r) = M a / (2π r (r+a)³)` and
//! the closed-form cumulative mass `M(<r) = M r² / (r+a)²`, which makes the
//! radius exactly invertible by inverse-transform sampling.  Unlike the
//! cored Plummer sphere, the central cusp drives the octree to its maximum
//! depth near the centre — the adversarial case for tree-build and for the
//! per-body cost imbalance the costzones partitioner must absorb.
//!
//! Velocities are drawn from a local isotropic Maxwellian whose dispersion
//! comes from numerically integrating the spherical Jeans equation
//! `σ²(r) = (1/ρ) ∫_r^∞ ρ M / s² ds`, truncated at the local escape speed;
//! the global kinetic energy is then pinned to the profile's potential
//! energy so the sphere starts in virial equilibrium.

use crate::sampling::{gaussian, scale_kinetic_energy};
use crate::{to_com_frame, Scenario, Tuning};
use nbody::{Body, Vec3};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A Hernquist sphere with scale radius [`Hernquist::scale_radius`].
#[derive(Debug, Clone, Copy)]
pub struct Hernquist {
    /// The profile's scale radius `a` (half-mass radius is ≈ 2.41 a).
    pub scale_radius: f64,
    /// Mass fraction at which the profile is truncated (the last percent of
    /// a Hernquist sphere extends to tens of scale radii).
    pub mass_cut: f64,
}

impl Default for Hernquist {
    fn default() -> Self {
        // a = 1/3 puts the half-mass radius at ~0.8, matching the Plummer
        // scenario's scale so cross-scenario comparisons see equal extents.
        Hernquist { scale_radius: 1.0 / 3.0, mass_cut: 0.98 }
    }
}

/// Log-spaced radial grid used for the Jeans integration.
const GRID: usize = 512;

impl Hernquist {
    /// Truncation radius implied by the mass cut: `m = r²/(r+a)²`.
    fn r_max(&self) -> f64 {
        let s = self.mass_cut.sqrt();
        self.scale_radius * s / (1.0 - s)
    }

    /// Density of the unit-mass profile.
    fn rho(&self, r: f64) -> f64 {
        let a = self.scale_radius;
        a / (2.0 * std::f64::consts::PI * r * (r + a).powi(3))
    }

    /// Cumulative mass of the unit-mass profile.
    fn mass_within(&self, r: f64) -> f64 {
        let a = self.scale_radius;
        (r / (r + a)).powi(2)
    }

    /// Builds `(radii, σ²(r))` by integrating the Jeans equation inward on a
    /// log grid, plus the truncated profile's total potential energy.
    fn jeans_table(&self) -> (Vec<f64>, Vec<f64>, f64) {
        let a = self.scale_radius;
        let r_lo = a * 1e-4;
        let r_hi = self.r_max() * 4.0;
        let log_step = (r_hi / r_lo).ln() / (GRID - 1) as f64;
        let radii: Vec<f64> = (0..GRID).map(|i| r_lo * (log_step * i as f64).exp()).collect();

        // Integrand of the Jeans integral and of the potential energy.
        let jeans = |r: f64| self.rho(r) * self.mass_within(r) / (r * r);
        let mut sigma2 = vec![0.0f64; GRID];
        // Tail beyond the grid: ρM/r² ~ a/(2π) · 1/r⁵ ⇒ ∫ ≈ a/(8π r⁴).
        let mut acc = a / (8.0 * std::f64::consts::PI * r_hi.powi(4));
        for i in (0..GRID - 1).rev() {
            let dr = radii[i + 1] - radii[i];
            acc += 0.5 * (jeans(radii[i]) + jeans(radii[i + 1])) * dr;
            sigma2[i] = acc / self.rho(radii[i]);
        }
        sigma2[GRID - 1] = acc / self.rho(radii[GRID - 1]);

        // Potential energy of the truncated profile:
        // U = -∫ (M(r)/r) dM = -∫ (M(r)/r) 4π r² ρ(r) dr.
        let pot =
            |r: f64| (self.mass_within(r) / r) * 4.0 * std::f64::consts::PI * r * r * self.rho(r);
        let mut u = 0.0;
        for i in 0..GRID - 1 {
            if radii[i] > self.r_max() {
                break;
            }
            let hi = radii[i + 1].min(self.r_max());
            u -= 0.5 * (pot(radii[i]) + pot(hi)) * (hi - radii[i]);
        }
        (radii, sigma2, u)
    }
}

/// Linear interpolation on the log grid.
fn interp(radii: &[f64], values: &[f64], r: f64) -> f64 {
    match radii.binary_search_by(|x| x.partial_cmp(&r).unwrap()) {
        Ok(i) => values[i],
        Err(0) => values[0],
        Err(i) if i >= radii.len() => values[radii.len() - 1],
        Err(i) => {
            let t = (r - radii[i - 1]) / (radii[i] - radii[i - 1]);
            values[i - 1] * (1.0 - t) + values[i] * t
        }
    }
}

impl Scenario for Hernquist {
    fn name(&self) -> &'static str {
        "hernquist"
    }

    fn description(&self) -> &'static str {
        "Hernquist sphere: steep 1/r density cusp driving maximum tree depth"
    }

    fn generate(&self, n: usize, seed: u64) -> Vec<Body> {
        if n == 0 {
            return Vec::new();
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let a = self.scale_radius;
        let (radii, sigma2, u_total) = self.jeans_table();
        let mass = 1.0 / n as f64;

        let mut bodies = Vec::with_capacity(n);
        for i in 0..n {
            // Inverse-transform radius: m = r²/(r+a)² ⇒ r = a√m/(1-√m).
            let m: f64 = rng.gen_range(1e-8..self.mass_cut);
            let s = m.sqrt();
            let r = a * s / (1.0 - s);
            let pos = crate::sampling::random_direction(&mut rng, r);

            // Local Maxwellian, truncated at the escape speed of the full
            // profile, v_esc² = 2/(r+a).
            let sigma = interp(&radii, &sigma2, r).max(0.0).sqrt();
            let v_esc = (2.0 / (r + a)).sqrt();
            let vel = loop {
                let v =
                    Vec3::new(gaussian(&mut rng), gaussian(&mut rng), gaussian(&mut rng)) * sigma;
                if v.norm() < v_esc {
                    break v;
                }
            };
            bodies.push(Body::new(i as u32, pos, vel, mass));
        }

        // Pin the global virial ratio: T = |U|/2 for equilibrium.
        scale_kinetic_energy(&mut bodies, 0.5 * u_total.abs());
        to_com_frame(&mut bodies);
        bodies
    }

    fn recommended_config(&self) -> Tuning {
        // The cusp needs a smaller softening than the cored Plummer sphere,
        // and a slightly stricter opening angle near the dense centre.
        Tuning { theta: 0.8, eps: 0.02, dt: 0.02 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Diagnostics;

    #[test]
    fn half_mass_radius_matches_the_profile() {
        let h = Hernquist::default();
        let bodies = h.generate(4_000, 17);
        let d = Diagnostics::measure(&bodies, 0.02);
        // Analytic r50 = a·√0.5/(1-√0.5) ≈ 2.414 a ≈ 0.80 for a = 1/3.
        let expect = h.scale_radius * (0.5f64.sqrt()) / (1.0 - 0.5f64.sqrt());
        assert!((d.r50 - expect).abs() < 0.15 * expect, "r50 {} vs analytic {expect}", d.r50);
        // The cusp concentrates mass: r10 far inside r50.
        assert!(d.concentration > 8.0, "concentration {}", d.concentration);
    }

    #[test]
    fn virial_equilibrium_is_pinned() {
        let bodies = Hernquist::default().generate(3_000, 23);
        let d = Diagnostics::measure(&bodies, 0.02);
        assert!(
            d.virial_ratio > 0.7 && d.virial_ratio < 1.3,
            "virial ratio {} out of band",
            d.virial_ratio
        );
    }

    #[test]
    fn deterministic() {
        let h = Hernquist::default();
        assert_eq!(h.generate(512, 4), h.generate(512, 4));
    }
}
