//! Shared sampling helpers for the scenario generators.

use nbody::Vec3;
use rand::rngs::StdRng;
use rand::Rng;

/// A uniform random direction scaled to length `r` (Marsaglia rejection,
/// matching the Plummer generator in `nbody`).
pub fn random_direction(rng: &mut StdRng, r: f64) -> Vec3 {
    loop {
        let x = rng.gen_range(-1.0..=1.0);
        let y = rng.gen_range(-1.0..=1.0);
        let z = rng.gen_range(-1.0..=1.0);
        let v = Vec3::new(x, y, z);
        let n2 = v.norm_sq();
        if n2 > 1e-10 && n2 <= 1.0 {
            return v * (r / n2.sqrt());
        }
    }
}

/// A standard normal sample (Box–Muller, one value per call for determinism
/// that is independent of call pairing).
pub fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// The error function, via the Abramowitz–Stegun 7.1.26 rational
/// approximation (|error| < 1.5e-7 — far below the sampling noise of any
/// generator using it).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Rescales velocities in place so the kinetic energy becomes `target`.
///
/// Used by generators that sample velocities from an approximate local
/// distribution and then pin the global virial ratio exactly against the
/// profile's analytic potential energy.
pub fn scale_kinetic_energy(bodies: &mut [nbody::Body], target: f64) {
    let kinetic: f64 = bodies.iter().map(|b| b.kinetic_energy()).sum();
    if kinetic <= 0.0 || target <= 0.0 {
        return;
    }
    let factor = (target / kinetic).sqrt();
    for b in bodies {
        b.vel *= factor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn erf_matches_known_values() {
        // Reference values to 7 decimals.
        for (x, want) in [(0.0, 0.0), (0.5, 0.5204999), (1.0, 0.8427008), (2.0, 0.9953223)] {
            assert!((erf(x) - want).abs() < 2e-7, "erf({x}) = {} != {want}", erf(x));
            assert!((erf(-x) + want).abs() < 2e-7);
        }
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn directions_are_isotropic() {
        let mut rng = StdRng::seed_from_u64(2);
        let mean: Vec3 =
            (0..5_000).map(|_| random_direction(&mut rng, 1.0)).sum::<Vec3>() / 5_000.0;
        assert!(mean.norm() < 0.05, "directional bias {mean:?}");
    }
}
