//! King (lowered isothermal) sphere: a tidally truncated cluster.
//!
//! The King (1966) model lowers the isothermal distribution function by a
//! constant so it vanishes at a finite escape energy: bodies hotter than the
//! local escape speed simply do not exist, giving the cluster a sharp tidal
//! edge at a finite radius.  The model is parameterized by the central
//! dimensionless potential `W₀ = Ψ(0)/σ²`; larger values are more centrally
//! concentrated (`W₀ = 6` is a typical globular cluster).
//!
//! Construction follows the textbook route (Binney & Tremaine §4.3.3c):
//!
//! 1. integrate the dimensionless Poisson equation
//!    `W'' + (2/r) W' = -9 ρ̂(W)/ρ̂(W₀)` outward from `W(0) = W₀` until the
//!    density vanishes (the tidal radius `r_t`), tabulating `W(r)` and the
//!    enclosed mass `M(r)`;
//! 2. sample radii by inverse transform of `M(r)`, and speeds by rejection
//!    from the lowered Maxwellian `f(v) ∝ v² (e^{W - v²/2} - 1)`;
//! 3. rescale to the workspace conventions (total mass 1, half-mass radius
//!    ≈ 0.8) and pin the kinetic energy to the profile's potential energy.

use crate::sampling::{erf, random_direction, scale_kinetic_energy};
use crate::{to_com_frame, Scenario, Tuning};
use nbody::Body;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::PI;

/// A King sphere with central potential depth [`King::w0`].
#[derive(Debug, Clone, Copy)]
pub struct King {
    /// Central dimensionless potential `W₀` (concentration parameter).
    pub w0: f64,
    /// Half-mass radius the generated cluster is rescaled to.
    pub half_mass_radius: f64,
}

impl Default for King {
    fn default() -> Self {
        King { w0: 6.0, half_mass_radius: 0.8 }
    }
}

/// Dimensionless King density (central value at `w = w0`):
/// `ρ̂(W) = e^W erf(√W) - √(4W/π) (1 + 2W/3)` for `W > 0`, else 0.
fn rho_hat(w: f64) -> f64 {
    if w <= 0.0 {
        return 0.0;
    }
    let sw = w.sqrt();
    (w.exp() * erf(sw) - (4.0 * w / PI).sqrt() * (1.0 + 2.0 * w / 3.0)).max(0.0)
}

/// One row of the integrated model: radius, potential, enclosed mass.
struct Row {
    r: f64,
    w: f64,
    m: f64,
}

impl King {
    /// Integrates the King ODE outward (RK4), returning the radial table and
    /// the model's potential energy `U = -∫ (M/r) dM` in King units.
    fn integrate(&self) -> (Vec<Row>, f64) {
        let rho0 = rho_hat(self.w0);
        assert!(rho0 > 0.0, "King w0 must be positive");
        let rhs = |r: f64, w: f64, v: f64| -> (f64, f64) {
            // y = (W, V); W' = V, V' = -9 ρ̂(W)/ρ̂(W₀) - 2V/r.
            (v, -9.0 * rho_hat(w) / rho0 - 2.0 * v / r)
        };

        let dr = 2e-3;
        let mut r = 1e-6;
        let mut w = self.w0;
        let mut v = 0.0;
        let mut m = 0.0;
        let mut table = vec![Row { r, w, m }];
        let mut u = 0.0;
        // W decreases monotonically; stop at the tidal radius (W = 0).  The
        // radius bound is a safety net only — W₀ ≤ 10 reaches W = 0 well
        // before r = 60 core radii.
        while w > 0.0 && r < 60.0 {
            let (k1w, k1v) = rhs(r, w, v);
            let (k2w, k2v) = rhs(r + dr / 2.0, w + k1w * dr / 2.0, v + k1v * dr / 2.0);
            let (k3w, k3v) = rhs(r + dr / 2.0, w + k2w * dr / 2.0, v + k2v * dr / 2.0);
            let (k4w, k4v) = rhs(r + dr, w + k3w * dr, v + k3v * dr);
            let w_next = w + dr / 6.0 * (k1w + 2.0 * k2w + 2.0 * k3w + k4w);
            let v_next = v + dr / 6.0 * (k1v + 2.0 * k2v + 2.0 * k3v + k4v);
            let r_next = r + dr;

            let rho_mid = rho_hat((w + w_next) / 2.0) / rho0;
            let r_mid = r + dr / 2.0;
            let dm = 4.0 * PI * r_mid * r_mid * rho_mid * dr;
            if m > 0.0 {
                u -= (m + dm / 2.0) / r_mid * dm;
            }
            m += dm;

            r = r_next;
            w = w_next.max(0.0);
            v = v_next;
            table.push(Row { r, w, m });
            if w_next <= 0.0 {
                break;
            }
        }
        (table, u)
    }
}

impl Scenario for King {
    fn name(&self) -> &'static str {
        "king"
    }

    fn description(&self) -> &'static str {
        "King (lowered isothermal) sphere: dense core with a sharp tidal edge"
    }

    fn generate(&self, n: usize, seed: u64) -> Vec<Body> {
        if n == 0 {
            return Vec::new();
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let (table, u_king) = self.integrate();
        let m_total = table.last().unwrap().m;

        // Length rescaling: King-unit half-mass radius → the configured one.
        let r_half_king = {
            let target = m_total / 2.0;
            let i = table.partition_point(|row| row.m < target);
            table[i.min(table.len() - 1)].r
        };
        let lambda = self.half_mass_radius / r_half_king;

        let mass = 1.0 / n as f64;
        let mut bodies = Vec::with_capacity(n);
        for i in 0..n {
            // Radius by inverse transform of M(r).
            let target = rng.gen_range(0.0..1.0) * m_total;
            let idx = table.partition_point(|row| row.m < target).min(table.len() - 1);
            let (lo, hi) = (&table[idx.saturating_sub(1)], &table[idx]);
            let t = if hi.m > lo.m { (target - lo.m) / (hi.m - lo.m) } else { 0.0 };
            let r_king = lo.r + t * (hi.r - lo.r);
            let w_here = (lo.w + t * (hi.w - lo.w)).max(0.0);

            // Speed from the lowered Maxwellian, v ∈ [0, √(2W)].
            let v_max = (2.0 * w_here).sqrt();
            let density = |v: f64| v * v * ((w_here - v * v / 2.0).exp() - 1.0);
            let bound = (1..32)
                .map(|k| density(v_max * k as f64 / 32.0))
                .fold(0.0f64, f64::max)
                .max(1e-300);
            let speed = if v_max > 0.0 {
                loop {
                    let v = rng.gen_range(0.0..v_max);
                    let y = rng.gen_range(0.0..bound * 1.05);
                    if y < density(v) {
                        break v;
                    }
                }
            } else {
                0.0
            };

            let pos = random_direction(&mut rng, r_king * lambda);
            let vel = random_direction(&mut rng, speed);
            bodies.push(Body::new(i as u32, pos, vel, mass));
        }

        // Potential energy transforms as U → U/(λ M²) under r → λr, M → 1.
        let u_scaled = u_king / (lambda * m_total * m_total);
        scale_kinetic_energy(&mut bodies, 0.5 * u_scaled.abs());
        to_com_frame(&mut bodies);
        bodies
    }

    fn recommended_config(&self) -> Tuning {
        // Denser core than Plummer: slightly smaller softening.
        Tuning { eps: 0.03, ..Tuning::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Diagnostics;

    #[test]
    fn density_vanishes_at_zero_and_grows_with_w() {
        assert_eq!(rho_hat(0.0), 0.0);
        assert_eq!(rho_hat(-1.0), 0.0);
        assert!(rho_hat(2.0) > rho_hat(1.0));
        assert!(rho_hat(6.0) > rho_hat(2.0));
    }

    #[test]
    fn model_has_a_finite_tidal_radius() {
        let (table, u) = King::default().integrate();
        let last = table.last().unwrap();
        assert!(last.w <= 1e-6, "potential must reach zero (tidal edge)");
        assert!(last.r > 1.0 && last.r < 60.0, "tidal radius {} out of range", last.r);
        assert!(u < 0.0, "potential energy must be negative");
        // W₀ = 6 concentration: r_t / r_c ≈ 20 (c ≈ 1.25 … 1.35).
        assert!(last.r > 10.0, "w0=6 tidal radius {} core radii too small", last.r);
    }

    #[test]
    fn generated_cluster_has_the_configured_half_mass_radius() {
        let king = King::default();
        let bodies = king.generate(4_000, 31);
        let d = Diagnostics::measure(&bodies, 0.03);
        assert!(
            (d.r50 - king.half_mass_radius).abs() < 0.15 * king.half_mass_radius,
            "r50 {} vs configured {}",
            d.r50,
            king.half_mass_radius
        );
        // Sharp tidal edge: unlike Plummer/Hernquist halos, r90/r50 is small.
        assert!(d.r90 / d.r50 < 3.0, "tidal truncation missing: r90/r50 {}", d.r90 / d.r50);
        assert!(d.virial_ratio > 0.7 && d.virial_ratio < 1.3, "virial {}", d.virial_ratio);
    }

    #[test]
    fn deterministic() {
        let king = King::default();
        assert_eq!(king.generate(600, 8), king.generate(600, 8));
    }
}
