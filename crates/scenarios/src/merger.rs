//! Merger composer: two sub-scenarios offset and boosted onto a collision
//! course.
//!
//! Generalizes the `galaxy_collision` example (two Plummer spheres) to *any*
//! pair of registered scenarios with an arbitrary mass split, separation and
//! closing velocity.  Mergers are the canonical bimodal workload: two dense
//! clumps separated by near-empty space defeat uniform spatial partitioning
//! and make the costzones/subspace machinery earn its keep.

use crate::{to_com_frame, Plummer, Scenario, Tuning};
use nbody::{Body, Vec3};

/// Seed perturbation for the secondary component, so the two sub-systems
/// never share an RNG stream even when built from the same family and seed.
const SECONDARY_SEED_SALT: u64 = 0x6d65_7267_6572; // "merger"

/// Two sub-scenarios offset and boosted against each other.
///
/// The composite keeps the global conventions: total mass 1 (the components
/// are rescaled by [`Merger::mass_fraction`]), centre of mass at the origin,
/// zero net momentum, ids `0..n`.
pub struct Merger {
    /// Generator of the heavier component.
    pub primary: Box<dyn Scenario>,
    /// Generator of the lighter component.
    pub secondary: Box<dyn Scenario>,
    /// Initial separation vector (from secondary to primary).
    pub separation: Vec3,
    /// Initial relative velocity of the primary with respect to the
    /// secondary (point it against `separation` for a collision course).
    pub relative_velocity: Vec3,
    /// Fraction of the total mass (and of the bodies) in the primary.
    pub mass_fraction: f64,
}

impl Merger {
    /// A merger of two arbitrary sub-scenarios.
    pub fn new(
        primary: Box<dyn Scenario>,
        secondary: Box<dyn Scenario>,
        separation: Vec3,
        relative_velocity: Vec3,
        mass_fraction: f64,
    ) -> Merger {
        assert!(
            mass_fraction > 0.0 && mass_fraction < 1.0,
            "mass_fraction must lie strictly between 0 and 1"
        );
        Merger { primary, secondary, separation, relative_velocity, mass_fraction }
    }
}

impl Default for Merger {
    /// The `galaxy_collision` setup: two equal Plummer spheres, offset along
    /// a slightly skewed axis and closing head-on.
    fn default() -> Self {
        Merger::new(
            Box::new(Plummer),
            Box::new(Plummer),
            Vec3::new(5.0, 1.2, 0.0),
            Vec3::new(-0.5, 0.0, 0.0),
            0.5,
        )
    }
}

impl Scenario for Merger {
    fn name(&self) -> &'static str {
        "merger"
    }

    fn description(&self) -> &'static str {
        "two sub-scenarios offset and boosted onto a collision course (bimodal workload)"
    }

    fn generate(&self, n: usize, seed: u64) -> Vec<Body> {
        if n == 0 {
            return Vec::new();
        }
        let f = self.mass_fraction;
        // Body split follows the mass split so per-body masses stay equal
        // when the components share a family.  With a single body there is
        // no split; the primary takes it.
        let n_primary = if n == 1 { 1 } else { ((n as f64 * f).round() as usize).clamp(1, n - 1) };
        let n_secondary = n - n_primary;

        let mut bodies = Vec::with_capacity(n);
        // Place the components so the composite centre of mass and momentum
        // are zero before the final exact correction: the primary carries
        // mass fraction f, so it sits at (1-f) of the separation.
        let offsets = [
            (n_primary, seed, f, self.separation * (1.0 - f), self.relative_velocity * (1.0 - f)),
            (
                n_secondary,
                seed ^ SECONDARY_SEED_SALT,
                1.0 - f,
                self.separation * -f,
                self.relative_velocity * -f,
            ),
        ];
        for (component, &(count, comp_seed, mass_scale, dpos, dvel)) in
            [&self.primary, &self.secondary].into_iter().zip(&offsets)
        {
            for mut b in component.generate(count, comp_seed) {
                b.id = bodies.len() as u32;
                b.mass *= mass_scale;
                b.pos += dpos;
                b.vel += dvel;
                bodies.push(b);
            }
        }
        // Renormalize to total mass 1: when one component is empty (tiny n)
        // only `mass_fraction` of the mass was emitted above, and unit-mass
        // sub-scenarios are a convention, not a guarantee.
        let total: f64 = bodies.iter().map(|b| b.mass).sum();
        if total > 0.0 {
            for b in &mut bodies {
                b.mass /= total;
            }
        }
        to_com_frame(&mut bodies);
        bodies
    }

    fn recommended_config(&self) -> Tuning {
        // Take the tighter of the two components' recommendations: the
        // composite contains both workloads.
        let a = self.primary.recommended_config();
        let b = self.secondary.recommended_config();
        Tuning { theta: a.theta.min(b.theta), eps: a.eps.min(b.eps), dt: a.dt.min(b.dt) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ColdCube, Diagnostics};

    #[test]
    fn composite_is_bimodal_and_normalized() {
        let merger = Merger::default();
        let bodies = merger.generate(1_000, 11);
        assert_eq!(bodies.len(), 1_000);
        let d = Diagnostics::measure(&bodies, 0.05);
        assert!((d.total_mass - 1.0).abs() < 1e-9);
        assert!(d.com_offset < 1e-9);
        assert!(d.momentum < 1e-9);
        // Two clumps ~5 units apart, measured from the composite centre of
        // mass (which lies in the near-empty gap between them): even the
        // innermost 10% of the mass is far from the origin — the bimodal
        // signature a single centred sphere (r10 ≈ 0.3) never shows.
        assert!(d.r10 > 1.0, "r10 {} — centre should be hollow", d.r10);
        assert!(d.r90 > 2.0, "r90 {}", d.r90);
    }

    #[test]
    fn unequal_mass_split_follows_fraction() {
        let merger = Merger::new(
            Box::new(Plummer),
            Box::new(ColdCube::default()),
            Vec3::new(4.0, 0.0, 0.0),
            Vec3::new(-0.3, 0.0, 0.0),
            0.75,
        );
        let bodies = merger.generate(800, 5);
        assert_eq!(bodies.len(), 800);
        // The first 600 ids belong to the primary (75% of the bodies).
        let primary_mass: f64 = bodies[..600].iter().map(|b| b.mass).sum();
        assert!((primary_mass - 0.75).abs() < 1e-9, "primary mass {primary_mass}");
    }

    #[test]
    fn tiny_sizes_keep_total_mass_one() {
        let merger = Merger::default();
        for n in 1..6 {
            let bodies = merger.generate(n, 3);
            assert_eq!(bodies.len(), n);
            let total: f64 = bodies.iter().map(|b| b.mass).sum();
            assert!((total - 1.0).abs() < 1e-12, "n={n} total mass {total}");
        }
    }

    #[test]
    fn deterministic_and_distinct_components() {
        let merger = Merger::default();
        assert_eq!(merger.generate(300, 9), merger.generate(300, 9));
        // The two Plummer components must not be mirror copies: different
        // seeds give different internal structure.
        let bodies = merger.generate(300, 9);
        let (a, b) = bodies.split_at(150);
        let offset = merger.separation;
        let mirrored = a.iter().zip(b).all(|(x, y)| (x.pos - offset - y.pos).norm() < 1e-9);
        assert!(!mirrored, "components must use independent RNG streams");
    }
}
