//! The paper's workload: a Plummer sphere in virial equilibrium.
//!
//! Thin [`Scenario`] wrapper around [`nbody::plummer`], which implements the
//! SPLASH-2 generator (§4.1 of the paper) — this keeps the original
//! generator the single source of truth while making it reachable through
//! the registry like every other workload.

use crate::{Scenario, Tuning};
use nbody::plummer::{generate, PlummerConfig};
use nbody::Body;

/// The Plummer sphere (Aarseth, Hénon, Wielen 1974), `M = G = 1`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Plummer;

impl Scenario for Plummer {
    fn name(&self) -> &'static str {
        "plummer"
    }

    fn description(&self) -> &'static str {
        "Plummer sphere in virial equilibrium (the paper's §4.1 workload)"
    }

    fn generate(&self, n: usize, seed: u64) -> Vec<Body> {
        generate(&PlummerConfig::new(n, seed))
    }

    fn recommended_config(&self) -> Tuning {
        // The paper's defaults were calibrated on exactly this workload.
        Tuning::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_underlying_generator() {
        let via_scenario = Plummer.generate(256, 7);
        let direct = generate(&PlummerConfig::new(256, 7));
        assert_eq!(via_scenario, direct);
    }
}
