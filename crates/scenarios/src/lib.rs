//! # scenarios — workload-generation subsystem
//!
//! The paper (Zhang, Behzad, Snir; SC 2011) evaluates its UPC Barnes-Hut
//! ladder on a single workload family: Plummer spheres (§4.1).  Real
//! deployments — and every load-balancing, caching and partitioning ablation
//! this workspace wants to run — care about *non*-uniform workloads: cold
//! collapses that form transient dense cores, rotating disks whose mass is
//! confined to a plane, lowered-isothermal clusters with sharp tidal edges,
//! and mergers of any of the above.  This crate turns initial conditions
//! into a first-class, extensible subsystem:
//!
//! * [`Scenario`] — the generator interface: a deterministic, seedable
//!   `generate(n, seed)`, a [`Tuning`] of recommended solver parameters and
//!   a [`Diagnostics`] summary used by examples, tests and the `bhsim` CLI.
//! * [`Registry`] — a string-keyed registry of scenarios; [`builtin`]
//!   returns one preloaded with the six built-in families:
//!
//! | name        | family                                     | stresses |
//! |-------------|--------------------------------------------|----------|
//! | `plummer`   | Plummer sphere (the paper's workload)      | baseline |
//! | `king`      | King (lowered isothermal) sphere, W₀ = 6   | sharp tidal edge, dense core |
//! | `hernquist` | Hernquist profile                          | steep ρ ∝ 1/r cusp → deep trees |
//! | `exp-disk`  | rotating exponential disk                  | anisotropy, costzones imbalance |
//! | `cold-cube` | uniform cold cube (collapse)               | violent relaxation, migration |
//! | `merger`    | two offset, boosted sub-scenarios          | bimodal mass distribution |
//!
//! All generators share the paper's conventions: `G = 1`, total mass 1, the
//! centre of mass at the origin with zero net momentum, and bodies whose ids
//! are `0..n`.  Two calls with the same `(n, seed)` return bit-identical
//! bodies.
//!
//! ```
//! use scenarios::builtin;
//!
//! let registry = builtin();
//! let disk = registry.get("exp-disk").unwrap();
//! let bodies = disk.generate(512, 42);
//! assert_eq!(bodies, disk.generate(512, 42));
//! let d = disk.diagnostics(&bodies);
//! assert!((d.total_mass - 1.0).abs() < 1e-9 && d.com_offset < 1e-9);
//! ```

pub mod cube;
pub mod disk;
pub mod hernquist;
pub mod king;
pub mod merger;
pub mod plummer;
mod sampling;

pub use cube::ColdCube;
pub use disk::ExpDisk;
pub use hernquist::Hernquist;
pub use king::King;
pub use merger::Merger;
pub use plummer::Plummer;

use nbody::{energy, stats, Body, Vec3};
use serde::{Deserialize, Serialize};

/// Solver parameters a scenario recommends for itself.
///
/// The defaults are the paper's (θ = 1.0, ε = 0.05, dt = 0.025); scenarios
/// with sharper density contrasts or faster internal dynamics tighten them.
/// The `bhsim` CLI applies these unless overridden on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tuning {
    /// Opening criterion θ.
    pub theta: f64,
    /// Softening ε.
    pub eps: f64,
    /// Time step.
    pub dt: f64,
}

impl Default for Tuning {
    fn default() -> Self {
        Tuning { theta: nbody::DEFAULT_THETA, eps: nbody::DEFAULT_EPS, dt: nbody::DEFAULT_DT }
    }
}

/// Structural summary of a generated body set.
///
/// Used by property tests to pin each generator's physical shape and by the
/// `bhsim` CLI / examples to describe the workload they are about to run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Diagnostics {
    /// Number of bodies.
    pub nbodies: usize,
    /// Total mass (all built-in scenarios normalize to 1).
    pub total_mass: f64,
    /// Distance of the centre of mass from the origin.
    pub com_offset: f64,
    /// Net momentum magnitude.
    pub momentum: f64,
    /// Radius enclosing 10% of the mass.
    pub r10: f64,
    /// Half-mass radius.
    pub r50: f64,
    /// Radius enclosing 90% of the mass.
    pub r90: f64,
    /// One-dimensional velocity dispersion.
    pub velocity_dispersion: f64,
    /// Virial ratio `2T / |W|` (1 for equilibrium, 0 for cold systems).
    pub virial_ratio: f64,
    /// Magnitude of the total angular momentum (large for disks,
    /// ~0 for isotropic spheres).
    pub angular_momentum: f64,
    /// `r90 / r10`: the density contrast the tree and partitioner face.
    pub concentration: f64,
}

/// Size up to which [`Diagnostics::measure`] computes the virial ratio's
/// potential sum exactly; beyond it the sum runs over a strided subsample
/// ([`energy::potential_energy_sampled`]) so diagnostics stay interactive
/// at the million-body sizes the sorted tree build targets.
pub const VIRIAL_EXACT_LIMIT: usize = 8192;

impl Diagnostics {
    /// Measures `bodies`, using `eps` to soften the potential sum (exact up
    /// to [`VIRIAL_EXACT_LIMIT`] bodies, subsampled beyond).
    pub fn measure(bodies: &[Body], eps: f64) -> Diagnostics {
        let radii = stats::lagrangian_radii(bodies, &[0.1, 0.5, 0.9]);
        let (r10, r50, r90) = (radii[0], radii[1], radii[2]);
        Diagnostics {
            nbodies: bodies.len(),
            total_mass: nbody::body::total_mass(bodies),
            com_offset: nbody::body::center_of_mass(bodies).norm(),
            momentum: energy::total_momentum(bodies).norm(),
            r10,
            r50,
            r90,
            velocity_dispersion: stats::velocity_dispersion(bodies),
            virial_ratio: {
                let t = energy::kinetic_energy(bodies);
                let w = energy::potential_energy_sampled(bodies, eps, VIRIAL_EXACT_LIMIT);
                if w == 0.0 {
                    f64::INFINITY
                } else {
                    2.0 * t / w.abs()
                }
            },
            angular_momentum: energy::total_angular_momentum(bodies).norm(),
            concentration: if r10 > 0.0 { r90 / r10 } else { f64::INFINITY },
        }
    }
}

/// A deterministic, seedable initial-condition generator.
///
/// Implementations must be pure functions of `(n, seed)`: two calls with the
/// same arguments return bit-identical bodies (the `bhsim` CLI, benches and
/// the distributed solvers all rely on replaying workloads by seed).  The
/// conventions of the paper apply: `G = 1`, total mass 1, the centre of mass
/// at the origin with zero net momentum, ids `0..n`.
pub trait Scenario: Send + Sync {
    /// Registry key (kebab-case, stable across versions).
    fn name(&self) -> &'static str;

    /// One-line human description for `bhsim --list`.
    fn description(&self) -> &'static str;

    /// Generates `n` bodies deterministically from `seed`.
    fn generate(&self, n: usize, seed: u64) -> Vec<Body>;

    /// Solver parameters recommended for this workload.
    fn recommended_config(&self) -> Tuning {
        Tuning::default()
    }

    /// Structural summary of a generated body set.
    fn diagnostics(&self, bodies: &[Body]) -> Diagnostics {
        Diagnostics::measure(bodies, self.recommended_config().eps)
    }
}

/// A string-keyed collection of scenarios.
///
/// Later registrations shadow earlier ones with the same name, so
/// applications can override a built-in family while keeping the rest.
#[derive(Default)]
pub struct Registry {
    entries: Vec<Box<dyn Scenario>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Adds a scenario (shadowing any previous entry with the same name).
    pub fn register(&mut self, scenario: Box<dyn Scenario>) {
        self.entries.push(scenario);
    }

    /// Looks a scenario up by its [`Scenario::name`].
    pub fn get(&self, name: &str) -> Option<&dyn Scenario> {
        self.entries.iter().rev().find(|s| s.name() == name).map(|s| s.as_ref())
    }

    /// The names currently registered, in registration order, deduplicated.
    pub fn names(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = Vec::new();
        for s in &self.entries {
            if !names.contains(&s.name()) {
                names.push(s.name());
            }
        }
        names
    }

    /// Iterates over the visible (non-shadowed) scenarios.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Scenario> {
        self.names().into_iter().filter_map(|n| self.get(n))
    }
}

/// Constructs a fresh default-configured instance of a built-in family by
/// name (the single source of truth for the name → constructor mapping;
/// [`builtin`] and any composer needing owned sub-scenarios build on it).
pub fn make(name: &str) -> Option<Box<dyn Scenario>> {
    match name {
        "plummer" => Some(Box::new(Plummer)),
        "king" => Some(Box::new(King::default())),
        "hernquist" => Some(Box::new(Hernquist::default())),
        "exp-disk" => Some(Box::new(ExpDisk::default())),
        "cold-cube" => Some(Box::new(ColdCube::default())),
        "merger" => Some(Box::new(Merger::default())),
        _ => None,
    }
}

/// The names [`make`] understands, in presentation order.
pub const BUILTIN_NAMES: [&str; 6] =
    ["plummer", "king", "hernquist", "exp-disk", "cold-cube", "merger"];

/// A registry preloaded with the six built-in scenario families.
pub fn builtin() -> Registry {
    let mut registry = Registry::new();
    for name in BUILTIN_NAMES {
        registry.register(make(name).expect("builtin family must be constructible"));
    }
    registry
}

/// Moves the centre of mass to the origin and zeroes the net momentum.
///
/// Every generator applies this as its final step so that solver-side
/// invariants (momentum conservation checks, COM-at-origin assumptions in
/// diagnostics) hold exactly, not just in expectation.
pub fn to_com_frame(bodies: &mut [Body]) {
    let total: f64 = bodies.iter().map(|b| b.mass).sum();
    if total <= 0.0 {
        return;
    }
    let com = bodies.iter().map(|b| b.pos * b.mass).sum::<Vec3>() / total;
    let mom = bodies.iter().map(|b| b.vel * b.mass).sum::<Vec3>() / total;
    for b in bodies {
        b.pos -= com;
        b.vel -= mom;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_has_all_six_families() {
        let registry = builtin();
        for name in ["plummer", "king", "hernquist", "exp-disk", "cold-cube", "merger"] {
            assert!(registry.get(name).is_some(), "missing builtin scenario {name}");
        }
        assert_eq!(registry.names().len(), 6);
    }

    #[test]
    fn registration_shadows_by_name() {
        struct Custom;
        impl Scenario for Custom {
            fn name(&self) -> &'static str {
                "plummer"
            }
            fn description(&self) -> &'static str {
                "custom override"
            }
            fn generate(&self, _n: usize, _seed: u64) -> Vec<Body> {
                Vec::new()
            }
        }
        let mut registry = builtin();
        registry.register(Box::new(Custom));
        assert_eq!(registry.get("plummer").unwrap().description(), "custom override");
        assert_eq!(registry.names().len(), 6, "shadowing must not duplicate names");
    }

    #[test]
    fn com_frame_is_exact() {
        let mut bodies = vec![
            Body::new(0, Vec3::new(1.0, 2.0, 3.0), Vec3::new(0.5, 0.0, 0.0), 2.0),
            Body::new(1, Vec3::new(-3.0, 0.0, 1.0), Vec3::new(0.0, -0.25, 0.0), 1.0),
        ];
        to_com_frame(&mut bodies);
        let com = nbody::body::center_of_mass(&bodies);
        let mom = energy::total_momentum(&bodies);
        assert!(com.norm() < 1e-15);
        assert!(mom.norm() < 1e-15);
    }
}
