//! Cold uniform cube: the classic violent-relaxation stress test.
//!
//! Bodies are placed uniformly at random inside a cube and released at rest.
//! The system is maximally out of equilibrium (virial ratio 0): it collapses
//! through its centre within roughly a free-fall time, producing a transient
//! density spike and strong body migration — the worst case for the paper's
//! costzones partitioner and the §5.2 redistribution machinery, whose ~2%
//! steady-state migration statistic assumes near-equilibrium workloads.

use crate::{to_com_frame, Scenario, Tuning};
use nbody::{Body, Vec3};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A cold (zero-velocity) uniform cube of side [`ColdCube::side`].
#[derive(Debug, Clone, Copy)]
pub struct ColdCube {
    /// Side length of the cube (centred on the origin).
    pub side: f64,
}

impl Default for ColdCube {
    fn default() -> Self {
        // Side 2 puts the initial extent in the same ballpark as the other
        // scenarios' r90, so machine-shape comparisons stay apples-to-apples.
        ColdCube { side: 2.0 }
    }
}

impl Scenario for ColdCube {
    fn name(&self) -> &'static str {
        "cold-cube"
    }

    fn description(&self) -> &'static str {
        "uniform cold cube collapsing through its centre (violent relaxation)"
    }

    fn generate(&self, n: usize, seed: u64) -> Vec<Body> {
        let mut rng = StdRng::seed_from_u64(seed);
        let half = self.side / 2.0;
        let mass = if n == 0 { 0.0 } else { 1.0 / n as f64 };
        let mut bodies: Vec<Body> = (0..n)
            .map(|i| {
                let pos = Vec3::new(
                    rng.gen_range(-half..=half),
                    rng.gen_range(-half..=half),
                    rng.gen_range(-half..=half),
                );
                Body::at_rest(i as u32, pos, mass)
            })
            .collect();
        to_com_frame(&mut bodies);
        bodies
    }

    fn recommended_config(&self) -> Tuning {
        // The collapse develops a dense core: shorten the step so the
        // leapfrog stays stable through peak density.
        Tuning { dt: 0.005, ..Tuning::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Diagnostics;

    #[test]
    fn cold_and_uniform() {
        let bodies = ColdCube::default().generate(2_000, 3);
        assert!(bodies.iter().all(|b| b.vel == Vec3::ZERO || b.vel.norm() < 1e-12));
        let d = Diagnostics::measure(&bodies, 0.05);
        assert!(d.virial_ratio < 1e-9, "cold system must have virial ratio 0");
        assert!((d.total_mass - 1.0).abs() < 1e-12);
        // Uniform cube of side s: the median distance from the centre is
        // ~0.49 s (between the inscribed-sphere radius 0.5 s and the mean).
        assert!(d.r50 > 0.4 * 2.0 && d.r50 < 0.55 * 2.0, "r50 {}", d.r50);
    }
}
