//! Rotating exponential disk: the anisotropic, rotation-supported workload.
//!
//! Surface density `Σ(R) ∝ e^{-R/R_d}` with an exponential vertical profile
//! — the standard idealization of a galactic stellar disk.  All the mass
//! lives near a plane, so an octree built over it is pathologically
//! unbalanced in `z`, and the ordered rotation means the workload's spatial
//! distribution *translates* coherently step over step instead of jittering
//! in place: both effects stress the costzones/subspace partitioners in ways
//! no isotropic sphere can.
//!
//! Radii are sampled exactly: the radial pdf `R e^{-R/R_d}` is a Gamma(2)
//! distribution, i.e. the sum of two exponential deviates.  Circular
//! velocities come from the enclosed-mass approximation
//! `v_c²(R) = M(<R)/R` with `M(<R) = 1 - (1 + R/R_d) e^{-R/R_d}` (G = 1),
//! plus small Gaussian dispersions in all three components.

use crate::sampling::gaussian;
use crate::{to_com_frame, Scenario, Tuning};
use nbody::{Body, Vec3};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::PI;

/// A rotating exponential disk.
#[derive(Debug, Clone, Copy)]
pub struct ExpDisk {
    /// Radial scale length `R_d` (half-mass radius ≈ 1.68 R_d).
    pub scale_length: f64,
    /// Vertical exponential scale height.
    pub scale_height: f64,
    /// Velocity-dispersion fraction: σ = `dispersion` · v_c in-plane and
    /// half of that vertically.
    pub dispersion: f64,
}

impl Default for ExpDisk {
    fn default() -> Self {
        // R_d such that the half-mass radius (≈1.68 R_d) matches the
        // spherical scenarios' ≈0.8, with a 10:1 thin disk.
        ExpDisk { scale_length: 0.45, scale_height: 0.045, dispersion: 0.1 }
    }
}

impl ExpDisk {
    /// Enclosed mass of the unit-mass exponential disk.
    fn mass_within(&self, radius: f64) -> f64 {
        let x = radius / self.scale_length;
        1.0 - (1.0 + x) * (-x).exp()
    }
}

impl Scenario for ExpDisk {
    fn name(&self) -> &'static str {
        "exp-disk"
    }

    fn description(&self) -> &'static str {
        "rotating exponential disk: planar, anisotropic, coherently moving mass"
    }

    fn generate(&self, n: usize, seed: u64) -> Vec<Body> {
        if n == 0 {
            return Vec::new();
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mass = 1.0 / n as f64;
        let mut bodies = Vec::with_capacity(n);
        for i in 0..n {
            // Gamma(2, R_d) radius: R e^{-R/R_d} pdf, sampled exactly as
            // the sum of two exponentials (-R_d ln u₁ - R_d ln u₂).
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen_range(1e-12..1.0);
            let radius = -self.scale_length * (u1 * u2).ln();
            let phi = rng.gen_range(0.0..2.0 * PI);
            let u3: f64 = rng.gen_range(1e-12..1.0);
            let z = -self.scale_height * u3.ln() * if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            let pos = Vec3::new(radius * phi.cos(), radius * phi.sin(), z);

            // Circular speed from the enclosed mass, softened at the centre
            // where M ~ R² would give v_c ~ √R but the division degenerates.
            let r_eff = radius.max(1e-6);
            let v_circ = (self.mass_within(r_eff) / r_eff).sqrt();
            let tangent = Vec3::new(-phi.sin(), phi.cos(), 0.0);
            let radial = Vec3::new(phi.cos(), phi.sin(), 0.0);
            let sigma = self.dispersion * v_circ;
            let vel = tangent * (v_circ + sigma * gaussian(&mut rng))
                + radial * (sigma * gaussian(&mut rng))
                + Vec3::new(0.0, 0.0, 0.5 * sigma * gaussian(&mut rng));

            bodies.push(Body::new(i as u32, pos, vel, mass));
        }
        to_com_frame(&mut bodies);
        bodies
    }

    fn recommended_config(&self) -> Tuning {
        // Thin-disk structure needs a softening below the scale height and
        // a time step resolving the inner orbits.
        Tuning { theta: 0.7, eps: 0.02, dt: 0.01 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Diagnostics;

    #[test]
    fn disk_is_flat_and_rotating() {
        let disk = ExpDisk::default();
        let bodies = disk.generate(4_000, 19);
        let d = Diagnostics::measure(&bodies, 0.02);
        assert!((d.total_mass - 1.0).abs() < 1e-9);
        // Flatness: z-extent far below the radial extent.
        let z_rms =
            (bodies.iter().map(|b| b.pos.z * b.pos.z).sum::<f64>() / bodies.len() as f64).sqrt();
        assert!(z_rms < 0.2 * d.r50, "disk not flat: z_rms {z_rms} vs r50 {}", d.r50);
        // Ordered rotation shows up as large net angular momentum per unit
        // mass (isotropic spheres have ~0 by cancellation).
        assert!(d.angular_momentum > 0.2, "angular momentum {}", d.angular_momentum);
        // Half-mass radius of an exponential disk is ≈ 1.68 R_d.
        let expect = 1.678 * disk.scale_length;
        assert!((d.r50 - expect).abs() < 0.15 * expect, "r50 {} vs {expect}", d.r50);
    }

    #[test]
    fn rotation_roughly_supports_the_disk() {
        let bodies = ExpDisk::default().generate(3_000, 29);
        let d = Diagnostics::measure(&bodies, 0.02);
        // The enclosed-mass rotation curve is an approximation to the true
        // flattened-potential one, so the virial ratio lands near — not
        // exactly at — equilibrium.
        assert!(
            d.virial_ratio > 0.4 && d.virial_ratio < 1.6,
            "virial ratio {} out of band",
            d.virial_ratio
        );
    }

    #[test]
    fn deterministic() {
        let disk = ExpDisk::default();
        assert_eq!(disk.generate(512, 2), disk.generate(512, 2));
    }
}
