//! The benchmark vocabulary: run specifications, repetition samples,
//! schema-versioned records and baseline diffing.
//!
//! The paper's core claim is *comparative performance* — per-phase timing
//! and communication traffic of the optimization ladder across machine
//! shapes — so the workspace needs a machine-readable trajectory of those
//! numbers and a way for CI to catch a regression.  This module holds the
//! types that the `benchsuite` binary (in `bh-bench`) and the `bhsim`
//! `--compare` driver share:
//!
//! * [`RunSpec`] — one point of the sweep (scenario × backend × opt level ×
//!   machine shape × size), with a stable [`RunSpec::key`] used to match
//!   runs against a committed baseline.
//! * [`Sample`] — one repetition's measurements: real wall time plus the
//!   deterministic outputs (simulated per-phase seconds, traffic counters).
//! * [`RunRecord`] / [`KernelRecord`] — aggregated medians/p90s over the
//!   repetitions of one sweep point / one force-kernel A-B pair.
//! * [`Record`] — the schema-versioned document written to `BENCH_*.json`
//!   ([`SCHEMA`]), parseable back via [`Record::from_json`].
//! * [`diff_against_baseline`] / [`kernel_regressions`] — the regression
//!   gate: deterministic metrics are compared against the committed
//!   baseline under a configurable threshold, and the leaf-coalesced force
//!   kernel must not lose to the per-body walk it replaced.
//!
//! Wall-clock times are recorded (median/p90 over repetitions) but **never
//! gated against the baseline**: the committed record was produced on a
//! different machine than the CI runner, so only the emulator's
//! deterministic outputs — simulated phase times and traffic counters — are
//! comparable across hosts.  The one wall-clock gate is *within* a record:
//! the kernel A-B pair ran on the same host seconds apart, so their ratio
//! is meaningful anywhere.

use crate::compare::BackendRun;
use crate::config::SimConfig;
use crate::report::{Phase, PhaseTimes};
use pgas::RankStats;
use serde::{Deserialize, Serialize, Value};

/// Schema identifier written into (and required of) every record.
pub const SCHEMA: &str = "bhbench/v1";

/// [`RunSpec::service`] value for standalone simulation runs (`benchsuite`,
/// `bhsim --compare`) — the only service that existed before the serving
/// path, and the decode default for records that predate the axis.
pub const SERVICE_SIM: &str = "sim";
/// [`RunSpec::service`] value for rows measured through the `bhserve`
/// daemon by the `bhload` stress driver (request latency percentiles and
/// throughput are meaningful only for these rows).
pub const SERVICE_BHSERVE: &str = "bhserve";
/// [`RunSpec::service`] value for rows measured by `bhload --chaos` — the
/// serving mix driven while faults are injected (daemon kills, client
/// aborts, frame faults).  A separate service axis value so chaos rows never
/// collide with the healthy serving rows under the baseline diff: the same
/// job measured under injected failures is a different measurement protocol.
pub const SERVICE_CHAOS: &str = "chaos";

/// [`RunSpec::warm`] value for runs integrated from `t = 0` (every run
/// before the warm-start pathway, and the decode default for records that
/// predate the axis).
pub const WARM_COLD: &str = "cold";

/// [`RunSpec::warm`] value for a run resumed from a snapshot taken after a
/// `prefix`-step equilibration prefix.
pub fn warm_label(prefix: usize) -> String {
    format!("warm[p{prefix}]")
}

/// Kernel-record engine name for the batched (SoA) cached walk.
pub const KERNEL_COALESCED: &str = "leaf-coalesced";
/// Kernel-record engine name for the per-body reference walk (one node
/// record chased per leaf — the replaced walk's memory behavior).
pub const KERNEL_PER_BODY: &str = "per-body-walk";

/// One point of the benchmark sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSpec {
    /// Workload family (scenario registry key).
    pub scenario: String,
    /// Solver (backend registry key).
    pub backend: String,
    /// UPC optimization level name (meaningful for the `upc` backend; the
    /// other backends record the level they were configured with).
    pub opt: String,
    /// Tree-lifecycle policy label, parameters included
    /// ([`crate::TreePolicy::spec_label`], e.g. `reuse[e8,d0.25]`).  The
    /// cadence/drift parameters change the measurement protocol, so they
    /// are part of the sweep point's identity: a parameter change retires
    /// the old key (flagged by the baseline diff) instead of silently
    /// comparing incomparable numbers under it.
    pub policy: String,
    /// Force-walk mode name ([`crate::WalkMode::name`]).  Like `policy`,
    /// part of the sweep point's identity: a group-walk row and a per-body
    /// row of the same grid point are different measurement protocols.
    /// Records predating the walk axis decode as `per-body` (the only walk
    /// that existed), so their keys keep matching.
    pub walk: String,
    /// Tree-construction algorithm name ([`crate::TreeBuild::name`]).  Like
    /// `walk`, part of the sweep point's identity: the sorted build and
    /// global insertion are different measurement protocols for the tree
    /// phase.  Records predating the build axis decode as `insertion` (the
    /// only build that existed), so their keys keep matching.
    pub build: String,
    /// Measurement pathway: [`SERVICE_SIM`] for standalone runs,
    /// [`SERVICE_BHSERVE`] for rows driven through the serving daemon by
    /// `bhload`.  Part of the sweep-point identity — the same job measured
    /// through the service carries framing, dispatch and queueing that a
    /// standalone run does not — and a key axis ([`KEY_AXES`]), so serving
    /// rows diff cleanly against pre-serving baselines through the
    /// allow-new-axes pathway.  Records predating the axis decode as
    /// [`SERVICE_SIM`].
    pub service: String,
    /// Warm-start pathway: [`WARM_COLD`] for runs integrated from `t = 0`;
    /// `warm[p<K>]` for runs resumed from a shared snapstore snapshot taken
    /// after a `K`-step equilibration prefix.  Part of the sweep-point
    /// identity — a resumed run measures only the post-prefix tail, so its
    /// numbers are incomparable with a cold run of the same grid point —
    /// and a key axis ([`KEY_AXES`]), so warm rows diff cleanly against
    /// pre-warm baselines through the allow-new-axes pathway.  Records
    /// predating the axis decode as [`WARM_COLD`].
    pub warm: String,
    /// Number of bodies.
    pub nbodies: usize,
    /// Emulated nodes.
    pub nodes: usize,
    /// Emulated UPC threads per node.
    pub threads_per_node: usize,
    /// Workload RNG seed.
    pub seed: u64,
    /// Total time steps.
    pub steps: usize,
    /// Trailing measured steps.
    pub measured_steps: usize,
}

impl RunSpec {
    /// Builds the spec for running `scenario` through `backend` under `cfg`.
    pub fn new(scenario: &str, backend: &str, cfg: &SimConfig) -> RunSpec {
        RunSpec {
            scenario: scenario.to_string(),
            backend: backend.to_string(),
            opt: cfg.opt.name().to_string(),
            policy: cfg.tree_policy.spec_label(),
            walk: cfg.walk.name().to_string(),
            build: cfg.build.name().to_string(),
            service: SERVICE_SIM.to_string(),
            warm: WARM_COLD.to_string(),
            nbodies: cfg.nbodies,
            nodes: cfg.machine.nodes,
            threads_per_node: cfg.machine.threads_per_node,
            seed: cfg.seed,
            steps: cfg.steps,
            measured_steps: cfg.measured_steps,
        }
    }

    /// Stable identity used to match runs between a current record and a
    /// committed baseline.
    pub fn key(&self) -> String {
        format!(
            "{}/{}/{}/{}/{}/{}/{}/{}/n{}/m{}x{}",
            self.scenario,
            self.backend,
            self.opt,
            self.policy,
            self.walk,
            self.build,
            self.service,
            self.warm,
            self.nbodies,
            self.nodes,
            self.threads_per_node
        )
    }
}

/// One repetition's measurements for a sweep point.
#[derive(Debug, Clone, Serialize)]
pub struct Sample {
    /// Real (host) wall time of the whole run, milliseconds.
    pub wall_ms: f64,
    /// Client-observed request latency, milliseconds — the time from
    /// sending the job request to receiving its response, including
    /// framing, dispatch and server-side queueing.  Only meaningful for
    /// serving rows ([`SERVICE_BHSERVE`]); standalone runs record `0.0`
    /// ("not a service measurement").
    pub latency_ms: f64,
    /// Simulated per-phase seconds (max over ranks, measured window).
    pub phases: PhaseTimes,
    /// Simulated makespan of the measured window.
    pub total_sim: f64,
    /// Body migration per measured step.
    pub migration_fraction: f64,
    /// Peak node-arena bytes across ranks and steps (deterministic; `0`
    /// when the backend has no node arena).
    pub tree_bytes: u64,
    /// Milliseconds this request spent in recovery — reconnects, backoff
    /// and retries — before it finally succeeded.  `0.0` for requests that
    /// succeeded on the first attempt, for fault-free rows and for records
    /// predating the field.  Host-dependent, never gated.
    pub recovery_ms: f64,
    /// `1.0` when the request's first attempt failed (it was recovered by a
    /// retry), `0.0` otherwise — aggregates to the cell's error rate.
    pub error_rate: f64,
    /// Communication counters summed over ranks, whole run.
    pub stats: RankStats,
}

impl Sample {
    /// Extracts the sample of one completed [`BackendRun`].
    pub fn from_run(run: &BackendRun) -> Sample {
        Sample {
            wall_ms: run.wall_ms,
            latency_ms: 0.0,
            phases: run.result.phases,
            total_sim: run.result.total,
            migration_fraction: run.result.migration_fraction,
            tree_bytes: run.result.tree_bytes,
            recovery_ms: 0.0,
            error_rate: 0.0,
            stats: run.result.total_stats(),
        }
    }
}

/// Median (p50), 90th and 99th percentile of a set of repetitions
/// (nearest-rank).  The p99 exists for the serving path, where tail latency
/// over thousands of requests is the headline number; records written before
/// the field decode it as `0.0` ("not recorded").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Stat {
    /// Median (nearest-rank) over the repetitions — the p50.
    pub median: f64,
    /// 90th percentile (nearest-rank) over the repetitions.
    pub p90: f64,
    /// 99th percentile (nearest-rank) over the repetitions; `0.0` in records
    /// that predate the field.
    pub p99: f64,
}

impl Stat {
    /// Computes the statistic of a non-empty set of values.
    pub fn of(values: &[f64]) -> Stat {
        assert!(!values.is_empty(), "Stat::of needs at least one value");
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN samples"));
        Stat {
            median: nearest_rank(&sorted, 0.50),
            p90: nearest_rank(&sorted, 0.90),
            p99: nearest_rank(&sorted, 0.99),
        }
    }

    /// The all-zero statistic ("not recorded"), used for fields that only
    /// some measurement pathways populate (request latency on standalone
    /// runs).
    pub fn zero() -> Stat {
        Stat { median: 0.0, p90: 0.0, p99: 0.0 }
    }
}

fn nearest_rank(sorted: &[f64], q: f64) -> f64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn median_u64(values: impl Iterator<Item = u64>) -> u64 {
    let mut v: Vec<u64> = values.collect();
    v.sort_unstable();
    v[(v.len() - 1) / 2]
}

/// Aggregated repetitions of one sweep point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunRecord {
    /// The sweep point.
    pub spec: RunSpec,
    /// Number of repetitions aggregated.
    pub reps: usize,
    /// Wall time of the whole run (informational; host-dependent).
    pub wall_ms: Stat,
    /// Client-observed request latency over the repetitions (p50/p90/p99,
    /// milliseconds).  Populated for serving rows ([`SERVICE_BHSERVE`]);
    /// all-zero for standalone runs and for records predating the field.
    /// Host-dependent like `wall_ms`, so never gated against a baseline.
    pub latency_ms: Stat,
    /// Completed requests per second over the measurement window.  `0.0`
    /// for standalone runs and legacy records; host-dependent, never gated.
    pub throughput_rps: f64,
    /// Per-phase simulated medians over the repetitions.
    pub phases_median: PhaseTimes,
    /// Per-phase simulated p90s over the repetitions.
    pub phases_p90: PhaseTimes,
    /// Median simulated makespan.
    pub total_sim_median: f64,
    /// Median interaction count (deterministic up to tree-build races).
    pub interactions: u64,
    /// Median multipole-acceptance test count (the traversal-volume counter
    /// the group walk amortizes).  Records predating the walk axis decode
    /// as 0 ("not recorded") and the metric is then exempt from diffing.
    pub macs: u64,
    /// Median elementary tree-operation count.  Like `macs`, 0 in records
    /// that predate the counter.
    pub tree_ops: u64,
    /// Median peak node-arena bytes (the compact-layout memory metric).
    /// Like `macs`, 0 in records that predate the counter, and the metric
    /// is then exempt from diffing.
    pub tree_bytes: u64,
    /// Median fine-grained remote gets.
    pub remote_gets: u64,
    /// Median fine-grained remote puts.
    pub remote_puts: u64,
    /// Median bulk message count.
    pub messages: u64,
    /// Median bytes received.
    pub bytes_in: u64,
    /// Median bytes sent.
    pub bytes_out: u64,
    /// Median global lock acquisitions.
    pub lock_acquires: u64,
    /// Worst-case recovery time over the repetitions, milliseconds — the
    /// longest any request spent reconnecting/retrying before it succeeded.
    /// `0.0` for fault-free rows and records predating the field.
    /// Host-dependent like `wall_ms`/`latency_ms`, so never gated.
    pub recovery_ms: f64,
    /// Fraction of requests whose first attempt failed and were recovered
    /// by a retry, in `[0, 1]`.  `0.0` for fault-free rows and legacy
    /// records.  Informational, never gated.
    pub error_rate: f64,
}

impl RunRecord {
    /// Aggregates the repetitions of one sweep point.
    pub fn from_samples(spec: RunSpec, samples: &[Sample]) -> RunRecord {
        assert!(!samples.is_empty(), "a run record needs at least one sample");
        let walls: Vec<f64> = samples.iter().map(|s| s.wall_ms).collect();
        let mut phases_median = PhaseTimes::default();
        let mut phases_p90 = PhaseTimes::default();
        for phase in Phase::ALL {
            let per: Vec<f64> = samples.iter().map(|s| s.phases.get(phase)).collect();
            let stat = Stat::of(&per);
            phases_median.set(phase, stat.median);
            phases_p90.set(phase, stat.p90);
        }
        let totals: Vec<f64> = samples.iter().map(|s| s.total_sim).collect();
        let latencies: Vec<f64> = samples.iter().map(|s| s.latency_ms).collect();
        RunRecord {
            spec,
            reps: samples.len(),
            wall_ms: Stat::of(&walls),
            latency_ms: if latencies.iter().any(|&l| l > 0.0) {
                Stat::of(&latencies)
            } else {
                Stat::zero()
            },
            throughput_rps: 0.0,
            phases_median,
            phases_p90,
            total_sim_median: Stat::of(&totals).median,
            interactions: median_u64(samples.iter().map(|s| s.stats.interactions)),
            macs: median_u64(samples.iter().map(|s| s.stats.macs)),
            tree_ops: median_u64(samples.iter().map(|s| s.stats.tree_ops)),
            tree_bytes: median_u64(samples.iter().map(|s| s.tree_bytes)),
            remote_gets: median_u64(samples.iter().map(|s| s.stats.remote_gets)),
            remote_puts: median_u64(samples.iter().map(|s| s.stats.remote_puts)),
            messages: median_u64(samples.iter().map(|s| s.stats.messages)),
            bytes_in: median_u64(samples.iter().map(|s| s.stats.bytes_in)),
            bytes_out: median_u64(samples.iter().map(|s| s.stats.bytes_out)),
            lock_acquires: median_u64(samples.iter().map(|s| s.stats.lock_acquires)),
            recovery_ms: samples.iter().map(|s| s.recovery_ms).fold(0.0, f64::max),
            error_rate: samples.iter().map(|s| s.error_rate).sum::<f64>() / samples.len() as f64,
        }
    }
}

/// Aggregated repetitions of one force-kernel measurement (one engine of an
/// A-B pair; records with both engines for the same scenario and size form
/// the comparison the perf gate checks).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelRecord {
    /// Workload family.
    pub scenario: String,
    /// Number of bodies walked.
    pub nbodies: usize,
    /// Kernel engine: [`KERNEL_COALESCED`] or [`KERNEL_PER_BODY`].
    pub engine: String,
    /// Number of repetitions aggregated.
    pub reps: usize,
    /// Wall time of computing all forces once, milliseconds.
    pub force_wall_ms: Stat,
    /// Interactions evaluated per repetition (identical across engines).
    pub interactions: u64,
}

/// The sweep axes every record produced by the current code encodes in its
/// [`RunSpec::key`]s, beyond the original scenario/backend/opt/size/machine
/// vocabulary.  Written into [`Record::axes`] so the baseline diff can tell
/// an *axis addition* (the grid legitimately grew a dimension the baseline
/// predates) from a point silently vanishing.
pub const KEY_AXES: [&str; 5] = ["policy", "walk", "build", "service", "warm"];

/// The schema-versioned document committed as `BENCH_*.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Record {
    /// Always [`SCHEMA`].
    pub schema: String,
    /// Commit the record was produced from (`unknown` outside a checkout).
    pub commit: String,
    /// `true` when only the quick grid was run.
    pub quick: bool,
    /// The optional key axes this record's grid encodes (see [`KEY_AXES`]).
    /// Legacy records decode the axes they historically carried, so a
    /// current run diffing against an older baseline can recognize the
    /// axis addition and allow the grid restructuring it implies
    /// ([`BaselineDiff::missing_allowed`]).
    pub axes: Vec<String>,
    /// Aggregated sweep points.
    pub runs: Vec<RunRecord>,
    /// Aggregated force-kernel measurements.
    pub kernels: Vec<KernelRecord>,
}

impl Record {
    /// An empty record for the given provenance.
    pub fn new(commit: String, quick: bool) -> Record {
        Record {
            schema: SCHEMA.to_string(),
            commit,
            quick,
            axes: KEY_AXES.iter().map(|a| a.to_string()).collect(),
            runs: Vec::new(),
            kernels: Vec::new(),
        }
    }

    /// Checks the structural invariants every well-formed record satisfies.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != SCHEMA {
            return Err(format!("schema mismatch: {:?} (expected {SCHEMA:?})", self.schema));
        }
        if self.runs.is_empty() {
            return Err("record contains no runs".to_string());
        }
        for run in &self.runs {
            let key = run.spec.key();
            if run.reps == 0 {
                return Err(format!("{key}: zero repetitions"));
            }
            if run.wall_ms.median < 0.0 || run.wall_ms.p90 < run.wall_ms.median {
                return Err(format!("{key}: ill-formed wall_ms stat"));
            }
            // The p99 may be 0 ("not recorded", legacy records); when
            // recorded it must sit at or above the p90.
            if run.wall_ms.p99 > 0.0 && run.wall_ms.p99 < run.wall_ms.p90 {
                return Err(format!("{key}: ill-formed wall_ms stat (p99 < p90)"));
            }
            let lat = &run.latency_ms;
            if lat.median < 0.0 || lat.p90 < lat.median || (lat.p99 > 0.0 && lat.p99 < lat.p90) {
                return Err(format!("{key}: ill-formed latency_ms stat"));
            }
            if !run.throughput_rps.is_finite() || run.throughput_rps < 0.0 {
                return Err(format!("{key}: ill-formed throughput_rps"));
            }
            for phase in Phase::ALL {
                let (m, p) = (run.phases_median.get(phase), run.phases_p90.get(phase));
                if m < 0.0 || p < m {
                    return Err(format!("{key}: ill-formed {} stat", phase.label()));
                }
            }
            if run.total_sim_median <= 0.0 {
                return Err(format!("{key}: non-positive simulated makespan"));
            }
            if run.interactions == 0 {
                return Err(format!("{key}: zero interactions"));
            }
            if !run.recovery_ms.is_finite() || run.recovery_ms < 0.0 {
                return Err(format!("{key}: ill-formed recovery_ms"));
            }
            if !run.error_rate.is_finite() || !(0.0..=1.0).contains(&run.error_rate) {
                return Err(format!("{key}: error_rate must lie in [0, 1]"));
            }
        }
        for k in &self.kernels {
            if k.engine != KERNEL_COALESCED && k.engine != KERNEL_PER_BODY {
                return Err(format!("unknown kernel engine {:?}", k.engine));
            }
            if k.reps == 0 || k.interactions == 0 || k.force_wall_ms.median <= 0.0 {
                return Err(format!("ill-formed kernel record {}/{}", k.scenario, k.engine));
            }
        }
        Ok(())
    }

    /// Renders the record as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("serialize bench record")
    }

    /// Parses and validates a record from JSON text (a committed
    /// `BENCH_*.json`).  Any structural problem is a schema violation and
    /// reported as `Err`.
    pub fn from_json(text: &str) -> Result<Record, String> {
        let value = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
        let record = decode_record(&value)?;
        record.validate()?;
        Ok(record)
    }
}

// ---------------------------------------------------------------------------
// JSON decoding (the vendored serde derives serialization only).

fn field<'a>(v: &'a Value, key: &str, ctx: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("{ctx}: missing field {key:?}"))
}

fn f64_field(v: &Value, key: &str, ctx: &str) -> Result<f64, String> {
    field(v, key, ctx)?.as_f64().ok_or_else(|| format!("{ctx}: field {key:?} is not a number"))
}

fn u64_field(v: &Value, key: &str, ctx: &str) -> Result<u64, String> {
    field(v, key, ctx)?
        .as_u64()
        .ok_or_else(|| format!("{ctx}: field {key:?} is not a non-negative integer"))
}

fn usize_field(v: &Value, key: &str, ctx: &str) -> Result<usize, String> {
    Ok(u64_field(v, key, ctx)? as usize)
}

fn str_field(v: &Value, key: &str, ctx: &str) -> Result<String, String> {
    Ok(field(v, key, ctx)?
        .as_str()
        .ok_or_else(|| format!("{ctx}: field {key:?} is not a string"))?
        .to_string())
}

fn decode_stat(v: &Value, ctx: &str) -> Result<Stat, String> {
    Ok(Stat {
        median: f64_field(v, "median", ctx)?,
        p90: f64_field(v, "p90", ctx)?,
        // Records written before the p99 field decode as 0 ("not recorded").
        p99: match v.get("p99") {
            Some(_) => f64_field(v, "p99", ctx)?,
            None => 0.0,
        },
    })
}

fn decode_phases(v: &Value, ctx: &str) -> Result<PhaseTimes, String> {
    Ok(PhaseTimes {
        tree: f64_field(v, "tree", ctx)?,
        cofm: f64_field(v, "cofm", ctx)?,
        partition: f64_field(v, "partition", ctx)?,
        redistribute: f64_field(v, "redistribute", ctx)?,
        force: f64_field(v, "force", ctx)?,
        advance: f64_field(v, "advance", ctx)?,
    })
}

fn decode_spec(v: &Value, ctx: &str) -> Result<RunSpec, String> {
    Ok(RunSpec {
        scenario: str_field(v, "scenario", ctx)?,
        backend: str_field(v, "backend", ctx)?,
        opt: str_field(v, "opt", ctx)?,
        // Records predating the tree-lifecycle subsystem ran the paper's
        // per-step rebuild.
        policy: match v.get("policy") {
            Some(_) => str_field(v, "policy", ctx)?,
            None => "rebuild".to_string(),
        },
        // Records predating the walk axis ran the only walk that existed.
        walk: match v.get("walk") {
            Some(_) => str_field(v, "walk", ctx)?,
            None => "per-body".to_string(),
        },
        // Records predating the build axis ran the only build that existed.
        build: match v.get("build") {
            Some(_) => str_field(v, "build", ctx)?,
            None => "insertion".to_string(),
        },
        // Records predating the serving path are all standalone runs.
        service: match v.get("service") {
            Some(_) => str_field(v, "service", ctx)?,
            None => SERVICE_SIM.to_string(),
        },
        // Records predating the warm-start pathway all integrated from t=0.
        warm: match v.get("warm") {
            Some(_) => str_field(v, "warm", ctx)?,
            None => WARM_COLD.to_string(),
        },
        nbodies: usize_field(v, "nbodies", ctx)?,
        nodes: usize_field(v, "nodes", ctx)?,
        threads_per_node: usize_field(v, "threads_per_node", ctx)?,
        seed: u64_field(v, "seed", ctx)?,
        steps: usize_field(v, "steps", ctx)?,
        measured_steps: usize_field(v, "measured_steps", ctx)?,
    })
}

fn decode_run(v: &Value) -> Result<RunRecord, String> {
    let spec = decode_spec(field(v, "spec", "run")?, "run.spec")?;
    let ctx = spec.key();
    Ok(RunRecord {
        reps: usize_field(v, "reps", &ctx)?,
        wall_ms: decode_stat(field(v, "wall_ms", &ctx)?, &ctx)?,
        // Serving-path fields; standalone and legacy records carry zeros.
        latency_ms: match v.get("latency_ms") {
            Some(stat) => decode_stat(stat, &ctx)?,
            None => Stat::zero(),
        },
        throughput_rps: match v.get("throughput_rps") {
            Some(_) => f64_field(v, "throughput_rps", &ctx)?,
            None => 0.0,
        },
        phases_median: decode_phases(field(v, "phases_median", &ctx)?, &ctx)?,
        phases_p90: decode_phases(field(v, "phases_p90", &ctx)?, &ctx)?,
        total_sim_median: f64_field(v, "total_sim_median", &ctx)?,
        interactions: u64_field(v, "interactions", &ctx)?,
        // Counters added after bhbench/v1 records were first committed
        // decode as 0 ("not recorded"); the diff exempts them then.
        macs: match v.get("macs") {
            Some(_) => u64_field(v, "macs", &ctx)?,
            None => 0,
        },
        tree_ops: match v.get("tree_ops") {
            Some(_) => u64_field(v, "tree_ops", &ctx)?,
            None => 0,
        },
        tree_bytes: match v.get("tree_bytes") {
            Some(_) => u64_field(v, "tree_bytes", &ctx)?,
            None => 0,
        },
        remote_gets: u64_field(v, "remote_gets", &ctx)?,
        remote_puts: u64_field(v, "remote_puts", &ctx)?,
        messages: u64_field(v, "messages", &ctx)?,
        bytes_in: u64_field(v, "bytes_in", &ctx)?,
        bytes_out: u64_field(v, "bytes_out", &ctx)?,
        lock_acquires: u64_field(v, "lock_acquires", &ctx)?,
        // Chaos-slice fields; fault-free and legacy records carry zeros.
        recovery_ms: match v.get("recovery_ms") {
            Some(_) => f64_field(v, "recovery_ms", &ctx)?,
            None => 0.0,
        },
        error_rate: match v.get("error_rate") {
            Some(_) => f64_field(v, "error_rate", &ctx)?,
            None => 0.0,
        },
        spec,
    })
}

fn decode_kernel(v: &Value) -> Result<KernelRecord, String> {
    let ctx = "kernel";
    Ok(KernelRecord {
        scenario: str_field(v, "scenario", ctx)?,
        nbodies: usize_field(v, "nbodies", ctx)?,
        engine: str_field(v, "engine", ctx)?,
        reps: usize_field(v, "reps", ctx)?,
        force_wall_ms: decode_stat(field(v, "force_wall_ms", ctx)?, ctx)?,
        interactions: u64_field(v, "interactions", ctx)?,
    })
}

fn decode_record(v: &Value) -> Result<Record, String> {
    let runs = field(v, "runs", "record")?
        .as_array()
        .ok_or("record: runs is not an array")?
        .iter()
        .map(decode_run)
        .collect::<Result<Vec<_>, _>>()?;
    let kernels = field(v, "kernels", "record")?
        .as_array()
        .ok_or("record: kernels is not an array")?
        .iter()
        .map(decode_kernel)
        .collect::<Result<Vec<_>, _>>()?;
    // Records written before the axes field infer the axes their key
    // vocabulary historically carried: the policy axis shipped together
    // with the `policy` spec field, the walk axis with the axes field
    // itself.
    let axes = match v.get("axes") {
        // Present but malformed is a schema violation like any other field
        // — a mis-shaped axes list must not silently activate the
        // allow-new-keys leniency through the legacy-inference fallback.
        Some(val) => val
            .as_array()
            .ok_or("record: axes is not an array")?
            .iter()
            .map(|a| a.as_str().map(str::to_string).ok_or("record: axes entry is not a string"))
            .collect::<Result<Vec<_>, _>>()?,
        None => {
            let has_policy = field(v, "runs", "record")?
                .as_array()
                .and_then(|runs| runs.first())
                .and_then(|r| r.get("spec"))
                .map(|s| s.get("policy").is_some())
                .unwrap_or(false);
            if has_policy {
                vec!["policy".to_string()]
            } else {
                Vec::new()
            }
        }
    };
    Ok(Record {
        schema: str_field(v, "schema", "record")?,
        commit: str_field(v, "commit", "record")?,
        quick: field(v, "quick", "record")?.as_bool().ok_or("record: quick is not a bool")?,
        axes,
        runs,
        kernels,
    })
}

// ---------------------------------------------------------------------------
// Baseline diffing.

/// One metric compared against the baseline.
#[derive(Debug, Clone, Serialize)]
pub struct MetricDiff {
    /// The sweep point ([`RunSpec::key`]) or kernel pair the metric belongs
    /// to.
    pub key: String,
    /// Metric name.
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// `current / baseline`.
    pub ratio: f64,
}

impl MetricDiff {
    fn describe(&self) -> String {
        format!(
            "{} {}: {:.4} -> {:.4} ({:+.1}%)",
            self.key,
            self.metric,
            self.baseline,
            self.current,
            100.0 * (self.ratio - 1.0)
        )
    }
}

/// Outcome of diffing a record against a committed baseline.
#[derive(Debug, Clone, Default)]
pub struct BaselineDiff {
    /// Number of sweep points found in both records.
    pub compared: usize,
    /// Deterministic metrics that regressed past the threshold.
    pub regressions: Vec<MetricDiff>,
    /// Current sweep points with no baseline counterpart (informational —
    /// new points are how the grid grows).
    pub unmatched: Vec<String>,
    /// Baseline sweep points and kernel engines the current record should
    /// have reproduced but did not.  A run or kernel silently *vanishing*
    /// from the grid is a gate violation, not a pass: historically the diff
    /// only iterated the current record's keys, so deleting a scenario from
    /// the grid (or one engine of a kernel A-B pair) made its regressions
    /// unobservable.  When a quick record is diffed against a full
    /// baseline, the baseline's full-grid points (a measurement protocol no
    /// current point uses) are exempt.
    pub missing: Vec<String>,
    /// Baseline points absent from the current record *while the current
    /// record declares a key axis the baseline predates*
    /// ([`BaselineDiff::new_axes`] non-empty).  An axis addition
    /// legitimately restructures the grid — old points move under new keys
    /// or retire — so these are reported but are **not** gate violations;
    /// once the baseline is regenerated with the new schema the axes match
    /// again and every absence goes back to [`BaselineDiff::missing`].
    pub missing_allowed: Vec<String>,
    /// Key axes the current record encodes that the baseline predates
    /// (current [`Record::axes`] minus baseline axes).  Non-empty exactly
    /// when the allow-new-keys pathway is active.
    pub new_axes: Vec<String>,
    /// Sweep points whose [`RunSpec::key`] matched but whose measurement
    /// protocol (seed, steps, measured steps) differs — the baseline is
    /// stale and the numbers are not comparable; callers must treat these
    /// as an error, not a regression.
    pub protocol_mismatches: Vec<String>,
}

impl BaselineDiff {
    /// Human-readable summary lines of the regressions.
    pub fn describe_regressions(&self) -> Vec<String> {
        self.regressions.iter().map(MetricDiff::describe).collect()
    }
}

/// Phases below this many simulated seconds are exempt from relative
/// comparison: they are dominated by discrete cost-model quanta — a single
/// extra barrier, lock retry or done-flag wait (whose count depends on real
/// thread scheduling) flips the ratio wildly without meaning anything.  At
/// the quick-grid sizes the centre-of-mass phase routinely swings 2x around
/// half a millisecond per measured step from retry noise alone, so the
/// floor sits above that band; makespans aggregate many quanta and stay
/// gated by the tighter [`TOTAL_FLOOR_SIM_SECONDS`], and the deterministic
/// traffic counters gate small-phase regressions regardless.
const PHASE_FLOOR_SIM_SECONDS: f64 = 3e-3;

/// Simulated makespans below this are exempt from relative comparison (see
/// [`PHASE_FLOOR_SIM_SECONDS`]; totals are far less quantized, so the floor
/// is only a guard against division nonsense).
const TOTAL_FLOOR_SIM_SECONDS: f64 = 1e-4;

/// Counters below this magnitude are exempt from relative comparison.
const COUNTER_FLOOR: f64 = 64.0;

/// Compares `current` against `baseline`: every sweep point present in both
/// records has its **deterministic** metrics (simulated phase medians,
/// simulated makespan, traffic counters) checked; a metric regresses when it
/// exceeds the baseline by more than `threshold` (a fraction, e.g. `0.25`
/// for the CI gate's 25 %).  Wall-clock times are never compared — they are
/// host-dependent (see the module docs).
///
/// The diff is **symmetric**: baseline runs and kernel engines the current
/// record should have reproduced but lacks are reported in
/// [`BaselineDiff::missing`] and must be treated as gate violations (see
/// the field docs for the quick-vs-full scoping).
pub fn diff_against_baseline(current: &Record, baseline: &Record, threshold: f64) -> BaselineDiff {
    let mut diff = BaselineDiff::default();
    for run in &current.runs {
        let key = run.spec.key();
        let Some(base) = baseline.runs.iter().find(|b| b.spec.key() == key) else {
            diff.unmatched.push(key);
            continue;
        };
        // The key identifies the sweep point; the rest of the spec is the
        // measurement protocol.  If it drifted (grid edited without
        // regenerating the baseline), the numbers are incomparable — a
        // relative check would report a spurious regression or mask a real
        // one.
        if base.spec != run.spec {
            diff.protocol_mismatches.push(format!(
                "{key}: seed/steps/measured_steps {}/{}/{} vs baseline {}/{}/{}",
                run.spec.seed,
                run.spec.steps,
                run.spec.measured_steps,
                base.spec.seed,
                base.spec.steps,
                base.spec.measured_steps
            ));
            continue;
        }
        diff.compared += 1;
        let mut check = |metric: &str, baseline: f64, current: f64, floor: f64| {
            if baseline < floor && current < floor {
                return;
            }
            let ratio = current / baseline.max(f64::MIN_POSITIVE);
            if ratio > 1.0 + threshold {
                diff.regressions.push(MetricDiff {
                    key: key.clone(),
                    metric: metric.to_string(),
                    baseline,
                    current,
                    ratio,
                });
            }
        };
        check("total_sim", base.total_sim_median, run.total_sim_median, TOTAL_FLOOR_SIM_SECONDS);
        for phase in Phase::ALL {
            check(
                phase.key(),
                base.phases_median.get(phase),
                run.phases_median.get(phase),
                PHASE_FLOOR_SIM_SECONDS,
            );
        }
        check("interactions", base.interactions as f64, run.interactions as f64, COUNTER_FLOOR);
        // Counters the baseline may predate (decoded as 0 = "not
        // recorded") are only compared when the baseline recorded them.
        if base.macs > 0 {
            check("macs", base.macs as f64, run.macs as f64, COUNTER_FLOOR);
        }
        if base.tree_ops > 0 {
            check("tree_ops", base.tree_ops as f64, run.tree_ops as f64, COUNTER_FLOOR);
        }
        if base.tree_bytes > 0 {
            check("tree_bytes", base.tree_bytes as f64, run.tree_bytes as f64, COUNTER_FLOOR);
        }
        check(
            "remote_ops",
            (base.remote_gets + base.remote_puts) as f64,
            (run.remote_gets + run.remote_puts) as f64,
            COUNTER_FLOOR,
        );
        check("messages", base.messages as f64, run.messages as f64, COUNTER_FLOOR);
        check("bytes_out", base.bytes_out as f64, run.bytes_out as f64, COUNTER_FLOOR);
        check("lock_acquires", base.lock_acquires as f64, run.lock_acquires as f64, COUNTER_FLOOR);
    }

    // The allow-new-keys pathway: when the current record's schema declares
    // a key axis the baseline predates, the grid has legitimately been
    // restructured around the new dimension — baseline points may have
    // moved under new keys or been retired, and demanding their literal
    // keys back would force regenerating history just to add an axis.
    // Absences are then reported (`missing_allowed`) but are not gate
    // violations.  Axes the *baseline* has and the current record lacks are
    // not an addition and get no leniency.
    diff.new_axes = current.axes.iter().filter(|a| !baseline.axes.contains(a)).cloned().collect();
    let axis_added = !diff.new_axes.is_empty();

    // The symmetric direction: baseline points the current record failed to
    // reproduce.  A quick record only re-runs the baseline's quick-sized
    // points (the quick and full grids use disjoint problem sizes), so when
    // a quick record is diffed against a full baseline the full-grid points
    // — recognizable by a problem size no current point attempts — are
    // exempt.
    let quick_vs_full = current.quick && !baseline.quick;
    let size_attempted = |n: usize| -> bool { current.runs.iter().any(|r| r.spec.nbodies == n) };
    for base in &baseline.runs {
        let key = base.spec.key();
        if current.runs.iter().any(|r| r.spec.key() == key) {
            continue;
        }
        if quick_vs_full && !size_attempted(base.spec.nbodies) {
            continue;
        }
        if axis_added {
            diff.missing_allowed.push(format!("run {key}"));
        } else {
            diff.missing.push(format!("run {key}"));
        }
    }
    for base in &baseline.kernels {
        let pair_in_current = current
            .kernels
            .iter()
            .any(|k| k.scenario == base.scenario && k.nbodies == base.nbodies);
        let engine_in_current = current.kernels.iter().any(|k| {
            k.scenario == base.scenario && k.nbodies == base.nbodies && k.engine == base.engine
        });
        if engine_in_current {
            continue;
        }
        // One engine of a measured pair vanishing is always a violation (the
        // within-record kernel gate would silently stop comparing); a whole
        // pair vanishing is a violation only when the two records ran the
        // same kernel plan (quick-vs-full exempts the full-plan pairs).
        if pair_in_current || !quick_vs_full {
            let entry = format!("kernel {}/n{}/{}", base.scenario, base.nbodies, base.engine);
            // Kernel pairs are keyed by scenario/size only — no axis ever
            // restructures them — so a vanished *engine* of a pair still
            // measured stays fatal even across an axis addition; only a
            // wholly retired pair rides the allowance.
            if axis_added && !pair_in_current {
                diff.missing_allowed.push(entry);
            } else {
                diff.missing.push(entry);
            }
        }
    }
    diff
}

/// The within-record kernel gate: for every scenario/size measured with both
/// engines, the leaf-coalesced kernel's median force time must not exceed
/// the per-body walk's by more than `threshold` (both ran on the same host,
/// so the ratio is host-independent).  Returns the offending pairs.
pub fn kernel_regressions(record: &Record, threshold: f64) -> Vec<MetricDiff> {
    let mut out = Vec::new();
    for walk in record.kernels.iter().filter(|k| k.engine == KERNEL_PER_BODY) {
        let pair = record.kernels.iter().find(|k| {
            k.engine == KERNEL_COALESCED && k.scenario == walk.scenario && k.nbodies == walk.nbodies
        });
        if let Some(coalesced) = pair {
            let ratio = coalesced.force_wall_ms.median / walk.force_wall_ms.median.max(1e-9);
            if ratio > 1.0 + threshold {
                out.push(MetricDiff {
                    key: format!("kernel {}/n{}", walk.scenario, walk.nbodies),
                    metric: "force_wall_ms (coalesced vs per-body)".to_string(),
                    baseline: walk.force_wall_ms.median,
                    current: coalesced.force_wall_ms.median,
                    ratio,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptLevel;
    use pgas::Machine;

    fn sample(wall: f64, force: f64, interactions: u64) -> Sample {
        Sample {
            wall_ms: wall,
            latency_ms: 0.0,
            phases: PhaseTimes { force, tree: 0.5, ..Default::default() },
            total_sim: force + 0.5,
            migration_fraction: 0.01,
            tree_bytes: 0,
            recovery_ms: 0.0,
            error_rate: 0.0,
            stats: RankStats { interactions, remote_gets: 1000, ..Default::default() },
        }
    }

    fn spec() -> RunSpec {
        let cfg = SimConfig::new(256, Machine::process_per_node(2), OptLevel::Subspace);
        RunSpec::new("plummer", "upc", &cfg)
    }

    fn record_with(force: f64, interactions: u64) -> Record {
        let samples = [
            sample(10.0, force, interactions),
            sample(12.0, force, interactions),
            sample(11.0, force, interactions),
        ];
        let mut record = Record::new("test".to_string(), false);
        record.runs.push(RunRecord::from_samples(spec(), &samples));
        record
    }

    #[test]
    fn stat_uses_nearest_rank() {
        let s = Stat::of(&[3.0, 1.0, 2.0, 5.0, 4.0]);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.p90, 5.0);
        assert_eq!(s.p99, 5.0);
        let one = Stat::of(&[7.0]);
        assert_eq!(one.median, 7.0);
        assert_eq!(one.p90, 7.0);
        assert_eq!(one.p99, 7.0);
        // With enough samples the tail percentiles separate: over 1..=1000
        // the nearest-rank p99 lands on 990, the p90 on 900.
        let many: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let s = Stat::of(&many);
        assert_eq!(s.median, 500.0);
        assert_eq!(s.p90, 900.0);
        assert_eq!(s.p99, 990.0);
    }

    #[test]
    fn spec_key_is_stable_and_discriminating() {
        let a = spec();
        assert_eq!(a.key(), "plummer/upc/subspace/rebuild/per-body/insertion/sim/cold/n256/m2x1");
        let mut b = a.clone();
        b.nbodies = 512;
        assert_ne!(a.key(), b.key());
        let mut c = a.clone();
        c.policy = "reuse".to_string();
        assert_ne!(a.key(), c.key(), "the tree policy is part of the sweep-point identity");
        let mut d = a.clone();
        d.walk = "group".to_string();
        assert_ne!(a.key(), d.key(), "the walk mode is part of the sweep-point identity");
        let mut e = a.clone();
        e.service = SERVICE_BHSERVE.to_string();
        assert_ne!(a.key(), e.key(), "the service pathway is part of the sweep-point identity");
        let mut f = a.clone();
        f.build = "sorted".to_string();
        assert_ne!(a.key(), f.key(), "the build algorithm is part of the sweep-point identity");
    }

    #[test]
    fn specs_without_a_policy_field_decode_as_rebuild() {
        // Records committed before the tree-lifecycle subsystem carry no
        // policy; they ran the paper's per-step rebuild.
        let record = record_with(2.0, 10_000);
        let mut text = record.to_json();
        text = text.replace("\"policy\": \"rebuild\",", "");
        let parsed = Record::from_json(&text).expect("legacy record must parse");
        assert_eq!(parsed.runs[0].spec.policy, "rebuild");
        assert_eq!(parsed.runs[0].spec.key(), record.runs[0].spec.key());
    }

    #[test]
    fn specs_without_a_walk_field_decode_as_per_body() {
        // Records committed before the walk axis ran the only walk that
        // existed, and counters added later decode as "not recorded".
        let record = record_with(2.0, 10_000);
        let mut text = record.to_json();
        text = text.replace("\"walk\": \"per-body\",", "");
        text = text.replace("\"macs\": 0,", "");
        text = text.replace("\"tree_ops\": 0,", "");
        let parsed = Record::from_json(&text).expect("legacy record must parse");
        assert_eq!(parsed.runs[0].spec.walk, "per-body");
        assert_eq!(parsed.runs[0].spec.key(), record.runs[0].spec.key());
        assert_eq!(parsed.runs[0].macs, 0);
        assert_eq!(parsed.runs[0].tree_ops, 0);
    }

    #[test]
    fn specs_without_a_build_field_decode_as_insertion() {
        // Records committed before the build axis ran the only build that
        // existed, and the tree_bytes metric decodes as "not recorded".
        let record = record_with(2.0, 10_000);
        let mut text = record.to_json();
        text = text.replace("\"build\": \"insertion\",", "");
        text = text.replace("\"tree_bytes\": 0,", "");
        let parsed = Record::from_json(&text).expect("legacy record must parse");
        assert_eq!(parsed.runs[0].spec.build, "insertion");
        assert_eq!(parsed.runs[0].spec.key(), record.runs[0].spec.key());
        assert_eq!(parsed.runs[0].tree_bytes, 0);
    }

    #[test]
    fn specs_without_a_warm_field_decode_as_cold() {
        // Records committed before the warm-start pathway all integrated
        // from t = 0.
        let record = record_with(2.0, 10_000);
        let mut text = record.to_json();
        text = text.replace("\"warm\": \"cold\",", "");
        let parsed = Record::from_json(&text).expect("legacy record must parse");
        assert_eq!(parsed.runs[0].spec.warm, WARM_COLD);
        assert_eq!(parsed.runs[0].spec.key(), record.runs[0].spec.key());
    }

    #[test]
    fn specs_without_serving_fields_decode_as_standalone() {
        // Records committed before the serving path carry no service axis,
        // no p99, no latency stat and no throughput; they decode as
        // standalone runs with those metrics "not recorded".  Build the
        // legacy text by stripping those fields from a current record,
        // line-by-line with comma repair (pretty-printed JSON).
        let record = record_with(2.0, 10_000);
        let mut out: Vec<String> = Vec::new();
        let mut in_latency = false;
        for line in record.to_json().lines() {
            let t = line.trim_start();
            if in_latency {
                if t.starts_with('}') {
                    in_latency = false;
                }
                continue;
            }
            if t.starts_with("\"latency_ms\"") {
                in_latency = true;
                continue;
            }
            if t.starts_with("\"p99\"")
                || t.starts_with("\"service\"")
                || t.starts_with("\"throughput_rps\"")
            {
                // Removing an object's *last* field leaves the previous
                // line with a dangling comma; drop it.
                if !t.ends_with(',') {
                    if let Some(prev) = out.last_mut() {
                        if prev.ends_with(',') {
                            prev.pop();
                        }
                    }
                }
                continue;
            }
            out.push(line.to_string());
        }
        let text = out.join("\n");
        assert!(!text.contains("p99"), "the stripped record must predate the p99 field");
        assert!(!text.contains("latency_ms"), "the stripped record must predate latency stats");
        assert!(!text.contains("service"), "the stripped record must predate the service axis");
        let parsed = Record::from_json(&text).expect("legacy record must parse");
        assert_eq!(parsed.runs[0].spec.service, SERVICE_SIM);
        assert_eq!(parsed.runs[0].spec.key(), record.runs[0].spec.key());
        assert_eq!(parsed.runs[0].wall_ms.p99, 0.0, "missing p99 decodes as not-recorded");
        assert_eq!(parsed.runs[0].latency_ms, Stat::zero());
        assert_eq!(parsed.runs[0].throughput_rps, 0.0);
    }

    #[test]
    fn legacy_records_infer_their_axes() {
        // No axes field, specs carry a policy → the policy-axis era.
        let record = record_with(2.0, 10_000);
        let mut text = record.to_json();
        text = text.replace("\"walk\": \"per-body\",", "");
        // Renaming the key (robust against pretty-printing details) makes
        // the decoder see a record with no axes field at all.
        let no_axes = text.replacen("\"axes\"", "\"axes-ignored\"", 1);
        assert_ne!(no_axes, text, "the axes field must have been present");
        let parsed = Record::from_json(&no_axes).expect("legacy record must parse");
        assert_eq!(parsed.axes, vec!["policy".to_string()]);
        // Current records declare the full axis vocabulary.
        assert_eq!(record.axes, KEY_AXES.map(str::to_string).to_vec());
        // A *present but malformed* axes field is a schema violation, not a
        // silent fall-through to legacy inference (which would quietly arm
        // the allow-new-keys leniency).  Shadow the array under a key the
        // decoder ignores and plant a non-array in its place.
        let malformed = text.replacen("\"axes\": [", "\"axes\": 42, \"axes-shadow\": [", 1);
        assert_ne!(malformed, text);
        let err = Record::from_json(&malformed).expect_err("malformed axes must fail decode");
        assert!(err.contains("axes"), "{err}");
    }

    #[test]
    fn record_json_round_trips_and_validates() {
        let mut record = record_with(2.0, 50_000);
        record.kernels.push(KernelRecord {
            scenario: "plummer".to_string(),
            nbodies: 4096,
            engine: KERNEL_COALESCED.to_string(),
            reps: 5,
            force_wall_ms: Stat { median: 3.0, p90: 3.5, p99: 3.6 },
            interactions: 1_000_000,
        });
        let text = record.to_json();
        let parsed = Record::from_json(&text).expect("round trip");
        assert_eq!(parsed.runs.len(), 1);
        assert_eq!(parsed.runs[0].spec.key(), record.runs[0].spec.key());
        assert_eq!(parsed.runs[0].interactions, 50_000);
        assert_eq!(parsed.kernels[0].nbodies, 4096);
        assert_eq!(parsed.kernels[0].force_wall_ms.median, 3.0);
    }

    #[test]
    fn schema_violations_are_rejected() {
        assert!(Record::from_json("not json").is_err());
        assert!(Record::from_json("{}").is_err());
        let wrong_schema = r#"{"schema":"nope","commit":"x","quick":false,"runs":[],"kernels":[]}"#;
        assert!(Record::from_json(wrong_schema).unwrap_err().contains("schema mismatch"));
        let empty =
            format!(r#"{{"schema":"{SCHEMA}","commit":"x","quick":false,"runs":[],"kernels":[]}}"#);
        assert!(Record::from_json(&empty).unwrap_err().contains("no runs"));
        // A record whose run is missing a field is a schema violation too.
        let mut record = record_with(2.0, 10_000);
        record.runs[0].reps = 0;
        assert!(Record::from_json(&record.to_json()).is_err());
    }

    #[test]
    fn diff_flags_regressions_past_the_threshold_only() {
        let baseline = record_with(2.0, 100_000);
        let same = record_with(2.2, 110_000); // +10% — under a 25% gate
        let diff = diff_against_baseline(&same, &baseline, 0.25);
        assert_eq!(diff.compared, 1);
        assert!(diff.regressions.is_empty(), "{:?}", diff.regressions);

        let worse = record_with(3.0, 140_000); // +50% force, +40% interactions
        let diff = diff_against_baseline(&worse, &baseline, 0.25);
        let metrics: Vec<&str> = diff.regressions.iter().map(|r| r.metric.as_str()).collect();
        assert!(metrics.contains(&"force"), "{metrics:?}");
        assert!(metrics.contains(&"interactions"), "{metrics:?}");
        assert!(!diff.describe_regressions().is_empty());
    }

    #[test]
    fn diff_rejects_protocol_drift_instead_of_comparing() {
        // Same key, different measurement protocol: the numbers must not be
        // compared (a 2x interaction "regression" here would just be the
        // doubled measured window), and the mismatch must be surfaced.
        let baseline = record_with(2.0, 100_000);
        let mut current = record_with(2.0, 200_000);
        current.runs[0].spec.measured_steps += 1;
        let diff = diff_against_baseline(&current, &baseline, 0.25);
        assert_eq!(diff.compared, 0);
        assert!(diff.regressions.is_empty(), "incomparable points must not regress");
        assert_eq!(diff.protocol_mismatches.len(), 1);
        assert!(diff.protocol_mismatches[0].contains(&current.runs[0].spec.key()));
    }

    #[test]
    fn diff_skips_unmatched_points_and_wall_times() {
        let baseline = record_with(2.0, 100_000);
        let mut current = record_with(2.0, 100_000);
        current.runs[0].spec.nbodies = 999; // different key
        current.runs[0].wall_ms = Stat { median: 1e9, p90: 1e9, p99: 1e9 }; // never gated
        let diff = diff_against_baseline(&current, &baseline, 0.25);
        assert_eq!(diff.compared, 0);
        assert_eq!(diff.unmatched, vec![current.runs[0].spec.key()]);
        assert!(diff.regressions.is_empty());
    }

    #[test]
    fn macs_and_tree_ops_gate_only_when_the_baseline_recorded_them() {
        let mut baseline = record_with(2.0, 100_000);
        let mut current = record_with(2.0, 100_000);
        // Baseline predates the counters (decoded 0): a large current value
        // is growth of the vocabulary, not a regression.
        current.runs[0].macs = 50_000;
        current.runs[0].tree_ops = 9_000;
        let diff = diff_against_baseline(&current, &baseline, 0.25);
        assert!(diff.regressions.is_empty(), "{:?}", diff.describe_regressions());
        // Once the baseline records them, they gate like any counter.
        baseline.runs[0].macs = 10_000;
        baseline.runs[0].tree_ops = 8_000;
        let diff = diff_against_baseline(&current, &baseline, 0.25);
        let metrics: Vec<&str> = diff.regressions.iter().map(|r| r.metric.as_str()).collect();
        assert!(metrics.contains(&"macs"), "{metrics:?}");
        assert!(!metrics.contains(&"tree_ops"), "+12.5% is under the gate: {metrics:?}");
    }

    #[test]
    fn tree_bytes_gates_only_when_the_baseline_recorded_it() {
        let mut baseline = record_with(2.0, 100_000);
        let mut current = record_with(2.0, 100_000);
        // Baseline predates the metric (decoded 0): any current value is
        // vocabulary growth, not a memory regression.
        current.runs[0].tree_bytes = 1_000_000;
        let diff = diff_against_baseline(&current, &baseline, 0.25);
        assert!(diff.regressions.is_empty(), "{:?}", diff.describe_regressions());
        // Once recorded, arena growth past the threshold gates.
        baseline.runs[0].tree_bytes = 500_000;
        let diff = diff_against_baseline(&current, &baseline, 0.25);
        let metrics: Vec<&str> = diff.regressions.iter().map(|r| r.metric.as_str()).collect();
        assert!(metrics.contains(&"tree_bytes"), "{metrics:?}");
    }

    #[test]
    fn axis_additions_allow_missing_baseline_points() {
        // The baseline predates the walk axis; the current grid was
        // restructured around it, retiring a baseline point.
        let mut baseline = record_with(2.0, 100_000);
        baseline.axes = vec!["policy".to_string()];
        let mut retired = record_with(2.0, 100_000);
        retired.runs[0].spec.scenario = "king".to_string();
        baseline.runs.push(retired.runs[0].clone());
        let current = record_with(2.0, 100_000);
        let diff = diff_against_baseline(&current, &baseline, 0.25);
        assert_eq!(
            diff.new_axes,
            vec![
                "walk".to_string(),
                "build".to_string(),
                "service".to_string(),
                "warm".to_string()
            ]
        );
        assert!(diff.missing.is_empty(), "{:?}", diff.missing);
        assert_eq!(diff.missing_allowed.len(), 1, "{:?}", diff.missing_allowed);
        assert!(diff.missing_allowed[0].contains("king"));
        // Matched points still gate normally across the axis addition.
        assert_eq!(diff.compared, 1);

        // Once the baseline is regenerated with the same axes, the strict
        // symmetric gate is re-armed.
        baseline.axes = current.axes.clone();
        let diff = diff_against_baseline(&current, &baseline, 0.25);
        assert!(diff.new_axes.is_empty());
        assert_eq!(diff.missing.len(), 1, "{:?}", diff.missing);
        assert!(diff.missing_allowed.is_empty());
    }

    #[test]
    fn axis_additions_do_not_excuse_a_vanished_kernel_engine() {
        let kernel = |engine: &str| KernelRecord {
            scenario: "plummer".to_string(),
            nbodies: 2048,
            engine: engine.to_string(),
            reps: 5,
            force_wall_ms: Stat { median: 5.0, p90: 6.0, p99: 6.5 },
            interactions: 1_000_000,
        };
        let mut baseline = record_with(2.0, 100_000);
        baseline.axes = vec!["policy".to_string()];
        baseline.kernels.push(kernel(KERNEL_PER_BODY));
        baseline.kernels.push(kernel(KERNEL_COALESCED));
        // The pair is still measured but one engine vanished: fatal even
        // across an axis addition (no axis restructures kernel pairs).
        let mut current = record_with(2.0, 100_000);
        current.kernels.push(kernel(KERNEL_COALESCED));
        let diff = diff_against_baseline(&current, &baseline, 0.25);
        assert!(!diff.new_axes.is_empty());
        assert_eq!(diff.missing.len(), 1, "{:?}", diff.missing);
        assert!(diff.missing[0].contains(KERNEL_PER_BODY));
        // A wholly retired pair rides the allowance.
        let mut current = record_with(2.0, 100_000);
        current.kernels.clear();
        let diff = diff_against_baseline(&current, &baseline, 0.25);
        assert_eq!(diff.missing_allowed.len(), 2, "{:?}", diff.missing_allowed);
        assert!(diff.missing.is_empty(), "{:?}", diff.missing);
    }

    #[test]
    fn runs_vanishing_from_the_current_record_are_violations() {
        // Baseline has a point the current record lacks at a size the
        // current record does attempt: that point silently disappeared from
        // the grid and must be flagged, not skipped.
        let mut baseline = record_with(2.0, 100_000);
        let mut extra = record_with(2.0, 100_000);
        extra.runs[0].spec.scenario = "king".to_string();
        baseline.runs.push(extra.runs[0].clone());
        let current = record_with(2.0, 100_000);
        let diff = diff_against_baseline(&current, &baseline, 0.25);
        assert_eq!(diff.compared, 1);
        assert_eq!(diff.missing.len(), 1, "{:?}", diff.missing);
        assert!(diff.missing[0].contains("king"), "{:?}", diff.missing);

        // Same shape but the baseline point is a full-grid size and the
        // current record is a quick run: exempt (the quick run never
        // attempts that size).
        let mut current_quick = record_with(2.0, 100_000);
        current_quick.quick = true;
        let mut full_baseline = record_with(2.0, 100_000);
        let mut big = record_with(2.0, 100_000);
        big.runs[0].spec.nbodies = 4096;
        full_baseline.runs.push(big.runs[0].clone());
        let diff = diff_against_baseline(&current_quick, &full_baseline, 0.25);
        assert!(diff.missing.is_empty(), "{:?}", diff.missing);
    }

    #[test]
    fn kernel_engines_vanishing_from_the_current_record_are_violations() {
        let kernel = |engine: &str| KernelRecord {
            scenario: "plummer".to_string(),
            nbodies: 2048,
            engine: engine.to_string(),
            reps: 5,
            force_wall_ms: Stat { median: 5.0, p90: 6.0, p99: 6.5 },
            interactions: 1_000_000,
        };
        let mut baseline = record_with(2.0, 100_000);
        baseline.kernels.push(kernel(KERNEL_PER_BODY));
        baseline.kernels.push(kernel(KERNEL_COALESCED));

        // The per-body reference engine vanished while the pair's scenario
        // and size are still measured: the within-record gate would silently
        // stop comparing, so the diff must flag it — even quick-vs-full.
        let mut current = record_with(2.0, 100_000);
        current.quick = true;
        current.kernels.push(kernel(KERNEL_COALESCED));
        let diff = diff_against_baseline(&current, &baseline, 0.25);
        assert_eq!(diff.missing.len(), 1, "{:?}", diff.missing);
        assert!(diff.missing[0].contains(KERNEL_PER_BODY), "{:?}", diff.missing);

        // A full-plan pair absent from a quick record is exempt; the same
        // absence between records of the same mode is a violation.
        let mut full_only = record_with(2.0, 100_000);
        full_only.kernels.push(KernelRecord { nbodies: 8192, ..kernel(KERNEL_PER_BODY) });
        let mut current_quick = record_with(2.0, 100_000);
        current_quick.quick = true;
        assert!(diff_against_baseline(&current_quick, &full_only, 0.25).missing.is_empty());
        let current_full = record_with(2.0, 100_000);
        let diff = diff_against_baseline(&current_full, &full_only, 0.25);
        assert_eq!(diff.missing.len(), 1, "{:?}", diff.missing);
    }

    #[test]
    fn kernel_gate_compares_pairs_within_the_record() {
        let mut record = record_with(2.0, 100_000);
        let kernel = |engine: &str, median: f64| KernelRecord {
            scenario: "plummer".to_string(),
            nbodies: 4096,
            engine: engine.to_string(),
            reps: 5,
            force_wall_ms: Stat { median, p90: median * 1.1, p99: median * 1.2 },
            interactions: 1_000_000,
        };
        record.kernels.push(kernel(KERNEL_PER_BODY, 10.0));
        record.kernels.push(kernel(KERNEL_COALESCED, 8.0));
        assert!(kernel_regressions(&record, 0.10).is_empty());
        record.kernels[1].force_wall_ms.median = 12.0; // coalesced lost
        let bad = kernel_regressions(&record, 0.10);
        assert_eq!(bad.len(), 1);
        assert!(bad[0].key.contains("plummer/n4096"));
    }
}
