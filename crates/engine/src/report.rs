//! Per-phase timing reports, mirroring the rows of the paper's tables, plus
//! the rank-report aggregation and measured-window bookkeeping every solver
//! driver shares.

use crate::config::SimConfig;
use pgas::RankStats;
use serde::{Deserialize, Serialize};

/// The execution phases of one Barnes-Hut time step, in the order the paper
/// reports them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Octree construction (including the bounding-box computation).
    TreeBuild,
    /// Centre-of-mass computation (separate phase only before §5.4).
    CenterOfMass,
    /// Costzones/subspace partitioning of bodies to threads.
    Partition,
    /// Body redistribution to owners (§5.2 onwards).
    Redistribute,
    /// Force computation.
    Force,
    /// Body advancement (leapfrog update).
    Advance,
}

impl Phase {
    /// All phases in table order.
    pub const ALL: [Phase; 6] = [
        Phase::TreeBuild,
        Phase::CenterOfMass,
        Phase::Partition,
        Phase::Redistribute,
        Phase::Force,
        Phase::Advance,
    ];

    /// The row label used by the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Phase::TreeBuild => "Tree-building",
            Phase::CenterOfMass => "C-of-m Comp.",
            Phase::Partition => "Partitioning",
            Phase::Redistribute => "Redistribution",
            Phase::Force => "Force Comp.",
            Phase::Advance => "Body-adv.",
        }
    }

    /// Internal key used with [`pgas::PhaseTimer`].
    pub fn key(self) -> &'static str {
        match self {
            Phase::TreeBuild => "tree",
            Phase::CenterOfMass => "cofm",
            Phase::Partition => "partition",
            Phase::Redistribute => "redistribute",
            Phase::Force => "force",
            Phase::Advance => "advance",
        }
    }
}

/// Simulated seconds spent in each phase (for one rank, or the maximum over
/// ranks, depending on context).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseTimes {
    /// Tree construction time.
    pub tree: f64,
    /// Centre-of-mass computation time.
    pub cofm: f64,
    /// Partitioning time.
    pub partition: f64,
    /// Redistribution time.
    pub redistribute: f64,
    /// Force computation time.
    pub force: f64,
    /// Body advancement time.
    pub advance: f64,
}

impl PhaseTimes {
    /// Time of one phase.
    pub fn get(&self, phase: Phase) -> f64 {
        match phase {
            Phase::TreeBuild => self.tree,
            Phase::CenterOfMass => self.cofm,
            Phase::Partition => self.partition,
            Phase::Redistribute => self.redistribute,
            Phase::Force => self.force,
            Phase::Advance => self.advance,
        }
    }

    /// Sets the time of one phase.
    pub fn set(&mut self, phase: Phase, value: f64) {
        match phase {
            Phase::TreeBuild => self.tree = value,
            Phase::CenterOfMass => self.cofm = value,
            Phase::Partition => self.partition = value,
            Phase::Redistribute => self.redistribute = value,
            Phase::Force => self.force = value,
            Phase::Advance => self.advance = value,
        }
    }

    /// Collects the phase rows out of a rank's [`pgas::PhaseTimer`].
    pub fn from_timer(timer: &pgas::PhaseTimer) -> PhaseTimes {
        let mut t = PhaseTimes::default();
        for phase in Phase::ALL {
            t.set(phase, timer.get(phase.key()));
        }
        t
    }

    /// Total over all phases.
    pub fn total(&self) -> f64 {
        Phase::ALL.iter().map(|&p| self.get(p)).sum()
    }

    /// Element-wise maximum (used to compute the per-phase maximum over
    /// ranks that the paper's tables report).
    pub fn max(&self, other: &PhaseTimes) -> PhaseTimes {
        let mut out = PhaseTimes::default();
        for p in Phase::ALL {
            out.set(p, self.get(p).max(other.get(p)));
        }
        out
    }

    /// Element-wise sum.
    pub fn add(&self, other: &PhaseTimes) -> PhaseTimes {
        let mut out = PhaseTimes::default();
        for p in Phase::ALL {
            out.set(p, self.get(p) + other.get(p));
        }
        out
    }

    /// Percentage of the total spent in `phase` (0 when the total is 0).
    pub fn percent(&self, phase: Phase) -> f64 {
        let total = self.total();
        if total == 0.0 {
            0.0
        } else {
            100.0 * self.get(phase) / total
        }
    }
}

/// Per-rank outcome of a simulation run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RankOutcome {
    /// Phase times accumulated over the measured steps on this rank.
    pub phases: PhaseTimes,
    /// Tree-building sub-phase split (local build, merge/hook) accumulated
    /// over the measured steps — the Figure 8 data.
    pub tree_local: f64,
    /// See [`RankOutcome::tree_local`].
    pub tree_merge: f64,
    /// Bodies owned by this rank at the end of the run.
    pub owned_bodies: u64,
    /// Bodies that migrated to this rank during the measured steps.
    pub migrated_bodies: u64,
    /// Communication statistics accumulated over the whole run.
    pub stats: RankStats,
}

/// Result of a full simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimResult {
    /// Per-phase simulated time: for each phase, the maximum over ranks of
    /// the per-rank time accumulated over the measured steps (this is what
    /// the paper's tables report).
    pub phases: PhaseTimes,
    /// The simulated makespan of the measured steps
    /// (max over ranks of their total measured time).
    pub total: f64,
    /// One outcome per rank.
    pub ranks: Vec<RankOutcome>,
    /// Fraction of owned bodies that migrated between ranks per measured
    /// step (the §5.2 ≈2 % statistic).
    pub migration_fraction: f64,
    /// Peak node-arena bytes across ranks and steps (deterministic — a
    /// count of allocated node records times their stored size).  `0` when
    /// the backend has no shared node arena (direct summation, MPI
    /// comparator).
    pub tree_bytes: u64,
    /// Final body states (indexed by body id), for correctness checks.
    pub bodies: Vec<nbody::Body>,
}

impl SimResult {
    /// Aggregates per-rank outcomes into the run-level report: per-phase
    /// maximum over ranks, makespan, and the migration-fraction statistic
    /// normalized by the ownership population of the measured window.
    ///
    /// Every backend driver ends with this call; the outcomes must already
    /// carry their rank's [`RankStats`].
    pub fn aggregate(
        cfg: &SimConfig,
        ranks: Vec<RankOutcome>,
        bodies: Vec<nbody::Body>,
    ) -> SimResult {
        let mut phases = PhaseTimes::default();
        let mut migrated = 0u64;
        for r in &ranks {
            phases = phases.max(&r.phases);
            migrated += r.migrated_bodies;
        }
        // Every body is owned by exactly one rank each step, so the ownership
        // population per measured step is the body count.
        let ownership_slots = (cfg.nbodies.max(1) * cfg.measured_steps.max(1)) as u64;
        SimResult {
            phases,
            total: phases.total(),
            ranks,
            migration_fraction: migrated as f64 / ownership_slots as f64,
            tree_bytes: 0,
            bodies,
        }
    }

    /// Aggregated communication statistics over all ranks.
    pub fn total_stats(&self) -> RankStats {
        let mut total = RankStats::default();
        for r in &self.ranks {
            total.merge(&r.stats);
        }
        total
    }

    /// The fraction of aggregated gather requests with a single source rank
    /// (§5.5 statistic), if any such requests were issued.
    pub fn vlist_single_source_fraction(&self) -> Option<f64> {
        self.total_stats().vlist_single_source_fraction()
    }
}

/// `true` when `step` is the first step of the measured window (the paper
/// measures the last `measured_steps` of `steps`): the moment every driver
/// resets its timers and accumulators.
pub fn measurement_begins(cfg: &SimConfig, step: usize) -> bool {
    step + cfg.measured_steps == cfg.steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptLevel;
    use pgas::Machine;

    #[test]
    fn phase_get_set_total() {
        let mut t = PhaseTimes::default();
        t.set(Phase::Force, 2.0);
        t.set(Phase::TreeBuild, 1.0);
        assert_eq!(t.get(Phase::Force), 2.0);
        assert_eq!(t.total(), 3.0);
        assert!((t.percent(Phase::Force) - 66.666).abs() < 0.01);
        assert_eq!(PhaseTimes::default().percent(Phase::Force), 0.0);
    }

    #[test]
    fn max_and_add_are_elementwise() {
        let a = PhaseTimes { tree: 1.0, force: 5.0, ..Default::default() };
        let b = PhaseTimes { tree: 2.0, force: 3.0, advance: 1.0, ..Default::default() };
        let m = a.max(&b);
        assert_eq!(m.tree, 2.0);
        assert_eq!(m.force, 5.0);
        assert_eq!(m.advance, 1.0);
        let s = a.add(&b);
        assert_eq!(s.tree, 3.0);
        assert_eq!(s.force, 8.0);
    }

    #[test]
    fn labels_match_the_paper() {
        assert_eq!(Phase::TreeBuild.label(), "Tree-building");
        assert_eq!(Phase::Force.label(), "Force Comp.");
        assert_eq!(Phase::ALL.len(), 6);
    }

    #[test]
    fn aggregate_takes_phase_maxima_and_sums_migration() {
        let cfg = SimConfig::test(100, 2, OptLevel::Subspace);
        let a = RankOutcome {
            phases: PhaseTimes { force: 2.0, tree: 1.0, ..Default::default() },
            migrated_bodies: 3,
            ..Default::default()
        };
        let b = RankOutcome {
            phases: PhaseTimes { force: 1.0, tree: 4.0, ..Default::default() },
            migrated_bodies: 2,
            ..Default::default()
        };
        let result = SimResult::aggregate(&cfg, vec![a, b], Vec::new());
        assert_eq!(result.phases.force, 2.0);
        assert_eq!(result.phases.tree, 4.0);
        assert_eq!(result.total, 6.0);
        // 5 migrations over 100 bodies × 1 measured step.
        assert!((result.migration_fraction - 0.05).abs() < 1e-12);
    }

    #[test]
    fn measured_window_starts_at_the_right_step() {
        let mut cfg = SimConfig::new(10, Machine::test_cluster(1), OptLevel::Baseline);
        cfg.steps = 4;
        cfg.measured_steps = 2;
        let starts: Vec<bool> = (0..4).map(|s| measurement_begins(&cfg, s)).collect();
        assert_eq!(starts, vec![false, false, true, false]);
    }
}
