//! # engine — the solver-neutral engine layer
//!
//! The workspace contains three Barnes-Hut solvers — the UPC-emulated ladder
//! (`bh`), the message-passing comparator (`bhmpi`) and the direct-summation
//! reference ([`direct`], in this crate) — and the paper's conclusion (§9)
//! explicitly asks for them to be compared head-to-head.  A comparison needs
//! a shared vocabulary that none of the competitors owns, so this crate holds
//! everything that is solver-*neutral*:
//!
//! * [`config`] — [`SimConfig`] and the [`OptLevel`] ladder: the full
//!   description of one run (workload size, seed, physics parameters,
//!   emulated machine, measurement protocol).
//! * [`report`] — [`Phase`], [`PhaseTimes`], [`RankOutcome`] and
//!   [`SimResult`]: the per-phase timing rows of the paper's tables, the
//!   per-rank outcomes, the rank-report aggregation
//!   ([`SimResult::aggregate`]) and the measured-window bookkeeping
//!   ([`report::measurement_begins`]) every driver shares.
//! * [`backend`] — the [`Backend`] trait (`name()`, `supports()`, `run()`)
//!   and the string-keyed [`BackendRegistry`], mirroring the `scenarios`
//!   registry: any scenario's bodies can be pushed through any backend.
//! * [`bench`] — the benchmark vocabulary shared by the `benchsuite` binary
//!   and `bhsim --compare`: [`bench::RunSpec`], [`bench::Sample`], the
//!   schema-versioned [`bench::Record`] written to `BENCH_*.json`, and the
//!   baseline diffing behind the CI perf gate.
//! * [`direct`] — [`DirectBackend`], a distributed O(n²) direct-summation
//!   solver wrapping `nbody::direct` as the ground-truth reference.
//! * [`compare`] — the one shared comparison driver: run the same
//!   configuration and bodies through a list of registered backends and
//!   render a side-by-side per-phase timing + traffic table.
//! * [`snap`] — the solver-neutral checkpoint vocabulary: the per-step
//!   [`snap::StepRecord`] a tracked run emits and the bit-exact body
//!   comparison the resume contract is pinned against (the storage layer —
//!   chunking, content addressing, manifests — lives in the `snapstore`
//!   crate).
//! * [`suggest`] — did-you-mean suggestions for string-keyed lookups, shared
//!   by every surface that resolves user-supplied registry keys (`bhsim`,
//!   `bhserve`, `benchsuite`).
//!
//! The dependency arrows all point *into* this crate: `bh` and `bhmpi` each
//! depend on `engine` (never on each other), and the umbrella crate
//! assembles the built-in backend registry from all three solvers.

pub mod backend;
pub mod bench;
pub mod compare;
pub mod config;
pub mod direct;
pub mod fault;
pub mod report;
pub mod snap;
pub mod suggest;

pub use backend::{validate_bodies, Backend, BackendRegistry};
pub use compare::{comparison_table, run_backends, BackendRun};
pub use config::{ConfigError, OptLevel, SimConfig, TreeBuild, TreePolicy, WalkMode, DEFAULT_SEED};
pub use direct::DirectBackend;
pub use fault::FaultPlan;
pub use report::{Phase, PhaseTimes, RankOutcome, SimResult};
pub use snap::StepRecord;
