//! Did-you-mean suggestions for string-keyed registry lookups.
//!
//! Every user-facing surface of the workspace selects things by string key —
//! scenarios and backends in `bhsim`, job fields in `bhserve`, command-line
//! flags in `benchsuite` — and a typo used to produce a bare "unknown X"
//! error.  This module is the one shared helper behind those messages: it
//! picks the closest registered key (bounded edit distance, with a prefix
//! fast path for truncated input) and formats the standard error line.

/// Maximum edit distance at which a candidate still counts as "close".
/// Scaled with the input so short keys (`upc`, `mpi`) don't suggest each
/// other for arbitrary garbage while long keys tolerate a couple of typos.
fn max_distance(input: &str) -> usize {
    1 + input.chars().count() / 4
}

/// Optimal-string-alignment (restricted Damerau-Levenshtein) distance over
/// chars: insertions, deletions, substitutions, and adjacent transpositions
/// each cost 1, so the most common keyboard slip (`mip` → `mpi`) stays
/// within reach of short keys' distance budget.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev2 = vec![0usize; b.len() + 1];
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut row = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        row[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            let mut best = sub.min(prev[j + 1] + 1).min(row[j] + 1);
            if i > 0 && j > 0 && ca == b[j - 1] && a[i - 1] == cb {
                best = best.min(prev2[j - 1] + 1);
            }
            row[j + 1] = best;
        }
        std::mem::swap(&mut prev2, &mut prev);
        std::mem::swap(&mut prev, &mut row);
    }
    prev[b.len()]
}

/// The closest candidate to `input`, if any is close enough to plausibly be
/// what the user meant.  A candidate that extends the input as a prefix
/// (`plum` → `plummer`) always qualifies; otherwise the edit distance must
/// stay within [`max_distance`].  Ties go to the earliest candidate, so
/// registration order breaks them deterministically.
pub fn suggest<'a>(input: &str, candidates: impl IntoIterator<Item = &'a str>) -> Option<&'a str> {
    let mut best: Option<(usize, &'a str)> = None;
    for candidate in candidates {
        if candidate == input {
            return Some(candidate);
        }
        let score = if !input.is_empty() && candidate.starts_with(input) {
            0
        } else {
            let d = edit_distance(input, candidate);
            if d > max_distance(input) {
                continue;
            }
            d
        };
        if best.is_none_or(|(s, _)| score < s) {
            best = Some((score, candidate));
        }
    }
    best.map(|(_, c)| c)
}

/// Formats the standard unknown-key error: kind, offending key, an optional
/// did-you-mean, and the registered names.  Shared by `bhsim`, `bhserve`,
/// `benchsuite` and the backend registry, so every lookup surface reports
/// typos identically.
pub fn unknown_key(kind: &str, input: &str, candidates: &[&str]) -> String {
    match suggest(input, candidates.iter().copied()) {
        Some(near) => format!(
            "unknown {kind}: {input} (did you mean {near:?}? registered: {})",
            candidates.join(", ")
        ),
        None => format!("unknown {kind}: {input} (registered: {})", candidates.join(", ")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_osa_damerau_levenshtein() {
        assert_eq!(edit_distance("", ""), 0);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("", "abc"), 3);
        // Adjacent transpositions cost 1, not 2.
        assert_eq!(edit_distance("mip", "mpi"), 1);
        assert_eq!(edit_distance("dierct", "direct"), 1);
    }

    #[test]
    fn close_typos_and_prefixes_are_suggested() {
        let names = ["plummer", "king", "hernquist", "exp-disk", "cold-cube", "merger"];
        assert_eq!(suggest("plumer", names), Some("plummer"));
        assert_eq!(suggest("plum", names), Some("plummer"));
        assert_eq!(suggest("kign", names), Some("king"));
        assert_eq!(suggest("hernqust", names), Some("hernquist"));
        // Garbage suggests nothing rather than something misleading.
        assert_eq!(suggest("xyzzy-42", names), None);
        assert_eq!(suggest("", names), None);
    }

    #[test]
    fn short_keys_do_not_suggest_each_other_for_garbage() {
        let names = ["upc", "mpi", "direct"];
        assert_eq!(suggest("upk", names), Some("upc"));
        assert_eq!(suggest("mip", names), Some("mpi"));
        assert_eq!(suggest("zzzzz", names), None);
    }

    #[test]
    fn unknown_key_formats_with_and_without_a_suggestion() {
        let with = unknown_key("backend", "upk", &["upc", "mpi", "direct"]);
        assert!(with.starts_with("unknown backend: upk"), "{with}");
        assert!(with.contains("did you mean \"upc\"?"), "{with}");
        assert!(with.contains("registered: upc, mpi, direct"), "{with}");
        let without = unknown_key("backend", "qqqqq", &["upc", "mpi", "direct"]);
        assert!(!without.contains("did you mean"), "{without}");
        assert!(without.contains("registered: upc, mpi, direct"), "{without}");
    }
}
