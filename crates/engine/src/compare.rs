//! The shared head-to-head comparison driver.
//!
//! The paper's §9 leaves "directly compare the performance of this code to
//! the performance of a similar code expressed in MPI" as future work; this
//! module is that experiment's single implementation.  The `bhsim`
//! `--compare` mode, the `mpi_vs_upc` example and the `mpi_vs_upc` bench all
//! call [`run_backends`] and render with [`comparison_table`], so the driver
//! logic exists in exactly one place.

use crate::backend::BackendRegistry;
use crate::config::SimConfig;
use crate::report::{Phase, SimResult};
use nbody::Body;
use pgas::RankStats;

/// One backend's completed run within a comparison.
#[derive(Debug)]
pub struct BackendRun {
    /// The backend's registry name.
    pub name: String,
    /// Its full result.
    pub result: SimResult,
    /// Real (host) wall time of the run, milliseconds.  The simulated times
    /// in [`BackendRun::result`] are the paper's numbers; this is what the
    /// run actually cost the host, recorded for the bench vocabulary
    /// (`engine::bench::Sample`).
    pub wall_ms: f64,
}

/// Runs the same configuration and initial bodies through each named backend
/// in order.
///
/// Every backend receives its own copy of `bodies`, so all competitors start
/// from bit-identical initial conditions.  Fails up front — before any
/// simulation runs — if a name is unknown or a backend rejects the
/// configuration.
pub fn run_backends(
    registry: &BackendRegistry,
    names: &[String],
    cfg: &SimConfig,
    bodies: &[Body],
) -> Result<Vec<BackendRun>, String> {
    if names.is_empty() {
        return Err("no backends requested".to_string());
    }
    let mut backends = Vec::with_capacity(names.len());
    for name in names {
        let backend = registry.lookup(name)?;
        backend.supports(cfg).map_err(|e| format!("backend {name} cannot run this config: {e}"))?;
        backends.push(backend);
    }
    Ok(backends
        .into_iter()
        .zip(names)
        .map(|(backend, name)| {
            let start = std::time::Instant::now();
            let result = backend.run(cfg, bodies.to_vec());
            BackendRun { name: name.clone(), result, wall_ms: start.elapsed().as_secs_f64() * 1e3 }
        })
        .collect())
}

/// Renders completed runs as one aligned side-by-side table: a column per
/// backend, the paper's per-phase rows on top, communication-traffic
/// counters below.
pub fn comparison_table(runs: &[BackendRun]) -> String {
    const COL: usize = 13;
    let mut out = String::new();
    let mut header = format!("  {:<16}", "phase");
    for run in runs {
        header.push_str(&format!(" {:>COL$}", run.name));
    }
    out.push_str(&header);
    out.push('\n');
    for phase in Phase::ALL {
        out.push_str(&format!("  {:<16}", phase.label()));
        for run in runs {
            out.push_str(&format!(" {:>COL$.6}", run.result.phases.get(phase)));
        }
        out.push('\n');
    }
    out.push_str(&format!("  {:<16}", "TOTAL"));
    for run in runs {
        out.push_str(&format!(" {:>COL$.6}", run.result.total));
    }
    out.push('\n');

    type TrafficRow = fn(&RankStats) -> u64;
    let traffic: [(&str, TrafficRow); 6] = [
        ("remote ops", |s| s.remote_ops()),
        ("bulk messages", |s| s.messages),
        ("bytes out", |s| s.bytes_out),
        ("lock acquires", |s| s.lock_acquires),
        ("interactions", |s| s.interactions),
        ("tree operations", |s| s.tree_ops),
    ];
    let stats: Vec<RankStats> = runs.iter().map(|run| run.result.total_stats()).collect();
    for (label, get) in &traffic {
        out.push_str(&format!("  {label:<16}"));
        for s in &stats {
            out.push_str(&format!(" {:>COL$}", get(s)));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptLevel;
    use crate::direct::DirectBackend;
    use nbody::plummer::{generate, PlummerConfig};

    fn registry() -> BackendRegistry {
        let mut r = BackendRegistry::new();
        r.register(Box::new(DirectBackend));
        r
    }

    #[test]
    fn unknown_backend_fails_before_running_anything() {
        let cfg = SimConfig::test(32, 1, OptLevel::Baseline);
        let bodies = generate(&PlummerConfig::new(32, 1));
        let err = run_backends(&registry(), &["nope".to_string()], &cfg, &bodies).unwrap_err();
        assert!(err.contains("unknown backend"), "{err}");
        assert!(err.contains("direct"), "error must list the registered names: {err}");
        // A near-miss gets the shared did-you-mean treatment.
        let err = run_backends(&registry(), &["driect".to_string()], &cfg, &bodies).unwrap_err();
        assert!(err.contains("did you mean \"direct\"?"), "{err}");
        assert!(run_backends(&registry(), &[], &cfg, &bodies).is_err());
    }

    #[test]
    fn table_has_a_column_per_backend_and_all_phase_rows() {
        let cfg = SimConfig::test(48, 2, OptLevel::Baseline);
        let bodies = generate(&PlummerConfig::new(48, 1));
        let names = vec!["direct".to_string()];
        let runs = run_backends(&registry(), &names, &cfg, &bodies).unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].result.bodies.len(), 48);
        let table = comparison_table(&runs);
        assert!(table.contains("direct"));
        for phase in Phase::ALL {
            assert!(table.contains(phase.label()), "missing row {}", phase.label());
        }
        assert!(table.contains("TOTAL"));
        assert!(table.contains("interactions"));
    }
}
