//! Simulation configuration: the optimization ladder and all tunables.
//!
//! [`SimConfig`] describes one run completely — workload size and seed,
//! physics parameters, emulated machine, measurement protocol — and is
//! consumed by every backend.  [`OptLevel`] parameterises the UPC ladder;
//! backends without a ladder (the MPI comparator, direct summation) ignore
//! it, so a single `SimConfig` drives directly comparable runs everywhere.

use pgas::Machine;
use serde::{Deserialize, Serialize};

/// The cumulative optimization ladder of the paper.
///
/// Each level includes every optimization below it, exactly as the paper's
/// evaluation applies them cumulatively (Tables 2–7 and §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OptLevel {
    /// §4: the literal SPLASH-2 → UPC translation.  Shared scalars live on
    /// thread 0 and are re-read remotely, bodies stay in their original
    /// block distribution, the octree is built by global insertion under
    /// locks, and the force walk dereferences pointers-to-shared for every
    /// cell it touches.
    Baseline,
    /// §5.1: `tol`, `eps` and `rsize` are replicated into private variables
    /// on every thread.
    ReplicateScalars,
    /// §5.2: bodies are redistributed to their owning thread after
    /// partitioning (indexed bulk gather, double-buffered), so that all body
    /// accesses in the remaining phases are local and pointer-cast.
    Redistribute,
    /// §5.3.1: remote octree cells are cached on demand in a per-thread
    /// local tree during force computation.
    CacheLocalTree,
    /// §5.4: each thread builds a local octree without locks and merges it
    /// into the global tree, merging centres of mass commutatively.
    MergedTreeBuild,
    /// §5.5: non-blocking aggregated gathers (`bupc_memget_vlist_async`)
    /// overlap cache misses with force computation on other working bodies.
    AsyncAggregation,
    /// §6: the scalable subspace (cost-threshold) tree-building algorithm
    /// with level-wise vector reductions and an all-to-all body exchange.
    Subspace,
}

impl OptLevel {
    /// All levels in ladder order.
    pub const ALL: [OptLevel; 7] = [
        OptLevel::Baseline,
        OptLevel::ReplicateScalars,
        OptLevel::Redistribute,
        OptLevel::CacheLocalTree,
        OptLevel::MergedTreeBuild,
        OptLevel::AsyncAggregation,
        OptLevel::Subspace,
    ];

    /// Short name used by reports and the bench harness.
    pub fn name(self) -> &'static str {
        match self {
            OptLevel::Baseline => "baseline",
            OptLevel::ReplicateScalars => "replicate-scalars",
            OptLevel::Redistribute => "redistribute",
            OptLevel::CacheLocalTree => "cache-local-tree",
            OptLevel::MergedTreeBuild => "merged-tree-build",
            OptLevel::AsyncAggregation => "async-aggregation",
            OptLevel::Subspace => "subspace",
        }
    }

    /// Parses a level from its [`OptLevel::name`].
    pub fn from_name(name: &str) -> Option<OptLevel> {
        OptLevel::ALL.iter().copied().find(|l| l.name() == name)
    }

    /// `true` when shared scalars (`tol`, `eps`, `rsize`) are replicated
    /// locally (§5.1), i.e. at every level above the baseline.
    pub fn replicates_scalars(self) -> bool {
        self >= OptLevel::ReplicateScalars
    }

    /// `true` when bodies are redistributed to their owners (§5.2).
    pub fn redistributes_bodies(self) -> bool {
        self >= OptLevel::Redistribute
    }

    /// `true` when the force phase caches remote cells locally (§5.3).
    pub fn caches_cells(self) -> bool {
        self >= OptLevel::CacheLocalTree
    }

    /// `true` when tree building uses local trees merged into the global
    /// tree (§5.4) rather than global insertion under locks.
    pub fn merged_tree_build(self) -> bool {
        self == OptLevel::MergedTreeBuild || self == OptLevel::AsyncAggregation
    }

    /// `true` when the force phase uses non-blocking aggregated gathers
    /// (§5.5).
    pub fn async_aggregation(self) -> bool {
        self >= OptLevel::AsyncAggregation
    }

    /// `true` when tree building uses the §6 subspace algorithm.
    pub fn subspace_tree_build(self) -> bool {
        self == OptLevel::Subspace
    }
}

/// When (and whether) the global octree is torn down between time steps.
///
/// The paper's measurement protocol rebuilds the tree from scratch every
/// step, which is fine for its 4-step window but lets tree construction
/// dominate long-horizon runs.  The tree-lifecycle subsystem
/// (`bh::lifecycle`) can instead keep the tree alive across steps: leaf
/// positions are refreshed in place, only bodies that left their leaf's
/// cell bounds are re-inserted, and every cell's centre of mass is re-folded
/// bottom-up — falling back to a full rebuild when the tree has drifted too
/// far from the body distribution.
///
/// The persistent tree pays off on the global-insertion levels
/// ([`OptLevel::Baseline`] through [`OptLevel::CacheLocalTree`]), where a
/// per-step rebuild descends the shared tree under locks for every body;
/// the merged (§5.4/§5.5) and subspace (§6) builds rebuild cheaply from
/// local trees every step and keep doing so regardless of policy.
/// Backends without an incremental path (the MPI comparator rebuilds its
/// local trees by construction) reject non-[`TreePolicy::Rebuild`] configs
/// through [`crate::Backend::supports`]; the direct-summation reference has
/// no tree and ignores the policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TreePolicy {
    /// Rebuild the global tree from scratch every step (the paper's
    /// protocol, and the default — results are bit-for-bit identical to the
    /// pre-lifecycle solver).
    Rebuild,
    /// Keep the tree across steps with an explicit rebuild cadence.
    Reuse {
        /// Force a full rebuild every this many steps (1 = rebuild every
        /// step, behaviourally identical to [`TreePolicy::Rebuild`]).
        rebuild_every: usize,
        /// Force a full rebuild when the fraction of bodies that left their
        /// leaf's cell bounds since the last build exceeds this value, or
        /// when the bounding box outgrows the persistent root cell.
        ///
        /// `0` is the strict mode: even within-cell movement (a body
        /// changing octant inside its leaf's cell — the first point where
        /// the persistent tree and a fresh rebuild could diverge
        /// structurally) counts as drift, so the trajectory is bit-for-bit
        /// identical to [`TreePolicy::Rebuild`].
        drift_threshold: f64,
    },
    /// Keep the tree across steps with the cadence chosen by the solver
    /// (rebuild on [`TreePolicy::ADAPTIVE_DRIFT`] drift,
    /// [`TreePolicy::ADAPTIVE_REBUILD_EVERY`] steps at the latest).
    Adaptive,
}

impl TreePolicy {
    /// Default rebuild cadence of `--tree-policy reuse`.
    pub const DEFAULT_REBUILD_EVERY: usize = 8;
    /// Default drift threshold of `--tree-policy reuse`.
    pub const DEFAULT_DRIFT_THRESHOLD: f64 = 0.25;
    /// Drift fraction at which [`TreePolicy::Adaptive`] rebuilds.  A Plummer
    /// sphere at the paper's `dt` drifts ~10-15 % of its leaves per step
    /// under the cell-cube bound, so the threshold sits well above the
    /// steady-state drift (probing and then rebuilding anyway would make
    /// the policy strictly worse than per-step rebuild) while still
    /// catching violent reconfigurations (mergers, collapse).
    pub const ADAPTIVE_DRIFT: f64 = 0.35;
    /// Step cadence at which [`TreePolicy::Adaptive`] rebuilds at the
    /// latest, bounding the structural degradation of the reused tree.
    pub const ADAPTIVE_REBUILD_EVERY: usize = 8;

    /// Short name used by reports and the bench harness (the reuse
    /// parameters are part of the measurement protocol, not the name).
    pub fn name(self) -> &'static str {
        match self {
            TreePolicy::Rebuild => "rebuild",
            TreePolicy::Reuse { .. } => "reuse",
            TreePolicy::Adaptive => "adaptive",
        }
    }

    /// Parses a policy from its [`TreePolicy::name`]; `reuse` carries the
    /// default cadence and drift threshold.
    pub fn from_name(name: &str) -> Option<TreePolicy> {
        match name {
            "rebuild" => Some(TreePolicy::Rebuild),
            "reuse" => Some(TreePolicy::Reuse {
                rebuild_every: TreePolicy::DEFAULT_REBUILD_EVERY,
                drift_threshold: TreePolicy::DEFAULT_DRIFT_THRESHOLD,
            }),
            "adaptive" => Some(TreePolicy::Adaptive),
            _ => None,
        }
    }

    /// `true` when the policy may carry the tree across steps.
    pub fn reuses_tree(self) -> bool {
        !matches!(self, TreePolicy::Rebuild)
    }

    /// Full encoding of the policy *including its parameters*, used as the
    /// `policy` component of a bench sweep point's identity
    /// (`engine::bench::RunSpec`).  Changing a reuse cadence or drift
    /// threshold changes the measurement protocol, so the label must change
    /// with it — a regenerated grid then fails the baseline diff loudly
    /// (missing/unmatched points) instead of comparing incomparable
    /// numbers under the same key.
    pub fn spec_label(self) -> String {
        match self {
            TreePolicy::Rebuild => "rebuild".to_string(),
            TreePolicy::Reuse { rebuild_every, drift_threshold } => {
                format!("reuse[e{rebuild_every},d{drift_threshold}]")
            }
            TreePolicy::Adaptive => format!(
                "adaptive[e{},d{}]",
                TreePolicy::ADAPTIVE_REBUILD_EVERY,
                TreePolicy::ADAPTIVE_DRIFT
            ),
        }
    }
}

/// How the force phase traverses the octree.
///
/// The per-body walk — the paper's protocol — runs one full traversal per
/// body, so the number of multipole-acceptance tests (and, below the §5.3
/// cache, the number of remote cell touches) scales with `n · depth`.  The
/// group walk (Barnes' "modified tree code" refinement) walks the tree
/// **once per body group** instead: spatially adjacent owned bodies are
/// grouped, each group's traversal produces an *interaction list* (accepted
/// cells plus opened cells' leaf batches) under a conservative opening
/// criterion — a cell is opened if **any** point of the group's bounding box
/// could open it under θ — and the list is then applied to every member with
/// the SoA leaf-coalesced kernel.  Because the group criterion only ever
/// opens *more* cells than any member's own criterion would, per-body
/// accuracy is never worse; the traversal volume (the `macs` counter) drops
/// by the mean group occupancy.
///
/// The group walk applies to the caching levels ([`OptLevel::CacheLocalTree`]
/// and above — the list is built over the force cache); the `upc` backend
/// rejects it below §5.3, and the `mpi` comparator has no group walk at all.
/// Under a reuse-capable [`TreePolicy`], interaction lists are carried
/// across steps while the tree generation is unchanged and re-validated per
/// group (payloads epoch-refreshed; a relocated member leaf or a subdivided
/// list cell rebuilds that group's list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WalkMode {
    /// One tree traversal per body (the paper's walk, bit-for-bit the
    /// pre-group-walk force phase).
    PerBody,
    /// One tree traversal per body group, evaluated through per-group
    /// interaction lists.
    Group,
}

impl WalkMode {
    /// All walk modes.
    pub const ALL: [WalkMode; 2] = [WalkMode::PerBody, WalkMode::Group];

    /// Short name used by reports, the CLI and the bench harness.
    pub fn name(self) -> &'static str {
        match self {
            WalkMode::PerBody => "per-body",
            WalkMode::Group => "group",
        }
    }

    /// One-line description for `bhsim --list`.
    pub fn description(self) -> &'static str {
        match self {
            WalkMode::PerBody => "one tree traversal per body (the paper's walk)",
            WalkMode::Group => {
                "one traversal per body group; conservative opening, lists applied via SoA kernel"
            }
        }
    }

    /// Parses a mode from its [`WalkMode::name`].
    pub fn from_name(name: &str) -> Option<WalkMode> {
        WalkMode::ALL.iter().copied().find(|m| m.name() == name)
    }
}

/// How the global octree is constructed on a rebuild step.
///
/// The paper's build — and the default — is global insertion: every body
/// descends the shared tree and claims or subdivides its slot under a
/// per-cell lock.  That is exactly the pattern the paper measures in
/// "hundreds of seconds" at scale, and the one hot phase the persistent
/// tree and group walks only sidestep.  The sorted build (`bh::sortbuild`)
/// removes it: bodies are Morton-encoded with the same geometric-descent
/// keys the group walk uses, sorted cooperatively across ranks, and the
/// canonical octree is derived bottom-up from key-prefix boundaries with
/// **zero lock acquisitions** — summaries fold in one deterministic upward
/// pass with fixed (octant-order) reduction order, so forces are
/// bit-for-bit identical to the insertion build under
/// [`TreePolicy::Rebuild`].
///
/// The sorted build applies to the redistributed global-insertion levels
/// ([`OptLevel::Redistribute`] through [`OptLevel::AsyncAggregation`]):
/// below §5.2 body ownership is not aligned with the partition the sort
/// distributes against, and the §6 subspace algorithm is itself a
/// replacement build.  The `upc` backend rejects unsupported combinations;
/// the `mpi` comparator builds local trees with no shared insertion phase,
/// so the axis does not apply there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TreeBuild {
    /// Global insertion under per-cell locks (the paper's build).
    Insertion,
    /// Lock-free bottom-up construction from the globally sorted Morton-key
    /// array.
    Sorted,
}

impl TreeBuild {
    /// All build algorithms.
    pub const ALL: [TreeBuild; 2] = [TreeBuild::Insertion, TreeBuild::Sorted];

    /// Short name used by reports, the CLI and the bench harness.
    pub fn name(self) -> &'static str {
        match self {
            TreeBuild::Insertion => "insertion",
            TreeBuild::Sorted => "sorted",
        }
    }

    /// One-line description for `bhsim --list`.
    pub fn description(self) -> &'static str {
        match self {
            TreeBuild::Insertion => "global insertion under per-cell locks (the paper's build)",
            TreeBuild::Sorted => {
                "lock-free bottom-up build from the globally sorted Morton-key array"
            }
        }
    }

    /// Parses a build algorithm from its [`TreeBuild::name`].
    pub fn from_name(name: &str) -> Option<TreeBuild> {
        TreeBuild::ALL.iter().copied().find(|b| b.name() == name)
    }
}

/// The default workload RNG seed used by [`SimConfig::new`] (and therefore
/// by every driver that doesn't override `--seed`).
pub const DEFAULT_SEED: u64 = 1_234_567;

/// A configuration-validation failure.
///
/// Besides the human-readable message, every failure carries a **stable,
/// machine-readable code** (`ConfigError::code`), so programmatic callers —
/// the `bhserve` daemon relaying a rejection to a remote client, scripts
/// parsing `bhsim` stderr — can classify the failure without string-matching
/// the prose.  The codes are part of the public vocabulary: existing codes
/// never change meaning, new checks add new codes.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ConfigError {
    /// Stable machine-readable code (one of the `ConfigError::E_*` consts).
    pub code: &'static str,
    /// Human-readable description of the failure.
    pub message: String,
}

impl ConfigError {
    /// `nbodies` is zero.
    pub const E_NBODIES: &'static str = "E_NBODIES";
    /// `steps` is zero.
    pub const E_STEPS: &'static str = "E_STEPS";
    /// `measured_steps` lies outside `1..=steps`.
    pub const E_MEASURED_WINDOW: &'static str = "E_MEASURED_WINDOW";
    /// `dt` is non-positive or non-finite.
    pub const E_DT: &'static str = "E_DT";
    /// `theta` is non-positive or non-finite.
    pub const E_THETA: &'static str = "E_THETA";
    /// `eps` is non-positive or non-finite.
    pub const E_EPS: &'static str = "E_EPS";
    /// Reuse policy: `rebuild_every` is zero.
    pub const E_REUSE_EVERY: &'static str = "E_REUSE_EVERY";
    /// Reuse policy: `drift_threshold` is negative or non-finite.
    pub const E_REUSE_DRIFT: &'static str = "E_REUSE_DRIFT";

    fn new(code: &'static str, message: impl Into<String>) -> ConfigError {
        ConfigError { code, message: message.into() }
    }
}

impl std::fmt::Display for ConfigError {
    /// Renders as `message [code]`, so every existing caller that prints the
    /// error surfaces the code too.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} [{}]", self.message, self.code)
    }
}

impl std::error::Error for ConfigError {}

/// Full configuration of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of bodies.
    pub nbodies: usize,
    /// RNG seed for the initial conditions.
    pub seed: u64,
    /// Opening criterion θ (paper default 1.0).
    pub theta: f64,
    /// Softening ε (SPLASH-2 default 0.05).
    pub eps: f64,
    /// Time step (paper default 0.025).
    pub dt: f64,
    /// Total number of time steps (paper: 4).
    pub steps: usize,
    /// Number of trailing steps whose phase times are reported (paper: 2).
    pub measured_steps: usize,
    /// Tree lifecycle across steps (see [`TreePolicy`]; default
    /// [`TreePolicy::Rebuild`], the paper's per-step rebuild).
    pub tree_policy: TreePolicy,
    /// Force-phase traversal mode (see [`WalkMode`]; default
    /// [`WalkMode::PerBody`], the paper's walk).
    pub walk: WalkMode,
    /// Tree-construction algorithm on rebuild steps (see [`TreeBuild`];
    /// default [`TreeBuild::Insertion`], the paper's build).
    pub build: TreeBuild,
    /// Optimization level (UPC ladder only; other backends ignore it).
    pub opt: OptLevel,
    /// Emulated machine.
    pub machine: Machine,
    /// §5.5 framework parameters: number of working bodies processed
    /// concurrently (n1), maximum outstanding gathers (n2) and minimum
    /// request length before a gather is issued (n3).  Paper default: 4.
    pub n1: usize,
    /// See [`SimConfig::n1`].
    pub n2: usize,
    /// See [`SimConfig::n1`].
    pub n3: usize,
    /// §6 subspace threshold factor α (cells with cost > α·Cost/THREADS are
    /// split).  Paper uses 2/3.
    pub alpha: f64,
    /// §6: use one vector reduction per level (Figure 11) instead of one
    /// scalar reduction per subspace (Figure 10).
    pub vector_reduction: bool,
    /// Number of separate fine-grained field accesses charged when the
    /// literal translation reads a remote body or cell field-by-field
    /// (before the bulk-transfer/caching optimizations kick in).
    pub fine_grained_fields: u32,
    /// Octree leaf capacity (SPLASH-2: 1).
    pub leaf_capacity: usize,
    /// Maximum octree depth.
    pub max_depth: usize,
    /// Use the §5.3.2 merged-local-tree cache (shadow pointers, remote cells
    /// only) instead of the §5.3.1 separate local tree during the cached
    /// force phase.  The paper found "little performance improvement" from
    /// this variant; the `cache_variants` bench quantifies the difference.
    pub shadow_cache: bool,
    /// Deterministic fault-injection plan (the faultline plane; see
    /// [`crate::fault`]).  Default: empty, guaranteed inert.  Excluded from
    /// every persisted run identity — snapshot manifests, bench specs and
    /// batch keys never encode it — because faults describe how a run is
    /// exercised, not what it computes.
    pub faults: crate::fault::FaultPlan,
    /// Route the baseline's shared-scalar reads (`tol`, `eps`, `rsize`)
    /// through a MuPC-style transparent software cache
    /// ([`pgas::swcache::CachedScalar`], invalidated at every barrier)
    /// instead of reading them remotely every time.  Only meaningful below
    /// [`OptLevel::ReplicateScalars`]; used by the software-caching ablation.
    pub software_scalar_cache: bool,
}

impl SimConfig {
    /// A configuration with the paper's algorithmic defaults for the given
    /// problem size, machine and optimization level.
    pub fn new(nbodies: usize, machine: Machine, opt: OptLevel) -> Self {
        SimConfig {
            nbodies,
            seed: DEFAULT_SEED,
            theta: nbody::DEFAULT_THETA,
            eps: nbody::DEFAULT_EPS,
            dt: nbody::DEFAULT_DT,
            steps: 4,
            measured_steps: 2,
            tree_policy: TreePolicy::Rebuild,
            walk: WalkMode::PerBody,
            build: TreeBuild::Insertion,
            opt,
            machine,
            n1: 4,
            n2: 4,
            n3: 4,
            alpha: 2.0 / 3.0,
            vector_reduction: true,
            fine_grained_fields: 3,
            leaf_capacity: 1,
            max_depth: 48,
            shadow_cache: false,
            software_scalar_cache: false,
            faults: crate::fault::FaultPlan::default(),
        }
    }

    /// A small, fast configuration used by unit and integration tests.
    pub fn test(nbodies: usize, ranks: usize, opt: OptLevel) -> Self {
        let mut cfg = SimConfig::new(nbodies, Machine::test_cluster(ranks), opt);
        cfg.steps = 2;
        cfg.measured_steps = 1;
        cfg
    }

    /// Number of ranks implied by the machine.
    pub fn ranks(&self) -> usize {
        self.machine.ranks()
    }

    /// Checks that the configuration describes a runnable, measurable
    /// simulation.
    ///
    /// Every solver entry point (`run_simulation*` in each backend crate)
    /// and the default [`crate::Backend::supports`] call this, so invalid
    /// configurations fail with a clear error instead of producing garbage:
    /// `measured_steps > steps` makes [`crate::report::measurement_begins`]
    /// never fire (the phase tables silently report the warm-up window that
    /// was never reset), a non-positive or non-finite `dt`/`theta`/`eps`
    /// turns positions into NaNs, and zero bodies or steps produce
    /// meaningless reports.
    ///
    /// Failures carry a stable machine-readable code ([`ConfigError::code`])
    /// alongside the message.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.nbodies < 1 {
            return Err(ConfigError::new(ConfigError::E_NBODIES, "nbodies must be at least 1"));
        }
        if self.steps < 1 {
            return Err(ConfigError::new(ConfigError::E_STEPS, "steps must be at least 1"));
        }
        if self.measured_steps < 1 || self.measured_steps > self.steps {
            return Err(ConfigError::new(
                ConfigError::E_MEASURED_WINDOW,
                format!(
                    "measured_steps must lie in 1..=steps: got measured_steps = {} with steps = \
                     {} (the measurement window would never start and every phase table would \
                     report the un-reset warm-up accumulators)",
                    self.measured_steps, self.steps
                ),
            ));
        }
        let positive_finite = |code: &'static str, name: &str, v: f64| -> Result<(), ConfigError> {
            if !v.is_finite() || v <= 0.0 {
                return Err(ConfigError::new(
                    code,
                    format!("{name} must be positive and finite, got {v}"),
                ));
            }
            Ok(())
        };
        positive_finite(ConfigError::E_DT, "dt", self.dt)?;
        positive_finite(ConfigError::E_THETA, "theta", self.theta)?;
        positive_finite(ConfigError::E_EPS, "eps", self.eps)?;
        if let TreePolicy::Reuse { rebuild_every, drift_threshold } = self.tree_policy {
            if rebuild_every < 1 {
                return Err(ConfigError::new(
                    ConfigError::E_REUSE_EVERY,
                    "tree_policy reuse: rebuild_every must be at least 1",
                ));
            }
            if !drift_threshold.is_finite() || drift_threshold < 0.0 {
                return Err(ConfigError::new(
                    ConfigError::E_REUSE_DRIFT,
                    format!(
                        "tree_policy reuse: drift_threshold must be finite and non-negative, got \
                         {drift_threshold}"
                    ),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_ordered_and_cumulative() {
        assert!(OptLevel::Baseline < OptLevel::ReplicateScalars);
        assert!(OptLevel::ReplicateScalars < OptLevel::Subspace);
        assert!(!OptLevel::Baseline.replicates_scalars());
        assert!(OptLevel::ReplicateScalars.replicates_scalars());
        assert!(OptLevel::Subspace.replicates_scalars());
        assert!(OptLevel::Redistribute.redistributes_bodies());
        assert!(!OptLevel::Redistribute.caches_cells());
        assert!(OptLevel::CacheLocalTree.caches_cells());
        assert!(OptLevel::MergedTreeBuild.merged_tree_build());
        assert!(!OptLevel::Subspace.merged_tree_build());
        assert!(OptLevel::Subspace.subspace_tree_build());
        assert!(OptLevel::Subspace.async_aggregation());
        assert!(OptLevel::AsyncAggregation.async_aggregation());
        assert!(!OptLevel::MergedTreeBuild.async_aggregation());
    }

    #[test]
    fn names_roundtrip() {
        for l in OptLevel::ALL {
            assert_eq!(OptLevel::from_name(l.name()), Some(l));
        }
        assert_eq!(OptLevel::from_name("nope"), None);
    }

    #[test]
    fn tree_policy_names_roundtrip() {
        for name in ["rebuild", "reuse", "adaptive"] {
            let policy = TreePolicy::from_name(name).unwrap();
            assert_eq!(policy.name(), name);
        }
        assert_eq!(TreePolicy::from_name("nope"), None);
        assert!(!TreePolicy::Rebuild.reuses_tree());
        assert!(TreePolicy::Adaptive.reuses_tree());
        assert!(TreePolicy::from_name("reuse").unwrap().reuses_tree());
    }

    #[test]
    fn walk_mode_names_roundtrip_and_default_is_per_body() {
        for m in WalkMode::ALL {
            assert_eq!(WalkMode::from_name(m.name()), Some(m));
            assert!(!m.description().is_empty());
        }
        assert_eq!(WalkMode::from_name("nope"), None);
        let cfg = SimConfig::test(64, 2, OptLevel::CacheLocalTree);
        assert_eq!(cfg.walk, WalkMode::PerBody, "the paper's walk must stay the default");
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn tree_build_names_roundtrip_and_default_is_insertion() {
        for b in TreeBuild::ALL {
            assert_eq!(TreeBuild::from_name(b.name()), Some(b));
            assert!(!b.description().is_empty());
        }
        assert_eq!(TreeBuild::from_name("nope"), None);
        let cfg = SimConfig::test(64, 2, OptLevel::Redistribute);
        assert_eq!(cfg.build, TreeBuild::Insertion, "the paper's build must stay the default");
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn spec_labels_encode_the_reuse_parameters() {
        assert_eq!(TreePolicy::Rebuild.spec_label(), "rebuild");
        assert_eq!(
            TreePolicy::Reuse { rebuild_every: 8, drift_threshold: 0.25 }.spec_label(),
            "reuse[e8,d0.25]"
        );
        let a = TreePolicy::Reuse { rebuild_every: 4, drift_threshold: 0.25 }.spec_label();
        let b = TreePolicy::Reuse { rebuild_every: 8, drift_threshold: 0.25 }.spec_label();
        assert_ne!(a, b, "a cadence change must change the sweep-point identity");
        assert!(TreePolicy::Adaptive.spec_label().starts_with("adaptive["));
    }

    #[test]
    fn validate_accepts_the_defaults_and_rejects_garbage() {
        let good = SimConfig::test(64, 2, OptLevel::Subspace);
        assert!(good.validate().is_ok());

        let mut cfg = good.clone();
        cfg.measured_steps = cfg.steps + 1;
        let err = cfg.validate().unwrap_err();
        assert!(err.message.contains("measured_steps"), "{err}");
        assert_eq!(err.code, ConfigError::E_MEASURED_WINDOW);
        let shown = err.to_string();
        assert!(
            shown.contains("measured_steps") && shown.contains("E_MEASURED_WINDOW"),
            "Display must carry both the message and the code: {shown}"
        );

        let mut cfg = good.clone();
        cfg.measured_steps = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = good.clone();
        cfg.steps = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = good.clone();
        cfg.nbodies = 0;
        assert!(cfg.validate().is_err());

        for (field, value, code) in [
            ("dt", 0.0, ConfigError::E_DT),
            ("dt", -0.1, ConfigError::E_DT),
            ("theta", f64::NAN, ConfigError::E_THETA),
            ("eps", f64::INFINITY, ConfigError::E_EPS),
        ] {
            let mut cfg = good.clone();
            match field {
                "dt" => cfg.dt = value,
                "theta" => cfg.theta = value,
                _ => cfg.eps = value,
            }
            let err = cfg.validate().unwrap_err();
            assert!(err.message.contains(field), "{field}: {err}");
            assert_eq!(err.code, code, "{field}: {err}");
        }

        let mut cfg = good.clone();
        cfg.tree_policy = TreePolicy::Reuse { rebuild_every: 0, drift_threshold: 0.1 };
        assert_eq!(cfg.validate().unwrap_err().code, ConfigError::E_REUSE_EVERY);
        cfg.tree_policy = TreePolicy::Reuse { rebuild_every: 4, drift_threshold: -1.0 };
        assert_eq!(cfg.validate().unwrap_err().code, ConfigError::E_REUSE_DRIFT);
        cfg.tree_policy = TreePolicy::Reuse { rebuild_every: 4, drift_threshold: 0.0 };
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn error_codes_are_stable() {
        // The codes are a public vocabulary (bhserve relays them to remote
        // clients); renaming one is a protocol break and must fail here.
        assert_eq!(ConfigError::E_NBODIES, "E_NBODIES");
        assert_eq!(ConfigError::E_STEPS, "E_STEPS");
        assert_eq!(ConfigError::E_MEASURED_WINDOW, "E_MEASURED_WINDOW");
        assert_eq!(ConfigError::E_DT, "E_DT");
        assert_eq!(ConfigError::E_THETA, "E_THETA");
        assert_eq!(ConfigError::E_EPS, "E_EPS");
        assert_eq!(ConfigError::E_REUSE_EVERY, "E_REUSE_EVERY");
        assert_eq!(ConfigError::E_REUSE_DRIFT, "E_REUSE_DRIFT");
        let mut cfg = SimConfig::test(64, 1, OptLevel::Baseline);
        cfg.nbodies = 0;
        assert_eq!(cfg.validate().unwrap_err().code, ConfigError::E_NBODIES);
        cfg.nbodies = 64;
        cfg.steps = 0;
        assert_eq!(cfg.validate().unwrap_err().code, ConfigError::E_STEPS);
    }

    #[test]
    fn defaults_match_the_paper() {
        let cfg = SimConfig::new(1024, Machine::test_cluster(2), OptLevel::Baseline);
        assert_eq!(cfg.theta, 1.0);
        assert_eq!(cfg.dt, 0.025);
        assert_eq!(cfg.steps, 4);
        assert_eq!(cfg.measured_steps, 2);
        assert_eq!(cfg.n1, 4);
        assert_eq!(cfg.n2, 4);
        assert_eq!(cfg.n3, 4);
        assert!((cfg.alpha - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cfg.ranks(), 2);
    }
}
