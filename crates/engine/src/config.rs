//! Simulation configuration: the optimization ladder and all tunables.
//!
//! [`SimConfig`] describes one run completely — workload size and seed,
//! physics parameters, emulated machine, measurement protocol — and is
//! consumed by every backend.  [`OptLevel`] parameterises the UPC ladder;
//! backends without a ladder (the MPI comparator, direct summation) ignore
//! it, so a single `SimConfig` drives directly comparable runs everywhere.

use pgas::Machine;
use serde::{Deserialize, Serialize};

/// The cumulative optimization ladder of the paper.
///
/// Each level includes every optimization below it, exactly as the paper's
/// evaluation applies them cumulatively (Tables 2–7 and §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OptLevel {
    /// §4: the literal SPLASH-2 → UPC translation.  Shared scalars live on
    /// thread 0 and are re-read remotely, bodies stay in their original
    /// block distribution, the octree is built by global insertion under
    /// locks, and the force walk dereferences pointers-to-shared for every
    /// cell it touches.
    Baseline,
    /// §5.1: `tol`, `eps` and `rsize` are replicated into private variables
    /// on every thread.
    ReplicateScalars,
    /// §5.2: bodies are redistributed to their owning thread after
    /// partitioning (indexed bulk gather, double-buffered), so that all body
    /// accesses in the remaining phases are local and pointer-cast.
    Redistribute,
    /// §5.3.1: remote octree cells are cached on demand in a per-thread
    /// local tree during force computation.
    CacheLocalTree,
    /// §5.4: each thread builds a local octree without locks and merges it
    /// into the global tree, merging centres of mass commutatively.
    MergedTreeBuild,
    /// §5.5: non-blocking aggregated gathers (`bupc_memget_vlist_async`)
    /// overlap cache misses with force computation on other working bodies.
    AsyncAggregation,
    /// §6: the scalable subspace (cost-threshold) tree-building algorithm
    /// with level-wise vector reductions and an all-to-all body exchange.
    Subspace,
}

impl OptLevel {
    /// All levels in ladder order.
    pub const ALL: [OptLevel; 7] = [
        OptLevel::Baseline,
        OptLevel::ReplicateScalars,
        OptLevel::Redistribute,
        OptLevel::CacheLocalTree,
        OptLevel::MergedTreeBuild,
        OptLevel::AsyncAggregation,
        OptLevel::Subspace,
    ];

    /// Short name used by reports and the bench harness.
    pub fn name(self) -> &'static str {
        match self {
            OptLevel::Baseline => "baseline",
            OptLevel::ReplicateScalars => "replicate-scalars",
            OptLevel::Redistribute => "redistribute",
            OptLevel::CacheLocalTree => "cache-local-tree",
            OptLevel::MergedTreeBuild => "merged-tree-build",
            OptLevel::AsyncAggregation => "async-aggregation",
            OptLevel::Subspace => "subspace",
        }
    }

    /// Parses a level from its [`OptLevel::name`].
    pub fn from_name(name: &str) -> Option<OptLevel> {
        OptLevel::ALL.iter().copied().find(|l| l.name() == name)
    }

    /// `true` when shared scalars (`tol`, `eps`, `rsize`) are replicated
    /// locally (§5.1), i.e. at every level above the baseline.
    pub fn replicates_scalars(self) -> bool {
        self >= OptLevel::ReplicateScalars
    }

    /// `true` when bodies are redistributed to their owners (§5.2).
    pub fn redistributes_bodies(self) -> bool {
        self >= OptLevel::Redistribute
    }

    /// `true` when the force phase caches remote cells locally (§5.3).
    pub fn caches_cells(self) -> bool {
        self >= OptLevel::CacheLocalTree
    }

    /// `true` when tree building uses local trees merged into the global
    /// tree (§5.4) rather than global insertion under locks.
    pub fn merged_tree_build(self) -> bool {
        self == OptLevel::MergedTreeBuild || self == OptLevel::AsyncAggregation
    }

    /// `true` when the force phase uses non-blocking aggregated gathers
    /// (§5.5).
    pub fn async_aggregation(self) -> bool {
        self >= OptLevel::AsyncAggregation
    }

    /// `true` when tree building uses the §6 subspace algorithm.
    pub fn subspace_tree_build(self) -> bool {
        self == OptLevel::Subspace
    }
}

/// The default workload RNG seed used by [`SimConfig::new`] (and therefore
/// by every driver that doesn't override `--seed`).
pub const DEFAULT_SEED: u64 = 1_234_567;

/// Full configuration of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of bodies.
    pub nbodies: usize,
    /// RNG seed for the initial conditions.
    pub seed: u64,
    /// Opening criterion θ (paper default 1.0).
    pub theta: f64,
    /// Softening ε (SPLASH-2 default 0.05).
    pub eps: f64,
    /// Time step (paper default 0.025).
    pub dt: f64,
    /// Total number of time steps (paper: 4).
    pub steps: usize,
    /// Number of trailing steps whose phase times are reported (paper: 2).
    pub measured_steps: usize,
    /// Optimization level (UPC ladder only; other backends ignore it).
    pub opt: OptLevel,
    /// Emulated machine.
    pub machine: Machine,
    /// §5.5 framework parameters: number of working bodies processed
    /// concurrently (n1), maximum outstanding gathers (n2) and minimum
    /// request length before a gather is issued (n3).  Paper default: 4.
    pub n1: usize,
    /// See [`SimConfig::n1`].
    pub n2: usize,
    /// See [`SimConfig::n1`].
    pub n3: usize,
    /// §6 subspace threshold factor α (cells with cost > α·Cost/THREADS are
    /// split).  Paper uses 2/3.
    pub alpha: f64,
    /// §6: use one vector reduction per level (Figure 11) instead of one
    /// scalar reduction per subspace (Figure 10).
    pub vector_reduction: bool,
    /// Number of separate fine-grained field accesses charged when the
    /// literal translation reads a remote body or cell field-by-field
    /// (before the bulk-transfer/caching optimizations kick in).
    pub fine_grained_fields: u32,
    /// Octree leaf capacity (SPLASH-2: 1).
    pub leaf_capacity: usize,
    /// Maximum octree depth.
    pub max_depth: usize,
    /// Use the §5.3.2 merged-local-tree cache (shadow pointers, remote cells
    /// only) instead of the §5.3.1 separate local tree during the cached
    /// force phase.  The paper found "little performance improvement" from
    /// this variant; the `cache_variants` bench quantifies the difference.
    pub shadow_cache: bool,
    /// Route the baseline's shared-scalar reads (`tol`, `eps`, `rsize`)
    /// through a MuPC-style transparent software cache
    /// ([`pgas::swcache::CachedScalar`], invalidated at every barrier)
    /// instead of reading them remotely every time.  Only meaningful below
    /// [`OptLevel::ReplicateScalars`]; used by the software-caching ablation.
    pub software_scalar_cache: bool,
}

impl SimConfig {
    /// A configuration with the paper's algorithmic defaults for the given
    /// problem size, machine and optimization level.
    pub fn new(nbodies: usize, machine: Machine, opt: OptLevel) -> Self {
        SimConfig {
            nbodies,
            seed: DEFAULT_SEED,
            theta: nbody::DEFAULT_THETA,
            eps: nbody::DEFAULT_EPS,
            dt: nbody::DEFAULT_DT,
            steps: 4,
            measured_steps: 2,
            opt,
            machine,
            n1: 4,
            n2: 4,
            n3: 4,
            alpha: 2.0 / 3.0,
            vector_reduction: true,
            fine_grained_fields: 3,
            leaf_capacity: 1,
            max_depth: 48,
            shadow_cache: false,
            software_scalar_cache: false,
        }
    }

    /// A small, fast configuration used by unit and integration tests.
    pub fn test(nbodies: usize, ranks: usize, opt: OptLevel) -> Self {
        let mut cfg = SimConfig::new(nbodies, Machine::test_cluster(ranks), opt);
        cfg.steps = 2;
        cfg.measured_steps = 1;
        cfg
    }

    /// Number of ranks implied by the machine.
    pub fn ranks(&self) -> usize {
        self.machine.ranks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_ordered_and_cumulative() {
        assert!(OptLevel::Baseline < OptLevel::ReplicateScalars);
        assert!(OptLevel::ReplicateScalars < OptLevel::Subspace);
        assert!(!OptLevel::Baseline.replicates_scalars());
        assert!(OptLevel::ReplicateScalars.replicates_scalars());
        assert!(OptLevel::Subspace.replicates_scalars());
        assert!(OptLevel::Redistribute.redistributes_bodies());
        assert!(!OptLevel::Redistribute.caches_cells());
        assert!(OptLevel::CacheLocalTree.caches_cells());
        assert!(OptLevel::MergedTreeBuild.merged_tree_build());
        assert!(!OptLevel::Subspace.merged_tree_build());
        assert!(OptLevel::Subspace.subspace_tree_build());
        assert!(OptLevel::Subspace.async_aggregation());
        assert!(OptLevel::AsyncAggregation.async_aggregation());
        assert!(!OptLevel::MergedTreeBuild.async_aggregation());
    }

    #[test]
    fn names_roundtrip() {
        for l in OptLevel::ALL {
            assert_eq!(OptLevel::from_name(l.name()), Some(l));
        }
        assert_eq!(OptLevel::from_name("nope"), None);
    }

    #[test]
    fn defaults_match_the_paper() {
        let cfg = SimConfig::new(1024, Machine::test_cluster(2), OptLevel::Baseline);
        assert_eq!(cfg.theta, 1.0);
        assert_eq!(cfg.dt, 0.025);
        assert_eq!(cfg.steps, 4);
        assert_eq!(cfg.measured_steps, 2);
        assert_eq!(cfg.n1, 4);
        assert_eq!(cfg.n2, 4);
        assert_eq!(cfg.n3, 4);
        assert!((cfg.alpha - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(cfg.ranks(), 2);
    }
}
