//! Solver-neutral checkpoint vocabulary: the per-step observation a
//! tracked run emits ([`StepRecord`]) and the bit-exact body comparison
//! every resume contract is pinned against.
//!
//! The actual snapshot store — chunking, content addressing, manifests,
//! structural diffing — lives in the `snapstore` crate; this module holds
//! only what the [`crate::Backend`] trait needs so that solvers can emit
//! observations without depending on the storage layer.

use nbody::Body;

/// One observation from a step-tracked run ([`crate::Backend::run_tracked`]),
/// emitted after every completed time step with all ranks quiesced.
///
/// `anchor_step` is the earliest step a bit-exact resume must restart from:
/// for stateless-per-step configurations (per-step rebuild, merged/subspace
/// builds) it is `step + 1` — resume simply continues from `bodies` — while
/// under a persistent tree it is the step of the last full rebuild, because
/// the incrementally updated tree's structure is a function of the body
/// history since that rebuild.  Resuming replays `anchor_step..` from the
/// bodies that *entered* the anchor step; the first replayed step rebuilds
/// from scratch exactly as the uninterrupted run's anchor step did, so the
/// replay reproduces the interrupted trajectory bit for bit.
#[derive(Debug, Clone)]
pub struct StepRecord {
    /// 0-based index of the time step that just completed.
    pub step: usize,
    /// Absolute step a bit-exact resume must replay from (see above).
    pub anchor_step: usize,
    /// Tree generation after this step (0 when the solver keeps no
    /// persistent tree); bumps exactly on full rebuilds.
    pub tree_generation: u64,
    /// Every body's state after this step, sorted by id.
    pub bodies: Vec<Body>,
}

/// `true` when the two body sets are bit-for-bit identical: same length and
/// every field of every body — position, velocity, acceleration, potential,
/// mass (by `f64::to_bits`), cost and id — equal.  This is the resume
/// contract's equality, strictly stronger than any epsilon comparison.
pub fn bodies_bits_equal(a: &[Body], b: &[Body]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| body_bits_equal(x, y))
}

fn body_bits_equal(a: &Body, b: &Body) -> bool {
    let v3 = |p: &nbody::Vec3, q: &nbody::Vec3| {
        p.x.to_bits() == q.x.to_bits()
            && p.y.to_bits() == q.y.to_bits()
            && p.z.to_bits() == q.z.to_bits()
    };
    a.id == b.id
        && a.cost == b.cost
        && a.mass.to_bits() == b.mass.to_bits()
        && a.phi.to_bits() == b.phi.to_bits()
        && v3(&a.pos, &b.pos)
        && v3(&a.vel, &b.vel)
        && v3(&a.acc, &b.acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbody::Vec3;

    #[test]
    fn bit_equality_sees_every_field() {
        let base = Body::at_rest(3, Vec3::new(1.0, 2.0, 3.0), 0.5);
        assert!(bodies_bits_equal(&[base], &[base]));
        assert!(!bodies_bits_equal(&[base], &[]));

        let mut tweaked = base;
        tweaked.pos.x = f64::from_bits(tweaked.pos.x.to_bits() ^ 1);
        assert!(!bodies_bits_equal(&[base], &[tweaked]));

        let mut tweaked = base;
        tweaked.cost += 1;
        assert!(!bodies_bits_equal(&[base], &[tweaked]));

        // -0.0 == 0.0 under `==` but differs in bits: the resume contract
        // must see the difference.
        let mut zero = base;
        zero.phi = 0.0;
        let mut negzero = base;
        negzero.phi = -0.0;
        assert!(!bodies_bits_equal(&[zero], &[negzero]));
    }
}
