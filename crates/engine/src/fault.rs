//! The **faultline** plane: deterministic, seeded fault injection.
//!
//! Robustness claims are only as good as the failures they were tested
//! against, and ad-hoc chaos (random `kill -9`, loose timing races) makes
//! failing runs unreproducible.  This module gives every layer one shared,
//! *deterministic* fault vocabulary: a [`FaultPlan`] is a seed plus a list
//! of site-keyed triggers, carried on `SimConfig`/`ServerOptions` and
//! consulted at explicit injection points — snapstore I/O (torn chunk
//! writes, injected `ENOSPC`/`EIO`, truncated manifests, bit-flipped
//! reads), bhserve framing (short reads, mid-frame disconnects, stalled
//! writes), and engine step execution (a retryable step fault).
//!
//! Because every trigger is a pure function of `(seed, site, counter)`,
//! a failing chaos run replays exactly from its command line — the same
//! property the simulation itself has.
//!
//! # Spec syntax
//!
//! A plan parses from a comma-separated spec
//! (`bhsim --faults`, `bhserve --faults`, `bhload --chaos-faults`):
//!
//! ```text
//! seed=42,engine.step@n3,frame.read.short@p0.05,snap.chunk.torn@s2..4
//! ```
//!
//! * `seed=N` — the stream seed (default 0; the seed entry may appear
//!   anywhere in the list).
//! * `SITE@nK` — fire on occurrence `K` exactly once: the `K`-th call
//!   (1-based) for call-keyed sites, step `K` (0-based) for step-keyed
//!   sites.
//! * `SITE@pF` — fire with probability `F` per occurrence, drawn from a
//!   splitmix64 stream seeded by `(seed, site, occurrence)`.
//! * `SITE@sL..H` — fire once at the first occurrence in `[L, H)`.
//!
//! # Site vocabulary
//!
//! | site                    | layer     | effect at the injection point    |
//! |-------------------------|-----------|----------------------------------|
//! | `engine.step`           | bh solver | step aborts with a retryable [`STEP_FAULT`] error |
//! | `snap.chunk.torn`       | snapstore | chunk written truncated (torn write) |
//! | `snap.chunk.io`         | snapstore | chunk write fails with injected `ENOSPC`/`EIO` |
//! | `snap.chunk.bitflip`    | snapstore | chunk payload bit-flipped on read |
//! | `snap.manifest.torn`    | snapstore | manifest written truncated       |
//! | `frame.read.short`      | bhserve   | reads degraded to 1 byte per call |
//! | `frame.read.disconnect` | bhserve   | connection dropped mid-frame      |
//! | `frame.write.disconnect`| bhserve   | write fails mid-frame             |
//!
//! # Call-keyed vs step-keyed sites
//!
//! I/O and framing sites are *call-keyed*: each [`FaultPlan::fires`] call
//! advances the site's occurrence counter (shared across clones of the
//! plan, so a retry does not restart the schedule).  The engine step site
//! is *step-keyed*: the solver asks [`FaultPlan::step_fault_pending`] —
//! a **pure** read, safe to evaluate on every emulated rank without
//! desynchronizing them — and the *driver* marks the fault consumed with
//! [`FaultPlan::consume_step`] after the aborted run returns, so the
//! checkpoint-restore replay does not re-fire it.
//!
//! An empty (default) plan is guaranteed inert: every check short-circuits
//! before touching the shared state, so fault-free runs are bit-for-bit
//! unchanged.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize, Value};

/// Marker embedded in the error string of an injected step fault, used by
/// supervisors to classify the failure as retryable.
pub const STEP_FAULT: &str = "STEP_FAULT";

/// When a fault at a site fires.
#[derive(Debug, Clone, PartialEq)]
enum Trigger {
    /// Fire on occurrence `K` exactly once (1-based calls, 0-based steps).
    Nth(u64),
    /// Fire with this probability per occurrence.
    Prob(f64),
    /// Fire once at the first occurrence in `[lo, hi)`.
    StepRange(u64, u64),
}

/// One site-keyed trigger of a plan.
#[derive(Debug, Clone, PartialEq)]
struct FaultSite {
    site: String,
    trigger: Trigger,
}

impl FaultSite {
    /// Renders the site back into spec syntax (the [`FaultPlan::spec`]
    /// round trip).
    fn spec(&self) -> String {
        match self.trigger {
            Trigger::Nth(k) => format!("{}@n{k}", self.site),
            Trigger::Prob(p) => format!("{}@p{p}", self.site),
            Trigger::StepRange(lo, hi) => format!("{}@s{lo}..{hi}", self.site),
        }
    }
}

/// Shared runtime state: occurrence counters and consumed one-shot sites.
///
/// Lives behind an `Arc` so cloning a plan (into a retried config, a
/// per-connection handle) *shares* the schedule — an `@n3` fault that fired
/// stays fired across the retry instead of re-firing forever.
#[derive(Debug, Default)]
struct FaultState {
    /// Per-site occurrence counters (call-keyed sites).
    calls: HashMap<String, u64>,
    /// One-shot triggers (`@n`, `@s`) that already fired, by site index.
    fired_sites: HashSet<usize>,
    /// Probabilistic step faults already consumed, by (site index, step).
    fired_steps: HashSet<(usize, u64)>,
}

/// A deterministic, seeded fault-injection plan.  `Default` is the empty —
/// guaranteed inert — plan.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Seed of the probabilistic trigger stream.
    pub seed: u64,
    sites: Vec<FaultSite>,
    state: Arc<Mutex<FaultState>>,
}

impl FaultPlan {
    /// Parses the comma-separated spec syntax (see the module docs).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for entry in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            if let Some(seed) = entry.strip_prefix("seed=") {
                plan.seed = seed
                    .parse()
                    .map_err(|_| format!("fault spec: invalid seed {seed:?} (not a u64)"))?;
                continue;
            }
            let (site, trigger) = entry.split_once('@').ok_or_else(|| {
                format!("fault spec: entry {entry:?} is not SITE@TRIGGER or seed=N")
            })?;
            if site.is_empty() {
                return Err(format!("fault spec: entry {entry:?} has an empty site name"));
            }
            let trigger = match trigger.split_at_checked(1) {
                Some(("n", k)) => Trigger::Nth(k.parse().map_err(|_| {
                    format!("fault spec: {entry:?}: {k:?} is not an occurrence number")
                })?),
                Some(("p", p)) => {
                    let p: f64 = p.parse().map_err(|_| {
                        format!("fault spec: {entry:?}: {p:?} is not a probability")
                    })?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!(
                            "fault spec: {entry:?}: probability {p} is outside [0, 1]"
                        ));
                    }
                    Trigger::Prob(p)
                }
                Some(("s", range)) => {
                    let (lo, hi) = range
                        .split_once("..")
                        .ok_or_else(|| format!("fault spec: {entry:?}: range must be L..H"))?;
                    let lo: u64 = lo.parse().map_err(|_| {
                        format!("fault spec: {entry:?}: {lo:?} is not a step number")
                    })?;
                    let hi: u64 = hi.parse().map_err(|_| {
                        format!("fault spec: {entry:?}: {hi:?} is not a step number")
                    })?;
                    if lo >= hi {
                        return Err(format!("fault spec: {entry:?}: empty range {lo}..{hi}"));
                    }
                    Trigger::StepRange(lo, hi)
                }
                _ => return Err(format!("fault spec: {entry:?}: trigger must be nK, pF or sL..H")),
            };
            plan.sites.push(FaultSite { site: site.to_string(), trigger });
        }
        Ok(plan)
    }

    /// `true` when the plan injects nothing (the default).  Every check
    /// short-circuits on this, so an empty plan is exactly the pre-faultline
    /// behavior.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// `true` when any trigger targets `site` (prefix match on the site
    /// vocabulary's dotted segments, so `snap` arms every snapstore site).
    pub fn targets(&self, site: &str) -> bool {
        self.sites.iter().any(|s| site_matches(&s.site, site))
    }

    /// Call-keyed check: advances `site`'s occurrence counter and reports
    /// whether a fault fires on this occurrence.  One counter per site name,
    /// shared across all triggers naming it and across plan clones.
    pub fn fires(&self, site: &str) -> bool {
        if self.is_empty() {
            return false;
        }
        let mut state = self.state.lock().unwrap();
        let count = state.calls.entry(site.to_string()).or_insert(0);
        *count += 1;
        let occurrence = *count;
        let mut fired = false;
        for (idx, s) in self.sites.iter().enumerate() {
            if !site_matches(&s.site, site) {
                continue;
            }
            match s.trigger {
                Trigger::Nth(k) => {
                    if occurrence == k && state.fired_sites.insert(idx) {
                        fired = true;
                    }
                }
                Trigger::Prob(p) => {
                    if chance(self.seed, &s.site, occurrence) < p {
                        fired = true;
                    }
                }
                Trigger::StepRange(lo, hi) => {
                    // Occurrence counters are 1-based; ranges are written in
                    // 0-based step vocabulary, so shift.
                    if (lo..hi).contains(&(occurrence - 1)) && state.fired_sites.insert(idx) {
                        fired = true;
                    }
                }
            }
        }
        fired
    }

    /// Step-keyed check, **pure**: reports whether a fault at `site` is due
    /// at `step` without advancing any counter.  Safe to evaluate on every
    /// emulated rank — all ranks see the same answer — which is why the
    /// solver uses this instead of [`FaultPlan::fires`].  Pair with
    /// [`FaultPlan::consume_step`] once the fault has been acted on.
    pub fn step_fault_pending(&self, site: &str, step: usize) -> bool {
        if self.is_empty() {
            return false;
        }
        let step = step as u64;
        let state = self.state.lock().unwrap();
        self.sites.iter().enumerate().any(|(idx, s)| {
            if !site_matches(&s.site, site) {
                return false;
            }
            match s.trigger {
                Trigger::Nth(k) => step == k && !state.fired_sites.contains(&idx),
                Trigger::Prob(p) => {
                    chance(self.seed, &s.site, step) < p
                        && !state.fired_steps.contains(&(idx, step))
                }
                Trigger::StepRange(lo, hi) => {
                    (lo..hi).contains(&step) && !state.fired_sites.contains(&idx)
                }
            }
        })
    }

    /// Marks every trigger matching `site` at `step` consumed, so a
    /// checkpoint-restore replay passing through the same step does not
    /// re-fire the fault.
    pub fn consume_step(&self, site: &str, step: usize) {
        if self.is_empty() {
            return;
        }
        let step = step as u64;
        let mut state = self.state.lock().unwrap();
        for (idx, s) in self.sites.iter().enumerate() {
            if !site_matches(&s.site, site) {
                continue;
            }
            match s.trigger {
                Trigger::Nth(k) if step == k => {
                    state.fired_sites.insert(idx);
                }
                Trigger::Prob(_) => {
                    state.fired_steps.insert((idx, step));
                }
                Trigger::StepRange(lo, hi) if (lo..hi).contains(&step) => {
                    state.fired_sites.insert(idx);
                }
                _ => {}
            }
        }
    }

    /// Renders the plan back into spec syntax (parse ∘ spec is identity on
    /// the trigger schedule).
    pub fn spec(&self) -> String {
        let mut parts = vec![format!("seed={}", self.seed)];
        parts.extend(self.sites.iter().map(FaultSite::spec));
        parts.join(",")
    }
}

/// `true` when `pattern` (a trigger's site) covers `site` (an injection
/// point): exact match or a dotted-segment prefix, so a spec can arm one
/// point (`frame.read.short`) or a whole layer (`frame.read`, `snap`).
fn site_matches(pattern: &str, site: &str) -> bool {
    site == pattern || site.strip_prefix(pattern).is_some_and(|rest| rest.starts_with('.'))
}

/// The probabilistic trigger stream: a uniform draw in `[0, 1)` that is a
/// pure function of the plan seed, the trigger's site name and the
/// occurrence index.
fn chance(seed: u64, site: &str, occurrence: u64) -> f64 {
    let x = splitmix64(seed ^ fnv1a(site.as_bytes()) ^ occurrence.wrapping_mul(0x9E37_79B9));
    // 53 mantissa bits → uniform in [0, 1).
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// splitmix64 — the standard 64-bit mixer (Steele et al.), one step.
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a 64-bit, for site-name → stream-lane derivation.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

// The vendored serde derives serialization only (`to_value`); deserialization
// is hand-walked wherever a plan crosses a boundary, and a plan is *excluded*
// from every persisted identity (snapshot manifests, bench RunSpecs, batch
// keys) by construction — faults describe how a run is exercised, not what it
// computes.
impl Serialize for FaultPlan {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("seed".to_string(), Value::UInt(self.seed)),
            (
                "sites".to_string(),
                Value::Array(self.sites.iter().map(|s| Value::String(s.spec())).collect()),
            ),
        ])
    }
}

impl<'de> Deserialize<'de> for FaultPlan {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_empty_plan_is_inert() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert!(!plan.fires("engine.step"));
        assert!(!plan.step_fault_pending("engine.step", 0));
        assert!(!plan.targets("engine.step"));
        plan.consume_step("engine.step", 0); // must not panic
    }

    #[test]
    fn parse_round_trips_and_rejects_nonsense() {
        let plan =
            FaultPlan::parse("seed=42,engine.step@n3,frame.read.short@p0.25,snap.chunk.torn@s2..4")
                .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.sites.len(), 3);
        let reparsed = FaultPlan::parse(&plan.spec()).unwrap();
        assert_eq!(reparsed.seed, plan.seed);
        assert_eq!(reparsed.sites, plan.sites);
        assert!(plan.targets("engine.step"));
        assert!(plan.targets("frame.read.short"));
        assert!(!plan.targets("frame.write.disconnect"));

        for bad in [
            "engine.step",       // no trigger
            "@n3",               // no site
            "engine.step@x9",    // unknown trigger kind
            "engine.step@n",     // missing number
            "engine.step@p1.5",  // probability out of range
            "engine.step@s4..4", // empty range
            "engine.step@s5..2", // inverted range
            "seed=minus-one",    // bad seed
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "spec {bad:?} must be rejected");
        }
        // Empty specs and stray commas are fine: an inert plan.
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse(" , ,").unwrap().is_empty());
    }

    #[test]
    fn nth_call_fires_exactly_once() {
        let plan = FaultPlan::parse("snap.chunk.io@n3").unwrap();
        let fired: Vec<bool> = (0..6).map(|_| plan.fires("snap.chunk.io")).collect();
        assert_eq!(fired, vec![false, false, true, false, false, false]);
    }

    #[test]
    fn site_prefixes_arm_whole_layers() {
        let plan = FaultPlan::parse("frame.read@n1").unwrap();
        assert!(plan.targets("frame.read.short"));
        assert!(plan.fires("frame.read.disconnect"));
        // `frame.readx` is not a dotted extension of `frame.read`.
        let plan = FaultPlan::parse("frame.read@n1").unwrap();
        assert!(!plan.targets("frame.readx"));
        assert!(!plan.fires("frame.readx"));
    }

    #[test]
    fn call_range_fires_once_within_the_window() {
        let plan = FaultPlan::parse("snap.chunk.torn@s2..4").unwrap();
        // Occurrences are 1-based, ranges 0-based: the window covers the
        // 3rd and 4th calls; the first hit consumes the trigger.
        let fired: Vec<bool> = (0..6).map(|_| plan.fires("snap.chunk.torn")).collect();
        assert_eq!(fired, vec![false, false, true, false, false, false]);
    }

    #[test]
    fn probability_stream_is_deterministic_and_roughly_calibrated() {
        let a = FaultPlan::parse("seed=7,frame.read.short@p0.2").unwrap();
        let b = FaultPlan::parse("seed=7,frame.read.short@p0.2").unwrap();
        let fa: Vec<bool> = (0..256).map(|_| a.fires("frame.read.short")).collect();
        let fb: Vec<bool> = (0..256).map(|_| b.fires("frame.read.short")).collect();
        assert_eq!(fa, fb, "same seed, same schedule");
        let hits = fa.iter().filter(|&&f| f).count();
        assert!((20..90).contains(&hits), "p=0.2 over 256 draws fired {hits} times");
        // A different seed gives a different schedule.
        let c = FaultPlan::parse("seed=8,frame.read.short@p0.2").unwrap();
        let fc: Vec<bool> = (0..256).map(|_| c.fires("frame.read.short")).collect();
        assert_ne!(fa, fc);
    }

    #[test]
    fn step_faults_are_pure_until_consumed_and_shared_across_clones() {
        let plan = FaultPlan::parse("engine.step@n2").unwrap();
        // Pending is a pure read: asking repeatedly (as every rank does)
        // never consumes the trigger.
        for _ in 0..4 {
            assert!(plan.step_fault_pending("engine.step", 2));
        }
        assert!(!plan.step_fault_pending("engine.step", 1));
        // The retry path sees the consumption through its cloned plan.
        let retry_view = plan.clone();
        plan.consume_step("engine.step", 2);
        assert!(!retry_view.step_fault_pending("engine.step", 2));
    }

    #[test]
    fn step_range_faults_consume_whole_windows() {
        let plan = FaultPlan::parse("engine.step@s1..8").unwrap();
        assert!(plan.step_fault_pending("engine.step", 3));
        plan.consume_step("engine.step", 3);
        // One-shot: the whole window is spent, so a replay passing through
        // steps 4..8 does not fault again and the retry converges.
        for step in 0..8 {
            assert!(!plan.step_fault_pending("engine.step", step), "step {step}");
        }
    }

    #[test]
    fn plans_serialize_their_schedule() {
        let plan = FaultPlan::parse("seed=9,engine.step@n1").unwrap();
        let v = plan.to_value();
        assert_eq!(v.get("seed").and_then(|s| s.as_u64()), Some(9));
        let sites = v.get("sites").and_then(|s| s.as_array()).unwrap();
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].as_str(), Some("engine.step@n1"));
    }
}
