//! The direct-summation reference backend.
//!
//! Wraps `nbody::direct` — the exact O(n²) method the paper motivates
//! Barnes-Hut against (§3) — as a distributed [`Backend`], so that every
//! scenario × machine combination has a ground-truth competitor in
//! head-to-head comparisons: both tree solvers approximate *this* answer.
//!
//! The parallelization is the textbook replicated-data scheme: bodies are
//! block-distributed by id, an all-to-all broadcast replicates the current
//! positions each step (billed, bytes and latency, as the Redistribution
//! phase), and each rank then evaluates the exact pairwise sum for its own
//! block (Force) and advances it (Body-adv.).  Tree building,
//! centre-of-mass and partitioning do not exist here and report zero.

use crate::backend::Backend;
use crate::config::SimConfig;
use crate::report::{measurement_begins, PhaseTimes, RankOutcome, SimResult};
use crate::Phase;
use nbody::{Body, SoaBodies};
use pgas::{Ctx, PhaseTimer, Runtime};

/// The exact O(n²) solver as an engine backend (registry key `direct`).
pub struct DirectBackend;

impl Backend for DirectBackend {
    fn name(&self) -> &'static str {
        "direct"
    }

    fn description(&self) -> &'static str {
        "exact O(n^2) direct summation (replicated data), the ground-truth reference"
    }

    fn supports_sessions(&self) -> bool {
        // No cross-step state at all: each step replicates, sums exactly and
        // advances with the stateless update, so chunked stepping is
        // trivially bit-identical to one long run.
        true
    }

    fn run(&self, cfg: &SimConfig, bodies: Vec<Body>) -> SimResult {
        run_simulation_on(cfg, bodies)
    }
}

/// Runs the distributed direct-summation simulation described by `cfg` over
/// caller-provided initial conditions.
///
/// `cfg.opt`, `cfg.tree_policy` and the ladder tunables are ignored (there
/// is no tree); θ is likewise meaningless here.  ε, dt, the step counts and
/// the machine are honoured, so runs are directly comparable to the tree
/// backends'.
///
/// # Panics
/// Panics when [`SimConfig::validate`] rejects `cfg` or when the bodies do
/// not match `cfg.nbodies`.
pub fn run_simulation_on(cfg: &SimConfig, bodies: Vec<Body>) -> SimResult {
    if let Err(e) = cfg.validate() {
        panic!("engine::direct::run_simulation_on: invalid config: {e}");
    }
    crate::backend::validate_bodies(cfg, &bodies);
    let runtime = Runtime::new(cfg.machine.clone());
    let ranks = runtime.ranks();

    let report = runtime.run(|ctx| {
        // The same block-by-id split the tree solvers start from.
        let per = cfg.nbodies.div_ceil(ranks.max(1)).max(1);
        let mut owned: Vec<Body> =
            bodies.iter().skip(ctx.rank() * per).take(per).copied().collect();
        let mut timer = PhaseTimer::new();
        for step in 0..cfg.steps {
            if measurement_begins(cfg, step) {
                timer.reset();
            }
            run_step(ctx, &mut owned, &mut timer, cfg);
        }

        let outcome = RankOutcome {
            phases: PhaseTimes::from_timer(&timer),
            tree_local: 0.0,
            tree_merge: 0.0,
            owned_bodies: owned.len() as u64,
            migrated_bodies: 0,
            stats: Default::default(),
        };

        // Gather the final body states so the result carries the full,
        // id-ordered system (outside the measured window).  The collective
        // must run on every rank, but only rank 0's copy survives into the
        // result, so the others skip assembling theirs.
        let gathered = ctx.allgather(owned.clone());
        let final_bodies: Vec<Body> = if ctx.rank() == 0 {
            let mut all: Vec<Body> = gathered.into_iter().flatten().collect();
            all.sort_unstable_by_key(|b| b.id);
            all
        } else {
            Vec::new()
        };
        (outcome, final_bodies)
    });

    let mut ranks_out = Vec::with_capacity(report.ranks.len());
    let mut final_bodies = Vec::new();
    for r in &report.ranks {
        let (mut outcome, gathered) = r.result.clone();
        outcome.stats = r.stats.clone();
        if r.rank == 0 {
            final_bodies = gathered;
        }
        ranks_out.push(outcome);
    }
    SimResult::aggregate(cfg, ranks_out, final_bodies)
}

/// One replicated-data direct-summation time step.
fn run_step(ctx: &Ctx, owned: &mut [Body], timer: &mut PhaseTimer, cfg: &SimConfig) {
    // Replication of the current body states (the only communication):
    // every rank sends its block to every peer through the all-to-all
    // exchange, which bills latency per destination plus the byte volume —
    // the dominant cost of replicated-data direct summation at scale.
    timer.begin(ctx, Phase::Redistribute.key());
    let outgoing: Vec<Vec<Body>> = (0..ctx.ranks()).map(|_| owned.to_vec()).collect();
    // Blocks are contiguous by id and arrive in source-rank order, so the
    // concatenation is already id-sorted.
    let all: Vec<Body> = ctx.exchange(outgoing).into_iter().flatten().collect();
    ctx.barrier();
    timer.end(ctx, Phase::Redistribute.key());

    // Exact pairwise force evaluation for the owned block.  The replicated
    // system is gathered once per step into a structure-of-arrays batch and
    // streamed per target — the same leaf-coalesced kernel the cached tree
    // walks use, bit-identical to the naive loop over `Body` records.
    timer.begin(ctx, Phase::Force.key());
    let n = all.len();
    let soa = SoaBodies::from_bodies(&all);
    for body in owned.iter_mut() {
        let mut acc = nbody::Vec3::ZERO;
        let mut phi = 0.0;
        soa.accumulate_excluding_id(0, n, body.pos, body.id, cfg.eps, &mut acc, &mut phi);
        body.acc = acc;
        body.phi = phi;
        body.cost = (n.saturating_sub(1)) as u32;
    }
    ctx.charge_interactions(owned.len() as u64 * n.saturating_sub(1) as u64);
    ctx.barrier();
    timer.end(ctx, Phase::Force.key());

    // Body advancement (same update rule as the tree solvers).
    timer.begin(ctx, Phase::Advance.key());
    for b in owned.iter_mut() {
        b.vel += b.acc * cfg.dt;
        b.pos += b.vel * cfg.dt;
    }
    ctx.charge_local_accesses(2 * owned.len() as u64);
    ctx.barrier();
    timer.end(ctx, Phase::Advance.key());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptLevel;
    use nbody::direct;
    use nbody::plummer::{generate, PlummerConfig};

    fn plummer(n: usize) -> Vec<Body> {
        generate(&PlummerConfig::new(n, 42))
    }

    #[test]
    fn accelerations_match_sequential_direct_summation_exactly() {
        let mut cfg = SimConfig::test(96, 3, OptLevel::Subspace);
        cfg.steps = 1;
        cfg.measured_steps = 1;
        let bodies = plummer(cfg.nbodies);
        let reference = direct::compute_forces(&bodies, cfg.eps);
        let result = DirectBackend.run(&cfg, bodies);
        assert_eq!(result.bodies.len(), 96);
        for (a, b) in result.bodies.iter().zip(&reference) {
            assert_eq!(a.id, b.id);
            assert!((a.acc - b.acc).norm() < 1e-12, "direct backend must be exact");
            assert!((a.phi - b.phi).abs() < 1e-12);
        }
    }

    #[test]
    fn rank_count_does_not_change_the_physics() {
        let bodies = plummer(80);
        let mut cfg1 = SimConfig::test(80, 1, OptLevel::Baseline);
        let mut cfg4 = SimConfig::test(80, 4, OptLevel::Baseline);
        cfg1.steps = 2;
        cfg4.steps = 2;
        let a = run_simulation_on(&cfg1, bodies.clone());
        let b = run_simulation_on(&cfg4, bodies);
        for (x, y) in a.bodies.iter().zip(&b.bodies) {
            assert!((x.pos - y.pos).norm() < 1e-12);
        }
    }

    #[test]
    fn phases_without_a_tree_report_zero() {
        let cfg = SimConfig::test(64, 2, OptLevel::Subspace);
        let result = DirectBackend.run(&cfg, plummer(64));
        assert_eq!(result.phases.tree, 0.0);
        assert_eq!(result.phases.cofm, 0.0);
        assert_eq!(result.phases.partition, 0.0);
        assert!(result.phases.force > 0.0);
        assert!(result.phases.redistribute > 0.0, "the replication exchange is billed");
        assert!(result.total_stats().bytes_out > 0, "replication sends real bytes");
        assert_eq!(result.migration_fraction, 0.0);
        let owned: u64 = result.ranks.iter().map(|r| r.owned_bodies).sum();
        assert_eq!(owned, 64);
    }
}
