//! The backend abstraction: one trait for every solver.
//!
//! The paper's conclusion (§9) leaves "directly compare the performance of
//! this code to the performance of a similar code expressed in MPI" as
//! future work.  That comparison needs the solvers to be interchangeable:
//! a [`Backend`] consumes a [`SimConfig`] plus the initial bodies (from any
//! `scenarios` generator) and produces a [`SimResult`], nothing more.  The
//! string-keyed [`BackendRegistry`] mirrors the scenarios registry so that
//! drivers, benches and tests can select solvers by name (`upc`, `mpi`,
//! `direct`) exactly as they select workloads.

use crate::config::SimConfig;
use crate::report::SimResult;
use nbody::Body;

/// A solver that can run any scenario's bodies under a [`SimConfig`].
///
/// Implementations must honour the shared conventions: the bodies number
/// `cfg.nbodies` with ids `0..n` in order, the run executes `cfg.steps`
/// steps with the trailing `cfg.measured_steps` timed, and the returned
/// [`SimResult::bodies`] are sorted by id.
pub trait Backend: Send + Sync {
    /// Registry key (stable, kebab-case).
    fn name(&self) -> &'static str;

    /// One-line human description for `bhsim --list`.
    fn description(&self) -> &'static str;

    /// Checks whether this backend can run `cfg`, returning a clear error
    /// when it cannot (e.g. a body count that would collide with the MPI
    /// solver's pseudo-body id space).
    ///
    /// The default checks [`SimConfig::validate`], so every backend rejects
    /// unrunnable configurations (`measured_steps > steps`, non-positive
    /// `dt`, ...) before any simulation work starts; overrides should chain
    /// `cfg.validate().map_err(|e| e.to_string())?` before their own checks
    /// (the stringified [`crate::ConfigError`] keeps its machine-readable
    /// code in the rendered message).
    fn supports(&self, cfg: &SimConfig) -> Result<(), String> {
        cfg.validate().map_err(|e| e.to_string())
    }

    /// `true` when the backend can be *stepped in chunks* with bit-for-bit
    /// fidelity: running `k` steps, then `n − k` more steps from the
    /// returned body snapshot, produces exactly the bodies of one `n`-step
    /// run (under [`crate::TreePolicy::Rebuild`], where the tree carries no
    /// cross-step state).  The `bhserve` session layer relies on this to
    /// offer incremental `step` requests that are indistinguishable from a
    /// single standalone run; the session-equivalence integration test pins
    /// the property for every backend that claims it.
    ///
    /// The built-in solvers all qualify — their advance phase is the
    /// stateless `vel += acc·dt; pos += vel·dt` update with no half-step
    /// bootstrap carried between steps, and partitioning/tree construction
    /// are pure functions of the current body positions — but the default is
    /// conservative for external backends.
    fn supports_sessions(&self) -> bool {
        false
    }

    /// Runs the simulation over the given initial conditions.
    ///
    /// Callers should check [`Backend::supports`] first; implementations may
    /// panic on configurations they reported as unsupported.
    fn run(&self, cfg: &SimConfig, bodies: Vec<Body>) -> SimResult;

    /// Like [`Backend::run`], but emits a [`crate::snap::StepRecord`] after
    /// every completed time step (all ranks quiesced, bodies sorted by id)
    /// so callers can checkpoint mid-run.  Tracking must not perturb the
    /// physics: the tracked run's bodies are bit-for-bit those of
    /// [`Backend::run`] under the same configuration.
    ///
    /// The default refuses — observation points require solver cooperation
    /// (a safe barrier between steps and access to the tree-lifecycle
    /// phase), so backends opt in explicitly.  Checkpoint-driving surfaces
    /// (`bhsim --checkpoint-every`, the snapstore resume path) report the
    /// error to the user instead of silently running untracked.
    fn run_tracked(
        &self,
        cfg: &SimConfig,
        bodies: Vec<Body>,
        observer: &mut (dyn FnMut(crate::snap::StepRecord) + Send),
    ) -> Result<SimResult, String> {
        let _ = (cfg, bodies, observer);
        Err(format!("backend {} does not support step-tracked (checkpointed) runs", self.name()))
    }
}

/// Asserts the shared body conventions every backend relies on: the bodies
/// number `cfg.nbodies` and carry ids `0..n` in order (the solvers index
/// tables and assemble snapshots by id, so a violation would produce
/// silently wrong physics rather than an error; the O(n) check is
/// negligible next to a simulation step).
pub fn validate_bodies(cfg: &SimConfig, bodies: &[Body]) {
    assert_eq!(bodies.len(), cfg.nbodies, "initial conditions must match cfg.nbodies");
    assert!(
        bodies.iter().enumerate().all(|(i, b)| b.id as usize == i),
        "initial conditions must carry ids 0..nbodies in order"
    );
}

/// A string-keyed collection of backends.
///
/// Later registrations shadow earlier ones with the same name, so
/// applications can override a built-in backend while keeping the rest.
#[derive(Default)]
pub struct BackendRegistry {
    entries: Vec<Box<dyn Backend>>,
}

impl BackendRegistry {
    /// An empty registry.
    pub fn new() -> BackendRegistry {
        BackendRegistry::default()
    }

    /// Adds a backend (shadowing any previous entry with the same name).
    pub fn register(&mut self, backend: Box<dyn Backend>) {
        self.entries.push(backend);
    }

    /// Looks a backend up by its [`Backend::name`].
    pub fn get(&self, name: &str) -> Option<&dyn Backend> {
        self.entries.iter().rev().find(|b| b.name() == name).map(|b| b.as_ref())
    }

    /// Like [`BackendRegistry::get`], but an unknown name fails with the
    /// standard did-you-mean error ([`crate::suggest::unknown_key`]) instead
    /// of a bare `None` — the lookup every user-facing surface (bhsim
    /// `--backend`, bhserve jobs, the comparison driver) should use.
    pub fn lookup(&self, name: &str) -> Result<&dyn Backend, String> {
        self.get(name).ok_or_else(|| crate::suggest::unknown_key("backend", name, &self.names()))
    }

    /// The names currently registered, in registration order, deduplicated.
    pub fn names(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = Vec::new();
        for b in &self.entries {
            if !names.contains(&b.name()) {
                names.push(b.name());
            }
        }
        names
    }

    /// Iterates over the visible (non-shadowed) backends.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Backend> {
        self.names().into_iter().filter_map(|n| self.get(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::OptLevel;

    struct Dummy(&'static str);
    impl Backend for Dummy {
        fn name(&self) -> &'static str {
            self.0
        }
        fn description(&self) -> &'static str {
            "dummy"
        }
        fn run(&self, cfg: &SimConfig, bodies: Vec<Body>) -> SimResult {
            SimResult::aggregate(cfg, Vec::new(), bodies)
        }
    }

    #[test]
    fn registry_lookup_and_shadowing() {
        let mut registry = BackendRegistry::new();
        registry.register(Box::new(Dummy("a")));
        registry.register(Box::new(Dummy("b")));
        assert_eq!(registry.names(), vec!["a", "b"]);
        assert!(registry.get("a").is_some());
        assert!(registry.get("c").is_none());
        registry.register(Box::new(Dummy("a")));
        assert_eq!(registry.names().len(), 2, "shadowing must not duplicate names");
        assert_eq!(registry.iter().count(), 2);
    }

    #[test]
    fn lookup_suggests_on_typos() {
        let mut registry = BackendRegistry::new();
        registry.register(Box::new(Dummy("direct")));
        registry.register(Box::new(Dummy("upc")));
        assert!(registry.lookup("upc").is_ok());
        let err = registry.lookup("dierct").map(|b| b.name()).unwrap_err();
        assert!(err.contains("unknown backend: dierct"), "{err}");
        assert!(err.contains("did you mean \"direct\"?"), "{err}");
        assert!(err.contains("registered: direct, upc"), "{err}");
    }

    #[test]
    fn sessions_are_opt_in() {
        assert!(!Dummy("x").supports_sessions(), "the default must stay conservative");
    }

    #[test]
    fn tracked_runs_are_opt_in() {
        // A backend that has not wired up safe observation points must
        // refuse loudly rather than run untracked.
        let cfg = SimConfig::test(8, 1, OptLevel::Baseline);
        let err = Dummy("x").run_tracked(&cfg, Vec::new(), &mut |_| {}).unwrap_err();
        assert!(err.contains("step-tracked"), "{err}");
    }

    #[test]
    fn default_supports_validates_the_config() {
        let cfg = SimConfig::test(16, 1, OptLevel::Baseline);
        assert!(Dummy("x").supports(&cfg).is_ok());
        // An unrunnable measurement window is rejected by every backend
        // through the default `supports`, not silently mis-measured.
        let mut bad = cfg;
        bad.measured_steps = bad.steps + 1;
        let err = Dummy("x").supports(&bad).unwrap_err();
        assert!(err.contains("measured_steps"), "{err}");
    }
}
