//! End-to-end tests of the serving stack over real sockets: the
//! session-equivalence guarantee, deterministic tenant accounting, and the
//! `bhload` harness driving a live in-process server.

use barnes_hut_upc::backends;
use bhserve::load::{self, LoadOptions, Mix};
use bhserve::proto::{decode_job, hex_f64};
use bhserve::server::request;
use bhserve::{Client, Server, ServerOptions};
use scenarios::builtin;
use serde::Value;

fn start(opts: ServerOptions) -> Server {
    Server::start(opts, builtin(), backends()).unwrap()
}

fn str_field(v: &Value, key: &str) -> String {
    v.get(key)
        .and_then(|x| x.as_str())
        .unwrap_or_else(|| panic!("missing {key}: {v:?}"))
        .to_string()
}

fn u64_field(v: &Value, key: &str) -> u64 {
    v.get(key).and_then(|x| x.as_u64()).unwrap_or_else(|| panic!("missing {key}: {v:?}"))
}

/// The job every equivalence check uses, as raw request fields.
fn job_fields(backend: &str, n: u64) -> Vec<(String, Value)> {
    vec![
        ("tenant".to_string(), Value::String("equiv".to_string())),
        ("scenario".to_string(), Value::String("plummer".to_string())),
        ("backend".to_string(), Value::String(backend.to_string())),
        ("n".to_string(), Value::UInt(n)),
        ("steps".to_string(), Value::UInt(4)),
        ("measured".to_string(), Value::UInt(2)),
        ("nodes".to_string(), Value::UInt(2)),
    ]
}

/// N `step` requests against a live session must produce the body state of
/// one standalone N-step run **bit for bit** — the
/// [`engine::Backend::supports_sessions`] contract, checked for every
/// backend that makes the claim, through the real socket path (framing,
/// JSON, hex encoding included).
#[test]
fn chunked_session_stepping_is_bit_identical_to_one_run() {
    let registry = backends();
    let scenarios = builtin();
    let server = start(ServerOptions::default());
    let session_capable: Vec<&str> =
        registry.iter().filter(|b| b.supports_sessions()).map(|b| b.name()).collect();
    assert!(!session_capable.is_empty(), "at least one backend must support sessions");

    for backend_name in session_capable {
        // The standalone reference: decode the *same* request fields the
        // server will decode, so the configs are identical by construction.
        let req = request("open", job_fields(backend_name, 48));
        let job = decode_job(&req, &scenarios, &registry).unwrap();
        let backend = registry.get(backend_name).unwrap();
        let initial = scenarios.get("plummer").unwrap().generate(48, job.cfg.seed);
        let expected = backend.run(&job.cfg, initial).bodies;
        assert_eq!(expected.len(), 48);

        // The served path: open, 2 + 2 steps, snapshot.
        let mut client = Client::connect(&server.addr()).unwrap();
        let opened = client.call(&req).unwrap();
        assert_eq!(
            opened.get("ok").and_then(|v| v.as_bool()),
            Some(true),
            "{backend_name}: {opened:?}"
        );
        let sid = ("session".to_string(), Value::UInt(u64_field(&opened, "session")));
        for _ in 0..2 {
            let stepped = client
                .call(&request("step", vec![sid.clone(), ("steps".to_string(), Value::UInt(2))]))
                .unwrap();
            assert_eq!(
                stepped.get("ok").and_then(|v| v.as_bool()),
                Some(true),
                "{backend_name}: {stepped:?}"
            );
        }
        let snap = client.call(&request("snapshot", vec![sid])).unwrap();
        assert_eq!(u64_field(&snap, "steps_done"), 4);
        let bodies = snap.get("bodies").unwrap().as_array().unwrap();
        assert_eq!(bodies.len(), expected.len());

        for (body, exp) in bodies.iter().zip(&expected) {
            assert_eq!(u64_field(body, "id"), exp.id as u64, "{backend_name}");
            let ctx = format!("{backend_name}/body {}", exp.id);
            assert_eq!(str_field(body, "mass"), hex_f64(exp.mass), "{ctx}: mass");
            assert_eq!(str_field(body, "phi"), hex_f64(exp.phi), "{ctx}: phi");
            for (key, vec) in [("pos", exp.pos), ("vel", exp.vel), ("acc", exp.acc)] {
                let got = body.get(key).unwrap().as_array().unwrap();
                let want = [hex_f64(vec.x), hex_f64(vec.y), hex_f64(vec.z)];
                for (axis, (g, w)) in got.iter().zip(&want).enumerate() {
                    assert_eq!(
                        g.as_str().unwrap(),
                        w,
                        "{ctx}: {key}[{axis}] diverged — chunked stepping is not bit-identical"
                    );
                }
            }
        }
    }
}

/// The quota ledger is denominated in deterministic counters, so the total
/// charged to a tenant for a set of served jobs must equal the sum of the
/// same jobs' counters measured standalone — exactly, not approximately.
#[test]
fn tenant_ledger_equals_sum_of_standalone_runs() {
    let registry = backends();
    let scenarios = builtin();
    let server = start(ServerOptions::default());
    let jobs = [("upc", 32u64), ("direct", 48), ("mpi", 64), ("upc", 32)]; // a repeat: charged twice

    let mut expected_interactions = 0u64;
    let mut expected_tree_ops = 0u64;
    for (backend_name, n) in &jobs {
        let req = request("run", job_fields(backend_name, *n));
        let job = decode_job(&req, &scenarios, &registry).unwrap();
        let initial = scenarios.get("plummer").unwrap().generate(*n as usize, job.cfg.seed);
        let stats = registry.get(backend_name).unwrap().run(&job.cfg, initial).total_stats();
        expected_interactions += stats.interactions;
        expected_tree_ops += stats.tree_ops;
    }

    let mut client = Client::connect(&server.addr()).unwrap();
    for (backend_name, n) in &jobs {
        let reply = client.call(&request("run", job_fields(backend_name, *n))).unwrap();
        assert_eq!(reply.get("ok").and_then(|v| v.as_bool()), Some(true), "{reply:?}");
    }

    let ledger = server.quotas().usage("equiv");
    assert_eq!(ledger.runs, jobs.len() as u64);
    assert_eq!(
        ledger.interactions, expected_interactions,
        "served interaction charges must equal standalone totals exactly"
    );
    assert_eq!(ledger.tree_ops, expected_tree_ops);
}

/// The `bhload` harness against a live server: mixed one-shot, session,
/// over-quota and mid-session-disconnect clients, producing a valid
/// serving record with every cell populated.
#[test]
fn load_harness_drives_a_mixed_fleet() {
    let opts = ServerOptions {
        tenant_quotas: vec![("freeloader".to_string(), 1)],
        ..ServerOptions::default()
    };
    let server = start(opts);
    let load_opts = LoadOptions {
        addr: server.addr(),
        clients: 48,
        threads: 8,
        mix: Mix::Quick,
        session_every: 8,
        abuse: true,
        chaos: false,
    };
    let scenarios = builtin();
    let report = load::run(&load_opts, &scenarios).unwrap();

    assert!(report.quota_rejections >= 1, "the freeloader tenant must be refused");
    assert_eq!(report.disconnects, 1, "the mid-session disconnect must complete");
    assert!(report.sessions >= 1, "session flows must run");
    assert!(report.measured_requests >= 40, "most clients are measured one-shots");
    assert_eq!(report.failures, 0);

    let record = &report.record;
    record.validate().unwrap();
    assert_eq!(record.runs.len(), 3, "one row per quick cell");
    for run in &record.runs {
        assert_eq!(run.spec.service, engine::bench::SERVICE_BHSERVE);
        assert!(run.latency_ms.median > 0.0, "{}: latency must be measured", run.spec.key());
        assert!(run.latency_ms.p99 >= run.latency_ms.p90);
        assert!(run.throughput_rps > 0.0);
        assert!(run.interactions > 0);
    }

    // The server survived the abuse: it still answers.
    let mut client = Client::connect(&server.addr()).unwrap();
    let pong = client.call(&request("ping", Vec::new())).unwrap();
    assert_eq!(pong.get("ok").and_then(|v| v.as_bool()), Some(true));
}

/// A suspended session survives a full daemon restart: `suspend` on one
/// server instance, `resume` on a *fresh* instance pointed at the same
/// `--snap-dir`, and the continued trajectory is bit-identical to an
/// uninterrupted session — plus the structured error codes for a missing
/// store, a malformed token and an unknown token.
#[test]
fn suspended_sessions_survive_daemon_restarts() {
    let snap_dir = std::env::temp_dir().join(format!("bhserve-snap-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&snap_dir);
    let with_store = || ServerOptions {
        snap_dir: Some(snap_dir.to_string_lossy().into_owned()),
        ..ServerOptions::default()
    };
    let fields = job_fields("direct", 32);

    // First daemon: open, advance 2 steps, suspend.
    let token = {
        let server = start(with_store());
        let mut client = Client::connect(&server.addr()).unwrap();
        let opened = client.call(&request("open", fields.clone())).unwrap();
        let sid = ("session".to_string(), Value::UInt(u64_field(&opened, "session")));
        client
            .call(&request("step", vec![sid.clone(), ("steps".to_string(), Value::UInt(2))]))
            .unwrap();
        let suspended = client.call(&request("suspend", vec![sid.clone()])).unwrap();
        assert_eq!(suspended.get("ok").and_then(|v| v.as_bool()), Some(true), "{suspended:?}");
        assert_eq!(u64_field(&suspended, "steps_done"), 2);
        // The session is gone from this connection once suspended.
        let gone = client.call(&request("query", vec![sid])).unwrap();
        assert_eq!(gone.get("code").unwrap().as_str(), Some(bhserve::proto::E_NO_SESSION));
        str_field(&suspended, "token")
    };
    assert_eq!(token.len(), 64, "tokens are manifest hashes");

    // Second daemon, same store directory: resume, finish, snapshot.
    let server = start(with_store());
    let mut client = Client::connect(&server.addr()).unwrap();
    let resumed = client
        .call(&request(
            "resume",
            vec![
                ("tenant".to_string(), Value::String("equiv".to_string())),
                ("token".to_string(), Value::String(token.clone())),
            ],
        ))
        .unwrap();
    assert_eq!(resumed.get("ok").and_then(|v| v.as_bool()), Some(true), "{resumed:?}");
    assert_eq!(u64_field(&resumed, "steps_done"), 2);
    let sid = ("session".to_string(), Value::UInt(u64_field(&resumed, "session")));
    client
        .call(&request("step", vec![sid.clone(), ("steps".to_string(), Value::UInt(2))]))
        .unwrap();
    let snap_resumed = client.call(&request("snapshot", vec![sid])).unwrap();
    assert_eq!(u64_field(&snap_resumed, "steps_done"), 4);

    // Reference: one uninterrupted 4-step session on the same server.
    let opened = client.call(&request("open", fields)).unwrap();
    let sid = ("session".to_string(), Value::UInt(u64_field(&opened, "session")));
    client
        .call(&request("step", vec![sid.clone(), ("steps".to_string(), Value::UInt(4))]))
        .unwrap();
    let snap_straight = client.call(&request("snapshot", vec![sid])).unwrap();
    // The snapshot wire encoding is bit-exact hex, so textual equality of
    // the body arrays *is* bit-for-bit state equality.
    assert_eq!(
        serde_json::to_string(snap_resumed.get("bodies").unwrap()).unwrap(),
        serde_json::to_string(snap_straight.get("bodies").unwrap()).unwrap(),
        "resumed trajectory must be bit-identical to the uninterrupted one"
    );

    // Error vocabulary: unknown token, malformed token, storeless server.
    let resume_req = |token: &str| {
        request(
            "resume",
            vec![
                ("tenant".to_string(), Value::String("equiv".to_string())),
                ("token".to_string(), Value::String(token.to_string())),
            ],
        )
    };
    let missing = client.call(&resume_req(&token.replace(&token[..4], "0000"))).unwrap();
    assert!(
        matches!(
            missing.get("code").unwrap().as_str(),
            Some(bhserve::proto::E_NO_SNAPSHOT) | Some(bhserve::proto::E_SNAP_CORRUPT)
        ),
        "{missing:?}"
    );
    let malformed = client.call(&resume_req("../../etc/passwd")).unwrap();
    assert_eq!(malformed.get("code").unwrap().as_str(), Some(bhserve::proto::E_PROTO));

    let storeless = start(ServerOptions::default());
    let mut client = Client::connect(&storeless.addr()).unwrap();
    let refused = client.call(&resume_req(&token)).unwrap();
    assert_eq!(refused.get("code").unwrap().as_str(), Some(bhserve::proto::E_SNAP_UNAVAILABLE));

    let _ = std::fs::remove_dir_all(&snap_dir);
}

/// The chaos fleet against a live server with injected frame faults and a
/// snapshot store: measured requests recover through retries, abort and
/// suspend→resume probes run, and the record lands under the `chaos`
/// service axis — with zero hard failures.
#[test]
fn chaos_fleet_recovers_from_injected_faults() {
    let snap_dir = std::env::temp_dir().join(format!("bhserve-chaos-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&snap_dir);
    let opts = ServerOptions {
        snap_dir: Some(snap_dir.to_string_lossy().into_owned()),
        // One injected mid-frame write disconnect, early in the run: some
        // client loses its response and must recover (or be tolerated as a
        // chaos casualty) — never a hard failure.
        faults: engine::FaultPlan::parse("seed=5,frame.write.disconnect@n2").unwrap(),
        ..ServerOptions::default()
    };
    let server = start(opts);
    let load_opts = LoadOptions {
        addr: server.addr(),
        clients: 64,
        threads: 8,
        mix: Mix::Quick,
        session_every: 8,
        abuse: false,
        chaos: true,
    };
    let report = load::run(&load_opts, &builtin()).unwrap();
    assert_eq!(report.failures, 0);
    assert!(report.aborts >= 1, "chaos mixes in mid-frame aborters");
    assert!(report.resume_checks >= 1, "chaos probes suspend/resume bit-identity");
    assert!(
        report.retried + report.disconnects >= 1,
        "the injected disconnect must have hit someone"
    );
    for run in &report.record.runs {
        assert_eq!(run.spec.service, engine::bench::SERVICE_CHAOS);
        assert!(run.error_rate <= 1.0);
    }
    // The server is still healthy after the chaos pass.
    let mut client = Client::connect(&server.addr()).unwrap();
    let health = client.call(&request("health", Vec::new())).unwrap();
    assert_eq!(health.get("ok").and_then(|v| v.as_bool()), Some(true));
    let _ = std::fs::remove_dir_all(&snap_dir);
}

/// The cross-restart probe pair: `suspend_one` against one daemon,
/// `resume_token` against a fresh daemon on the same store — the digests
/// must match bit-for-bit (what the CI chaos job asserts across a SIGKILL).
#[test]
fn suspend_probe_digest_survives_a_daemon_restart() {
    let snap_dir = std::env::temp_dir().join(format!("bhserve-probe-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&snap_dir);
    let with_store = || ServerOptions {
        snap_dir: Some(snap_dir.to_string_lossy().into_owned()),
        ..ServerOptions::default()
    };
    let (token, digest_before) = {
        let server = start(with_store());
        load::suspend_one(&server.addr()).unwrap()
    };
    let server = start(with_store());
    let digest_after = load::resume_token(&server.addr(), &token).unwrap();
    assert_eq!(digest_before, digest_after, "resume must restore bit-identical state");
    let _ = std::fs::remove_dir_all(&snap_dir);
}

/// A chunk corrupted on disk surfaces as a structured `E_SNAP_CORRUPT`
/// rejection on resume — never a panic, never a silent wrong answer —
/// and the connection stays alive for further requests.
#[test]
fn corrupt_chunks_reject_resume_with_e_snap_corrupt() {
    let snap_dir =
        std::env::temp_dir().join(format!("bhserve-corrupt-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&snap_dir);
    let server = start(ServerOptions {
        snap_dir: Some(snap_dir.to_string_lossy().into_owned()),
        ..ServerOptions::default()
    });
    let (token, _digest) = load::suspend_one(&server.addr()).unwrap();

    // Flip one byte in every stored chunk object.
    let objects = snap_dir.join("objects");
    let mut corrupted = 0;
    for shard in std::fs::read_dir(&objects).unwrap() {
        let shard = shard.unwrap().path();
        if !shard.is_dir() {
            continue;
        }
        for object in std::fs::read_dir(&shard).unwrap() {
            let path = object.unwrap().path();
            let mut bytes = std::fs::read(&path).unwrap();
            if let Some(b) = bytes.first_mut() {
                *b ^= 0x01;
            }
            std::fs::write(&path, bytes).unwrap();
            corrupted += 1;
        }
    }
    assert!(corrupted >= 1, "the suspend must have written chunk objects");

    let mut client = Client::connect(&server.addr()).unwrap();
    let refused = client
        .call(&request(
            "resume",
            vec![
                ("tenant".to_string(), Value::String("equiv".to_string())),
                ("token".to_string(), Value::String(token)),
            ],
        ))
        .unwrap();
    assert_eq!(
        refused.get("code").and_then(|v| v.as_str()),
        Some(bhserve::proto::E_SNAP_CORRUPT),
        "{refused:?}"
    );
    // The connection survives the rejection.
    let pong = client.call(&request("ping", Vec::new())).unwrap();
    assert_eq!(pong.get("ok").and_then(|v| v.as_bool()), Some(true));
    let _ = std::fs::remove_dir_all(&snap_dir);
}
