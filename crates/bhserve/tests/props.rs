//! Property-based tests for the `bhserve` wire layer: the frame codec
//! round-trips, and no wire input — truncated, oversized or garbage —
//! ever panics or over-allocates.

use std::io::{self, Cursor};

use bhserve::frame::{read_frame, write_frame, MAX_FRAME};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn frame_sequences_round_trip(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..2048), 1..8)
    ) {
        let mut buf = Vec::new();
        for p in &payloads {
            write_frame(&mut buf, p).unwrap();
        }
        let mut r = Cursor::new(buf);
        for p in &payloads {
            let frame = read_frame(&mut r).unwrap();
            prop_assert_eq!(frame.as_deref(), Some(&p[..]));
        }
        prop_assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF after the last frame");
    }

    #[test]
    fn truncated_frames_fail_cleanly(
        payload in prop::collection::vec(any::<u8>(), 0..512),
        cut in 0usize..600,
    ) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let cut = cut.min(buf.len());
        let mut r = Cursor::new(buf[..cut].to_vec());
        match read_frame(&mut r) {
            // No bytes at all is an orderly close...
            Ok(None) => prop_assert_eq!(cut, 0),
            // ...a whole frame only survives an uncut stream...
            Ok(Some(got)) => {
                prop_assert_eq!(cut, buf.len());
                prop_assert_eq!(got, payload);
            }
            // ...and everything in between is a mid-frame disconnect.
            Err(e) => prop_assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
        }
    }

    #[test]
    fn arbitrary_streams_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        // Read frames until the stream is exhausted or rejected; every
        // outcome must be an enumerated one — never a panic, never an
        // allocation beyond MAX_FRAME (a 128-byte stream cannot satisfy a
        // large declared length, so a huge declaration either errors as
        // InvalidData or dies as UnexpectedEof while filling the payload).
        let mut r = Cursor::new(bytes);
        for _ in 0..64 {
            match read_frame(&mut r) {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(e) => {
                    prop_assert!(matches!(
                        e.kind(),
                        io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof
                    ));
                    break;
                }
            }
        }
    }

    #[test]
    fn oversized_declarations_are_invalid_data(extra in 1u32..100_000) {
        let declared = (MAX_FRAME as u32).saturating_add(extra);
        let mut buf = declared.to_le_bytes().to_vec();
        buf.extend_from_slice(&[0u8; 32]);
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        prop_assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn garbage_json_is_rejected_without_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // The protocol layer above the framing: arbitrary payload bytes
        // either parse as JSON or are rejected with an error — never a
        // panic (the connection handler turns both failure modes into an
        // E_PROTO response).
        if let Ok(text) = std::str::from_utf8(&bytes) {
            let _ = serde_json::from_str(text);
        }
    }
}
