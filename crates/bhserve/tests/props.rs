//! Property-based tests for the `bhserve` wire layer: the frame codec
//! round-trips, and no wire input — truncated, oversized or garbage —
//! ever panics or over-allocates.

use std::io::{self, Cursor, Read};

use bhserve::frame::{read_frame, write_frame, FaultyStream, MAX_FRAME};
use engine::FaultPlan;
use proptest::prelude::*;

/// A reader that delivers at most `chunk` bytes per call — the "partial
/// interleaved write" shape as seen from the receiving side: the sender's
/// frames arrive sliced at arbitrary boundaries.
struct Trickle {
    inner: Cursor<Vec<u8>>,
    chunk: usize,
}

impl Read for Trickle {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = buf.len().min(self.chunk.max(1));
        self.inner.read(&mut buf[..n])
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn frame_sequences_round_trip(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..2048), 1..8)
    ) {
        let mut buf = Vec::new();
        for p in &payloads {
            write_frame(&mut buf, p).unwrap();
        }
        let mut r = Cursor::new(buf);
        for p in &payloads {
            let frame = read_frame(&mut r).unwrap();
            prop_assert_eq!(frame.as_deref(), Some(&p[..]));
        }
        prop_assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF after the last frame");
    }

    #[test]
    fn truncated_frames_fail_cleanly(
        payload in prop::collection::vec(any::<u8>(), 0..512),
        cut in 0usize..600,
    ) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let cut = cut.min(buf.len());
        let mut r = Cursor::new(buf[..cut].to_vec());
        match read_frame(&mut r) {
            // No bytes at all is an orderly close...
            Ok(None) => prop_assert_eq!(cut, 0),
            // ...a whole frame only survives an uncut stream...
            Ok(Some(got)) => {
                prop_assert_eq!(cut, buf.len());
                prop_assert_eq!(got, payload);
            }
            // ...and everything in between is a mid-frame disconnect.
            Err(e) => prop_assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
        }
    }

    #[test]
    fn arbitrary_streams_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        // Read frames until the stream is exhausted or rejected; every
        // outcome must be an enumerated one — never a panic, never an
        // allocation beyond MAX_FRAME (a 128-byte stream cannot satisfy a
        // large declared length, so a huge declaration either errors as
        // InvalidData or dies as UnexpectedEof while filling the payload).
        let mut r = Cursor::new(bytes);
        for _ in 0..64 {
            match read_frame(&mut r) {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(e) => {
                    prop_assert!(matches!(
                        e.kind(),
                        io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof
                    ));
                    break;
                }
            }
        }
    }

    #[test]
    fn faultline_short_reads_preserve_every_frame(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..512), 1..6),
        prob in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        // Under any rate of injected short reads the decode must deliver
        // the same frames, in order, bit-for-bit — degraded delivery, not
        // degraded data.
        let mut buf = Vec::new();
        for p in &payloads {
            write_frame(&mut buf, p).unwrap();
        }
        let plan = FaultPlan::parse(&format!("seed={seed},frame.read.short@p{prob}")).unwrap();
        let mut r = FaultyStream::new(Cursor::new(buf), &plan);
        for p in &payloads {
            let frame = read_frame(&mut r).unwrap();
            prop_assert_eq!(frame.as_deref(), Some(&p[..]));
        }
        prop_assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn faultline_disconnects_are_clean_errors_at_any_point(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..256), 1..5),
        nth in 1u64..24,
    ) {
        // An injected disconnect at the Nth read call either lands between
        // frames (after all frames were already delivered) or surfaces as
        // exactly one ConnectionReset — never a panic, never a short frame
        // passed off as complete.
        let mut buf = Vec::new();
        for p in &payloads {
            write_frame(&mut buf, p).unwrap();
        }
        let plan = FaultPlan::parse(&format!("frame.read.disconnect@n{nth}")).unwrap();
        let mut r = FaultyStream::new(Cursor::new(buf), &plan);
        let mut delivered = 0;
        loop {
            match read_frame(&mut r) {
                Ok(Some(frame)) => {
                    prop_assert_eq!(&frame[..], &payloads[delivered][..]);
                    delivered += 1;
                }
                Ok(None) => {
                    prop_assert_eq!(delivered, payloads.len());
                    break;
                }
                Err(e) => {
                    prop_assert_eq!(e.kind(), io::ErrorKind::ConnectionReset);
                    prop_assert!(delivered <= payloads.len());
                    break;
                }
            }
        }
    }

    #[test]
    fn sliced_delivery_preserves_every_frame(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..512), 1..6),
        chunk in 1usize..64,
    ) {
        // Frames written whole but read back through arbitrary slice sizes
        // (what interleaved partial writes look like to the reader).
        let mut buf = Vec::new();
        for p in &payloads {
            write_frame(&mut buf, p).unwrap();
        }
        let mut r = Trickle { inner: Cursor::new(buf), chunk };
        for p in &payloads {
            let frame = read_frame(&mut r).unwrap();
            prop_assert_eq!(frame.as_deref(), Some(&p[..]));
        }
        prop_assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn oversized_declarations_are_invalid_data(extra in 1u32..100_000) {
        let declared = (MAX_FRAME as u32).saturating_add(extra);
        let mut buf = declared.to_le_bytes().to_vec();
        buf.extend_from_slice(&[0u8; 32]);
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        prop_assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn garbage_json_is_rejected_without_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // The protocol layer above the framing: arbitrary payload bytes
        // either parse as JSON or are rejected with an error — never a
        // panic (the connection handler turns both failure modes into an
        // E_PROTO response).
        if let Ok(text) = std::str::from_utf8(&bytes) {
            let _ = serde_json::from_str(text);
        }
    }
}
