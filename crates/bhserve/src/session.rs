//! Persistent simulation sessions: a live body state stepped across
//! requests.
//!
//! A `run` job is fire-and-forget; a *session* keeps the simulation alive
//! on the server so a client can `step` it incrementally, `query` its
//! progress and `snapshot` the exact body state at any point.  The
//! contract that makes this safe to offer is
//! [`engine::Backend::supports_sessions`]: chunked stepping must be
//! **bit-for-bit** identical to one long run, which holds for the built-in
//! solvers under the per-step rebuild tree policy (the advance update is
//! stateless and tree construction is a pure function of body positions).
//! Both preconditions are enforced at `open`; the session-equivalence
//! integration test pins the bit-for-bit claim for every backend that makes
//! it.
//!
//! Sessions are owned by their connection — a disconnect (clean or
//! mid-message) tears down every session the connection holds, while the
//! tenant's quota ledger survives, so abandoning a session never refunds
//! spent cost.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::proto::{Job, Reject, E_NO_SESSION, E_SESSION_LIMIT};
use engine::{SimConfig, TreePolicy};
use nbody::Body;

/// One live simulation: the job it was opened with and the evolving state.
pub struct Session {
    /// Tenant the session's work is charged to.
    pub tenant: String,
    /// The job template (scenario, backend, full config) from `open`.
    pub job: Job,
    /// Current body state, sorted by id (the backend convention).
    pub bodies: Vec<Body>,
    /// Steps advanced so far across all `step` requests.
    pub steps_done: usize,
    /// When the session was last touched (opened or accessed) — the clock
    /// idle eviction reads.
    pub last_used: Instant,
}

impl Session {
    /// A fresh session, stamped as used now.
    pub fn new(tenant: String, job: Job, bodies: Vec<Body>, steps_done: usize) -> Session {
        Session { tenant, job, bodies, steps_done, last_used: Instant::now() }
    }

    /// The configuration for one `k`-step chunk from the current state.
    ///
    /// The chunk measures all of its steps — measurement affects only
    /// timing and counter attribution, never the physics — so each `step`
    /// request reports the full deterministic cost it is charged for.
    pub fn chunk_config(&self, k: usize) -> SimConfig {
        let mut cfg = self.job.cfg.clone();
        cfg.steps = k;
        cfg.measured_steps = k;
        cfg
    }

    /// Adopts the outcome of one `k`-step chunk run.
    pub fn advance(&mut self, k: usize, result: &engine::SimResult) {
        self.bodies = result.bodies.clone();
        self.steps_done += k;
    }
}

/// The sessions owned by one connection.
///
/// Ids come from a server-global counter so log lines and error messages
/// are unambiguous across connections; the table itself is connection-local
/// (no cross-connection session access, and teardown is simply dropping the
/// table).
pub struct SessionTable {
    next_id: Arc<AtomicU64>,
    cap: usize,
    sessions: HashMap<u64, Session>,
}

impl SessionTable {
    /// An empty table drawing ids from `next_id`, holding at most `cap`
    /// concurrent sessions.
    pub fn new(next_id: Arc<AtomicU64>, cap: usize) -> SessionTable {
        SessionTable { next_id, cap, sessions: HashMap::new() }
    }

    /// Admits a new session, enforcing the per-connection cap.
    pub fn open(&mut self, session: Session) -> Result<u64, Reject> {
        if self.sessions.len() >= self.cap {
            return Err(Reject::new(
                E_SESSION_LIMIT,
                format!(
                    "connection already holds {} live sessions (cap {}); close one first",
                    self.sessions.len(),
                    self.cap
                ),
            ));
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.sessions.insert(id, session);
        Ok(id)
    }

    /// The live session with this id, or the standard [`E_NO_SESSION`]
    /// rejection.
    pub fn get_mut(&mut self, id: u64) -> Result<&mut Session, Reject> {
        match self.sessions.get_mut(&id) {
            Some(s) => {
                s.last_used = Instant::now();
                Ok(s)
            }
            None => {
                Err(Reject::new(E_NO_SESSION, format!("no live session {id} on this connection")))
            }
        }
    }

    /// Evicts every session idle longer than `max_idle`, returning how many
    /// were dropped.  Called by the connection loop before each request, so
    /// an abandoned-but-connected client cannot pin body state forever (a
    /// fully idle *connection* is reaped by the read deadline, which drops
    /// the whole table).
    pub fn evict_idle(&mut self, max_idle: Duration) -> usize {
        let before = self.sessions.len();
        self.sessions.retain(|_, s| s.last_used.elapsed() <= max_idle);
        before - self.sessions.len()
    }

    /// Closes and returns the session, or rejects if it does not exist.
    pub fn close(&mut self, id: u64) -> Result<Session, Reject> {
        self.sessions.remove(&id).ok_or_else(|| {
            Reject::new(E_NO_SESSION, format!("no live session {id} on this connection"))
        })
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// `true` when no sessions are live.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }
}

/// The `open`-time preconditions for sessions, shared by the server and the
/// tests: the backend must claim chunked-stepping fidelity and the job must
/// use the per-step rebuild tree policy (any tree state carried across
/// steps would make chunk boundaries observable).
pub fn check_session_preconditions(backend: &dyn engine::Backend, job: &Job) -> Result<(), Reject> {
    if !backend.supports_sessions() {
        return Err(Reject::new(
            crate::proto::E_SESSION_UNSUPPORTED,
            format!(
                "backend {:?} does not support sessions (chunked stepping is not \
                 guaranteed bit-for-bit identical to one run)",
                backend.name()
            ),
        ));
    }
    if !matches!(job.cfg.tree_policy, TreePolicy::Rebuild) {
        return Err(Reject::new(
            crate::proto::E_SESSION_POLICY,
            format!(
                "sessions require the per-step rebuild tree policy; policy {:?} carries \
                 tree state across steps, which would make chunk boundaries observable",
                job.cfg.tree_policy.spec_label()
            ),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use barnes_hut_upc::backends;
    use scenarios::builtin;
    use serde::Value;

    fn job(text: &str) -> Job {
        let v: Value = serde_json::from_str(text).unwrap();
        crate::proto::decode_job(&v, &builtin(), &backends()).unwrap()
    }

    fn session(j: Job) -> Session {
        Session::new("t".to_string(), j, Vec::new(), 0)
    }

    #[test]
    fn table_enforces_cap_and_id_uniqueness() {
        let counter = Arc::new(AtomicU64::new(1));
        let mut table = SessionTable::new(counter.clone(), 2);
        let a = table.open(session(job(r#"{"n": 16}"#))).unwrap();
        let b = table.open(session(job(r#"{"n": 16}"#))).unwrap();
        assert_ne!(a, b);
        let err = table.open(session(job(r#"{"n": 16}"#))).unwrap_err();
        assert_eq!(err.code, E_SESSION_LIMIT);
        table.close(a).unwrap();
        assert_eq!(table.len(), 1);
        // Ids never recycle, even after a close.
        let c = table.open(session(job(r#"{"n": 16}"#))).unwrap();
        assert!(c > b);
        assert_eq!(table.get_mut(a).map(|_| ()).unwrap_err().code, E_NO_SESSION);
        assert_eq!(table.close(a).map(|_| ()).unwrap_err().code, E_NO_SESSION);
    }

    #[test]
    fn preconditions_gate_backend_and_policy() {
        let registry = backends();
        let j = job(r#"{"n": 16}"#);
        for backend in registry.iter() {
            // Every built-in backend opts into sessions.
            assert!(check_session_preconditions(backend, &j).is_ok(), "{}", backend.name());
        }
        let reuse = job(r#"{"n": 16, "policy": "reuse"}"#);
        let err = check_session_preconditions(registry.get("upc").unwrap(), &reuse).unwrap_err();
        assert_eq!(err.code, crate::proto::E_SESSION_POLICY);
    }

    #[test]
    fn idle_sessions_are_evicted_and_touches_keep_them_alive() {
        let counter = Arc::new(AtomicU64::new(1));
        let mut table = SessionTable::new(counter, 4);
        let a = table.open(session(job(r#"{"n": 16}"#))).unwrap();
        let b = table.open(session(job(r#"{"n": 16}"#))).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        table.get_mut(b).unwrap(); // touch b; a stays idle
        assert_eq!(table.evict_idle(Duration::from_millis(20)), 1);
        assert_eq!(table.get_mut(a).map(|_| ()).unwrap_err().code, E_NO_SESSION);
        assert!(table.get_mut(b).is_ok());
        // A generous deadline evicts nothing.
        assert_eq!(table.evict_idle(Duration::from_secs(3600)), 0);
    }

    #[test]
    fn chunk_configs_measure_every_step() {
        let j = job(r#"{"n": 16, "steps": 9, "measured": 1}"#);
        let s = session(j);
        let chunk = s.chunk_config(3);
        assert_eq!(chunk.steps, 3);
        assert_eq!(chunk.measured_steps, 3);
        assert!(chunk.validate().is_ok());
        // The template itself is untouched.
        assert_eq!(s.job.cfg.steps, 9);
    }
}
